// Measuring a fuzzer's input coverage from its syzkaller-style program
// log — the paper's future-work integration ("For different fuzzers,
// IOCov needs to apply other techniques to trace fuzzed syscalls.
// Syzkaller logs syscalls with declarative descriptions, which need to
// be parsed by IOCov.").
//
//   $ ./build/examples/fuzzer_coverage [program.syz]
//
// Without an argument, analyzes a built-in corpus snippet and contrasts
// the fuzzer's footprint with the hand-written-suite simulators: the
// fuzzer hits weird flags (O_LARGEFILE, O_PATH) and wild sizes that the
// suites never try, while leaving common partitions thin.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/iocov.hpp"
#include "core/untested.hpp"
#include "report/table.hpp"

using namespace iocov;  // NOLINT

namespace {

const char* kBuiltinCorpus = R"(# syz corpus snippet (fs syscalls)
r0 = openat(0xffffffffffffff9c, &(0x7f0000000000)='./file0\x00', 0x42, 0x1ff)
write(r0, &(0x7f0000000040), 0x0)
write(r0, &(0x7f0000000040), 0xfffffffe)
pwrite64(r0, &(0x7f0000000040), 0x80000000, 0x7)
lseek(r0, 0xfffffffffffffffb, 0x0)
lseek(r0, 0x0, 0x4)
ftruncate(r0, 0x7fffffffffffffff)
close(r0)
r1 = open(&(0x7f0000000100)='./file1\x00', 0x88000, 0x0)
read(r1, &(0x7f0000000200), 0x2000)
fchmod(r1, 0xfff)
close(r1)
r2 = openat2(0xffffffffffffff9c, &(0x7f0000000000)='./file0\x00', &(0x7f0000000040)={0x200000, 0x0, 0x10}, 0x18)
fchdir(r2)
close(r2)
open(0x0, 0x0, 0x0)
setxattr(&(0x7f0000000000)='./file0\x00', &(0x7f0000000080)='user.syz\x00', &(0x7f0000000300), 0x10000, 0x3)
getxattr(&(0x7f0000000000)='./file0\x00', &(0x7f0000000080)='user.syz\x00', &(0x7f0000000300), 0x0)
mkdir(&(0x7f0000000400)='./dir0\x00', 0xfff)
chdir(&(0x7f0000000400)='./dir0\x00')
unlink(&(0x7f0000000000)='./file1\x00')
)";

}  // namespace

int main(int argc, char** argv) {
    core::IOCov iocov;
    std::size_t parsed = 0;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        parsed = iocov.consume_syz(in);
        std::printf("parsed %zu syscalls from %s\n\n", parsed, argv[1]);
    } else {
        std::stringstream in(kBuiltinCorpus);
        parsed = iocov.consume_syz(in);
        std::printf("parsed %zu syscalls from the built-in corpus "
                    "snippet\n\n",
                    parsed);
    }

    const auto& r = iocov.report();
    std::printf("input coverage from the fuzzer program:\n\n");
    for (const auto& in : r.inputs) {
        if (in.hist.total() == 0) continue;
        std::printf("%s.%s — %zu/%zu partitions:", in.base.c_str(),
                    in.key.c_str(), in.hist.tested().size(),
                    in.hist.partition_count());
        for (const auto& row : in.hist.rows())
            if (row.count) std::printf(" %s", row.label.c_str());
        std::printf("\n");
    }

    std::printf("\nnote: no output coverage — syz programs are "
                "declarative (every output space reads 0/%zu):\n",
                r.find_output("open")->hist.partition_count());
    std::printf("  open outputs observed: %llu\n",
                static_cast<unsigned long long>(
                    r.find_output("open")->hist.total()));

    // What the fuzzer reaches that the simulated hand-written suites
    // never do (cf. Fig. 2's untested flags).
    const auto& flags = r.find_input("open", "flags")->hist;
    std::printf("\nfuzzer-only territory: O_LARGEFILE=%llu O_PATH=%llu "
                "(untested by both suites in Fig. 2)\n",
                static_cast<unsigned long long>(
                    flags.count("O_LARGEFILE")),
                static_cast<unsigned long long>(flags.count("O_PATH")));
    return 0;
}
