// Offline analysis: record a workload to an LTTng-style text trace,
// then analyze the file separately — the deployment mode of the real
// IOCov tool (trace on the test machine, analyze anywhere).
//
//   $ ./build/examples/trace_offline /tmp/iocov.trace
#include <cstdio>
#include <fstream>
#include <sstream>

#include "abi/fcntl.hpp"
#include "core/iocov.hpp"
#include "syscall/process.hpp"
#include "testers/fixtures.hpp"
#include "trace/sink.hpp"
#include "vfs/filesystem.hpp"

using namespace iocov;       // NOLINT
using namespace iocov::abi;  // NOLINT

int main(int argc, char** argv) {
    const char* trace_path = argc > 1 ? argv[1] : "/tmp/iocov.trace";

    // ---- phase 1: trace a workload to a text file --------------------
    {
        vfs::FileSystem fs;
        auto fx = testers::prepare_environment(fs, "/mnt/test");
        std::ofstream out(trace_path);
        trace::TextSink sink(out);
        syscall::Kernel kernel(fs, &sink);
        auto proc =
            kernel.make_process(321, vfs::Credentials::user(1000, 1000));

        const auto fd = proc.sys_open((fx.scratch + "/data").c_str(),
                                      O_CREAT | O_RDWR, 0644);
        for (int i = 0; i < 8; ++i)
            proc.sys_write(static_cast<int>(fd),
                           syscall::WriteSrc::pattern(1u << (8 + i),
                                                      std::byte{1}));
        proc.sys_lseek(static_cast<int>(fd), 0, 0);
        proc.sys_read(static_cast<int>(fd),
                      syscall::ReadDst::discard(65536));
        proc.sys_close(static_cast<int>(fd));
        proc.sys_open((fx.scratch + "/nope").c_str(), O_RDONLY);
        proc.sys_setxattr((fx.scratch + "/data").c_str(), "user.tag",
                          std::vector<std::byte>(32, std::byte{9}), 0);
        std::printf("wrote trace to %s\n", trace_path);
    }

    // ---- phase 2: parse + filter + analyze the trace file -------------
    std::ifstream in(trace_path);
    if (!in) {
        std::fprintf(stderr, "cannot reopen %s\n", trace_path);
        return 1;
    }
    core::IOCov iocov;  // default /mnt/test filter
    const auto dropped = iocov.consume_text(in);

    const auto& r = iocov.report();
    std::printf("parsed trace: %llu events tracked, %zu malformed lines "
                "dropped\n",
                static_cast<unsigned long long>(r.events_tracked), dropped);
    const auto* wc = r.find_input("write", "count");
    std::printf("write-size buckets exercised:");
    for (const auto& row : wc->hist.rows())
        if (row.count) std::printf(" %s", row.label.c_str());
    std::printf("\nopen outputs: OK=%llu ENOENT=%llu\n",
                static_cast<unsigned long long>(
                    r.find_output("open")->hist.count("OK")),
                static_cast<unsigned long long>(
                    r.find_output("open")->hist.count("ENOENT")));
    return 0;
}
