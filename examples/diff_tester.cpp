// Coverage-guided differential tester — the paper's future-work
// direction ("we are currently developing a differential-testing-based
// file system tester utilizing IOCov").
//
// Flow:
//   1. Run the (weak) CrashMonkey simulator; evaluate which corpus bugs
//      its inputs would expose.
//   2. Ask IOCov for the suite's untested input/output partitions.
//   3. Synthesize one targeted syscall per gap — boundary values first —
//      and add environmental faults for the error outputs argument
//      validation cannot reach.
//   4. Re-evaluate: the targeted inputs expose bugs the suite missed,
//      including the paper's Fig. 1 maximum-size lsetxattr bug.
//
//   $ ./build/examples/diff_tester
#include <cstdio>
#include <set>

#include "abi/fcntl.hpp"
#include "abi/seek.hpp"
#include "abi/xattr.hpp"
#include "bugstudy/study.hpp"
#include "core/iocov.hpp"
#include "core/untested.hpp"
#include "stats/log_bucket.hpp"
#include "syscall/process.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "trace/sink.hpp"
#include "vfs/filesystem.hpp"

using namespace iocov;       // NOLINT
using namespace iocov::abi;  // NOLINT

namespace {

/// Issues one syscall aimed at an untested input partition.
void generate_for_gap(syscall::Process& proc, syscall::Process& proc32,
                      const testers::Fixtures& fx,
                      const core::UntestedPartition& gap) {
    const std::string target = fx.scratch + "/difftest";
    if (gap.base == "open" && gap.kind == core::UntestedPartition::Kind::Input) {
        // Flag partitions: open something compatible with the flag.
        std::uint32_t flag = 0;
        for (const auto& info : open_flag_table())
            if (gap.partition == info.name) flag = info.bits;
        if (gap.partition == "O_RDONLY" || flag == O_RDONLY) {
            proc.sys_open(fx.plain_file.c_str(), O_RDONLY);
        } else if (flag == O_TMPFILE) {
            const auto fd = proc.sys_open(fx.scratch.c_str(),
                                          O_TMPFILE | O_RDWR, 0600);
            if (fd >= 0) proc.sys_close(static_cast<int>(fd));
        } else if (flag == O_LARGEFILE) {
            // Exercise the real 32-bit semantics of the flag.
            proc32.sys_open(fx.big_file.c_str(), O_RDONLY | O_LARGEFILE);
            proc32.sys_open(fx.big_file.c_str(), O_RDONLY);  // EOVERFLOW
        } else if (flag == O_EXCL) {
            proc.sys_open((target + ".x").c_str(),
                          O_CREAT | O_EXCL | O_WRONLY, 0644);
        } else if (flag == O_DIRECTORY || flag == O_TMPFILE) {
            proc.sys_open(fx.scratch.c_str(), O_RDONLY | flag);
        } else {
            const auto fd = proc.sys_open(target.c_str(),
                                          O_CREAT | O_RDWR | flag, 0644);
            if (fd >= 0) proc.sys_close(static_cast<int>(fd));
        }
        return;
    }
    if (gap.base == "write" && gap.arg == "count") {
        if (auto bucket = stats::parse_bucket_label(gap.partition)) {
            if (bucket->kind == stats::LogBucket::Kind::Zero) {
                const auto fd = proc.sys_open(target.c_str(),
                                              O_CREAT | O_WRONLY, 0644);
                proc.sys_write(static_cast<int>(fd),
                               syscall::WriteSrc::pattern(0, std::byte{1}));
                proc.sys_close(static_cast<int>(fd));
            } else if (bucket->kind == stats::LogBucket::Kind::Pow2 &&
                       bucket->exponent <= 30) {
                const auto fd = proc.sys_open(target.c_str(),
                                              O_CREAT | O_WRONLY, 0644);
                proc.sys_pwrite64(
                    static_cast<int>(fd),
                    syscall::WriteSrc::pattern(1ULL << bucket->exponent,
                                               std::byte{1}),
                    0);
                proc.sys_close(static_cast<int>(fd));
                proc.sys_truncate(target.c_str(), 0);  // release blocks
            }
        }
        return;
    }
    if (gap.base == "setxattr" && gap.arg == "size") {
        if (auto bucket = stats::parse_bucket_label(gap.partition)) {
            std::size_t size = 0;
            if (bucket->kind == stats::LogBucket::Kind::Pow2)
                size = std::min<std::size_t>(
                    std::size_t{1} << bucket->exponent, XATTR_SIZE_MAX_);
            // Boundary-first: the top of the bucket, clamped to the
            // documented maximum — which is exactly the Fig. 1 trigger.
            std::vector<std::byte> value(size, std::byte{5});
            proc.sys_setxattr(fx.plain_file.c_str(), "user.diff", value,
                              0);
            const auto upper = std::min<std::size_t>(
                (std::size_t{2} << bucket->exponent) - 1, XATTR_SIZE_MAX_);
            value.resize(upper, std::byte{5});
            proc.sys_setxattr(fx.plain_file.c_str(), "user.diff", value,
                              0);
        }
        return;
    }
    if (gap.base == "lseek" && gap.arg == "whence") {
        int whence = 99;
        for (int w : seek_whence_values())
            if (gap.partition == *seek_whence_name(w)) whence = w;
        const auto fd = proc.sys_open(fx.plain_file.c_str(), O_RDONLY);
        proc.sys_lseek(static_cast<int>(fd), 0, whence);
        proc.sys_close(static_cast<int>(fd));
        return;
    }
    if (gap.base == "chmod" && gap.partition == "S_ISVTX") {
        proc.sys_chmod((fx.scratch + "/subdir").c_str(), 01777);
        return;
    }
}

}  // namespace

int main() {
    vfs::FsConfig cfg = testers::recommended_fs_config();
    cfg.quota_blocks_per_uid = 1 << 16;  // makes EDQUOT reachable
    vfs::FileSystem fs(cfg);
    auto fx = testers::prepare_environment(fs, "/mnt/test");

    bugstudy::CoverageTracker tracker;
    fs.set_hooks(&tracker);

    trace::TraceBuffer buffer;
    core::IOCov iocov;
    trace::TeeSink tee(buffer, iocov.live_sink());
    syscall::Kernel kernel(fs, &tee);

    // ---- phase 1: the baseline suite ---------------------------------
    testers::run_crashmonkey(kernel, fx, 0.05, 42);
    auto baseline = bugstudy::evaluate_corpus(tracker, buffer.events());
    std::printf("baseline (CrashMonkey sim): %d of %d corpus bugs "
                "detected\n",
                baseline.detected, baseline.total);

    // ---- phase 2+3: coverage-guided input generation ------------------
    const auto gaps = core::find_untested(iocov.report());
    std::printf("IOCov reports %zu untested partitions; generating "
                "targeted inputs...\n",
                gaps.size());

    auto proc = kernel.make_process(777, vfs::Credentials::user(1000, 1000));
    auto proc32 = kernel.make_process(778,
                                      vfs::Credentials::user(1000, 1000));
    proc32.set_large_file_default(false);  // a 32-bit test process
    for (const auto& gap : gaps) generate_for_gap(proc, proc32, fx, gap);

    // Error outputs that need the environment's help (the paper:
    // "triggering ENOMEM requires a system with limited memory").
    kernel.faults().arm("open", Err::ENOMEM_);
    proc.sys_open(fx.plain_file.c_str(), O_RDONLY);
    kernel.faults().arm("open", Err::EINTR_);
    proc.sys_open(fx.plain_file.c_str(), O_RDONLY);
    kernel.faults().arm("read", Err::EIO_);
    {
        const auto fd = proc.sys_open(fx.plain_file.c_str(), O_RDONLY);
        proc.sys_read(static_cast<int>(fd), syscall::ReadDst::discard(16));
        proc.sys_close(static_cast<int>(fd));
    }
    // Quota exhaustion for the EDQUOT exit path.
    {
        const auto fd = proc.sys_open((fx.scratch + "/quota").c_str(),
                                      O_CREAT | O_WRONLY, 0644);
        proc.sys_pwrite64(static_cast<int>(fd),
                          syscall::WriteSrc::pattern(
                              (cfg.quota_blocks_per_uid + 2) * 4096,
                              std::byte{1}),
                          0);
        proc.sys_close(static_cast<int>(fd));
    }
    // openat2 territory: RESOLVE_CACHED (EAGAIN) and oversized how.
    OpenHow how;
    how.flags = O_RDONLY;
    how.resolve = RESOLVE_CACHED;
    proc.sys_openat2(AT_FDCWD, fx.plain_file.c_str(), how);
    how.resolve = 0;
    proc.sys_openat2(AT_FDCWD, fx.plain_file.c_str(), how, 64);  // E2BIG

    // ---- phase 4: what did the targeted inputs expose? ----------------
    auto after = bugstudy::evaluate_corpus(tracker, buffer.events());
    std::printf("after targeted generation: %d of %d detected "
                "(+%d new)\n\n",
                after.detected, after.total,
                after.detected - baseline.detected);

    std::set<std::string> before_ids;
    for (const auto& o : baseline.outcomes)
        if (o.detected) before_ids.insert(o.bug->id);
    std::printf("newly exposed bugs:\n");
    for (const auto& o : after.outcomes) {
        if (!o.detected || before_ids.count(o.bug->id)) continue;
        std::printf("  %-13s %s\n", o.bug->id.c_str(),
                    o.bug->description.c_str());
    }
    return 0;
}
