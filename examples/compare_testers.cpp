// Compare two file-system test suites the way the paper's evaluation
// does: run both simulated suites, then put their input coverage,
// output coverage, and TCD side by side.
//
//   $ ./build/examples/compare_testers [scale]
#include <cstdio>
#include <cstdlib>

#include "core/iocov.hpp"
#include "core/tcd.hpp"
#include "core/untested.hpp"
#include "report/table.hpp"
#include "syscall/kernel.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "vfs/filesystem.hpp"

using namespace iocov;  // NOLINT

namespace {

core::CoverageReport run_suite(bool xfstests, double scale) {
    vfs::FileSystem fs(testers::recommended_fs_config());
    auto fx = testers::prepare_environment(fs, "/mnt/test");
    core::IOCov iocov;
    syscall::Kernel kernel(fs, &iocov.live_sink());
    if (xfstests) testers::run_xfstests(kernel, fx, scale, 42);
    else testers::run_crashmonkey(kernel, fx, scale, 42);
    return iocov.report();
}

}  // namespace

int main(int argc, char** argv) {
    const double scale = argc > 1 ? std::atof(argv[1]) : 0.01;
    std::printf("running CrashMonkey and xfstests simulators at scale "
                "%.3g...\n\n",
                scale);
    const auto cm = run_suite(false, scale);
    const auto xfs = run_suite(true, scale);

    // Per-space coverage summary.
    std::vector<std::vector<std::string>> rows;
    const auto cm_sum = core::summarize(cm);
    const auto xfs_sum = core::summarize(xfs);
    for (std::size_t i = 0; i < cm_sum.size(); ++i) {
        const auto& c = cm_sum[i];
        const auto& x = xfs_sum[i];
        const std::string space =
            c.arg.empty() ? c.base + " (output)" : c.base + "." + c.arg;
        rows.push_back({space, std::to_string(c.declared),
                        std::to_string(c.tested), std::to_string(x.tested)});
    }
    std::printf("%s\n",
                report::render_table({"space", "partitions",
                                      "CrashMonkey tested",
                                      "xfstests tested"},
                                     rows)
                    .c_str());

    // Headline comparison, Fig. 2 style.
    const auto& cm_flags = cm.find_input("open", "flags")->hist;
    const auto& xfs_flags = xfs.find_input("open", "flags")->hist;
    std::printf("open-flag coverage: CrashMonkey %.0f%%, xfstests %.0f%%\n",
                100 * cm_flags.coverage_fraction(),
                100 * xfs_flags.coverage_fraction());

    // TCD at a few targets (Fig. 5 style).
    std::printf("\nTCD (open flags, uniform target):\n");
    for (double t : {10.0, 100.0, 1000.0}) {
        std::printf("  target %6.0f: CrashMonkey %.3f   xfstests %.3f\n",
                    t * scale, core::tcd_uniform(cm_flags, t * scale),
                    core::tcd_uniform(xfs_flags, t * scale));
    }

    // What should each suite add first?
    const auto cm_gaps = core::find_untested(cm);
    const auto xfs_gaps = core::find_untested(xfs);
    std::printf("\nuntested partitions: CrashMonkey %zu, xfstests %zu\n",
                cm_gaps.size(), xfs_gaps.size());
    std::printf("first three xfstests gaps:\n");
    for (std::size_t i = 0; i < 3 && i < xfs_gaps.size(); ++i)
        std::printf("  [%s %s] %s\n", xfs_gaps[i].base.c_str(),
                    xfs_gaps[i].partition.c_str(),
                    xfs_gaps[i].suggestion.c_str());
    return 0;
}
