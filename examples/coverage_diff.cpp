// Coverage regression gate: save a suite's coverage report, then diff a
// later run against it.
//
//   $ ./build/examples/coverage_diff                 # demo (two sims)
//   $ ./build/examples/coverage_diff a.cov b.cov     # diff two files
//
// Demo mode contrasts CrashMonkey against xfstests, saves both reports
// to /tmp, reloads them, and prints the deltas — showing the round-trip
// and the diff engine in one go.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/diff.hpp"
#include "core/iocov.hpp"
#include "core/report_io.hpp"
#include "syscall/kernel.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "vfs/filesystem.hpp"

using namespace iocov;  // NOLINT

namespace {

core::CoverageReport run_suite(bool xfstests, double scale) {
    vfs::FileSystem fs(testers::recommended_fs_config());
    auto fx = testers::prepare_environment(fs, "/mnt/test");
    core::IOCov iocov;
    syscall::Kernel kernel(fs, &iocov.live_sink());
    if (xfstests) testers::run_xfstests(kernel, fx, scale, 42);
    else testers::run_crashmonkey(kernel, fx, scale, 42);
    return iocov.report();
}

std::optional<core::CoverageReport> load_file(const char* path) {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    return core::load_report(in);
}

void print_deltas(const core::CoverageReport& before,
                  const core::CoverageReport& after) {
    const auto deltas = core::diff_reports(before, after);
    std::size_t lost = 0, gained = 0;
    for (const auto& d : deltas) {
        if (d.kind == core::CoverageDelta::Kind::Lost) ++lost;
        if (d.kind == core::CoverageDelta::Kind::Gained) ++gained;
    }
    std::printf("%zu deltas (%zu lost, %zu gained); regression: %s\n\n",
                deltas.size(), lost, gained,
                core::has_coverage_regression(before, after) ? "YES"
                                                             : "no");
    std::size_t shown = 0;
    for (const auto& d : deltas) {
        if (++shown > 20) {
            std::printf("  ... (%zu more)\n", deltas.size() - 20);
            break;
        }
        std::printf("  %-9s %s%s%s [%s]: %llu -> %llu\n",
                    core::delta_kind_name(d.kind).c_str(), d.base.c_str(),
                    d.arg.empty() ? "" : ".", d.arg.c_str(),
                    d.partition.c_str(),
                    static_cast<unsigned long long>(d.before),
                    static_cast<unsigned long long>(d.after));
    }
}

}  // namespace

int main(int argc, char** argv) {
    if (argc == 3) {
        auto before = load_file(argv[1]);
        auto after = load_file(argv[2]);
        if (!before || !after) {
            std::fprintf(stderr, "failed to load report files\n");
            return 1;
        }
        print_deltas(*before, *after);
        return core::has_coverage_regression(*before, *after) ? 2 : 0;
    }

    std::printf("demo: diffing CrashMonkey coverage against xfstests "
                "coverage\n");
    const auto cm = run_suite(false, 0.01);
    const auto xfs = run_suite(true, 0.01);

    // Round-trip both through the on-disk format.
    for (auto [name, report] :
         {std::pair{"/tmp/crashmonkey.cov", &cm},
          std::pair{"/tmp/xfstests.cov", &xfs}}) {
        std::ofstream out(name);
        core::save_report(out, *report);
        std::printf("saved %s\n", name);
    }
    auto cm2 = load_file("/tmp/crashmonkey.cov");
    auto xfs2 = load_file("/tmp/xfstests.cov");
    if (!cm2 || !xfs2) {
        std::fprintf(stderr, "round-trip failed\n");
        return 1;
    }
    std::printf("round-trip OK (events_tracked %llu / %llu)\n\n",
                static_cast<unsigned long long>(cm2->events_tracked),
                static_cast<unsigned long long>(xfs2->events_tracked));
    print_deltas(*cm2, *xfs2);
    return 0;
}
