// Quickstart: measure the input/output coverage of a tiny hand-written
// "test suite" with IOCov.
//
//   $ ./build/examples/quickstart
//
// Walks the whole public API surface in ~80 lines: build a file system,
// attach IOCov as a live trace sink, run syscalls, read the report.
#include <cstdio>

#include "abi/fcntl.hpp"
#include "core/iocov.hpp"
#include "report/table.hpp"
#include "syscall/process.hpp"
#include "vfs/filesystem.hpp"

using namespace iocov;         // NOLINT
using namespace iocov::abi;    // NOLINT

int main() {
    // 1. A simulated file system, mounted at /mnt/test.
    vfs::FileSystem fs;
    const auto root = vfs::Credentials::root();
    const auto mnt = fs.make_dir(vfs::kRootInode, "mnt", 0755, root).value();
    fs.make_dir(mnt, "test", 0777, root);

    // 2. IOCov, filtering to the mount point, analyzing live.
    core::IOCov iocov(trace::FilterConfig::mount_point("/mnt/test"));

    // 3. A kernel + process issuing syscalls (this is "the test suite").
    syscall::Kernel kernel(fs, &iocov.live_sink());
    auto proc = kernel.make_process(100, vfs::Credentials::user(1000, 1000));

    const auto fd = proc.sys_open("/mnt/test/hello",
                                  O_CREAT | O_WRONLY | O_TRUNC, 0644);
    proc.sys_write(static_cast<int>(fd),
                   syscall::WriteSrc::pattern(4096, std::byte{'x'}));
    proc.sys_write(static_cast<int>(fd),
                   syscall::WriteSrc::pattern(0, std::byte{'x'}));
    proc.sys_close(static_cast<int>(fd));
    proc.sys_open("/mnt/test/missing", O_RDONLY);        // -> ENOENT
    proc.sys_mkdir("/mnt/test/dir", 0755);
    proc.sys_open("/etc/passwd", O_RDONLY);              // filtered out

    // 4. The coverage report.
    const auto& report = iocov.report();
    std::printf("events analyzed: %llu tracked / %llu seen "
                "(%llu filtered out)\n\n",
                static_cast<unsigned long long>(report.events_tracked),
                static_cast<unsigned long long>(report.events_seen),
                static_cast<unsigned long long>(
                    iocov.events_filtered_out()));

    const auto* flags = report.find_input("open", "flags");
    std::printf("open flags exercised:\n");
    for (const auto& row : flags->hist.rows())
        if (row.count)
            std::printf("  %-14s %llu\n", row.label.c_str(),
                        static_cast<unsigned long long>(row.count));

    const auto* wc = report.find_input("write", "count");
    std::printf("\nwrite size partitions exercised: %zu of %zu "
                "(including the \"=0\" boundary: %s)\n",
                wc->hist.tested().size(), wc->hist.partition_count(),
                wc->hist.count("=0") ? "yes" : "no");

    const auto* oo = report.find_output("open");
    std::printf("open outputs: OK=%llu ENOENT=%llu; %zu of %zu output "
                "partitions still untested\n",
                static_cast<unsigned long long>(oo->hist.count("OK")),
                static_cast<unsigned long long>(oo->hist.count("ENOENT")),
                oo->hist.untested().size(), oo->hist.partition_count());

    // 5. A one-number adequacy score (lower is better).
    std::printf("\nTCD vs a uniform target of 10 tests/flag: %.3f\n",
                core::tcd_uniform(flags->hist, 10.0));
    return 0;
}
