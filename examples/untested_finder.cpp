// Untested-partition finder: point IOCov at a suite and get a worklist
// of missing tests — the paper's "this information can be readily used
// to improve these testing tools".
//
//   $ ./build/examples/untested_finder [crashmonkey|xfstests] [scale]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/iocov.hpp"
#include "core/untested.hpp"
#include "syscall/kernel.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "vfs/filesystem.hpp"

using namespace iocov;  // NOLINT

int main(int argc, char** argv) {
    const bool xfstests = !(argc > 1 && std::strcmp(argv[1],
                                                    "crashmonkey") == 0);
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.01;

    vfs::FileSystem fs(testers::recommended_fs_config());
    auto fx = testers::prepare_environment(fs, "/mnt/test");
    core::IOCov iocov;
    syscall::Kernel kernel(fs, &iocov.live_sink());
    if (xfstests) testers::run_xfstests(kernel, fx, scale, 42);
    else testers::run_crashmonkey(kernel, fx, scale, 42);

    std::printf("suite: %s (scale %.3g)\n\n",
                xfstests ? "xfstests" : "CrashMonkey", scale);

    const auto gaps = core::find_untested(iocov.report());
    std::size_t inputs = 0, outputs = 0;
    for (const auto& gap : gaps)
        (gap.kind == core::UntestedPartition::Kind::Input ? inputs
                                                          : outputs)++;
    std::printf("%zu untested partitions (%zu input, %zu output)\n\n",
                gaps.size(), inputs, outputs);

    std::string last_base;
    for (const auto& gap : gaps) {
        if (gap.base != last_base) {
            std::printf("%s:\n", gap.base.c_str());
            last_base = gap.base;
        }
        std::printf("  %-18s -> %s\n", gap.partition.c_str(),
                    gap.suggestion.c_str());
    }

    // Under-tested (tested but thin) partitions are the other half of
    // the paper's under/over-testing story.
    const auto thin = core::find_under_tested(iocov.report(), 3);
    std::printf("\n%zu partitions tested fewer than 3 times "
                "(under-tested)\n",
                thin.size());
    return 0;
}
