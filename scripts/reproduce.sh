#!/usr/bin/env bash
# One-shot reproduction: build, test, regenerate every table and figure.
#
#   ./scripts/reproduce.sh                 # 2% workload scale (seconds)
#   IOCOV_SCALE=1 ./scripts/reproduce.sh   # full published volume
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

echo "=== tests ==="
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt | tail -3

echo "=== benches (every paper table and figure) ==="
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt | grep -E "matches paper|measured" || true

echo "=== bug-study dataset ==="
./build/tools/iocov bugstudy --export > data/bug_study_dataset.md
echo "regenerated data/bug_study_dataset.md"
