#!/usr/bin/env bash
# Machine-readable analyzer/pipeline benchmark run.
#
#   ./scripts/bench_json.sh [OUT.json]     # default BENCH_analyzer.json
#
# Runs the per-event analyzer bench, the serial and sharded
# consume_text benches (1/2/4/8 worker threads), and the text-vs-IOCT
# ingest comparison (BM_IngestTextSerial vs BM_IngestBinarySerial plus
# the full consume_binary pipeline, serial/sharded/mmap/read-copy) and
# writes the google-benchmark JSON to OUT for before/after comparisons.
# Note the items_per_second counter is CPU-time based; on a single-core
# machine compare the real_time fields for the parallel rows.
#
# Preflight: the ASan and UBSan gates run first so a benchmark number
# is never published off a build with a latent memory or UB bug, and a
# Release (NDEBUG) build-and-test pass keeps the throwing size
# contracts honest where asserts would vanish.
# Set IOCOV_SKIP_SANITIZERS=1 to skip them (e.g. quick local re-runs).
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${IOCOV_SKIP_SANITIZERS:-0}" != "1" ]; then
  echo "preflight: ASan gate (IOCOV_SKIP_SANITIZERS=1 to skip)"
  ./scripts/check_asan.sh
  echo "preflight: UBSan gate"
  ./scripts/check_ubsan.sh
  echo "preflight: Release (NDEBUG) gate"
  ./scripts/check_release.sh
fi

OUT="${1:-BENCH_analyzer.json}"
BENCH=build/bench/perf_analyzer

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not built (run: cmake -B build && cmake --build build -j)" >&2
  exit 1
fi

"$BENCH" \
  --benchmark_filter='BM_(AnalyzerThroughput|FilterThroughput|ConsumeTextSerial|ConsumeTextParallel|IngestTextSerial|IngestBinary|ConsumeBinary).*' \
  --benchmark_repetitions="${IOCOV_BENCH_REPS:-3}" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json >/dev/null

echo "wrote $OUT"
grep -o '"name": "[^"]*_median"' "$OUT" | sed 's/"name": //' || true

# Smoke the guided synthesizer end to end: a tiny crashmonkey baseline
# must still converge (exit 0) and print its before/after table.
echo "smoke: iocov guide"
build/tools/iocov guide --suite crashmonkey --scale 0.002 --seed 42 \
  --rounds 2 | tail -4
