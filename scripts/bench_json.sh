#!/usr/bin/env bash
# Machine-readable analyzer/pipeline benchmark run.
#
#   ./scripts/bench_json.sh [OUT.json]     # default BENCH_analyzer.json
#
# Runs the per-event analyzer bench, the serial and sharded
# consume_text benches (1/2/4/8 worker threads), the text-vs-IOCT
# ingest comparison (BM_IngestTextSerial vs BM_IngestBinarySerial vs
# the batched BM_IngestBinaryBatched hot path plus the full
# consume_binary pipeline, serial/sharded/mmap/read-copy), the IOCS
# snapshot benches (BM_SnapshotSave/Load/Merge — merge bytes/sec is
# against the raw trace bytes the snapshots replace, comparable to
# BM_IngestBinaryBatched) and the BM_MemoryBandwidth roofline
# baseline, and writes the google-benchmark JSON to OUT for
# before/after comparisons.
# Note the items_per_second counter is CPU-time based; on a single-core
# machine compare the real_time fields for the parallel rows.
#
# Provenance: benchmarks run off the Release build (build-release/),
# never the default RelWithDebInfo dev tree, and the run is refused
# after the fact unless the JSON's own iocov_build_type context —
# recorded by the bench binary from its NDEBUG/__OPTIMIZE__ state —
# says "release".  (The Debian libbenchmark package hard-codes
# "library_build_type": "debug" into every JSON regardless of how the
# bench binary was compiled; iocov_build_type is the field that
# actually reflects this binary.)
#
# Preflight: the ASan and UBSan gates run first so a benchmark number
# is never published off a build with a latent memory or UB bug, a
# Release (NDEBUG) build-and-test pass keeps the throwing size
# contracts honest where asserts would vanish, and check_perf.sh
# refuses to publish numbers from a regressed decoder.
# Set IOCOV_SKIP_SANITIZERS=1 to skip them (e.g. quick local re-runs).
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${IOCOV_SKIP_SANITIZERS:-0}" != "1" ]; then
  echo "preflight: ASan gate (IOCOV_SKIP_SANITIZERS=1 to skip)"
  ./scripts/check_asan.sh
  echo "preflight: UBSan gate"
  ./scripts/check_ubsan.sh
  echo "preflight: Release (NDEBUG) gate"
  ./scripts/check_release.sh
  echo "preflight: crash-consistency gate"
  ./scripts/check_crash.sh
  echo "preflight: host durability (chaos) gate"
  ./scripts/check_chaos.sh
  echo "preflight: live coverage daemon (serve) gate"
  ./scripts/check_serve.sh
fi

echo "preflight: perf regression gate"
./scripts/check_perf.sh

OUT="${1:-BENCH_analyzer.json}"
BUILD=build-release
BENCH="$BUILD"/bench/perf_analyzer

cmake -B "$BUILD" -G Ninja -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" --target perf_analyzer iocov_cli -j >/dev/null

"$BENCH" \
  --benchmark_filter='BM_(AnalyzerThroughput|FilterThroughput|ConsumeTextSerial|ConsumeTextParallel|IngestTextSerial|IngestBinary|ConsumeBinary|MemoryBandwidth|Snapshot|ServeIngest).*' \
  --benchmark_repetitions="${IOCOV_BENCH_REPS:-3}" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json >/dev/null

# Refuse a run whose own provenance says it was not a Release binary.
if ! python3 - "$OUT" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    ctx = json.load(f)["context"]
build_type = ctx.get("iocov_build_type")
if build_type != "release":
    print(f"error: {path} was produced by a non-Release bench binary "
          f"(iocov_build_type={build_type!r}); refusing to keep it",
          file=sys.stderr)
    sys.exit(1)
print(f"provenance: iocov_build_type=release "
      f"decode_isa={ctx.get('iocov_decode_isa', '?')}")
EOF
then
  rm -f "$OUT"
  exit 1
fi

echo "wrote $OUT"
grep -o '"name": "[^"]*_median"' "$OUT" | sed 's/"name": //' || true

# Smoke the guided synthesizer end to end: a tiny crashmonkey baseline
# must still converge (exit 0) and print its before/after table.
echo "smoke: iocov guide"
"$BUILD"/tools/iocov guide --suite crashmonkey --scale 0.002 --seed 42 \
  --rounds 2 | tail -4
