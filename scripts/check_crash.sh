#!/usr/bin/env bash
# Crash-consistency smoke gate for the testers/crash subsystem.
#
#   ./scripts/check_crash.sh [BUILD_DIR]    # default build
#
# Three properties the crash tester must never lose:
#   1. the `crash`-labelled unit suites pass (effect log, replay,
#      oracle, state diff, end-to-end tester);
#   2. the enumeration is deterministic — two `iocov crashtest` runs
#      with the same seed produce byte-identical JSON reports;
#   3. the oracle still has teeth — the seeded skip-a-barrier bug
#      (--inject-skip-barrier 0) is CAUGHT, with at least one bug.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"

# No -G: reuse whatever generator BUILD was configured with (the dev
# tree is often Makefiles while the sanitizer trees are Ninja).
cmake -B "$BUILD" >/dev/null
cmake --build "$BUILD" -j --target \
  test_crash_replay test_crash_oracle test_crashtest test_state_diff \
  iocov_cli
ctest --test-dir "$BUILD" -L crash --output-on-failure -j "$(nproc)"

CLI="$BUILD"/tools/iocov
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "determinism: two seeded crashtest runs must be byte-identical"
"$CLI" crashtest --seed 7 --json "$TMP/a.json" >/dev/null
"$CLI" crashtest --seed 7 --json "$TMP/b.json" >/dev/null
cmp "$TMP/a.json" "$TMP/b.json"
echo "determinism: OK"

echo "oracle teeth: seeded skip-barrier bug must be caught"
OUT="$("$CLI" crashtest --seed 7 --inject-skip-barrier 0 | tail -1)"
echo "$OUT"
case "$OUT" in
  *CAUGHT*) ;;
  *) echo "error: injected skip-barrier bug was not caught" >&2; exit 1 ;;
esac

echo "crash gate: OK"
