#!/usr/bin/env bash
# Performance smoke gate: the batched IOCT decode and the snapshot
# save/load/merge paths must not regress.
#
#   ./scripts/check_perf.sh
#
# Builds the Release bench binary, runs a short pass over the gated
# benches (BM_IngestBinaryBatched + BM_Snapshot{Save,SaveDurable,Load,
# Merge} + BM_ServeIngest), and fails (exit 1) if any median
# throughput drops more than 20% below the checked-in floor
# (scripts/perf_floor.txt).
# BM_SnapshotSaveDurable covers the atomic temp+fsync+rename write
# path every artifact now goes through.
# BM_SnapshotMerge's floor is deliberately ≥10x the ingest floor: its
# bytes/sec is measured against the raw trace bytes the snapshots
# replace, so the gate enforces the "fleet aggregation beats
# re-ingesting" contract, not just absolute speed.
# BM_ServeIngest gates the live daemon's per-push cost (frame decode +
# incremental merge + epoch publication) so `iocov serve` ingest
# cannot silently degenerate relative to the batch path.  The
# floor itself is recorded conservatively (~0.75x a quiet-machine run)
# so scheduler noise does not trip the gate while a real regression
# still does.  Wired into scripts/bench_json.sh as a preflight so a
# regressed decoder cannot silently re-record BENCH_analyzer.json.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-release
cmake -B "$BUILD" -G Ninja -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" --target perf_analyzer -j >/dev/null

OUT=$(mktemp /tmp/iocov_check_perf.XXXXXX.json)
trap 'rm -f "$OUT"' EXIT

"$BUILD"/bench/perf_analyzer \
  --benchmark_filter='^BM_(IngestBinaryBatched|SnapshotSave|SnapshotSaveDurable|SnapshotLoad|SnapshotMerge|ServeIngest)$' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json >/dev/null

python3 - "$OUT" scripts/perf_floor.txt <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    run = json.load(f)

floors = {}
with open(sys.argv[2]) as f:
    for line in f:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, value = line.split()
        floors[name] = float(value)

medians = {
    b["name"]: b
    for b in run["benchmarks"]
    if b.get("aggregate_name") == "median"
}

failed = False
for key, floor in floors.items():
    bench, metric = key.rsplit("_bytes_per_second", 1)[0], "bytes_per_second"
    row = medians.get(bench + "_median")
    if row is None or metric not in row:
        print(f"check_perf: FAIL — no median {metric} for {bench} in run")
        failed = True
        continue
    got = float(row[metric])
    limit = 0.8 * floor
    verdict = "ok" if got >= limit else "REGRESSED"
    print(f"check_perf: {bench} {got / 1e6:.1f} MB/s "
          f"(floor {floor / 1e6:.0f}, limit {limit / 1e6:.0f}) {verdict}")
    if got < limit:
        failed = True

sys.exit(1 if failed else 0)
EOF
echo "check_perf: pass"
