#!/usr/bin/env bash
# UndefinedBehaviorSanitizer gate for the fault-handling surface.
#
#   ./scripts/check_ubsan.sh [BUILD_DIR]    # default build-ubsan
#
# Fault campaigns steer the kernel model down its rarest error paths,
# and the decoders (IOCT trace and IOCS snapshot alike) chew on
# deliberately corrupted bytes — both are where latent UB (signed
# overflow in varint math, bad shifts, invalid enum loads) would
# hide.  This configures a full
# IOCOV_SANITIZE=undefined tree (recovery disabled, so any report is a
# hard failure) and runs the fsck, fault, campaign, and decoder suites
# under it — plus the serve frame decoder (u32 length math on hostile
# socket bytes), the live-coverage merge path, and the strict CLI
# numeric parsers (overflow rejection is exactly where UB would hide).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build-ubsan}"

cmake -B "$BUILD" -G Ninja -DIOCOV_SANITIZE=undefined >/dev/null
cmake --build "$BUILD" -j --target \
  test_fsck test_fault test_campaign test_ingest_faults \
  test_binary_format test_text_format test_batch_decode \
  test_crash_replay test_crash_oracle test_state_diff \
  test_snapshot test_snapshot_merge test_host_io \
  test_serve test_cli_parse
ctest --test-dir "$BUILD" \
  -R 'Fsck|Fault|ScopedFault|Campaign|IngestFaults|Binary|TextFormat|BatchDecode|CrashReplay|CrashOracle|StateDiff|Snapshot|SnapshotMerge|HostIo|Serve|Protocol|LiveCoverage|ParseU|ParseF' \
  --output-on-failure -j "$(nproc)"
