#!/usr/bin/env bash
# End-to-end gate for the live coverage daemon (`iocov serve`,
# DESIGN.md §13) and the CLI-robustness sweep that shipped with it.
#
#   ./scripts/check_serve.sh
#   IOCOV_SERVE_STAGE=faults ./scripts/check_serve.sh   # errno sweep only
#
# Stages (IOCOV_SERVE_STAGE selects one; default "all"):
#
#   unit    the Serve/Protocol/LiveCoverage suites under the Release
#           (NDEBUG) tree — the dev-tree ctest run alone would let an
#           assert-only invariant vanish in the build users run;
#   e2e     N concurrent `iocov push` producers into one daemon, then
#           `iocov query report --save` must be byte-identical to
#           `iocov analyze SHARDS/ --save` over the same shards (the
#           live==batch contract), plus gaps/tcd/status/duplicate-push
#           smoke and a TCP-listener round trip;
#   resume  SIGKILL the daemon mid-ingest, restart with --resume from
#           its IOCK manifest, re-push everything (duplicates are
#           acknowledged and skipped), and require the same
#           byte-identical report — at-least-once delivery converges;
#   cli     the strict-flag sweep: junk/overflow/missing numeric
#           operands, --timestamp 0, --window 0 all exit 2 with a
#           diagnostic, and a stdout consumer that closes the pipe
#           early yields a structured exit 3, never SIGPIPE death;
#   faults  host::FaultHook socket-errno injection (accept/sock-read/
#           sock-write x ECONNRESET/EPIPE/EIO/...): each clause may
#           degrade individual connections but never the daemon, and
#           after the one-shot faults drain, re-pushing every shard
#           still converges to the byte-identical batch report.  This
#           stage is what scripts/check_chaos.sh invokes.
set -euo pipefail
cd "$(dirname "$0")/.."

STAGE="${IOCOV_SERVE_STAGE:-all}"

RELEASE=build-release
cmake -B "$RELEASE" -G Ninja -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$RELEASE" -j --target \
  iocov_cli trace_offline test_serve test_cli_parse >/dev/null

CLI="$RELEASE"/tools/iocov
OFFLINE="$RELEASE"/examples/trace_offline
TMP="$(mktemp -d)"
SRV=""
cleanup() {
  [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT
SOCK="$TMP/iocov.sock"

fail() { echo "check_serve: $*" >&2; exit 1; }

# ---- fixtures --------------------------------------------------------------
# One synthesized trace, transcoded to IOCT, copied into 8 shards with
# distinct names (the push shard name is the basename, and duplicate
# names are idempotently skipped).  The oracle is the batch analyzer
# over the same directory.
"$OFFLINE" "$TMP/trace.txt" >/dev/null
"$CLI" convert "$TMP/trace.txt" "$TMP/t.ioct" >/dev/null
mkdir "$TMP/shards"
for i in 0 1 2 3 4 5 6 7; do
  cp "$TMP/t.ioct" "$TMP/shards/t$i.ioct"
done
WANT="$TMP/want_report.txt"
GOT="$TMP/got_report.txt"
"$CLI" analyze "$TMP/shards" --save "$WANT" >/dev/null

wait_ready() {
  for _ in $(seq 1 200); do
    if "$CLI" query ping --socket "$SOCK" >/dev/null 2>&1; then
      return 0
    fi
    kill -0 "$SRV" 2>/dev/null || {
      cat "$TMP/serve.log" >&2
      fail "daemon exited before becoming ready"
    }
    sleep 0.05
  done
  cat "$TMP/serve.log" >&2
  fail "daemon never became ready"
}

start_daemon() {  # extra serve flags forwarded
  rm -f "$SOCK"
  "$CLI" serve --socket "$SOCK" "$@" >"$TMP/serve.log" 2>&1 &
  SRV=$!
  wait_ready
}

stop_daemon() {
  "$CLI" query stop --socket "$SOCK" >/dev/null
  wait "$SRV" || fail "daemon exited nonzero after graceful stop"
  SRV=""
}

expect_rc() {  # expect_rc WANT CMD...
  local want=$1 rc=0
  shift
  "$@" >/dev/null 2>&1 || rc=$?
  [ "$rc" -eq "$want" ] || fail "'$*' exited $rc, want $want"
}

# ---- stage: unit (Release/NDEBUG suites) -----------------------------------
if [ "$STAGE" = all ] || [ "$STAGE" = unit ]; then
  echo "serve: Serve/Protocol/LiveCoverage suites (Release, NDEBUG)"
  ctest --test-dir "$RELEASE" -R 'Serve|Protocol|LiveCoverage|ParseU|ParseF' \
    --output-on-failure -j "$(nproc)" >/dev/null ||
    ctest --test-dir "$RELEASE" \
      -R 'Serve|Protocol|LiveCoverage|ParseU|ParseF' --output-on-failure
fi

# ---- stage: e2e (concurrent producers == batch, bit-identical) -------------
if [ "$STAGE" = all ] || [ "$STAGE" = e2e ]; then
  echo "serve: 8 concurrent producers, live report == batch report"
  start_daemon
  pids=()
  for f in "$TMP"/shards/*.ioct; do
    "$CLI" push "$f" --socket "$SOCK" >/dev/null &
    pids+=($!)
  done
  for p in "${pids[@]}"; do
    wait "$p" || fail "concurrent push failed"
  done
  "$CLI" query report --save "$GOT" --socket "$SOCK" >/dev/null
  cmp "$GOT" "$WANT" || fail "live report differs from batch report"

  # Duplicate pushes are acknowledged and skipped, not re-counted.
  "$CLI" push "$TMP/shards/t0.ioct" --socket "$SOCK" |
    grep -q duplicate || fail "re-push of t0 not flagged duplicate"
  "$CLI" query report --save "$GOT" --socket "$SOCK" >/dev/null
  cmp "$GOT" "$WANT" || fail "duplicate push changed the report"

  # Query smoke: gaps/tcd answer, status counters reconcile.
  "$CLI" query gaps --socket "$SOCK" >/dev/null
  "$CLI" query tcd --arg open.flags --target 1000 --socket "$SOCK" \
    >/dev/null
  STATUS=$("$CLI" query status --socket "$SOCK")
  grep -q '^pushes_accepted 8$' <<<"$STATUS" ||
    fail "status: expected pushes_accepted 8; got: $STATUS"
  grep -q '^pushes_duplicate 1$' <<<"$STATUS" ||
    fail "status: expected pushes_duplicate 1"
  grep -q '^epoch 8$' <<<"$STATUS" || fail "status: expected epoch 8"
  grep -q '^torn_frames 0$' <<<"$STATUS" ||
    fail "status: unexpected torn frames"
  stop_daemon

  echo "serve: TCP listener round trip (ephemeral port)"
  start_daemon --tcp 0
  PORT=$(sed -n 's/^serving on tcp:127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "$TMP/serve.log")
  [ -n "$PORT" ] || fail "ephemeral TCP port not reported"
  "$CLI" push "$TMP/shards/t0.ioct" --tcp "$PORT" >/dev/null
  "$CLI" query status --tcp "$PORT" | grep -q '^pushes_accepted 1$' ||
    fail "TCP push not accepted"
  stop_daemon
fi

# ---- stage: resume (SIGKILL + IOCK manifest + re-push) ---------------------
if [ "$STAGE" = all ] || [ "$STAGE" = resume ]; then
  echo "serve: SIGKILL mid-ingest, --resume, re-push-all convergence"
  CK="$TMP/serve.iock"
  rm -f "$CK"
  start_daemon --checkpoint "$CK" --checkpoint-every 1
  for i in 0 1 2 3 4; do
    "$CLI" push "$TMP/shards/t$i.ioct" --socket "$SOCK" >/dev/null
  done
  kill -9 "$SRV"
  wait "$SRV" 2>/dev/null || true
  SRV=""
  [ -e "$CK" ] || fail "no IOCK manifest left behind by SIGKILL"

  start_daemon --checkpoint "$CK" --checkpoint-every 1 --resume
  grep -q '^resumed ' "$TMP/serve.log" ||
    fail "daemon did not report resuming from $CK"
  # At-least-once delivery: re-push everything; already-consumed
  # shards are duplicates, the rest are ingested, and the final report
  # must equal the uninterrupted batch byte-for-byte.
  for f in "$TMP"/shards/*.ioct; do
    "$CLI" push "$f" --socket "$SOCK" >/dev/null
  done
  "$CLI" query report --save "$GOT" --socket "$SOCK" >/dev/null
  cmp "$GOT" "$WANT" || fail "resumed report differs from batch report"
  stop_daemon
fi

# ---- stage: cli (strict numeric flags + EPIPE-as-exit-3) -------------------
if [ "$STAGE" = all ] || [ "$STAGE" = cli ]; then
  echo "serve: CLI strictness sweep (bad numerics exit 2, EPIPE exit 3)"
  expect_rc 2 "$CLI" analyze --threads x "$TMP/t.ioct"
  expect_rc 2 "$CLI" analyze --threads 1x "$TMP/t.ioct"
  expect_rc 2 "$CLI" analyze "$TMP/t.ioct" --max-errors 1.5
  expect_rc 2 "$CLI" analyze "$TMP/t.ioct" \
    --max-errors 18446744073709551616    # 2^64: overflow, not saturate
  expect_rc 2 "$CLI" analyze "$TMP/t.ioct" --threads  # missing operand
  expect_rc 2 "$CLI" merge --timestamp 0 -o "$TMP/x.iocs" "$TMP/shards"
  expect_rc 2 "$CLI" merge --timestamp -5 -o "$TMP/x.iocs" "$TMP/shards"
  expect_rc 2 "$CLI" trend --window 0 "$TMP/shards"
  expect_rc 2 "$CLI" trend --target nan "$TMP/shards"
  expect_rc 2 "$CLI" demo --scale banana
  expect_rc 2 "$CLI" serve --tcp 70000
  expect_rc 2 "$CLI" serve --tcp x
  expect_rc 2 "$CLI" query report                     # no endpoint
  expect_rc 2 "$CLI" push "$TMP/t.ioct"               # no endpoint

  # A consumer that closes the pipe early must yield the structured
  # exit 3 ("output truncated"), never a SIGPIPE death (141).  A
  # `cmd | head`-style reader is racy (a fast cmd can finish before
  # the reader exits), so build the condition deterministically: open
  # a FIFO read-write to keep it unblocked, grab a write-only fd,
  # close the only read end, and hand iocov the now-readerless pipe.
  mkfifo "$TMP/epipe.fifo"
  exec {r}<>"$TMP/epipe.fifo"
  exec {w}>"$TMP/epipe.fifo"
  exec {r}<&-
  rc=0
  "$CLI" analyze "$TMP/t.ioct" >&"$w" 2>/dev/null || rc=$?
  exec {w}>&-
  [ "$rc" -eq 3 ] || fail "analyze into closed pipe exited $rc, want 3"
  rc=0
  { "$CLI" analyze "$TMP/t.ioct" >&- ; } 2>/dev/null || rc=$?
  [ "$rc" -eq 3 ] || fail "analyze with closed stdout exited $rc, want 3"
fi

# ---- stage: faults (socket-errno injection sweep) --------------------------
if [ "$STAGE" = all ] || [ "$STAGE" = faults ]; then
  echo "serve: socket-errno self-fault sweep (daemon survives, converges)"
  CLAUSES=(
    "errno:accept:ECONNABORTED:1"
    "errno:sock-read:ECONNRESET:2"
    "errno:sock-read:EIO:3"
    "errno:sock-read:ETIMEDOUT:1"
    "errno:sock-write:EPIPE:2"
    "errno:sock-write:ECONNRESET:4"
  )
  for clause in "${CLAUSES[@]}"; do
    rm -f "$SOCK"
    IOCOV_SELF_FAULT="$clause" \
      "$CLI" serve --socket "$SOCK" >"$TMP/serve.log" 2>&1 &
    SRV=$!
    wait_ready
    # First pass: one connection per shard; the armed clause may fail
    # any of them (client sees a transport error) but must only ever
    # degrade that one connection.
    for f in "$TMP"/shards/*.ioct; do
      "$CLI" push "$f" --socket "$SOCK" >/dev/null 2>&1 || true
    done
    kill -0 "$SRV" 2>/dev/null || {
      cat "$TMP/serve.log" >&2
      fail "daemon died under $clause"
    }
    # Second pass: the one-shot clause has drained, so every push must
    # be acknowledged (accepted or duplicate) and the daemon's report
    # must converge to the batch bytes.
    for f in "$TMP"/shards/*.ioct; do
      "$CLI" push "$f" --socket "$SOCK" >/dev/null ||
        fail "post-fault push of $f failed under $clause"
    done
    "$CLI" query report --save "$GOT" --socket "$SOCK" >/dev/null
    cmp "$GOT" "$WANT" ||
      fail "report under $clause differs from batch report"
    stop_daemon
  done
fi

echo "serve gate: OK (stage: $STAGE)"
