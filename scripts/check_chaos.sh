#!/usr/bin/env bash
# Chaos gate for the host durability contract (DESIGN.md §12).
#
#   ./scripts/check_chaos.sh
#
# Eats our own dogfood: the same fault-injection discipline iocov
# applies to the file systems it measures is applied to iocov's own
# artifact writes, via host::FaultHook (`--self-fault` / the
# IOCOV_SELF_FAULT env).  Five stages:
#
#   1. the `chaos`-labelled unit suites (fork+SIGKILL kill loops over
#      save_snapshot_file, torn-write offsets, errno sweeps) under the
#      Release tree;
#   2. the same suites under a full ASan tree (a durability bug that
#      is also a heap bug should fail loudly here);
#   3. CLI-level chaos: >=208 randomized SIGKILL points (op-indexed and
#      torn-write-offset) into `iocov merge`, plus a full
#      ENOSPC/EIO/EINTR sweep over every host-I/O op, asserting the
#      durability oracle after every run — the output path holds the
#      prior complete artifact or a new complete artifact, never a
#      torn one;
#   4. resumable-ingest byte-identity: `iocov merge`/`iocov analyze`
#      killed mid-walk and resumed (--checkpoint/--resume) produce
#      byte-identical artifacts to an uninterrupted run, at --threads
#      1 and 4, and the manifest is removed on success;
#   5. the live daemon's socket surface: check_serve.sh's faults stage
#      injects accept/sock-read/sock-write errnos into a running
#      `iocov serve` — connections may degrade, the daemon must not,
#      and once the faults drain re-pushing converges to the
#      byte-identical batch report.
#
# Set IOCOV_SKIP_SANITIZERS=1 to skip stage 2 (quick local re-runs);
# IOCOV_CHAOS_KILLS overrides the randomized kill-point count.
set -euo pipefail
cd "$(dirname "$0")/.."

RELEASE=build-release
cmake -B "$RELEASE" -G Ninja -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$RELEASE" -j --target \
  test_host_chaos test_host_io test_checkpoint iocov_cli trace_offline \
  >/dev/null

echo "chaos: unit kill-loop + fault sweeps (Release)"
ctest --test-dir "$RELEASE" -L chaos --output-on-failure -j "$(nproc)"

if [ "${IOCOV_SKIP_SANITIZERS:-0}" != "1" ]; then
  echo "chaos: unit kill-loop + fault sweeps (ASan)"
  ASAN=build-asan
  cmake -B "$ASAN" -G Ninja -DIOCOV_SANITIZE=address >/dev/null
  cmake --build "$ASAN" -j --target \
    test_host_chaos test_host_io test_checkpoint >/dev/null
  ctest --test-dir "$ASAN" -L chaos --output-on-failure -j "$(nproc)"
fi

CLI="$RELEASE"/tools/iocov
OFFLINE="$RELEASE"/examples/trace_offline
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# ---- CLI fixtures ----------------------------------------------------------
# A small text trace, transcoded to IOCT, analyzed into 6 snapshot
# shards (each embeds its own wall-clock ingest.seconds, so the merge
# genuinely exercises the order-sensitive float sum), plus an IOCT
# directory for the analyze-resume stage.
"$OFFLINE" "$TMP/trace.txt" >/dev/null
"$CLI" convert "$TMP/trace.txt" "$TMP/trace.ioct" >/dev/null
mkdir "$TMP/shards" "$TMP/traces"
for i in 0 1 2 3 4 5; do
  "$CLI" analyze "$TMP/trace.ioct" --snapshot "$TMP/shards/s$i.iocs" \
    >/dev/null
done
for i in 0 1 2 3; do
  cp "$TMP/trace.ioct" "$TMP/traces/t$i.ioct"
done

WANT="$TMP/want.iocs"     # the new complete artifact
PRIOR="$TMP/prior.iocs"   # the prior complete artifact being replaced
OUT="$TMP/out.iocs"
"$CLI" merge --threads 1 -o "$WANT" "$TMP/shards" >/dev/null
"$CLI" merge --threads 1 -o "$PRIOR" "$TMP/shards/s0.iocs" >/dev/null
cmp -s "$WANT" "$PRIOR" && { echo "chaos: fixture degenerate"; exit 1; }

# The durability oracle.  $1 = context string.
oracle() {
  if cmp -s "$OUT" "$PRIOR" || cmp -s "$OUT" "$WANT"; then
    return 0
  fi
  # Neither generation byte-for-byte (e.g. a read-side fault dropped a
  # shard): still must be a *complete* decodable snapshot, never torn.
  if ! "$CLI" analyze --strict "$OUT" >/dev/null 2>&1; then
    echo "chaos: ORACLE VIOLATION ($1): $OUT is torn or missing" >&2
    exit 1
  fi
}

# Crash debris (orphaned temp files) is acceptable after SIGKILL;
# start each point clean so debris from one run cannot mask another.
clean_debris() { rm -f "$TMP"/.*.tmp.* 2>/dev/null || true; }

# Runs a self-faulted CLI command that is expected to die by SIGKILL.
# The two-statement subshell forces a real fork (bash would otherwise
# exec a lone command), so the shell that reaps the killed child — and
# would print "Killed" — has its stderr redirected away.
faulted() {
  ( "$@" >/dev/null 2>&1
    exit $? ) 2>/dev/null
}

# Probe the host-op space of one full merge run (stats clause = count
# every consulted op, fire nothing).
IOCOV_SELF_FAULT="stats:$TMP/stats.txt" \
  "$CLI" merge --threads 1 -o "$OUT" "$TMP/shards" >/dev/null
TOTAL=$(awk '$1 == "total" {print $2}' "$TMP/stats.txt")
NWRITES=$(awk '$1 == "write" {print $2}' "$TMP/stats.txt")
WBYTES=$(awk '$1 == "write_bytes" {print $2}' "$TMP/stats.txt")
[ "${TOTAL:-0}" -ge 7 ] || { echo "chaos: op probe failed"; exit 1; }

# ---- stage 3a: randomized SIGKILL points -----------------------------------
KILLS="${IOCOV_CHAOS_KILLS:-160}"
TORN=64
echo "chaos: $KILLS op-indexed + $TORN torn-write SIGKILL points" \
     "over $TOTAL host ops"
RANDOM=1337
for i in $(seq 1 "$KILLS"); do
  k=$(( (RANDOM % TOTAL) + 1 ))
  cp "$PRIOR" "$OUT"; clean_debris
  rc=0
  faulted "$CLI" merge --threads 1 --self-fault "kill:any:$k" \
    -o "$OUT" "$TMP/shards" || rc=$?
  [ "$rc" -eq 137 ] || {
    echo "chaos: kill:any:$k exited $rc, expected SIGKILL(137)" >&2
    exit 1
  }
  oracle "kill:any:$k"
done
for i in $(seq 1 "$TORN"); do
  w=$(( (RANDOM % NWRITES) + 1 ))
  off=$(( RANDOM % (WBYTES + 1) ))
  cp "$PRIOR" "$OUT"; clean_debris
  rc=0
  faulted "$CLI" merge --threads 1 --self-fault "kill:write:$w:$off" \
    -o "$OUT" "$TMP/shards" || rc=$?
  [ "$rc" -eq 137 ] || {
    echo "chaos: kill:write:$w:$off exited $rc, expected 137" >&2
    exit 1
  }
  oracle "kill:write:$w:$off"
  # A torn temp write never reaches the destination at all.
  cmp -s "$OUT" "$PRIOR" || {
    echo "chaos: kill:write:$w:$off mutated the destination" >&2
    exit 1
  }
done

# ---- stage 3b: full errno sweep over every op ------------------------------
echo "chaos: ENOSPC/EIO/EINTR sweep over all $TOTAL ops"
for err in ENOSPC EIO; do
  for k in $(seq 1 "$TOTAL"); do
    cp "$PRIOR" "$OUT"; clean_debris
    rc=0
    "$CLI" merge --threads 1 --self-fault "errno:any:$err:$k" \
      -o "$OUT" "$TMP/shards" >/dev/null 2>&1 || rc=$?
    # 0 = fault hit a tolerated read (shard diagnosed + skipped) or a
    # post-rename sync; 3 = structured I/O failure.  Anything else —
    # including a crash — is a bug.
    case "$rc" in 0|3) ;; *)
      echo "chaos: errno:any:$err:$k exited $rc" >&2; exit 1 ;;
    esac
    oracle "errno:any:$err:$k"
    if [ "$rc" -eq 0 ]; then
      "$CLI" analyze --strict "$OUT" >/dev/null 2>&1 || {
        echo "chaos: errno:any:$err:$k: exit 0 but torn output" >&2
        exit 1
      }
    fi
  done
done
for k in $(seq 1 "$TOTAL"); do
  cp "$PRIOR" "$OUT"; clean_debris
  "$CLI" merge --threads 1 --self-fault "errno:any:EINTR:$k" \
    -o "$OUT" "$TMP/shards" >/dev/null 2>&1 || {
    echo "chaos: errno:any:EINTR:$k was not retried to success" >&2
    exit 1
  }
  cmp -s "$OUT" "$WANT" || {
    echo "chaos: errno:any:EINTR:$k changed the output bytes" >&2
    exit 1
  }
done

# ---- stage 4: kill + resume byte-identity ----------------------------------
echo "chaos: merge/analyze --resume byte-identity after SIGKILL"
CK="$TMP/walk.iock"
IOCOV_SELF_FAULT="stats:$TMP/stats_ck.txt" \
  "$CLI" merge --threads 1 --checkpoint "$CK" --checkpoint-every 1 \
  -o "$OUT" "$TMP/shards" >/dev/null
TOTAL_CK=$(awk '$1 == "total" {print $2}' "$TMP/stats_ck.txt")
rm -f "$CK"

for threads in 1 4; do
  "$CLI" merge --threads "$threads" -o "$TMP/want_t.iocs" "$TMP/shards" \
    >/dev/null
  cmp "$TMP/want_t.iocs" "$WANT"   # thread-count invariance
  for frac in 4 2 1; do
    k=$(( TOTAL_CK * frac / 5 + 1 ))
    rm -f "$CK"; cp "$PRIOR" "$OUT"; clean_debris
    rc=0
    faulted "$CLI" merge --threads "$threads" --checkpoint "$CK" \
      --checkpoint-every 1 --resume --self-fault "kill:any:$k" \
      -o "$OUT" "$TMP/shards" || rc=$?
    [ "$rc" -eq 137 ] || {
      echo "chaos: resume fixture kill:any:$k exited $rc" >&2; exit 1
    }
    clean_debris
    "$CLI" merge --threads "$threads" --checkpoint "$CK" --resume \
      -o "$OUT" "$TMP/shards" >/dev/null
    cmp "$OUT" "$WANT" || {
      echo "chaos: resumed merge differs (threads=$threads k=$k)" >&2
      exit 1
    }
    [ ! -e "$CK" ] || {
      echo "chaos: manifest not removed after successful merge" >&2
      exit 1
    }
  done
done

# analyze DIR/ --resume: the oracle is the saved report (the .iocs
# snapshot embeds wall-clock seconds; the report does not).
"$CLI" analyze "$TMP/traces" --threads 1 --save "$TMP/want_report.txt" \
  >/dev/null
IOCOV_SELF_FAULT="stats:$TMP/stats_an.txt" \
  "$CLI" analyze "$TMP/traces" --threads 1 --checkpoint "$CK" \
  --checkpoint-every 1 --save "$TMP/r.txt" >/dev/null
TOTAL_AN=$(awk '$1 == "total" {print $2}' "$TMP/stats_an.txt")
rm -f "$CK"
for threads in 1 4; do
  k=$(( TOTAL_AN / 2 + 1 ))
  rm -f "$CK" "$TMP/r.txt"; clean_debris
  rc=0
  faulted "$CLI" analyze "$TMP/traces" --threads "$threads" \
    --checkpoint "$CK" --checkpoint-every 1 --resume \
    --self-fault "kill:any:$k" --save "$TMP/r.txt" || rc=$?
  [ "$rc" -eq 137 ] || {
    echo "chaos: analyze kill:any:$k exited $rc" >&2; exit 1
  }
  clean_debris
  "$CLI" analyze "$TMP/traces" --threads "$threads" --checkpoint "$CK" \
    --resume --save "$TMP/r.txt" >/dev/null
  cmp "$TMP/r.txt" "$TMP/want_report.txt" || {
    echo "chaos: resumed analyze report differs (threads=$threads)" >&2
    exit 1
  }
  [ ! -e "$CK" ] || {
    echo "chaos: manifest not removed after successful analyze" >&2
    exit 1
  }
done

# ---- stage 5: live daemon socket-errno sweep -------------------------------
echo "chaos: serve socket-errno sweep (check_serve.sh faults stage)"
IOCOV_SERVE_STAGE=faults ./scripts/check_serve.sh

echo "chaos gate: OK ($((KILLS + TORN)) kill points, full errno sweep)"
