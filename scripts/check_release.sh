#!/usr/bin/env bash
# Release (NDEBUG) gate: build and run the full test suite with asserts
# compiled out.
#
#   ./scripts/check_release.sh [BUILD_DIR]     # default build-release
#
# Several size contracts (core::tcd, core::tcd_linear, stats::rmsd) used
# to be plain asserts, i.e. out-of-bounds reads in any NDEBUG build.
# They throw now, and this gate keeps it that way: the regression tests
# exercise the throwing paths in a configuration where an assert would
# have been compiled to nothing.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build-release}"

cmake -B "$BUILD" -G Ninja -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"
