#!/usr/bin/env bash
# AddressSanitizer gate for the IOCT binary decoder.
#
#   ./scripts/check_asan.sh [BUILD_DIR]     # default build-asan
#
# The decoder reads varints and string-table views straight out of an
# mmap'd file, so any bounds slip is an out-of-mapping read — exactly
# what ASan catches and plain ctest may not.  The IOCS snapshot decoder
# shares that mmap'd-varint surface (and chews on deliberately torn and
# bit-flipped snapshots in its tests), so its suites run here too, as
# do the IOCK checkpoint-manifest decoder and the host I/O layer
# (exhaustive bit-flip/truncation loops + fault-injected write paths).
# The serve daemon's frame decoder parses length-prefixed frames from
# untrusted socket bytes (torn, oversized, byte-at-a-time), and the
# strict CLI numeric parsers chew on junk — both run here too.
# This configures a full IOCOV_SANITIZE=address tree and runs the
# decoder-facing suites (binary format, binary pipeline, text format,
# snapshot) under it.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build-asan}"

cmake -B "$BUILD" -G Ninja -DIOCOV_SANITIZE=address >/dev/null
cmake --build "$BUILD" -j --target \
  test_binary_format test_binary_pipeline test_text_format \
  test_batch_decode test_dir_ingest \
  test_crash_replay test_crash_oracle test_crashtest \
  test_snapshot test_snapshot_merge test_host_io test_checkpoint \
  test_serve test_cli_parse
ctest --test-dir "$BUILD" \
  -R 'Binary|TextFormat|MappedFile|BatchDecode|DirIngest|CrashReplay|CrashOracle|CrashTest|Snapshot|SnapshotMerge|HostIo|Checkpoint|IncrementalMerge|Serve|Protocol|LiveCoverage|ParseU|ParseF' \
  --output-on-failure -j "$(nproc)"
