// Table 1: percentage of opens using 1..6 flags together, for all opens
// and for opens including O_RDONLY.
//
// Paper reference rows:
//   CrashMonkey all:      9.3  2.8 22.1 65.4 0.5 0
//   CrashMonkey O_RDONLY: 9.3  2.8 21.9 65.6 0.5 0
//   xfstests all:         6.1 28.2 18.2 46.8 0.5 0.4
//   xfstests O_RDONLY:    6.0 30.8 10.5 51.9 0.5 0.3
#include <cstdio>

#include "common.hpp"
#include "report/table.hpp"

namespace {

std::vector<std::string> percent_row(
    const std::string& name, const iocov::stats::PartitionHistogram& hist) {
    const auto total = static_cast<double>(hist.total());
    std::vector<std::string> row{name};
    for (const char* k : {"1", "2", "3", "4", "5", "6"}) {
        const double pct =
            total ? 100.0 * static_cast<double>(hist.count(k)) / total : 0.0;
        row.push_back(iocov::report::fixed(pct, 1));
    }
    return row;
}

}  // namespace

int main() {
    using namespace iocov;
    const double scale = bench::env_scale();
    bench::print_banner("Table 1",
                        "open flag-combination cardinality (percent)",
                        scale);

    const auto runs = bench::run_both(scale);
    const auto* cm = runs.crashmonkey.find_input("open", "flags");
    const auto* xfs = runs.xfstests.find_input("open", "flags");

    std::vector<std::vector<std::string>> rows = {
        percent_row("CrashMonkey: all flags", cm->combo_cardinality),
        percent_row("CrashMonkey: O_RDONLY", cm->combo_cardinality_rdonly),
        percent_row("xfstests: all flags", xfs->combo_cardinality),
        percent_row("xfstests: O_RDONLY", xfs->combo_cardinality_rdonly),
    };
    std::printf("%s\n",
                report::render_table(
                    {"Test Suite / % for #flags", "1", "2", "3", "4", "5",
                     "6"},
                    rows)
                    .c_str());

    std::printf("paper: CM all    9.3  2.8 22.1 65.4 0.5 0.0\n");
    std::printf("paper: CM RDONLY 9.3  2.8 21.9 65.6 0.5 0.0\n");
    std::printf("paper: xfs all   6.1 28.2 18.2 46.8 0.5 0.4\n");
    std::printf("paper: xfs RDONLY 6.0 30.8 10.5 51.9 0.5 0.3\n");

    // The paper's observations: both suites max out at 6 flags; 4-flag
    // combos dominate; CrashMonkey's runner-up is 3 flags, xfstests' is
    // 2 flags.
    auto second_most = [](const stats::PartitionHistogram& h) {
        std::string best1, best2;
        std::uint64_t c1 = 0, c2 = 0;
        for (const auto& row : h.rows()) {
            if (row.count > c1) {
                best2 = best1; c2 = c1;
                best1 = row.label; c1 = row.count;
            } else if (row.count > c2) {
                best2 = row.label; c2 = row.count;
            }
        }
        return best2;
    };
    std::printf("\nmost common combo size: CM=%s xfs=%s (paper: 4 / 4)\n",
                cm->combo_cardinality.max_row()->label.c_str(),
                xfs->combo_cardinality.max_row()->label.c_str());
    std::printf("second most common:     CM=%s xfs=%s (paper: 3 / 2)\n",
                second_most(cm->combo_cardinality).c_str(),
                second_most(xfs->combo_cardinality).c_str());
    std::printf("7+ flag combinations:   CM=%llu xfs=%llu (paper: none)\n",
                static_cast<unsigned long long>(
                    cm->combo_cardinality.count("7+")),
                static_cast<unsigned long long>(
                    xfs->combo_cardinality.count("7+")));
    return 0;
}
