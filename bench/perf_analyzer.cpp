// Performance benchmarks (google-benchmark): the paper's "low-overhead
// tracing" claim and the cost of each pipeline stage.
//
//   * syscall dispatch with tracing off vs on (tracing overhead)
//   * trace filter throughput (regex + fd tracking)
//   * analyzer throughput (variant merge + partitioning)
//   * ingest throughput: text parse vs IOCT binary decode, and the full
//     pipeline from both formats (serial, sharded, mmap vs read copy)
//   * text round-trip (serialize + parse)
//   * TCD computation
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "abi/seek.hpp"

#include "core/iocov.hpp"
#include "core/live.hpp"
#include "core/snapshot.hpp"
#include "core/tcd.hpp"
#include "serve/protocol.hpp"
#include "vfs/file_data.hpp"
#include "syscall/kernel.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "trace/binary_format.hpp"
#include "trace/text_format.hpp"
#include "vfs/filesystem.hpp"

namespace {

using namespace iocov;

/// A canned workload trace shared by the pipeline benches.
const std::vector<trace::TraceEvent>& canned_trace() {
    static const std::vector<trace::TraceEvent> kTrace = [] {
        vfs::FileSystem fs(testers::recommended_fs_config());
        auto fx = testers::prepare_environment(fs, "/mnt/test");
        trace::TraceBuffer buffer;
        syscall::Kernel kernel(fs, &buffer);
        testers::run_crashmonkey(kernel, fx, 1.0, 42);
        return buffer.events();
    }();
    return kTrace;
}

void BM_SyscallNoTracing(benchmark::State& state) {
    vfs::FileSystem fs(testers::recommended_fs_config());
    auto fx = testers::prepare_environment(fs, "/mnt/test");
    syscall::Kernel kernel(fs, nullptr);
    auto proc = kernel.make_process(1, vfs::Credentials::user(1000, 1000));
    const std::string path = fx.scratch + "/bench";
    for (auto _ : state) {
        const auto fd = proc.sys_open(path.c_str(),
                                      abi::O_CREAT | abi::O_WRONLY, 0644);
        proc.sys_write(static_cast<int>(fd),
                       syscall::WriteSrc::pattern(4096, std::byte{7}));
        proc.sys_close(static_cast<int>(fd));
    }
    state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_SyscallNoTracing);

void BM_SyscallWithTracing(benchmark::State& state) {
    vfs::FileSystem fs(testers::recommended_fs_config());
    auto fx = testers::prepare_environment(fs, "/mnt/test");
    trace::NullSink sink;  // emit cost without buffer growth
    syscall::Kernel kernel(fs, &sink);
    auto proc = kernel.make_process(1, vfs::Credentials::user(1000, 1000));
    const std::string path = fx.scratch + "/bench";
    for (auto _ : state) {
        const auto fd = proc.sys_open(path.c_str(),
                                      abi::O_CREAT | abi::O_WRONLY, 0644);
        proc.sys_write(static_cast<int>(fd),
                       syscall::WriteSrc::pattern(4096, std::byte{7}));
        proc.sys_close(static_cast<int>(fd));
    }
    state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_SyscallWithTracing);

void BM_FilterThroughput(benchmark::State& state) {
    const auto& events = canned_trace();
    for (auto _ : state) {
        trace::TraceFilter filter(
            trace::FilterConfig::mount_point("/mnt/test"));
        std::size_t kept = 0;
        for (const auto& ev : events)
            if (filter.admit(ev)) ++kept;
        benchmark::DoNotOptimize(kept);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_FilterThroughput);

void BM_FilterThroughputPrefix(benchmark::State& state) {
    const auto& events = canned_trace();
    for (auto _ : state) {
        trace::TraceFilter filter(
            trace::FilterConfig::mount_point_prefix("/mnt/test"));
        std::size_t kept = 0;
        for (const auto& ev : events)
            if (filter.admit(ev)) ++kept;
        benchmark::DoNotOptimize(kept);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_FilterThroughputPrefix);

void BM_AnalyzerThroughput(benchmark::State& state) {
    const auto& events = canned_trace();
    for (auto _ : state) {
        core::Analyzer analyzer;
        analyzer.consume_all(events);
        benchmark::DoNotOptimize(analyzer.report().events_tracked);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_AnalyzerThroughput);

/// A multi-pid trace for the ingest benches (the built-in simulators
/// only use two pids, which would starve most shards), captured once
/// through a TeeSink as both text and IOCT binary so the text-vs-binary
/// comparisons measure the exact same event stream.
struct CannedTraces {
    std::string text;
    std::string binary;
    std::int64_t events = 0;
};

const CannedTraces& canned_twin_traces() {
    static const CannedTraces kTraces = [] {
        vfs::FileSystem fs(testers::recommended_fs_config());
        auto fx = testers::prepare_environment(fs, "/mnt/test");
        std::ostringstream text_os, binary_os;
        trace::TextSink text_sink(text_os);
        {
            trace::BinarySink binary_sink(binary_os);
            trace::TeeSink tee(text_sink, binary_sink);
            syscall::Kernel kernel(fs, &tee);
            std::vector<syscall::Process> procs;
            for (const std::uint32_t pid : {11u, 12u, 13u, 14u, 15u, 16u})
                procs.push_back(kernel.make_process(
                    pid, vfs::Credentials::user(1000, 1000)));
            for (std::size_t round = 0; round < 1500; ++round) {
                for (std::size_t p = 0; p < procs.size(); ++p) {
                    auto& proc = procs[p];
                    const auto salt = round * 31 + p * 7;
                    const std::string path = fx.scratch + "/b" +
                                             std::to_string(p) + "_" +
                                             std::to_string(round % 13);
                    const auto fd = static_cast<int>(proc.sys_open(
                        path.c_str(),
                        salt % 2
                            ? abi::O_RDWR | abi::O_CREAT
                            : abi::O_WRONLY | abi::O_CREAT | abi::O_APPEND,
                        0644));
                    proc.sys_write(fd, syscall::WriteSrc::pattern(
                                           std::uint64_t{1} << (salt % 14),
                                           std::byte{0x5a}));
                    proc.sys_lseek(fd, 0, abi::SEEK_SET_);
                    proc.sys_read(
                        fd, syscall::ReadDst::discard(1u << (salt % 10)));
                    proc.sys_close(fd);
                }
            }
        }  // BinarySink flushes + writes the footer
        CannedTraces traces;
        traces.text = text_os.str();
        traces.binary = binary_os.str();
        traces.events = static_cast<std::int64_t>(
            std::count(traces.text.begin(), traces.text.end(), '\n'));
        return traces;
    }();
    return kTraces;
}

const std::string& canned_text_trace() { return canned_twin_traces().text; }

std::int64_t canned_text_lines() { return canned_twin_traces().events; }

/// Full serial pipeline: parse + filter + analyze from text.
void BM_ConsumeTextSerial(benchmark::State& state) {
    const auto& text = canned_text_trace();
    for (auto _ : state) {
        core::IOCov iocov(trace::FilterConfig::mount_point("/mnt/test"));
        std::istringstream in(text);
        iocov.consume_text(in);
        benchmark::DoNotOptimize(iocov.report().events_tracked);
    }
    state.SetItemsProcessed(state.iterations() * canned_text_lines());
}
BENCHMARK(BM_ConsumeTextSerial);

/// Same pipeline through the sharded path; Arg = worker threads.
void BM_ConsumeTextParallel(benchmark::State& state) {
    const auto& text = canned_text_trace();
    const auto threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        core::IOCov iocov(trace::FilterConfig::mount_point("/mnt/test"));
        std::istringstream in(text);
        iocov.consume_text_parallel(in, threads);
        benchmark::DoNotOptimize(iocov.report().events_tracked);
    }
    state.SetItemsProcessed(state.iterations() * canned_text_lines());
}
BENCHMARK(BM_ConsumeTextParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- ingest: trace bytes -> events, text vs IOCT binary ---------------------

/// Text ingest, parse only (the stage IOCT removes): one line-parse per
/// event, materializing every string.
void BM_IngestTextSerial(benchmark::State& state) {
    const auto& text = canned_text_trace();
    for (auto _ : state) {
        const auto events = trace::parse_chunk(text);
        benchmark::DoNotOptimize(events.size());
    }
    state.SetItemsProcessed(state.iterations() * canned_text_lines());
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_IngestTextSerial);

/// Binary ingest: structural scan + zero-copy decode into one reused
/// scratch event (the analyzer-facing hot path — no per-event
/// materialization).
void BM_IngestBinarySerial(benchmark::State& state) {
    const auto& binary = canned_twin_traces().binary;
    for (auto _ : state) {
        const auto scan = trace::scan_ioct(binary);
        trace::TraceEvent scratch;
        std::size_t decoded = 0;
        for (const auto& ref : scan.events)
            if (trace::decode_event(
                    std::string_view(binary).substr(ref.offset, ref.length),
                    scan.strings, scratch))
                ++decoded;
        benchmark::DoNotOptimize(decoded);
    }
    state.SetItemsProcessed(state.iterations() * canned_text_lines());
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(binary.size()));
}
BENCHMARK(BM_IngestBinarySerial);

/// Binary ingest materializing owned TraceEvents (apples-to-apples with
/// BM_IngestTextSerial, which also builds a vector).
void BM_IngestBinaryMaterialized(benchmark::State& state) {
    const auto& binary = canned_twin_traces().binary;
    for (auto _ : state) {
        const auto events = trace::decode_trace(binary);
        benchmark::DoNotOptimize(events.size());
    }
    state.SetItemsProcessed(state.iterations() * canned_text_lines());
}
BENCHMARK(BM_IngestBinaryMaterialized);

/// Single-thread streaming-read bandwidth of this machine (64-bit
/// loads over a 32 MiB buffer), measured once, best of 5 passes.  The
/// decode roofline: no decoder that reads every trace byte can beat it.
double measured_memory_bandwidth() {
    static const double kBandwidth = [] {
        constexpr std::size_t kWords = (32u << 20) / sizeof(std::uint64_t);
        std::vector<std::uint64_t> buf(kWords, 0x0123456789abcdefULL);
        double best = 0;
        for (int pass = 0; pass < 5; ++pass) {
            const auto t0 = std::chrono::steady_clock::now();
            std::uint64_t sum = 0;
            for (const std::uint64_t w : buf) sum += w;
            benchmark::DoNotOptimize(sum);
            const double secs =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            if (secs > 0)
                best = std::max(
                    best, static_cast<double>(kWords * sizeof(std::uint64_t)) /
                              secs);
        }
        return best > 0 ? best : 1.0;
    }();
    return kBandwidth;
}

/// The roofline baseline itself, recorded alongside the decode benches
/// so BENCH_analyzer.json carries the machine's memory ceiling.
void BM_MemoryBandwidth(benchmark::State& state) {
    constexpr std::size_t kWords = (32u << 20) / sizeof(std::uint64_t);
    std::vector<std::uint64_t> buf(kWords, 0x0123456789abcdefULL);
    for (auto _ : state) {
        std::uint64_t sum = 0;
        for (const std::uint64_t w : buf) sum += w;
        benchmark::DoNotOptimize(sum);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kWords * sizeof(std::uint64_t)));
}
BENCHMARK(BM_MemoryBandwidth);

/// Batched binary ingest: structural scan + decode_batch in 512-row
/// chunks — the hardware-bound hot path (SWAR/BMI2 varints, SoA rows,
/// strings stay table ids).  `roofline_fraction` reports decode
/// bytes/sec as a fraction of measured_memory_bandwidth().
void BM_IngestBinaryBatched(benchmark::State& state) {
    const auto& binary = canned_twin_traces().binary;
    constexpr std::size_t kChunk = 512;
    trace::EventBatch batch;
    for (auto _ : state) {
        const auto scan = trace::scan_ioct(binary);
        std::size_t decoded = 0;
        for (std::size_t i = 0; i < scan.events.size(); i += kChunk) {
            const std::size_t n =
                std::min(kChunk, scan.events.size() - i);
            batch.clear();
            decoded += trace::decode_batch(binary, scan.strings,
                                           scan.events.data() + i, n, batch);
        }
        benchmark::DoNotOptimize(decoded);
    }
    state.SetItemsProcessed(state.iterations() * canned_text_lines());
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(binary.size()));
    state.counters["roofline_fraction"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(binary.size()) / measured_memory_bandwidth(),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IngestBinaryBatched);

/// Batched ingest + EventScratch materialization: what the analyzer
/// pipeline actually pays per event (apples-to-apples with
/// BM_IngestBinarySerial's decode_event-per-record loop).
void BM_IngestBinaryBatchedMaterialized(benchmark::State& state) {
    const auto& binary = canned_twin_traces().binary;
    constexpr std::size_t kChunk = 512;
    trace::EventBatch batch;
    trace::EventScratch scratch;
    for (auto _ : state) {
        const auto scan = trace::scan_ioct(binary);
        std::size_t decoded = 0;
        for (std::size_t i = 0; i < scan.events.size(); i += kChunk) {
            const std::size_t n =
                std::min(kChunk, scan.events.size() - i);
            batch.clear();
            const auto rows = trace::decode_batch(
                binary, scan.strings, scan.events.data() + i, n, batch);
            for (std::size_t r = 0; r < rows; ++r) {
                const auto& ev =
                    scratch.materialize(batch, r, scan.strings);
                benchmark::DoNotOptimize(ev.seq);
            }
            decoded += rows;
        }
        benchmark::DoNotOptimize(decoded);
    }
    state.SetItemsProcessed(state.iterations() * canned_text_lines());
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(binary.size()));
    state.counters["roofline_fraction"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(binary.size()) / measured_memory_bandwidth(),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IngestBinaryBatchedMaterialized);

// --- full pipeline from binary: decode + filter + analyze -------------------

void BM_ConsumeBinarySerial(benchmark::State& state) {
    const auto& binary = canned_twin_traces().binary;
    for (auto _ : state) {
        core::IOCov iocov(trace::FilterConfig::mount_point("/mnt/test"));
        iocov.consume_binary(binary);
        benchmark::DoNotOptimize(iocov.report().events_tracked);
    }
    state.SetItemsProcessed(state.iterations() * canned_text_lines());
}
BENCHMARK(BM_ConsumeBinarySerial);

void BM_ConsumeBinaryParallel(benchmark::State& state) {
    const auto& binary = canned_twin_traces().binary;
    const auto threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        core::IOCov iocov(trace::FilterConfig::mount_point("/mnt/test"));
        iocov.consume_binary_parallel(binary, threads);
        benchmark::DoNotOptimize(iocov.report().events_tracked);
    }
    state.SetItemsProcessed(state.iterations() * canned_text_lines());
}
BENCHMARK(BM_ConsumeBinaryParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- file-backed ingestion: mmap vs read() copy -----------------------------

const std::string& canned_binary_file() {
    static const std::string kPath = [] {
        const auto path = std::filesystem::temp_directory_path() /
                          "iocov_bench_trace.ioct";
        std::ofstream out(path, std::ios::binary);
        const auto& binary = canned_twin_traces().binary;
        out.write(binary.data(),
                  static_cast<std::streamsize>(binary.size()));
        return path.string();
    }();
    return kPath;
}

void BM_ConsumeBinaryFileMmap(benchmark::State& state) {
    const auto& path = canned_binary_file();
    for (auto _ : state) {
        auto mapped = trace::MappedFile::open(
            path, trace::MappedFile::Mode::Auto);
        core::IOCov iocov(trace::FilterConfig::mount_point("/mnt/test"));
        iocov.consume_binary(mapped->data());
        benchmark::DoNotOptimize(iocov.report().events_tracked);
    }
    state.SetItemsProcessed(state.iterations() * canned_text_lines());
}
BENCHMARK(BM_ConsumeBinaryFileMmap);

void BM_ConsumeBinaryFileReadCopy(benchmark::State& state) {
    const auto& path = canned_binary_file();
    for (auto _ : state) {
        auto copied = trace::MappedFile::open(
            path, trace::MappedFile::Mode::ReadCopy);
        core::IOCov iocov(trace::FilterConfig::mount_point("/mnt/test"));
        iocov.consume_binary(copied->data());
        benchmark::DoNotOptimize(iocov.report().events_tracked);
    }
    state.SetItemsProcessed(state.iterations() * canned_text_lines());
}
BENCHMARK(BM_ConsumeBinaryFileReadCopy);

// --- fleet snapshots: save / load / merge vs re-ingest ----------------------

/// Eight snapshots, each the analyzer state of one full canned-binary
/// ingestion — so merging them aggregates exactly the coverage that
/// re-ingesting eight raw trace files would, which is the comparison
/// the snapshot format exists to win.
struct CannedFleet {
    std::vector<core::IOCovSnapshot> snapshots;
    std::vector<std::string> encoded;
};

const CannedFleet& canned_fleet() {
    static const CannedFleet kFleet = [] {
        CannedFleet fleet;
        for (int i = 0; i < 8; ++i) {
            core::IOCov iocov(
                trace::FilterConfig::mount_point("/mnt/test"));
            iocov.consume_binary(canned_twin_traces().binary);
            auto snap = iocov.snapshot();
            snap.label = "bench";
            snap.timestamp = static_cast<std::uint64_t>(1000 + i);
            fleet.encoded.push_back(core::encode_snapshot(snap));
            fleet.snapshots.push_back(std::move(snap));
        }
        return fleet;
    }();
    return kFleet;
}

/// Snapshot serialization (interning + varint packing).
void BM_SnapshotSave(benchmark::State& state) {
    const auto& snap = canned_fleet().snapshots.front();
    std::int64_t bytes = 0;
    for (auto _ : state) {
        const auto encoded = core::encode_snapshot(snap);
        bytes = static_cast<std::int64_t>(encoded.size());
        benchmark::DoNotOptimize(encoded.size());
    }
    state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_SnapshotSave);

/// End-to-end durable artifact replace: encode + temp file + full
/// write + fsync(file) + rename + fsync(dir).  Dominated by the two
/// fsyncs, so the floor guards against the atomic-write path ever
/// regressing into something slower than the storage is.
void BM_SnapshotSaveDurable(benchmark::State& state) {
    const auto& snap = canned_fleet().snapshots.front();
    const auto dir = std::filesystem::temp_directory_path() /
                     ("iocov_bench_durable_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    const std::string path = (dir / "bench.iocs").string();
    std::int64_t bytes = 0;
    for (auto _ : state) {
        const bool ok = core::save_snapshot_file(path, snap);
        benchmark::DoNotOptimize(ok);
    }
    bytes = static_cast<std::int64_t>(std::filesystem::file_size(path));
    state.SetBytesProcessed(state.iterations() * bytes);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}
BENCHMARK(BM_SnapshotSaveDurable);

/// Snapshot decode (SWAR varint path + checksum + histogram rebuild).
void BM_SnapshotLoad(benchmark::State& state) {
    const auto& encoded = canned_fleet().encoded.front();
    for (auto _ : state) {
        const auto snap = core::decode_snapshot(encoded);
        benchmark::DoNotOptimize(snap->report.events_seen);
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(encoded.size()));
}
BENCHMARK(BM_SnapshotLoad);

/// The fleet-aggregation headline: decode 8 snapshots + pairwise tree
/// merge, versus re-ingesting the 8 equivalent raw IOCT traces.
/// bytes/sec is reported against the RAW trace bytes the snapshots
/// stand in for, so the number is directly comparable to
/// BM_IngestBinaryBatched — the ≥10x floor in scripts/perf_floor.txt
/// encodes the "aggregate without re-ingesting" claim.
void BM_SnapshotMerge(benchmark::State& state) {
    const auto& fleet = canned_fleet();
    for (auto _ : state) {
        std::vector<core::NamedSnapshot> shards;
        shards.reserve(fleet.encoded.size());
        for (std::size_t i = 0; i < fleet.encoded.size(); ++i)
            shards.push_back({"s" + std::to_string(i),
                              *core::decode_snapshot(fleet.encoded[i])});
        const auto merged = core::merge_snapshots(std::move(shards), 1);
        benchmark::DoNotOptimize(merged.report.events_seen);
    }
    const auto raw_equiv = static_cast<std::int64_t>(
        canned_twin_traces().binary.size() * canned_fleet().encoded.size());
    state.SetItemsProcessed(
        state.iterations() *
        canned_text_lines() *
        static_cast<std::int64_t>(canned_fleet().encoded.size()));
    state.SetBytesProcessed(state.iterations() * raw_equiv);
}
BENCHMARK(BM_SnapshotMerge);

/// Live daemon ingest: one PUSH frame decoded + the shard analyzed
/// through LiveCoverage (fresh per-shard analyzer, merge, epoch
/// publication) — the serve event loop's per-push work minus the
/// socket itself.  bytes/sec is against the raw IOCT shard bytes, so
/// the floor in scripts/perf_floor.txt keeps live ingest within a
/// constant factor of the batch path (BM_IngestBinaryBatched).
void BM_ServeIngest(benchmark::State& state) {
    const auto& binary = canned_twin_traces().binary;
    core::LiveCoverage live;
    std::uint64_t n = 0;
    for (auto _ : state) {
        const auto wire =
            serve::encode_push("bench-" + std::to_string(n++), binary);
        serve::FrameDecoder decoder;
        decoder.feed(wire);
        serve::Frame frame;
        if (decoder.next(frame) != serve::FrameDecoder::Status::Frame)
            state.SkipWithError("frame did not round-trip");
        std::string name;
        std::string_view shard;
        if (!serve::decode_push(frame.body, name, shard))
            state.SkipWithError("push body did not decode");
        const auto r = live.push(name, shard);
        benchmark::DoNotOptimize(r.epoch);
    }
    state.SetItemsProcessed(state.iterations() * canned_text_lines());
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(binary.size()));
}
BENCHMARK(BM_ServeIngest);

void BM_BinaryEncode(benchmark::State& state) {
    const auto& events = canned_trace();
    for (auto _ : state) {
        const auto bytes = trace::encode_trace(events);
        benchmark::DoNotOptimize(bytes.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_BinaryEncode);

void BM_TextRoundTrip(benchmark::State& state) {
    const auto& events = canned_trace();
    for (auto _ : state) {
        std::size_t parsed = 0;
        for (const auto& ev : events) {
            const auto line = trace::format_event(ev);
            if (trace::parse_event(line)) ++parsed;
        }
        benchmark::DoNotOptimize(parsed);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_TextRoundTrip);

void BM_TcdSweep(benchmark::State& state) {
    core::Analyzer analyzer;
    analyzer.consume_all(canned_trace());
    const auto& hist =
        analyzer.report().find_input("open", "flags")->hist;
    for (auto _ : state) {
        double acc = 0;
        for (double t = 1; t <= 1e6; t *= 10)
            acc += core::tcd_uniform(hist, t);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_TcdSweep);

void BM_ExtentMapSmallWrites(benchmark::State& state) {
    // Many small materialized writes at random offsets: the extent map's
    // punch/insert path.
    std::vector<std::byte> chunk(256, std::byte{7});
    for (auto _ : state) {
        vfs::FileData fd;
        std::uint64_t off = 0;
        for (int i = 0; i < 1000; ++i) {
            fd.write(off % (1 << 20), chunk);
            off = off * 2862933555777941757ULL + 3037000493ULL;
        }
        benchmark::DoNotOptimize(fd.allocated_bytes());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ExtentMapSmallWrites);

void BM_ExtentMapGiantPatternWrite(benchmark::State& state) {
    // The Fig. 3 case: a 258 MiB write must be O(1), not O(size).
    for (auto _ : state) {
        vfs::FileData fd;
        fd.write_pattern(0, 258ULL << 20, std::byte{0xab});
        benchmark::DoNotOptimize(fd.size());
    }
}
BENCHMARK(BM_ExtentMapGiantPatternWrite);

void BM_ExtentMapSparseRead(benchmark::State& state) {
    vfs::FileData fd;
    for (std::uint64_t i = 0; i < 256; ++i)
        fd.write_pattern(i * 8192, 4096, std::byte{1});  // data/hole comb
    std::vector<std::byte> buf(64 * 1024);
    for (auto _ : state) {
        std::uint64_t total = 0;
        for (std::uint64_t off = 0; off < fd.size(); off += buf.size())
            total += fd.read(off, buf);
        benchmark::DoNotOptimize(total);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(fd.size()));
}
BENCHMARK(BM_ExtentMapSparseRead);

}  // namespace

// BENCHMARK_MAIN(), plus provenance context: the Debian libbenchmark
// package compiles its own "library_build_type: debug" into every JSON
// it emits regardless of how *this* binary was built, so record the
// bench binary's actual build type (and the decode ISA the batched
// benches dispatched to) under our own keys.  scripts/bench_json.sh
// refuses to publish a run whose iocov_build_type is not "release".
int main(int argc, char** argv) {
#if defined(NDEBUG) && defined(__OPTIMIZE__)
    benchmark::AddCustomContext("iocov_build_type", "release");
#else
    benchmark::AddCustomContext("iocov_build_type", "debug");
#endif
    benchmark::AddCustomContext(
        "iocov_decode_isa",
        iocov::trace::decode_isa_name(iocov::trace::active_decode_isa()));
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
