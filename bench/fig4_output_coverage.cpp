// Figure 4: output coverage of open (success + 27 documented error
// codes) for CrashMonkey and xfstests.
//
// Paper reference points: xfstests covers more error codes than
// CrashMonkey for every code except ENOTDIR; many codes stay untested
// by both.
#include <cstdio>

#include "abi/errno.hpp"
#include "common.hpp"
#include "report/table.hpp"

int main() {
    using namespace iocov;
    const double scale = bench::env_scale();
    bench::print_banner("Figure 4",
                        "output coverage of open (success + error codes)",
                        scale);

    const auto runs = bench::run_both(scale);
    const auto* cm = runs.crashmonkey.find_output("open");
    const auto* xfs = runs.xfstests.find_output("open");

    std::printf("%s\n",
                report::render_comparison("CrashMonkey", cm->hist,
                                          "xfstests", xfs->hist)
                    .c_str());

    bool xfs_wins_except_enotdir = true;
    for (const auto& row : xfs->hist.rows()) {
        if (row.label == "OK" || row.label == "ENOTDIR") continue;
        if (row.count < cm->hist.count(row.label))
            xfs_wins_except_enotdir = false;
    }
    const bool enotdir_cm_ahead =
        cm->hist.count("ENOTDIR") > xfs->hist.count("ENOTDIR");
    std::printf("xfstests covers >= CrashMonkey on every error code except "
                "ENOTDIR: %s\n",
                (xfs_wins_except_enotdir && enotdir_cm_ahead)
                    ? "yes (matches paper)"
                    : "NO");
    std::printf("error codes untested by both: ");
    std::size_t untested_both = 0;
    for (abi::Err e : abi::open_manpage_errors()) {
        const auto name = abi::err_name(e);
        if (cm->hist.count(name) == 0 && xfs->hist.count(name) == 0) {
            std::printf("%s ", name.c_str());
            ++untested_both;
        }
    }
    std::printf("(%zu of 27)\n", untested_both);
    return 0;
}
