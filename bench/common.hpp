// Shared harness for the reproduction benches: run both simulated
// suites through the full pipeline (kernel -> trace -> filter ->
// analyzer) and hand each bench the resulting coverage reports.
#pragma once

#include <cstdint>
#include <string>

#include "core/iocov.hpp"
#include "testers/generator.hpp"

namespace iocov::bench {

struct SuiteRun {
    core::CoverageReport crashmonkey;
    core::CoverageReport xfstests;
    testers::RunStats crashmonkey_stats;
    testers::RunStats xfstests_stats;
    double scale = 0.0;
};

/// Scale factor: IOCOV_SCALE env var, else `fallback`.  1.0 replays the
/// suites at published volume; the default keeps each bench in seconds.
double env_scale(double fallback = 0.02);

/// Runs one simulated suite end to end and returns IOCov's report.
core::CoverageReport run_suite(bool xfstests, double scale,
                               std::uint64_t seed,
                               testers::RunStats* stats = nullptr);

/// Runs both suites (fresh file system each, same seed policy as the
/// paper's one-shot measurement).
SuiteRun run_both(double scale);

/// Standard bench banner: experiment id + scale disclosure.
void print_banner(const std::string& experiment, const std::string& what,
                  double scale);

}  // namespace iocov::bench
