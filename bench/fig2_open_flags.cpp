// Figure 2: input coverage of open flags for CrashMonkey and xfstests.
//
// Paper reference points: O_RDONLY used 7,924 (CrashMonkey) and
// 4,099,770 (xfstests) times; xfstests exceeds CrashMonkey on every
// flag; several flags (e.g. O_LARGEFILE) are untested by both.
#include <cstdio>

#include "common.hpp"
#include "report/table.hpp"

int main() {
    using namespace iocov;
    const double scale = bench::env_scale();
    bench::print_banner("Figure 2",
                        "input coverage of open flags (CrashMonkey vs "
                        "xfstests)",
                        scale);

    const auto runs = bench::run_both(scale);
    const auto* cm = runs.crashmonkey.find_input("open", "flags");
    const auto* xfs = runs.xfstests.find_input("open", "flags");

    std::printf("%s\n",
                report::render_comparison("CrashMonkey", cm->hist,
                                          "xfstests", xfs->hist)
                    .c_str());

    std::printf("paper reference (scale 1.0): O_RDONLY = 7,924 "
                "(CrashMonkey) vs 4,099,770 (xfstests)\n");
    std::printf("measured at scale %.3g:      O_RDONLY = %s vs %s\n", scale,
                report::with_thousands(cm->hist.count("O_RDONLY")).c_str(),
                report::with_thousands(xfs->hist.count("O_RDONLY")).c_str());

    // Shape checks the paper asserts in prose.
    bool xfs_wins_everywhere = true;
    for (const auto& row : xfs->hist.rows()) {
        if (row.count < cm->hist.count(row.label) ||
            (row.count == 0 && cm->hist.count(row.label) > 0))
            xfs_wins_everywhere = false;
    }
    std::printf("xfstests >= CrashMonkey on every flag: %s\n",
                xfs_wins_everywhere ? "yes (matches paper)" : "NO");
    std::printf("untested by CrashMonkey: %zu flags; untested by xfstests: "
                "%zu flags\n",
                cm->hist.untested().size(), xfs->hist.untested().size());
    return 0;
}
