// Figure 5: Test Coverage Deviation (TCD) for open flags vs a uniform
// target, swept over target values.
//
// Paper reference points: below a target of ~5,237 tests per flag,
// CrashMonkey has the better (lower) TCD; above it, xfstests wins.
// The crossover scales with workload volume, so at scale s the expected
// crossover is ~5,237 * s; the bench reports both.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/tcd.hpp"
#include "report/table.hpp"

int main() {
    using namespace iocov;
    const double scale = bench::env_scale();
    bench::print_banner("Figure 5",
                        "TCD for open flags vs uniform target", scale);

    const auto runs = bench::run_both(scale);
    const auto& cm = runs.crashmonkey.find_input("open", "flags")->hist;
    const auto& xfs = runs.xfstests.find_input("open", "flags")->hist;

    std::vector<std::vector<std::string>> rows;
    for (double exp = 0.0; exp <= 7.0; exp += 0.5) {
        const double target = std::pow(10.0, exp) * scale;
        rows.push_back({"10^" + report::fixed(exp, 1) + " * scale",
                        report::fixed(core::tcd_uniform(cm, target), 3),
                        report::fixed(core::tcd_uniform(xfs, target), 3)});
    }
    std::printf("%s\n",
                report::render_table({"target", "CrashMonkey TCD",
                                      "xfstests TCD"},
                                     rows)
                    .c_str());

    // Binary-search the crossover target where the two TCDs meet.
    double lo = 1e-6, hi = 1e9;
    for (int i = 0; i < 200; ++i) {
        const double mid = std::sqrt(lo * hi);
        const double d = core::tcd_uniform(cm, mid) -
                         core::tcd_uniform(xfs, mid);
        if (d < 0) lo = mid;  // CrashMonkey still better
        else hi = mid;
    }
    const double crossover = std::sqrt(lo * hi);
    std::printf("measured crossover target: %.0f\n", crossover);
    std::printf("paper crossover (5,237) scaled to this run: %.0f\n",
                5237.0 * scale);
    std::printf("CrashMonkey better below the crossover, xfstests better "
                "above: %s\n",
                (core::tcd_uniform(cm, crossover / 10) <
                     core::tcd_uniform(xfs, crossover / 10) &&
                 core::tcd_uniform(cm, crossover * 10) >
                     core::tcd_uniform(xfs, crossover * 10))
                    ? "yes (matches paper)"
                    : "NO");
    return 0;
}
