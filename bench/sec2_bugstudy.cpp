// Section 2: the real-world bug study, recomputed against the
// instrumented VFS and the simulated xfstests run.
//
// Paper reference points (70 bugs: 51 ext4 + 19 btrfs):
//   * 53% of bugs (37/70) sat in line-covered code yet were missed;
//     61% (43/70) for function coverage; 29% (20/70) for branches.
//   * 71% input bugs (50/70), 59% output bugs (41/70), 81% either
//     (57/70).
//   * 65% (24/37) of the line-covered-but-missed bugs are triggerable
//     by specific syscall arguments.
#include <cstdio>

#include "bugstudy/study.hpp"
#include "common.hpp"
#include "report/table.hpp"

int main() {
    using namespace iocov;
    const double scale = bench::env_scale();
    bench::print_banner("Section 2",
                        "bug study: code coverage vs bug detection", scale);

    const auto r = bugstudy::run_bug_study({scale, 42});

    std::printf("corpus: %d bugs (%d ext4 + %d btrfs); xfstests-sim "
                "detected %d\n\n",
                r.total, r.ext4, r.btrfs, r.detected);

    std::vector<std::vector<std::string>> rows = {
        {"line coverage", std::to_string(r.line_cbm),
         report::fixed(r.pct(r.line_cbm), 0) + "%", "37/70 = 53%"},
        {"function coverage", std::to_string(r.fn_cbm),
         report::fixed(r.pct(r.fn_cbm), 0) + "%", "43/70 = 61%"},
        {"branch coverage", std::to_string(r.branch_cbm),
         report::fixed(r.pct(r.branch_cbm), 0) + "%", "20/70 = 29%"},
    };
    std::printf("%s\n",
                report::render_table({"covered-but-missed", "bugs",
                                      "measured", "paper"},
                                     rows)
                    .c_str());

    rows = {
        {"input bugs", std::to_string(r.input_bugs),
         report::fixed(r.pct(r.input_bugs), 0) + "%", "50/70 = 71%"},
        {"output bugs", std::to_string(r.output_bugs),
         report::fixed(r.pct(r.output_bugs), 0) + "%", "41/70 = 59%"},
        {"input or output", std::to_string(r.either_bugs),
         report::fixed(r.pct(r.either_bugs), 0) + "%", "57/70 = 81%"},
        {"both", std::to_string(r.both_bugs),
         report::fixed(r.pct(r.both_bugs), 0) + "%", "(34/70)"},
        {"neither", std::to_string(r.neither_bugs),
         report::fixed(r.pct(r.neither_bugs), 0) + "%", "(13/70)"},
    };
    std::printf("%s\n",
                report::render_table({"classification", "bugs", "measured",
                                      "paper"},
                                     rows)
                    .c_str());

    const double pct_trig =
        r.line_cbm ? 100.0 * r.cbm_input_triggerable / r.line_cbm : 0.0;
    std::printf("line-covered-but-missed bugs triggerable by specific "
                "arguments: %d/%d = %.0f%% (paper: 24/37 = 65%%)\n\n",
                r.cbm_input_triggerable, r.line_cbm, pct_trig);

    // The Fig. 1 marquee bug, spelled out.
    for (const auto& o : r.outcomes) {
        if (o.bug->id != "ext4-22-019") continue;
        std::printf("Fig. 1 bug (%s): %s\n", o.bug->id.c_str(),
                    o.bug->description.c_str());
        std::printf("  line/function/branch covered: %s/%s/%s — detected: "
                    "%s (paper: covered at all three levels, missed)\n",
                    o.line_covered ? "yes" : "no",
                    o.fn_covered ? "yes" : "no",
                    o.branch_covered ? "yes" : "no",
                    o.detected ? "YES" : "no");
    }
    return 0;
}
