// Extension: flag-combination (pairwise) coverage — the paper's
// future-work "bit combinations" metric, across three suites
// (CrashMonkey, xfstests, and an LTP-style conformance suite).
//
// Per-flag coverage (Fig. 2) can look healthy while combination
// coverage is tiny: xfstests touches most flags but only a sliver of
// the feasible flag *pairs*.
#include <cstdio>

#include "common.hpp"
#include "core/combos.hpp"
#include "report/table.hpp"
#include "syscall/kernel.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "vfs/filesystem.hpp"

namespace {

iocov::core::CoverageReport run_named(const char* which, double scale) {
    using namespace iocov;
    vfs::FileSystem fs(testers::recommended_fs_config());
    auto fx = testers::prepare_environment(fs, "/mnt/test");
    core::IOCov iocov;
    syscall::Kernel kernel(fs, &iocov.live_sink());
    if (std::string(which) == "xfstests")
        testers::run_xfstests(kernel, fx, scale, 42);
    else if (std::string(which) == "ltp")
        testers::run_ltp(kernel, fx, scale, 42);
    else
        testers::run_crashmonkey(kernel, fx, scale, 42);
    return iocov.report();
}

}  // namespace

int main() {
    using namespace iocov;
    const double scale = bench::env_scale();
    bench::print_banner("Extension",
                        "pairwise open-flag combination coverage", scale);

    std::vector<std::vector<std::string>> rows;
    for (const char* suite : {"CrashMonkey", "xfstests", "ltp"}) {
        const auto report = run_named(suite, scale);
        const auto* flags = report.find_input("open", "flags");
        const auto pc = core::open_flag_pair_coverage(*flags);
        rows.push_back({suite, std::to_string(pc.tested),
                        std::to_string(pc.feasible),
                        report::fixed(100 * pc.fraction, 1) + "%",
                        report::fixed(
                            100 * flags->hist.coverage_fraction(), 1) +
                            "%"});
    }
    std::printf("%s\n",
                report::render_table({"suite", "pairs tested",
                                      "pairs feasible", "pair coverage",
                                      "per-flag coverage"},
                                     rows)
                    .c_str());

    const auto xfs = run_named("xfstests", scale);
    const auto pc = core::open_flag_pair_coverage(
        *xfs.find_input("open", "flags"));
    std::printf("first five untested xfstests pairs (each a candidate "
                "combination test):\n");
    for (std::size_t i = 0; i < 5 && i < pc.untested.size(); ++i)
        std::printf("  %s\n", pc.untested[i].c_str());
    std::printf("\nper-flag coverage overstates thoroughness: every "
                "suite's pair coverage is far below its flag coverage.\n");
    return 0;
}
