// Figure 3: input coverage of the write size argument (log2 buckets).
//
// Paper reference points: xfstests exceeds CrashMonkey in every
// interval; CrashMonkey exercises few sizes; neither suite writes more
// than 258 MiB (bucket 2^28) although ext4 allows 16 TiB files; the
// "=0" boundary partition is tested only by xfstests.
#include <cstdio>

#include "common.hpp"
#include "report/table.hpp"
#include "stats/log_bucket.hpp"

int main() {
    using namespace iocov;
    const double scale = bench::env_scale();
    bench::print_banner("Figure 3", "input coverage of write size (bytes)",
                        scale);

    const auto runs = bench::run_both(scale);
    const auto* cm = runs.crashmonkey.find_input("write", "count");
    const auto* xfs = runs.xfstests.find_input("write", "count");

    std::printf("%s\n",
                report::render_comparison("CrashMonkey", cm->hist,
                                          "xfstests", xfs->hist)
                    .c_str());

    // Largest tested bucket for each suite.
    auto max_bucket = [](const stats::PartitionHistogram& h) {
        std::string out = "(none)";
        for (const auto& row : h.rows())
            if (row.count > 0 && row.label.rfind("2^", 0) == 0)
                out = row.label;
        return out;
    };
    std::printf("largest write bucket: CM=%s xfs=%s "
                "(paper: max write = 258 MiB, bucket 2^28)\n",
                max_bucket(cm->hist).c_str(), max_bucket(xfs->hist).c_str());
    std::printf("zero-size writes:     CM=%llu xfs=%llu "
                "(paper: \"=0\" tested only by xfstests)\n",
                static_cast<unsigned long long>(cm->hist.count("=0")),
                static_cast<unsigned long long>(xfs->hist.count("=0")));
    std::printf("untested buckets:     CM=%zu xfs=%zu of %zu declared\n",
                cm->hist.untested().size(), xfs->hist.untested().size(),
                cm->hist.partition_count());
    return 0;
}
