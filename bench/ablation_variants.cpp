// Ablation: variant merging vs per-variant coverage.
//
// IOCov's variant handler merges open/openat/creat/openat2 into one
// input space because variants share the kernel implementation.  This
// bench computes per-variant counts from the same trace and shows what
// merging buys: without it, coverage fragments across variants and
// partitions look spuriously untested.
#include <cstdio>

#include "common.hpp"
#include "core/syscall_spec.hpp"
#include "report/table.hpp"
#include "syscall/kernel.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "trace/filter.hpp"
#include "trace/sink.hpp"
#include "vfs/filesystem.hpp"

int main() {
    using namespace iocov;
    const double scale = bench::env_scale();
    bench::print_banner("Ablation",
                        "variant merging vs per-variant coverage", scale);

    // One xfstests run, raw trace retained.
    vfs::FileSystem fs(testers::recommended_fs_config());
    auto fx = testers::prepare_environment(fs, "/mnt/test");
    trace::TraceBuffer buffer;
    syscall::Kernel kernel(fs, &buffer);
    testers::run_xfstests(kernel, fx, scale, 42);

    trace::TraceFilter filter(trace::FilterConfig::mount_point("/mnt/test"));
    const auto kept = filter.filter(buffer.events());

    // Per-variant event counts for each tracked base.
    std::vector<std::vector<std::string>> rows;
    for (const auto& spec : core::syscall_registry()) {
        std::uint64_t total = 0;
        std::string breakdown;
        for (const auto& variant : spec.variants) {
            std::uint64_t n = 0;
            for (const auto& ev : kept)
                if (ev.syscall == variant) ++n;
            total += n;
            if (!breakdown.empty()) breakdown += "  ";
            breakdown += variant + "=" + report::with_thousands(n);
        }
        rows.push_back({spec.base, report::with_thousands(total),
                        breakdown});
    }
    std::printf("%s\n",
                report::render_table({"base syscall", "merged count",
                                      "per-variant"},
                                     rows)
                    .c_str());

    std::printf(
        "merging matters: a partition tested only through pwrite64 would "
        "look untested under\nper-variant accounting of write(2), even "
        "though both calls exercise the same kernel path.\n");
    std::printf("tracked variants: %zu across %zu bases; tracked "
                "arguments: %zu (paper: 27 / 11 / 14)\n",
                core::tracked_variant_count(),
                core::syscall_registry().size(),
                core::tracked_argument_count());
    return 0;
}
