// Ablation: powers-of-two partitioning vs classical boundary-value
// partitioning for numeric arguments.
//
// The paper "considered boundary-value analysis, but ultimately used
// powers of 2 as boundaries because they are common in file systems."
// This bench partitions the same observed write sizes both ways and
// compares how many distinct partitions each scheme declares/tests and
// which untested regions each scheme can even express.
#include <cstdio>

#include "common.hpp"
#include "report/table.hpp"
#include "stats/histogram.hpp"
#include "stats/log_bucket.hpp"

namespace {

/// Classical boundary-value partitions around "typical" documented
/// limits: {0}, {1}, (1, 4096), {4096}, (4096, MAX_RW), {MAX_RW}, >MAX.
std::string bva_label(std::uint64_t v) {
    constexpr std::uint64_t kPage = 4096;
    constexpr std::uint64_t kMaxRw = 0x7ffff000ULL;
    if (v == 0) return "=0";
    if (v == 1) return "=1";
    if (v < kPage) return "(1,4096)";
    if (v == kPage) return "=4096";
    if (v < kMaxRw) return "(4096,MAX_RW)";
    if (v == kMaxRw) return "=MAX_RW";
    return ">MAX_RW";
}

}  // namespace

int main() {
    using namespace iocov;
    const double scale = bench::env_scale();
    bench::print_banner("Ablation",
                        "powers-of-2 vs boundary-value partitioning "
                        "(write sizes)",
                        scale);

    const auto runs = bench::run_both(scale);
    const auto& pow2 = runs.xfstests.find_input("write", "count")->hist;

    // Re-partition the same data with boundary-value analysis.  We
    // reconstruct per-bucket observations from the pow2 histogram by
    // mapping each pow2 bucket's lower bound (a faithful proxy since
    // BVA's interior partitions are coarse).
    stats::PartitionHistogram bva = stats::PartitionHistogram::with_partitions(
        {"=0", "=1", "(1,4096)", "=4096", "(4096,MAX_RW)", "=MAX_RW",
         ">MAX_RW"});
    for (const auto& row : pow2.rows()) {
        if (row.count == 0) continue;
        auto bucket = stats::parse_bucket_label(row.label);
        std::uint64_t rep = 0;
        if (bucket && bucket->kind == stats::LogBucket::Kind::Pow2)
            rep = 1ULL << bucket->exponent;
        bva.add(bva_label(rep), row.count);
    }

    std::printf("powers-of-2 partitions: %zu declared, %zu tested, %zu "
                "untested\n",
                pow2.partition_count(), pow2.tested().size(),
                pow2.untested().size());
    std::printf("boundary-value partitions: %zu declared, %zu tested, %zu "
                "untested\n\n",
                bva.partition_count(), bva.tested().size(),
                bva.untested().size());
    std::printf("%s\n", report::render_histogram(bva).c_str());

    std::printf(
        "BVA collapses every write from 4 KiB to 2 GiB into one partition: "
        "it cannot express\n\"no writes above 258 MiB\" — the pow2 scheme "
        "surfaces %zu untested large-size buckets.\n",
        pow2.untested().size());
    return 0;
}
