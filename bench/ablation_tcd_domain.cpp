// Ablation: why TCD is computed in log space.
//
// The paper: "We use logarithms for the frequencies and target because
// under-testing is more problematic than over-testing, so we want to
// downplay the latter."  This bench compares log-domain TCD against a
// linear-domain RMSD on the same coverage data and shows the failure
// mode the log transform avoids: a single heavily-tested partition
// dominates the linear metric, making a suite with *more* untested
// partitions look better.
#include <cstdio>

#include "common.hpp"
#include "core/tcd.hpp"
#include "report/table.hpp"

int main() {
    using namespace iocov;
    const double scale = bench::env_scale();
    bench::print_banner("Ablation",
                        "TCD log-domain vs linear-domain RMSD", scale);

    const auto runs = bench::run_both(scale);
    const auto& cm = runs.crashmonkey.find_input("open", "flags")->hist;
    const auto& xfs = runs.xfstests.find_input("open", "flags")->hist;

    const double target = 100.0 * scale * 50;  // mid-range uniform target

    std::vector<std::vector<std::string>> rows = {
        {"CrashMonkey", report::fixed(core::tcd_uniform(cm, target), 3),
         report::fixed(core::tcd_linear_uniform(cm, target), 1)},
        {"xfstests", report::fixed(core::tcd_uniform(xfs, target), 3),
         report::fixed(core::tcd_linear_uniform(xfs, target), 1)},
    };
    std::printf("%s\n",
                report::render_table({"suite", "TCD (log domain)",
                                      "RMSD (linear domain)"},
                                     rows)
                    .c_str());

    std::printf("untested flags: CrashMonkey=%zu, xfstests=%zu\n",
                cm.untested().size(), xfs.untested().size());
    std::printf(
        "linear RMSD is dominated by xfstests' O_RDONLY spike (%s calls), "
        "penalizing the suite with *better* coverage;\n"
        "log-domain TCD keeps under-testing dominant, as designed.\n",
        report::with_thousands(xfs.count("O_RDONLY")).c_str());

    // Non-uniform targets: the paper's future-work extension.  Weight
    // persistence flags higher, as a crash-consistency developer would.
    auto persistence_targets = [&](const stats::PartitionHistogram& h) {
        return core::TargetBuilder(h, target)
            .boost("O_SYNC", 50.0)
            .boost("O_DSYNC", 50.0)
            .boost("O_DIRECT", 10.0)
            .build();
    };
    std::printf("\nnon-uniform target (persistence-weighted):\n");
    std::printf("  CrashMonkey TCD: %.3f   xfstests TCD: %.3f\n",
                core::tcd(cm, persistence_targets(cm)),
                core::tcd(xfs, persistence_targets(xfs)));
    std::printf("  (CrashMonkey's O_SYNC-heavy profile narrows the gap "
                "under a persistence-weighted target)\n");
    return 0;
}
