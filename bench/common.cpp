#include "common.hpp"

#include <cstdio>
#include <cstdlib>

#include "syscall/kernel.hpp"
#include "testers/fixtures.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::bench {

double env_scale(double fallback) {
    if (const char* s = std::getenv("IOCOV_SCALE")) {
        const double v = std::atof(s);
        if (v > 0) return v;
    }
    return fallback;
}

core::CoverageReport run_suite(bool xfstests, double scale,
                               std::uint64_t seed,
                               testers::RunStats* stats) {
    vfs::FileSystem fs(testers::recommended_fs_config());
    auto fx = testers::prepare_environment(fs, "/mnt/test");

    core::IOCov iocov(trace::FilterConfig::mount_point("/mnt/test"));
    syscall::Kernel kernel(fs, &iocov.live_sink());

    const auto run_stats =
        xfstests ? testers::run_xfstests(kernel, fx, scale, seed)
                 : testers::run_crashmonkey(kernel, fx, scale, seed);
    if (stats) *stats = run_stats;

    return iocov.report();
}

SuiteRun run_both(double scale) {
    SuiteRun out;
    out.scale = scale;
    out.crashmonkey = run_suite(false, scale, 42, &out.crashmonkey_stats);
    out.xfstests = run_suite(true, scale, 42, &out.xfstests_stats);
    return out;
}

void print_banner(const std::string& experiment, const std::string& what,
                  double scale) {
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", experiment.c_str(), what.c_str());
    std::printf("workload scale: %.3g of the published run "
                "(set IOCOV_SCALE=1 for full volume)\n",
                scale);
    std::printf("==============================================================\n");
}

}  // namespace iocov::bench
