// iocov — command-line front end for the library.
//
//   iocov analyze  [--mount RE] [--syz] [--strict] [--max-errors N]
//                  [--save FILE] [--snapshot FILE] TRACE...
//   iocov convert  IN OUT                       (text <-> IOCT binary)
//   iocov merge    [--threads N] -o OUT.iocs INPUT...
//                                              (fleet snapshot merge)
//   iocov trend    [--window SECS] [--by-label] DIR
//                                              (coverage-over-time JSON)
//   iocov report   [--untested] [--under N] [--summary] FILE
//   iocov diff     BEFORE AFTER
//   iocov tcd      [--target N] [--arg BASE.KEY] FILE
//   iocov demo     [--suite NAME] [--scale S]   (run a simulator)
//   iocov campaign [--suite NAME] [--scale S] [--seed N] [--runs N]
//                  [--save FILE]               (fault-space exploration)
//   iocov guide    [--suite NAME] [--scale S] [--seed N] [--rounds N]
//                  [--budget N] [--per-gap N] [--target N]
//                  [--baseline FILE] [--save FILE]
//                                              (gap-driven synthesis)
//   iocov crashtest [--workloads a,b | --list] [--seed N] [--reorders N]
//                  [--no-torn] [--max-points N] [--target N]
//                  [--inject-skip-barrier K] [--json FILE]
//                                              (crash-consistency testing)
//   iocov bugstudy [--scale S] [--export]       (Section 2 study/dataset)
//
// `analyze` consumes one or more traces — LTTng-style text or IOCT
// binary, autodetected per file by the "IOCT" magic (or, with --syz,
// syzkaller programs) — and prints the coverage summary; --save writes
// the report in the persistent format `report`/`diff`/`tcd` consume.
// `convert` transcodes between the two trace formats (direction is
// inferred from the input's magic).  `demo` exists so the tool is
// explorable without captured traces: it runs one of the built-in
// suite simulators end to end.
#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bugstudy/study.hpp"
#include "core/checkpoint.hpp"
#include "core/combos.hpp"
#include "trace/binary_format.hpp"
#include "trace/text_format.hpp"
#include "core/diff.hpp"
#include "core/iocov.hpp"
#include "core/live.hpp"
#include "core/report_io.hpp"
#include "core/snapshot.hpp"
#include "core/tcd.hpp"
#include "core/untested.hpp"
#include "exec/alloc_hook.hpp"
#include "host/fault.hpp"
#include "host/io.hpp"
#include "host/parse.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "report/table.hpp"
#include "report/trend.hpp"
#include "syscall/kernel.hpp"
#include "testers/campaign.hpp"
#include "testers/crash/tester.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "testers/guided/loop.hpp"
#include "vfs/filesystem.hpp"

namespace {

using namespace iocov;  // NOLINT

// Exit-code taxonomy (documented in --help and README):
//   0  success
//   1  findings — regressions, bugs, or an exceeded error budget
//   2  usage error (bad flags/arguments)
//   3  I/O or artifact error — an input could not be read, an output
//      could not be written durably, or an artifact failed to decode
constexpr int kExitOk = 0;
constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;

int usage() {
    std::fprintf(
        stderr,
        "usage:\n"
        "  iocov analyze [--mount RE] [--syz] [--extended] [--threads N]\n"
        "                [--strict] [--max-errors N] [--stats]\n"
        "                [--checkpoint FILE] [--checkpoint-every N]\n"
        "                [--resume] [--save FILE] [--snapshot FILE]\n"
        "                TRACE...\n"
        "      TRACE format is autodetected per file: IOCT binary (by\n"
        "      its \"IOCT\" magic), IOCS coverage snapshot (\"IOCS\"\n"
        "      magic — merged directly, no re-ingest; a version this\n"
        "      build cannot read is a structured error), or LTTng-style\n"
        "      text.  A TRACE that is a directory analyzes every IOCT\n"
        "      file in it (sorted by name; non-IOCT entries are\n"
        "      diagnosed and skipped), with files scheduled onto\n"
        "      --threads N work-stealing workers.  Malformed input is\n"
        "      skipped and diagnosed; --max-errors N fails the run when\n"
        "      more than N inputs were dropped, --strict is\n"
        "      --max-errors 0.  --stats prints ingest throughput and\n"
        "      steady-state allocation counters.  --snapshot writes the\n"
        "      final state as a compact binary .iocs snapshot for\n"
        "      `iocov merge` / `iocov trend`.\n"
        "  iocov convert IN OUT\n"
        "      transcode text -> IOCT binary or IOCT binary -> text\n"
        "      (direction inferred from IN's magic)\n"
        "  iocov merge   [--threads N] [--strict] [--max-errors N]\n"
        "                [--label L] [--timestamp T] [--json FILE]\n"
        "                [--checkpoint FILE] [--checkpoint-every N]\n"
        "                [--resume] -o OUT.iocs INPUT...\n"
        "      fleet aggregation: load every .iocs snapshot from the\n"
        "      INPUTs (directories are scanned non-recursively, sorted\n"
        "      by name), merge them on a deterministic pairwise tree\n"
        "      (--threads N work-stealing workers; byte-identical output\n"
        "      at any thread count), and write the merged snapshot to\n"
        "      OUT.iocs.  Unreadable/foreign/version-skewed entries are\n"
        "      diagnosed per file and counted against --max-errors.\n"
        "      --json writes a deterministic per-space summary.\n"
        "  iocov trend   [--window SECS] [--by-label] [--target N]\n"
        "                [--threads N] [--json FILE] DIR\n"
        "      coverage movement over a snapshot directory: slice the\n"
        "      snapshots by capture-time window (--window) or by label\n"
        "      (--by-label), merge each slice, and emit per-slice TCD +\n"
        "      gap counts as deterministic JSON (stdout, or --json FILE).\n"
        "  iocov report  [--untested] [--under N] FILE\n"
        "  iocov diff    BEFORE AFTER\n"
        "  iocov tcd     [--target N] [--arg BASE.KEY] FILE\n"
        "  iocov serve   [--socket PATH] [--tcp PORT] [--mount RE]\n"
        "                [--extended] [--threads N] [--delta-dir DIR]\n"
        "                [--delta-every N] [--label L]\n"
        "                [--checkpoint FILE] [--checkpoint-every N]\n"
        "                [--resume]\n"
        "      live coverage daemon: a single epoll event loop accepts\n"
        "      framed IOCT shards from many concurrent producers on a\n"
        "      Unix-domain socket (--socket) and/or 127.0.0.1 TCP port\n"
        "      (--tcp; 0 binds an ephemeral port, printed at startup)\n"
        "      and answers queries *while ingesting*.  Each shard is\n"
        "      analyzed in isolation and merged, so after any pushes\n"
        "      `iocov query report` is byte-identical to `iocov analyze\n"
        "      DIR/` over the same files; shard names deduplicate, so\n"
        "      re-pushing after a crash + --resume converges to the\n"
        "      uninterrupted result.  --delta-dir emits durable IOCS\n"
        "      delta snapshots every --delta-every pushes (and at\n"
        "      shutdown; merging all deltas of a run reproduces the\n"
        "      full state); --checkpoint writes a resumable IOCK\n"
        "      manifest (mode serve) every --checkpoint-every pushes.\n"
        "      SIGTERM/SIGINT/`iocov query stop` shut down gracefully\n"
        "      (final delta + checkpoint).\n"
        "  iocov push    [--socket PATH | --tcp PORT] [--timeout-ms N]\n"
        "                FILE...\n"
        "      stream IOCT trace files to a serve daemon over one\n"
        "      connection, one acknowledged push per file (the shard\n"
        "      name is the file's basename — the daemon's dedup key).\n"
        "  iocov query   [--socket PATH | --tcp PORT] [--timeout-ms N]\n"
        "                [--target N] [--arg BASE.KEY] [--save FILE]\n"
        "                report|gaps|tcd|status|ping|stop\n"
        "      query a serve daemon: `report` returns the saved-report\n"
        "      text (with --save, byte-identical to `analyze --save`\n"
        "      over the pushed shards), `gaps` the untested partitions,\n"
        "      `tcd` the coverage deviation for --arg/--target,\n"
        "      `status` daemon counters, `stop` a graceful shutdown.\n"
        "      Every answer is one epoch-tagged consistent state — an\n"
        "      exact prefix of the accepted pushes, never a torn\n"
        "      histogram, even mid-ingest.\n"
        "  iocov demo    [--suite crashmonkey|xfstests|ltp] [--scale S]\n"
        "  iocov campaign [--suite crashmonkey|xfstests|ltp] [--scale S]\n"
        "                 [--seed N] [--samples N] [--runs N] [--chaos N]\n"
        "                 [--permille N] [--extended] [--save FILE]\n"
        "      replay the suite once fault-free, then once per (op,\n"
        "      errno, k-th occurrence) fault point (EIO/ENOMEM/EINTR/\n"
        "      ENOSPC), fsck'ing the file system and checking errno\n"
        "      surfacing after every run; --runs bounds the sweep,\n"
        "      --chaos adds seeded probabilistic runs.  Exits 1 on any\n"
        "      fsck or faithfulness violation.\n"
        "  iocov guide   [--suite crashmonkey|xfstests|ltp] [--scale S]\n"
        "                [--seed N] [--rounds N] [--budget N] [--per-gap N]\n"
        "                [--target N] [--extended] [--baseline FILE]\n"
        "                [--save FILE]\n"
        "      close the coverage loop: measure the baseline's untested\n"
        "      partitions (TCD-ranked), synthesize syscalls + fault\n"
        "      injections aimed at each gap, re-measure, and iterate\n"
        "      until the TCD plateaus or the call budget runs out.\n"
        "      --baseline guides from a saved report instead of\n"
        "      replaying a suite; --save writes the merged final report.\n"
        "      Prints a before/after table per coverage space.\n"
        "  iocov crashtest [--workloads a,b | --list] [--seed N]\n"
        "                  [--reorders N] [--no-torn] [--max-points N]\n"
        "                  [--target N] [--inject-skip-barrier K]\n"
        "                  [--json FILE]\n"
        "      coverage-guided crash-consistency testing: run the\n"
        "      crashmonkey-baseline workloads, log durable effects,\n"
        "      enumerate bounded crash states (barrier points, partial\n"
        "      in-order tails, seeded reordered tails, torn writes) and\n"
        "      check each recovered state against the persisted-prefix\n"
        "      oracle plus fsck.  Deterministic for a fixed --seed.\n"
        "      --inject-skip-barrier K seeds a lost-barrier bug into the\n"
        "      replayer to validate the oracle (exits 0 iff caught);\n"
        "      otherwise exits 1 when any bug is found.\n"
        "  iocov bugstudy [--scale S] [--export]\n"
        "\n"
        "durability: every file the tool writes (reports, snapshots,\n"
        "json, checkpoints) is published atomically — full write +\n"
        "fsync to a temp file in the destination directory, then\n"
        "rename + directory fsync — so a crash or fault at any instant\n"
        "leaves the previous complete artifact or the new complete\n"
        "artifact, never a torn file.\n"
        "\n"
        "checkpoints: `merge --checkpoint FILE` and (single-directory)\n"
        "`analyze --checkpoint FILE` write a resumable IOCK manifest\n"
        "every N consumed inputs (--checkpoint-every N, default 8);\n"
        "--resume continues an interrupted walk from the manifest and\n"
        "produces byte-identical final output.  The manifest is removed\n"
        "on success.\n"
        "\n"
        "strictness: numeric flag operands are parsed whole — junk,\n"
        "embedded signs, overflow, or a missing operand is a usage\n"
        "error (exit 2), never a silent 0 or a saturated value.\n"
        "`trend --window 0` and `merge --timestamp 0` are rejected as\n"
        "degenerate (see their descriptions above).\n"
        "\n"
        "exit codes:\n"
        "  0  success\n"
        "  1  findings (coverage regression, bugs found, --max-errors\n"
        "     budget exceeded)\n"
        "  2  usage error\n"
        "  3  I/O or artifact error (unreadable input, undecodable\n"
        "     artifact, an output that could not be written durably, or\n"
        "     a stdout consumer that closed the pipe early — SIGPIPE is\n"
        "     ignored and the truncation reported here instead)\n");
    return kExitUsage;
}

/// Sniffs the IOCT magic without reading the whole file.
bool file_is_ioct(const char* path) {
    std::ifstream in(path, std::ios::binary);
    char head[8] = {};
    in.read(head, sizeof head);
    return in.gcount() > 0 &&
           trace::is_ioct(std::string_view(
               head, static_cast<std::size_t>(in.gcount())));
}

/// Sniffs the IOCS snapshot magic (any version — version skew is
/// reported as a structured error at load time, not silently treated
/// as a text trace).
bool file_is_iocs(const char* path) {
    std::ifstream in(path, std::ios::binary);
    char head[8] = {};
    in.read(head, sizeof head);
    return in.gcount() >= 5 &&
           core::iocs_version(std::string_view(
                                  head,
                                  static_cast<std::size_t>(in.gcount())))
               .has_value();
}

std::optional<core::CoverageReport> load(const char* path) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "iocov: cannot open %s\n", path);
        return std::nullopt;
    }
    auto report = core::load_report(in);
    if (!report)
        std::fprintf(stderr, "iocov: %s is not a coverage report\n", path);
    return report;
}

/// Writes `data` to `path` durably and atomically; on failure prints
/// the structured I/O error (path, phase, strerror, errno) to stderr
/// and returns false — the previous artifact at `path`, if any, is
/// untouched.
bool write_artifact(const char* path, std::string_view data) {
    if (auto err = host::write_file_atomic(path, data)) {
        std::fprintf(stderr, "iocov: %s\n", err->to_string().c_str());
        return false;
    }
    return true;
}

// ---- strict numeric flag parsing --------------------------------------
//
// Every numeric operand goes through host::parse_* (whole-string,
// overflow-checked).  The historical strtoul/atof sites silently
// turned junk into 0 and saturated overflow (`--threads junk` ran
// serial, `--seed 18446744073709551616` became UINT64_MAX), and a
// flag left dangling at the end of the line fell through to the
// positional arguments.  Each helper matches one `--flag VALUE` pair;
// a bad or missing operand prints a one-line diagnostic and flips
// `bad`, which the command loops turn into exit 2.

/// Matches `--name` and pulls its operand; nullptr operand (with
/// `bad` set) when the flag dangles at the end of the line.
const char* flag_operand(int argc, char** argv, int& i, const char* name,
                         bool& bad) {
    if (i + 1 >= argc) {
        std::fprintf(stderr, "iocov: %s: missing operand\n", name);
        bad = true;
        return nullptr;
    }
    return argv[++i];
}

bool flag_u64(int argc, char** argv, int& i, const char* name,
              std::uint64_t& out, bool& bad) {
    if (std::strcmp(argv[i], name) != 0) return false;
    if (const char* text = flag_operand(argc, argv, i, name, bad)) {
        if (!host::parse_u64(text, out)) {
            std::fprintf(stderr,
                         "iocov: %s: invalid value '%s' (want a decimal "
                         "integer in [0, 2^64-1])\n",
                         name, text);
            bad = true;
        }
    }
    return true;
}

bool flag_u32(int argc, char** argv, int& i, const char* name,
              unsigned& out, bool& bad) {
    if (std::strcmp(argv[i], name) != 0) return false;
    if (const char* text = flag_operand(argc, argv, i, name, bad)) {
        std::uint32_t v = 0;
        if (!host::parse_u32(text, v)) {
            std::fprintf(stderr,
                         "iocov: %s: invalid value '%s' (want a decimal "
                         "integer in [0, 2^32-1])\n",
                         name, text);
            bad = true;
        } else {
            out = v;
        }
    }
    return true;
}

bool flag_f64(int argc, char** argv, int& i, const char* name,
              double& out, bool& bad) {
    if (std::strcmp(argv[i], name) != 0) return false;
    if (const char* text = flag_operand(argc, argv, i, name, bad)) {
        if (!host::parse_f64(text, out)) {
            std::fprintf(stderr,
                         "iocov: %s: invalid value '%s' (want a finite "
                         "decimal number)\n",
                         name, text);
            bad = true;
        }
    }
    return true;
}

bool flag_u64_opt(int argc, char** argv, int& i, const char* name,
                  std::optional<std::uint64_t>& out, bool& bad) {
    std::uint64_t v = 0;
    if (!flag_u64(argc, argv, i, name, v, bad)) return false;
    if (!bad) out = v;
    return true;
}

/// One input of a checkpointed walk.
struct WalkEntry {
    std::string path;  ///< what to open; also the manifest key
    std::string name;  ///< diagnostic label (file name for dir entries)
};

/// Expands merge/analyze INPUTs into the deterministic serial walk the
/// checkpoint manifest records: file arguments stay in argument order,
/// each directory argument contributes its regular files sorted by
/// name.  nullopt (with a printed error) when a directory cannot be
/// enumerated.
std::optional<std::vector<WalkEntry>> expand_inputs(
    const std::vector<const char*>& inputs) {
    std::vector<WalkEntry> walk;
    for (const char* input : inputs) {
        std::error_code ec;
        if (std::filesystem::is_directory(input, ec) && !ec) {
            std::vector<WalkEntry> entries;
            std::error_code dec;
            for (std::filesystem::directory_iterator it(input, dec), end;
                 !dec && it != end; it.increment(dec)) {
                std::error_code fec;
                if (!it->is_regular_file(fec) || fec) continue;
                entries.push_back({it->path().string(),
                                   it->path().filename().string()});
            }
            if (dec) {
                std::fprintf(stderr, "iocov: cannot open directory %s\n",
                             input);
                return std::nullopt;
            }
            std::sort(entries.begin(), entries.end(),
                      [](const WalkEntry& a, const WalkEntry& b) {
                          return a.name < b.name;
                      });
            for (auto& e : entries) walk.push_back(std::move(e));
        } else {
            walk.push_back({input, input});
        }
    }
    return walk;
}

/// Loads a manifest for --resume when one exists (no manifest = fresh
/// start, so kill-loops can pass --resume unconditionally).  Validates
/// mode and that the consumed list is a prefix of the current walk —
/// anything else means the inputs changed under the manifest, and
/// resuming would double- or mis-count.  Returns false on a printed,
/// fatal mismatch.
bool load_resume_checkpoint(const char* checkpoint_path,
                            core::CheckpointMode mode,
                            const std::vector<WalkEntry>& walk,
                            core::Checkpoint& cp) {
    std::error_code ec;
    if (!std::filesystem::exists(checkpoint_path, ec) || ec) return true;
    core::SnapshotError err;
    auto loaded = core::load_checkpoint_file(checkpoint_path, &err);
    if (!loaded) {
        std::fprintf(stderr, "iocov: %s: %s\n", checkpoint_path,
                     err.to_string().c_str());
        return false;
    }
    if (loaded->mode != mode) {
        std::fprintf(stderr,
                     "iocov: %s: checkpoint was written by `iocov %s`, "
                     "not this command\n",
                     checkpoint_path,
                     loaded->mode == core::CheckpointMode::Merge
                         ? "merge"
                         : loaded->mode == core::CheckpointMode::Serve
                               ? "serve"
                               : "analyze");
        return false;
    }
    const bool prefix =
        loaded->consumed.size() <= walk.size() &&
        std::equal(loaded->consumed.begin(), loaded->consumed.end(),
                   walk.begin(),
                   [](const std::string& a, const WalkEntry& b) {
                       return a == b.path;
                   });
    if (!prefix) {
        std::fprintf(stderr,
                     "iocov: %s: checkpoint does not match the current "
                     "inputs (%zu consumed; inputs changed?)\n",
                     checkpoint_path, loaded->consumed.size());
        return false;
    }
    cp = std::move(*loaded);
    return true;
}

void print_summary(const core::CoverageReport& report) {
    std::printf("events: %llu tracked / %llu seen\n\n",
                static_cast<unsigned long long>(report.events_tracked),
                static_cast<unsigned long long>(report.events_seen));
    std::vector<std::vector<std::string>> rows;
    for (const auto& row : core::summarize(report)) {
        rows.push_back({row.arg.empty() ? row.base + " (output)"
                                        : row.base + "." + row.arg,
                        std::to_string(row.declared),
                        std::to_string(row.tested),
                        report::fixed(100 * row.fraction, 1) + "%"});
    }
    std::printf("%s", report::render_table(
                          {"space", "partitions", "tested", "coverage"},
                          rows)
                          .c_str());
    const auto* flags = report.find_input("open", "flags");
    if (flags) {
        const auto pc = core::open_flag_pair_coverage(*flags);
        std::printf("\nopen-flag pair coverage: %zu/%zu (%.1f%%)\n",
                    pc.tested, pc.feasible, 100 * pc.fraction);
    }
}

/// Checkpointed single-directory analyze walk: files are consumed one
/// at a time in name order (documented bit-identical to the
/// work-stealing directory ingest), and every --checkpoint-every
/// consumed entries the analyzer state is snapshotted into an
/// atomically-written IOCK manifest.  `reject_diags` collects the
/// per-file rejection diagnostics the directory ingest would have
/// recorded internally.  Returns kExitOk to continue into the shared
/// reporting tail.
int analyze_checkpointed(core::IOCov& iocov, const char* dir,
                         unsigned threads, const char* checkpoint_path,
                         std::uint64_t checkpoint_every, bool resume,
                         trace::ParseDiagnostics& reject_diags) {
    auto walk = expand_inputs({dir});
    if (!walk) return kExitIo;
    core::Checkpoint cp;
    cp.mode = core::CheckpointMode::Analyze;
    if (resume &&
        !load_resume_checkpoint(checkpoint_path,
                                core::CheckpointMode::Analyze, *walk, cp))
        return kExitIo;
    const std::size_t start = cp.consumed.size();
    std::uint64_t analyzed = start - cp.rejected;
    if (!cp.blocks.empty()) iocov.merge(cp.blocks.front().snapshot);
    cp.blocks.clear();

    std::uint64_t since = 0;
    auto save_cp = [&]() {
        cp.blocks.clear();
        if (analyzed > 0) cp.blocks.push_back({analyzed, iocov.snapshot()});
        core::SnapshotError err;
        if (!core::save_checkpoint_file(checkpoint_path, cp, &err)) {
            std::fprintf(stderr, "iocov: %s: %s\n", checkpoint_path,
                         err.to_string().c_str());
            return false;
        }
        return true;
    };
    for (std::size_t i = start; i < walk->size(); ++i) {
        const auto& e = (*walk)[i];
        if (file_is_ioct(e.path.c_str())) {
            const auto dropped = iocov.consume_binary_file(e.path, threads);
            if (!dropped) {
                std::fprintf(stderr, "iocov: cannot open %s\n",
                             e.path.c_str());
                return kExitIo;
            }
            ++analyzed;
        } else {
            ++cp.rejected;
            std::ifstream probe(e.path, std::ios::binary);
            cp.diags.record(0, 0,
                            e.name + (probe ? ": not an IOCT file (bad "
                                              "magic/version)"
                                            : ": cannot open file"));
        }
        cp.consumed.push_back(e.path);
        if (++since >= checkpoint_every && i + 1 < walk->size()) {
            since = 0;
            if (!save_cp()) return kExitIo;
        }
    }
    std::printf("%s: analyzed %llu IOCT files (%llu non-IOCT rejected, "
                "checkpointed)\n",
                dir, static_cast<unsigned long long>(analyzed),
                static_cast<unsigned long long>(cp.rejected));
    reject_diags = cp.diags;
    // The walk completed; the manifest has served its purpose.
    std::error_code ec;
    std::filesystem::remove(checkpoint_path, ec);
    return kExitOk;
}

int cmd_analyze(int argc, char** argv) {
    std::string mount = "/mnt/test";
    bool syz = false;
    bool extended = false;
    bool stats = false;
    unsigned threads = 1;
    const char* save_path = nullptr;
    const char* snapshot_path = nullptr;
    // Error budget: how many dropped inputs (malformed lines, corrupt
    // records, lost shards) the run tolerates before failing.  Default
    // is unbounded, matching the historical skip-and-continue behavior.
    std::optional<std::uint64_t> max_errors;
    const char* checkpoint_path = nullptr;
    std::uint64_t checkpoint_every = 8;
    bool resume = false;
    std::vector<const char*> traces;
    bool bad = false;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--mount") && i + 1 < argc) {
            mount = argv[++i];
        } else if (!std::strcmp(argv[i], "--syz")) {
            syz = true;
        } else if (!std::strcmp(argv[i], "--extended")) {
            extended = true;
        } else if (flag_u32(argc, argv, i, "--threads", threads, bad)) {
            // 0 = auto (hardware concurrency); 1 = serial.
        } else if (!std::strcmp(argv[i], "--stats")) {
            stats = true;
        } else if (!std::strcmp(argv[i], "--strict")) {
            max_errors = 0;
        } else if (flag_u64_opt(argc, argv, i, "--max-errors", max_errors,
                                bad)) {
        } else if (!std::strcmp(argv[i], "--checkpoint") && i + 1 < argc) {
            checkpoint_path = argv[++i];
        } else if (flag_u64(argc, argv, i, "--checkpoint-every",
                            checkpoint_every, bad)) {
            if (checkpoint_every == 0) checkpoint_every = 1;
        } else if (!std::strcmp(argv[i], "--resume")) {
            resume = true;
        } else if (!std::strcmp(argv[i], "--save") && i + 1 < argc) {
            save_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--snapshot") && i + 1 < argc) {
            snapshot_path = argv[++i];
        } else {
            traces.push_back(argv[i]);
        }
        if (bad) return kExitUsage;
    }
    if (traces.empty()) return usage();
    if (resume && !checkpoint_path) return usage();

    core::IOCov iocov(trace::FilterConfig::mount_point(mount),
                      extended ? core::extended_syscall_registry()
                               : core::syscall_registry());
    trace::ParseDiagnostics reject_diags;
    if (checkpoint_path) {
        // Checkpointed mode only defines resume semantics for one
        // directory of IOCT traces (the fleet drop-box shape).
        std::error_code dir_ec;
        if (syz || traces.size() != 1 ||
            !std::filesystem::is_directory(traces[0], dir_ec) || dir_ec)
            return usage();
        const int rc = analyze_checkpointed(iocov, traces[0], threads,
                                            checkpoint_path,
                                            checkpoint_every, resume,
                                            reject_diags);
        if (rc != kExitOk) return rc;
        traces.clear();
    }
    for (const char* path : traces) {
        std::error_code dir_ec;
        if (!syz && std::filesystem::is_directory(path, dir_ec)) {
            // Directory of IOCT traces: work-stealing multi-file
            // ingestion, bit-identical to analyzing the files one by
            // one in name order (each file gets its own filter state).
            const auto dir = iocov.consume_binary_dir(path, threads);
            if (!dir) {
                std::fprintf(stderr, "iocov: cannot open directory %s\n",
                             path);
                return kExitIo;
            }
            std::printf("%s: analyzed %zu IOCT files (%zu non-IOCT "
                        "rejected, %zu torn records skipped)\n",
                        path, dir->files, dir->rejected, dir->dropped);
            continue;
        }
        if (!syz && file_is_iocs(path)) {
            // IOCS coverage snapshot: the analyzer state itself — merge
            // it directly, no event re-ingest.
            core::SnapshotError err;
            const auto snap = core::load_snapshot_file(path, &err);
            if (!snap) {
                std::fprintf(stderr, "iocov: %s: %s\n", path,
                             err.to_string().c_str());
                return kExitIo;
            }
            iocov.merge(*snap);
            std::printf("%s: merged [IOCS snapshot] (%llu events seen)\n",
                        path,
                        static_cast<unsigned long long>(
                            snap->report.events_seen));
            continue;
        }
        if (!syz && file_is_ioct(path)) {
            // IOCT binary trace: mmap'd zero-copy ingestion.
            const auto dropped = iocov.consume_binary_file(path, threads);
            if (!dropped) {
                std::fprintf(stderr, "iocov: cannot open %s\n", path);
                return kExitIo;
            }
            std::printf("%s: analyzed [IOCT] (%zu torn records skipped)\n",
                        path, *dropped);
            continue;
        }
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "iocov: cannot open %s\n", path);
            return kExitIo;
        }
        if (syz) {
            const auto parsed = iocov.consume_syz(in);
            std::printf("%s: %zu syscalls parsed (input coverage only)\n",
                        path, parsed);
        } else {
            // --threads shards by pid; pid-sharded analysis is
            // bit-identical to serial for a fresh IOCov per run.
            const auto dropped = threads == 1
                                     ? iocov.consume_text(in)
                                     : iocov.consume_text_parallel(in,
                                                                   threads);
            std::printf("%s: analyzed (%zu malformed lines skipped)\n",
                        path, dropped);
        }
    }
    // Checkpointed walks keep per-file rejection diagnostics at the
    // CLI layer; fold them in so --max-errors and the printed summary
    // match the directory-ingest behavior.
    trace::ParseDiagnostics diags = iocov.diagnostics();
    diags.merge(reject_diags);
    if (max_errors && diags.total() > *max_errors) {
        std::fprintf(stderr,
                     "iocov: error budget exceeded (%llu dropped > "
                     "--max-errors %llu)\n%s",
                     static_cast<unsigned long long>(diags.total()),
                     static_cast<unsigned long long>(*max_errors),
                     diags.to_string().c_str());
        return kExitFindings;
    }
    if (diags.total() > 0)
        std::fprintf(stderr, "%s", diags.to_string().c_str());
    std::printf("\n");
    print_summary(iocov.report());
    if (stats) {
        const auto& is = iocov.ingest_stats();
        const double secs = is.seconds > 0 ? is.seconds : 1e-9;
        std::printf(
            "\ningest stats (binary paths):\n"
            "  events:   %llu decoded (%.2fM events/s)\n"
            "  bytes:    %llu ingested (%.1f MB/s)\n"
            "  files:    %llu across %u thread(s), %.3fs wall\n",
            static_cast<unsigned long long>(is.events),
            static_cast<double>(is.events) / secs / 1e6,
            static_cast<unsigned long long>(is.bytes),
            static_cast<double>(is.bytes) / secs / 1e6,
            static_cast<unsigned long long>(is.files), is.threads, secs);
        if (exec::has_allocation_counting()) {
            std::printf("  allocs:   %llu in the steady-state decode "
                        "loop\n",
                        static_cast<unsigned long long>(
                            is.hot_loop_allocs));
        } else {
            std::printf("  allocs:   (allocation counting unavailable "
                        "in this build)\n");
        }
    }
    if (save_path) {
        std::ostringstream out;
        core::save_report(out, iocov.report());
        if (!write_artifact(save_path, out.str())) return kExitIo;
        std::printf("\nreport saved to %s\n", save_path);
    }
    if (snapshot_path) {
        core::SnapshotError err;
        if (!core::save_snapshot_file(snapshot_path, iocov.snapshot(),
                                      &err)) {
            std::fprintf(stderr, "iocov: %s: %s\n", snapshot_path,
                         err.to_string().c_str());
            return kExitIo;
        }
        std::printf("\nsnapshot saved to %s\n", snapshot_path);
    }
    return kExitOk;
}

/// Emits the merged snapshot + optional JSON summary; shared by the
/// plain and checkpointed merge paths.
int finish_merge(core::IOCovSnapshot merged, std::size_t count,
                 std::size_t rejected, std::uint64_t bytes,
                 const char* out_path, const char* json_path,
                 const char* label,
                 std::optional<std::uint64_t> timestamp) {
    if (label) merged.label = label;
    if (timestamp) merged.timestamp = *timestamp;
    core::SnapshotError serr;
    if (!core::save_snapshot_file(out_path, merged, &serr)) {
        std::fprintf(stderr, "iocov: %s: %s\n", out_path,
                     serr.to_string().c_str());
        return kExitIo;
    }
    std::printf("%s: merged %zu snapshots (%zu rejected, %llu events "
                "seen)\n",
                out_path, count, rejected,
                static_cast<unsigned long long>(merged.report.events_seen));
    if (json_path) {
        // Reconstruct the load-shaped struct the summary renders from
        // (snapshots were consumed by the merge; only counts matter).
        core::SnapshotDirLoad shape;
        shape.snapshots.resize(count);
        shape.rejected = rejected;
        shape.bytes = bytes;
        if (!write_artifact(json_path,
                            core::merge_summary_json(shape, merged)))
            return kExitIo;
        std::printf("json summary saved to %s\n", json_path);
    }
    return kExitOk;
}

/// Checkpointed merge walk: inputs load serially in the same
/// deterministic order as the parallel path, fold through an
/// IncrementalMerge (which reproduces merge_snapshots' exact pairwise
/// tree, so the final bytes are identical), and every
/// --checkpoint-every inputs the forest is written to an
/// atomically-replaced IOCK manifest.
int merge_checkpointed(const std::vector<const char*>& inputs,
                       const char* out_path, const char* json_path,
                       const char* label,
                       std::optional<std::uint64_t> timestamp,
                       std::optional<std::uint64_t> max_errors,
                       const char* checkpoint_path,
                       std::uint64_t checkpoint_every, bool resume) {
    auto walk = expand_inputs(inputs);
    if (!walk) return kExitIo;
    core::Checkpoint cp;
    cp.mode = core::CheckpointMode::Merge;
    if (resume &&
        !load_resume_checkpoint(checkpoint_path,
                                core::CheckpointMode::Merge, *walk, cp))
        return kExitIo;
    const std::size_t start = cp.consumed.size();
    core::IncrementalMerge fold;
    fold.restore(std::move(cp.blocks));
    cp.blocks.clear();

    std::uint64_t since = 0;
    auto save_cp = [&]() {
        cp.blocks = fold.blocks();
        core::SnapshotError err;
        const bool ok = core::save_checkpoint_file(checkpoint_path, cp,
                                                   &err);
        if (!ok)
            std::fprintf(stderr, "iocov: %s: %s\n", checkpoint_path,
                         err.to_string().c_str());
        cp.blocks.clear();
        return ok;
    };
    for (std::size_t i = start; i < walk->size(); ++i) {
        const auto& e = (*walk)[i];
        core::SnapshotError err;
        auto snap = core::load_snapshot_file(e.path, &err);
        if (snap) {
            std::error_code fec;
            const auto size = std::filesystem::file_size(e.path, fec);
            cp.bytes += fec ? 0 : static_cast<std::uint64_t>(size);
            fold.push(std::move(*snap));
        } else {
            ++cp.rejected;
            cp.diags.record(0, err.offset, e.name + ": " + err.to_string());
        }
        cp.consumed.push_back(e.path);
        if (++since >= checkpoint_every && i + 1 < walk->size()) {
            since = 0;
            if (!save_cp()) return kExitIo;
        }
    }
    if (max_errors && cp.rejected > *max_errors) {
        std::fprintf(stderr,
                     "iocov: error budget exceeded (%llu rejected > "
                     "--max-errors %llu)\n%s",
                     static_cast<unsigned long long>(cp.rejected),
                     static_cast<unsigned long long>(*max_errors),
                     cp.diags.to_string().c_str());
        return kExitFindings;
    }
    if (cp.rejected > 0)
        std::fprintf(stderr, "%s", cp.diags.to_string().c_str());

    const auto count = static_cast<std::size_t>(fold.leaves());
    const int rc = finish_merge(fold.finish(), count,
                                static_cast<std::size_t>(cp.rejected),
                                cp.bytes, out_path, json_path, label,
                                timestamp);
    if (rc == kExitOk) {
        // The walk completed; the manifest has served its purpose.
        std::error_code ec;
        std::filesystem::remove(checkpoint_path, ec);
    }
    return rc;
}

int cmd_merge(int argc, char** argv) {
    unsigned threads = 0;  // auto
    std::optional<std::uint64_t> max_errors;
    const char* out_path = nullptr;
    const char* json_path = nullptr;
    const char* label = nullptr;
    const char* checkpoint_path = nullptr;
    std::uint64_t checkpoint_every = 8;
    bool resume = false;
    std::optional<std::uint64_t> timestamp;
    std::vector<const char*> inputs;
    bool bad = false;
    for (int i = 0; i < argc; ++i) {
        if (flag_u32(argc, argv, i, "--threads", threads, bad)) {
        } else if (!std::strcmp(argv[i], "--strict"))
            max_errors = 0;
        else if (flag_u64_opt(argc, argv, i, "--max-errors", max_errors,
                              bad)) {
        } else if (!std::strcmp(argv[i], "--label") && i + 1 < argc)
            label = argv[++i];
        else if (flag_u64_opt(argc, argv, i, "--timestamp", timestamp,
                              bad)) {
            if (timestamp && *timestamp == 0) {
                // 0 is the "unset" sentinel inside a snapshot: `trend`
                // would silently drop the snapshot from every time
                // window.  Stamping it explicitly is always a mistake.
                std::fprintf(stderr,
                             "iocov: --timestamp: 0 means 'no capture "
                             "time' and would exclude the snapshot from "
                             "every trend window; use a real Unix "
                             "timestamp\n");
                bad = true;
            }
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else if (!std::strcmp(argv[i], "--checkpoint") && i + 1 < argc)
            checkpoint_path = argv[++i];
        else if (flag_u64(argc, argv, i, "--checkpoint-every",
                          checkpoint_every, bad)) {
            if (checkpoint_every == 0) checkpoint_every = 1;
        } else if (!std::strcmp(argv[i], "--resume"))
            resume = true;
        else if (!std::strcmp(argv[i], "-o") && i + 1 < argc)
            out_path = argv[++i];
        else
            inputs.push_back(argv[i]);
        if (bad) return kExitUsage;
    }
    if (!out_path || inputs.empty()) return usage();
    if (resume && !checkpoint_path) return usage();
    if (checkpoint_path)
        return merge_checkpointed(inputs, out_path, json_path, label,
                                  timestamp, max_errors, checkpoint_path,
                                  checkpoint_every, resume);

    // Collect snapshots in argument order; each directory contributes
    // its name-sorted contents, so the full sequence — and with it the
    // pairwise merge tree — is deterministic for a given command line.
    core::SnapshotDirLoad all;
    for (const char* input : inputs) {
        std::error_code dir_ec;
        if (std::filesystem::is_directory(input, dir_ec)) {
            auto dir = core::load_snapshot_dir(input, threads);
            if (!dir) {
                std::fprintf(stderr, "iocov: cannot open directory %s\n",
                             input);
                return kExitIo;
            }
            for (auto& ns : dir->snapshots)
                all.snapshots.push_back(std::move(ns));
            all.rejected += dir->rejected;
            all.bytes += dir->bytes;
            all.diags.merge(dir->diags);
            continue;
        }
        core::SnapshotError err;
        auto snap = core::load_snapshot_file(input, &err);
        if (snap) {
            all.bytes += std::filesystem::file_size(input, dir_ec);
            all.snapshots.push_back(
                {std::filesystem::path(input).filename().string(),
                 std::move(*snap)});
        } else {
            ++all.rejected;
            all.diags.record(0, err.offset,
                             std::string(input) + ": " + err.to_string());
        }
    }
    if (max_errors && all.rejected > *max_errors) {
        std::fprintf(stderr,
                     "iocov: error budget exceeded (%zu rejected > "
                     "--max-errors %llu)\n%s",
                     all.rejected,
                     static_cast<unsigned long long>(*max_errors),
                     all.diags.to_string().c_str());
        return kExitFindings;
    }
    if (all.rejected > 0)
        std::fprintf(stderr, "%s", all.diags.to_string().c_str());

    const std::size_t count = all.snapshots.size();
    auto merged = core::merge_snapshots(std::move(all.snapshots), threads);
    return finish_merge(std::move(merged), count, all.rejected, all.bytes,
                        out_path, json_path, label, timestamp);
}

int cmd_trend(int argc, char** argv) {
    report::TrendOptions opts;
    unsigned threads = 0;  // auto
    const char* json_path = nullptr;
    const char* dir = nullptr;
    bool bad = false;
    for (int i = 0; i < argc; ++i) {
        if (flag_u64(argc, argv, i, "--window", opts.window_seconds,
                     bad)) {
            if (!bad && opts.window_seconds == 0) {
                // A zero-second window is degenerate — every snapshot
                // would land in its own empty-width slice.  Omitting
                // --window already gives the "one all-time slice" view.
                std::fprintf(stderr,
                             "iocov: --window: a 0-second window is "
                             "degenerate; omit --window for a single "
                             "all-time slice\n");
                bad = true;
            }
        } else if (!std::strcmp(argv[i], "--by-label"))
            opts.by_label = true;
        else if (flag_f64(argc, argv, i, "--target", opts.target, bad)) {
        } else if (flag_u32(argc, argv, i, "--threads", threads, bad)) {
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else
            dir = argv[i];
        if (bad) return kExitUsage;
    }
    if (!dir) return usage();
    auto load = core::load_snapshot_dir(dir, threads);
    if (!load) {
        std::fprintf(stderr, "iocov: cannot open directory %s\n", dir);
        return kExitIo;
    }
    if (load->rejected > 0)
        std::fprintf(stderr, "%s", load->diags.to_string().c_str());
    const auto json =
        report::trend_json(load->snapshots, opts, threads);
    if (json_path) {
        if (!write_artifact(json_path, json)) return kExitIo;
        std::printf("trend (%zu snapshots, %zu rejected) saved to %s\n",
                    load->snapshots.size(), load->rejected, json_path);
    } else {
        std::printf("%s", json.c_str());
    }
    return kExitOk;
}

int cmd_serve(int argc, char** argv) {
    serve::ServeOptions opts;
    std::string mount = "/mnt/test";
    bool extended = false;
    bool have_tcp = false;
    bool bad = false;
    for (int i = 0; i < argc; ++i) {
        std::uint64_t port = 0;
        if (!std::strcmp(argv[i], "--socket") && i + 1 < argc) {
            opts.unix_path = argv[++i];
        } else if (flag_u64(argc, argv, i, "--tcp", port, bad)) {
            if (!bad && port > 65535) {
                std::fprintf(stderr,
                             "iocov: --tcp: port %llu out of range "
                             "(0..65535; 0 = ephemeral)\n",
                             static_cast<unsigned long long>(port));
                bad = true;
            } else if (!bad) {
                opts.tcp_port = static_cast<int>(port);
                have_tcp = true;
            }
        } else if (!std::strcmp(argv[i], "--mount") && i + 1 < argc) {
            mount = argv[++i];
        } else if (!std::strcmp(argv[i], "--extended")) {
            extended = true;
        } else if (flag_u32(argc, argv, i, "--threads", opts.threads,
                            bad)) {
        } else if (!std::strcmp(argv[i], "--delta-dir") && i + 1 < argc) {
            opts.delta_dir = argv[++i];
        } else if (flag_u64(argc, argv, i, "--delta-every",
                            opts.delta_every, bad)) {
        } else if (!std::strcmp(argv[i], "--label") && i + 1 < argc) {
            opts.delta_label = argv[++i];
        } else if (!std::strcmp(argv[i], "--checkpoint") && i + 1 < argc) {
            opts.checkpoint_path = argv[++i];
        } else if (flag_u64(argc, argv, i, "--checkpoint-every",
                            opts.checkpoint_every, bad)) {
            if (opts.checkpoint_every == 0) opts.checkpoint_every = 1;
        } else if (!std::strcmp(argv[i], "--resume")) {
            opts.resume = true;
        } else {
            return usage();
        }
        if (bad) return kExitUsage;
    }
    if (opts.unix_path.empty() && !have_tcp) return usage();
    if (opts.resume && opts.checkpoint_path.empty()) return usage();
    opts.install_signal_handlers = true;

    core::LiveCoverage live(trace::FilterConfig::mount_point(mount),
                            extended ? core::extended_syscall_registry()
                                     : core::syscall_registry());
    serve::Server server(live, opts);
    if (auto err = server.start()) {
        std::fprintf(stderr, "iocov: %s\n", err->to_string().c_str());
        return kExitIo;
    }
    if (!opts.unix_path.empty())
        std::printf("serving on unix:%s\n", opts.unix_path.c_str());
    if (server.tcp_port() >= 0)
        std::printf("serving on tcp:127.0.0.1:%d\n", server.tcp_port());
    if (opts.resume && live.epoch() > 0)
        std::printf("resumed %llu shards from %s\n",
                    static_cast<unsigned long long>(live.epoch()),
                    opts.checkpoint_path.c_str());
    // Producers poll for these lines (and scripts parse the ephemeral
    // TCP port from them) before pushing; make sure they are visible
    // before the loop blocks.
    std::fflush(stdout);
    server.run();

    const auto& st = server.stats();
    std::printf("serve: %llu connections, %llu pushes (%llu duplicate, "
                "%llu rejected), %llu queries, %llu deltas, %llu "
                "checkpoints\n",
                static_cast<unsigned long long>(st.connections),
                static_cast<unsigned long long>(st.pushes_accepted),
                static_cast<unsigned long long>(st.pushes_duplicate),
                static_cast<unsigned long long>(st.pushes_rejected),
                static_cast<unsigned long long>(st.queries),
                static_cast<unsigned long long>(st.deltas),
                static_cast<unsigned long long>(st.checkpoints));
    if (st.torn_frames + st.sock_errors > 0)
        std::fprintf(stderr,
                     "iocov: serve: %llu torn frames, %llu socket "
                     "errors\n%s",
                     static_cast<unsigned long long>(st.torn_frames),
                     static_cast<unsigned long long>(st.sock_errors),
                     server.diagnostics().to_string().c_str());
    return kExitOk;
}

/// Shared --socket/--tcp/--timeout-ms parsing for push/query; returns
/// false on a diagnosed bad flag.
bool client_flag(int argc, char** argv, int& i, serve::Endpoint& ep,
                 std::uint64_t& timeout_ms, bool& matched, bool& bad) {
    matched = true;
    std::uint64_t port = 0;
    if (!std::strcmp(argv[i], "--socket") && i + 1 < argc) {
        ep.unix_path = argv[++i];
    } else if (flag_u64(argc, argv, i, "--tcp", port, bad)) {
        if (!bad && (port == 0 || port > 65535)) {
            std::fprintf(stderr,
                         "iocov: --tcp: port %llu out of range "
                         "(1..65535)\n",
                         static_cast<unsigned long long>(port));
            bad = true;
        } else if (!bad) {
            ep.tcp_port = static_cast<int>(port);
        }
    } else if (flag_u64(argc, argv, i, "--timeout-ms", timeout_ms, bad)) {
    } else {
        matched = false;
    }
    return !bad;
}

int cmd_push(int argc, char** argv) {
    serve::Endpoint ep;
    std::uint64_t timeout_ms = 5000;
    std::vector<const char*> files;
    bool bad = false;
    for (int i = 0; i < argc; ++i) {
        bool matched = false;
        if (!client_flag(argc, argv, i, ep, timeout_ms, matched, bad))
            return kExitUsage;
        if (!matched) files.push_back(argv[i]);
    }
    if (files.empty()) return usage();
    if (ep.unix_path.empty() && ep.tcp_port < 0) return usage();

    host::IoError err;
    auto client = serve::Client::connect(
        ep, static_cast<int>(std::min<std::uint64_t>(timeout_ms, 1 << 30)),
        &err);
    if (!client) {
        std::fprintf(stderr, "iocov: connect: %s\n",
                     err.to_string().c_str());
        return kExitIo;
    }
    int rc = kExitOk;
    for (const char* path : files) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "iocov: cannot open %s\n", path);
            return kExitIo;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        const std::string shard = buf.str();
        // The shard name is the basename: the same key a batch
        // `analyze DIR/` walk would use, and the daemon's dedup key.
        const std::string name =
            std::filesystem::path(path).filename().string();
        const auto reply = client->push(name, shard, &err);
        if (!reply) {
            std::fprintf(stderr, "iocov: push %s: %s\n", path,
                         err.to_string().c_str());
            return kExitIo;
        }
        if (!reply->ok) {
            std::fprintf(stderr, "iocov: push %s: %s\n", path,
                         reply->text.c_str());
            rc = kExitIo;
            continue;
        }
        std::printf("%s: %s [epoch %llu]\n", path, reply->text.c_str(),
                    static_cast<unsigned long long>(reply->epoch));
    }
    return rc;
}

int cmd_query(int argc, char** argv) {
    serve::Endpoint ep;
    std::uint64_t timeout_ms = 5000;
    double target = 1000;
    std::string arg = "open.flags";
    const char* save_path = nullptr;
    const char* what = nullptr;
    bool bad = false;
    for (int i = 0; i < argc; ++i) {
        bool matched = false;
        if (!client_flag(argc, argv, i, ep, timeout_ms, matched, bad))
            return kExitUsage;
        if (matched) continue;
        if (flag_f64(argc, argv, i, "--target", target, bad)) {
        } else if (!std::strcmp(argv[i], "--arg") && i + 1 < argc)
            arg = argv[++i];
        else if (!std::strcmp(argv[i], "--save") && i + 1 < argc)
            save_path = argv[++i];
        else if (what)
            return usage();
        else
            what = argv[i];
        if (bad) return kExitUsage;
    }
    if (!what) return usage();
    if (ep.unix_path.empty() && ep.tcp_port < 0) return usage();

    std::string q;
    if (!std::strcmp(what, "report") || !std::strcmp(what, "gaps") ||
        !std::strcmp(what, "status") || !std::strcmp(what, "ping") ||
        !std::strcmp(what, "stop")) {
        q = what;
    } else if (!std::strcmp(what, "tcd")) {
        char spec[256];
        std::snprintf(spec, sizeof spec, "tcd %s %g", arg.c_str(), target);
        q = spec;
    } else {
        return usage();
    }

    host::IoError err;
    auto client = serve::Client::connect(
        ep, static_cast<int>(std::min<std::uint64_t>(timeout_ms, 1 << 30)),
        &err);
    if (!client) {
        std::fprintf(stderr, "iocov: connect: %s\n",
                     err.to_string().c_str());
        return kExitIo;
    }
    const auto reply = q == "stop" ? client->stop(&err)
                                   : client->query(q, &err);
    if (!reply) {
        std::fprintf(stderr, "iocov: query: %s\n", err.to_string().c_str());
        return kExitIo;
    }
    if (!reply->ok) {
        std::fprintf(stderr, "iocov: query: %s\n", reply->text.c_str());
        return kExitIo;
    }
    if (save_path) {
        // `query report --save F` writes exactly the bytes `analyze
        // --save F` would for the same shards — the byte-identity the
        // gates compare.
        if (!write_artifact(save_path, reply->text)) return kExitIo;
        std::printf("%s saved to %s [epoch %llu]\n", what, save_path,
                    static_cast<unsigned long long>(reply->epoch));
    } else {
        std::fputs(reply->text.c_str(), stdout);
        if (!reply->text.empty() && reply->text.back() != '\n')
            std::printf("\n");
    }
    return kExitOk;
}

int cmd_convert(int argc, char** argv) {
    if (argc != 2) return usage();
    const char* in_path = argv[0];
    const char* out_path = argv[1];

    if (file_is_ioct(in_path)) {
        // IOCT binary -> text.
        host::IoError ioerr;
        auto mapped = trace::MappedFile::open(
            in_path, trace::MappedFile::Mode::Auto, &ioerr);
        if (!mapped) {
            std::fprintf(stderr, "iocov: %s\n", ioerr.to_string().c_str());
            return kExitIo;
        }
        std::size_t dropped = 0;
        const auto events = trace::decode_trace(mapped->data(), &dropped);
        std::string out;
        for (const auto& ev : events) {
            out += trace::format_event(ev);
            out += '\n';
        }
        if (!write_artifact(out_path, out)) return kExitIo;
        std::printf("%s -> %s: %zu events to text (%zu torn records "
                    "dropped)\n",
                    in_path, out_path, events.size(), dropped);
        return kExitOk;
    }

    // Text -> IOCT binary.
    std::ifstream in(in_path);
    if (!in) {
        std::fprintf(stderr, "iocov: cannot open %s\n", in_path);
        return kExitIo;
    }
    std::size_t dropped = 0;
    const auto events = trace::parse_stream(in, &dropped);
    std::ostringstream out;
    {
        trace::BinarySink sink(out);
        for (const auto& ev : events) sink.emit(ev);
        sink.finish();
    }
    if (!write_artifact(out_path, out.str())) return kExitIo;
    std::printf("%s -> %s: %zu events to IOCT (%zu malformed lines "
                "dropped)\n",
                in_path, out_path, events.size(), dropped);
    return kExitOk;
}

int cmd_report(int argc, char** argv) {
    bool untested = false;
    std::uint64_t under = 0;
    const char* path = nullptr;
    bool bad = false;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--untested")) untested = true;
        else if (flag_u64(argc, argv, i, "--under", under, bad)) {
        } else path = argv[i];
        if (bad) return kExitUsage;
    }
    if (!path) return usage();
    auto report = load(path);
    if (!report) return kExitIo;

    if (untested) {
        for (const auto& gap : core::find_untested(*report))
            std::printf("%-8s %-10s %-18s %s\n",
                        gap.kind == core::UntestedPartition::Kind::Input
                            ? "input"
                            : "output",
                        gap.base.c_str(), gap.partition.c_str(),
                        gap.suggestion.c_str());
        return 0;
    }
    if (under > 0) {
        for (const auto& gap : core::find_under_tested(*report, under))
            std::printf("%-10s %-18s under-tested\n", gap.base.c_str(),
                        gap.partition.c_str());
        return 0;
    }
    print_summary(*report);
    return 0;
}

int cmd_diff(int argc, char** argv) {
    if (argc != 2) return usage();
    auto before = load(argv[0]);
    auto after = load(argv[1]);
    if (!before || !after) return kExitIo;
    const auto deltas = core::diff_reports(*before, *after);
    for (const auto& d : deltas)
        std::printf("%-9s %s%s%s [%s] %llu -> %llu\n",
                    core::delta_kind_name(d.kind).c_str(), d.base.c_str(),
                    d.arg.empty() ? "" : ".", d.arg.c_str(),
                    d.partition.c_str(),
                    static_cast<unsigned long long>(d.before),
                    static_cast<unsigned long long>(d.after));
    const bool regressed = core::has_coverage_regression(*before, *after);
    std::printf("%zu deltas; regression: %s\n", deltas.size(),
                regressed ? "YES" : "no");
    // A regression is a *finding*, not an I/O failure — exit 1 so
    // scripts can tell "coverage went backwards" from "could not read
    // the reports" (exit 3).
    return regressed ? kExitFindings : kExitOk;
}

int cmd_tcd(int argc, char** argv) {
    double target = 1000;
    std::string arg = "open.flags";
    const char* path = nullptr;
    bool bad = false;
    for (int i = 0; i < argc; ++i) {
        if (flag_f64(argc, argv, i, "--target", target, bad)) {
        } else if (!std::strcmp(argv[i], "--arg") && i + 1 < argc)
            arg = argv[++i];
        else path = argv[i];
        if (bad) return kExitUsage;
    }
    if (!path) return usage();
    auto report = load(path);
    if (!report) return kExitIo;
    const auto dot = arg.find('.');
    if (dot == std::string::npos) return usage();
    const auto* in = report->find_input(arg.substr(0, dot),
                                        arg.substr(dot + 1));
    if (!in) {
        std::fprintf(stderr, "iocov: no input space %s\n", arg.c_str());
        return 1;
    }
    std::printf("TCD(%s, target=%g) = %.4f\n", arg.c_str(), target,
                core::tcd_uniform(in->hist, target));
    return 0;
}

int cmd_demo(int argc, char** argv) {
    std::string suite = "xfstests";
    double scale = 0.01;
    bool bad = false;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--suite") && i + 1 < argc)
            suite = argv[++i];
        else if (flag_f64(argc, argv, i, "--scale", scale, bad)) {
        }
        if (bad) return kExitUsage;
    }
    vfs::FileSystem fs(testers::recommended_fs_config());
    auto fx = testers::prepare_environment(fs, "/mnt/test");
    core::IOCov iocov;
    syscall::Kernel kernel(fs, &iocov.live_sink());
    if (suite == "crashmonkey")
        testers::run_crashmonkey(kernel, fx, scale, 42);
    else if (suite == "ltp")
        testers::run_ltp(kernel, fx, scale, 42);
    else
        testers::run_xfstests(kernel, fx, scale, 42);
    std::printf("suite: %s at scale %g\n\n", suite.c_str(), scale);
    print_summary(iocov.report());
    return 0;
}

int cmd_campaign(int argc, char** argv) {
    testers::CampaignConfig cfg;
    const char* save_path = nullptr;
    bool bad = false;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--suite") && i + 1 < argc)
            cfg.suite = argv[++i];
        else if (flag_f64(argc, argv, i, "--scale", cfg.scale, bad)) {
        } else if (flag_u64(argc, argv, i, "--seed", cfg.seed, bad)) {
        } else if (flag_u32(argc, argv, i, "--samples",
                            cfg.occurrences_per_point, bad)) {
        } else if (flag_u64(argc, argv, i, "--runs", cfg.max_runs, bad)) {
        } else if (flag_u32(argc, argv, i, "--chaos", cfg.chaos_runs,
                            bad)) {
        } else if (flag_u32(argc, argv, i, "--permille",
                            cfg.chaos_permille, bad)) {
        } else if (!std::strcmp(argv[i], "--mount") && i + 1 < argc)
            cfg.mount = argv[++i];
        else if (!std::strcmp(argv[i], "--extended"))
            cfg.extended_registry = true;
        else if (!std::strcmp(argv[i], "--save") && i + 1 < argc)
            save_path = argv[++i];
        else
            return usage();
        if (bad) return kExitUsage;
    }
    if (cfg.suite != "crashmonkey" && cfg.suite != "xfstests" &&
        cfg.suite != "ltp") {
        std::fprintf(stderr, "iocov: unknown suite %s\n", cfg.suite.c_str());
        return 2;
    }
    const auto result = testers::run_campaign(cfg);
    std::printf("suite: %s at scale %g, seed %llu\n\n", cfg.suite.c_str(),
                cfg.scale,
                static_cast<unsigned long long>(cfg.seed));
    std::printf("%s\n", result.summary().c_str());
    print_summary(result.aggregate);
    if (save_path) {
        std::ostringstream out;
        core::save_report(out, result.aggregate);
        if (!write_artifact(save_path, out.str())) return kExitIo;
        std::printf("\naggregate report saved to %s\n", save_path);
    }
    return result.clean() ? kExitOk : kExitFindings;
}

int cmd_guide(int argc, char** argv) {
    testers::guided::GuideConfig cfg;
    const char* baseline_path = nullptr;
    const char* save_path = nullptr;
    bool bad = false;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--suite") && i + 1 < argc)
            cfg.suite = argv[++i];
        else if (flag_f64(argc, argv, i, "--scale", cfg.scale, bad)) {
        } else if (flag_u64(argc, argv, i, "--seed", cfg.seed, bad)) {
        } else if (flag_u32(argc, argv, i, "--rounds", cfg.max_rounds,
                            bad)) {
        } else if (flag_u64(argc, argv, i, "--budget", cfg.call_budget,
                            bad)) {
        } else if (flag_u64(argc, argv, i, "--per-gap", cfg.calls_per_gap,
                            bad)) {
        } else if (flag_f64(argc, argv, i, "--target", cfg.target, bad)) {
        } else if (!std::strcmp(argv[i], "--mount") && i + 1 < argc)
            cfg.mount = argv[++i];
        else if (!std::strcmp(argv[i], "--extended"))
            cfg.extended_registry = true;
        else if (!std::strcmp(argv[i], "--baseline") && i + 1 < argc)
            baseline_path = argv[++i];
        else if (!std::strcmp(argv[i], "--save") && i + 1 < argc)
            save_path = argv[++i];
        else
            return usage();
        if (bad) return kExitUsage;
    }
    if (cfg.suite != "crashmonkey" && cfg.suite != "xfstests" &&
        cfg.suite != "ltp") {
        std::fprintf(stderr, "iocov: unknown suite %s\n", cfg.suite.c_str());
        return 2;
    }
    testers::guided::GuideResult result;
    if (baseline_path) {
        auto baseline = load(baseline_path);
        if (!baseline) return kExitIo;
        result = testers::guided::run_guide_on_baseline(*baseline, cfg);
    } else {
        result = testers::guided::run_guide(cfg);
    }
    std::printf("%s\n", result.summary().c_str());
    std::printf("%s", result.table().c_str());
    if (save_path) {
        std::ostringstream out;
        core::save_report(out, result.final_report);
        if (!write_artifact(save_path, out.str())) return kExitIo;
        std::printf("\nmerged report saved to %s\n", save_path);
    }
    return kExitOk;
}

int cmd_crashtest(int argc, char** argv) {
    testers::crash::CrashTestConfig cfg;
    const char* json_path = nullptr;
    bool list = false;
    bool bad = false;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--list")) {
            list = true;
        } else if (!std::strcmp(argv[i], "--workloads") && i + 1 < argc) {
            // Comma-separated workload names.
            std::string arg = argv[++i];
            std::size_t pos = 0;
            while (pos <= arg.size()) {
                const std::size_t comma = arg.find(',', pos);
                const std::string name =
                    arg.substr(pos, comma == std::string::npos
                                        ? std::string::npos
                                        : comma - pos);
                if (!name.empty()) cfg.workloads.push_back(name);
                if (comma == std::string::npos) break;
                pos = comma + 1;
            }
        } else if (flag_u64(argc, argv, i, "--seed", cfg.seed, bad)) {
        } else if (flag_u32(argc, argv, i, "--reorders",
                            cfg.reorder_variants, bad)) {
        } else if (!std::strcmp(argv[i], "--no-torn")) {
            cfg.torn_writes = false;
        } else if (flag_u64(argc, argv, i, "--max-points",
                            cfg.max_points_per_workload, bad)) {
        } else if (flag_f64(argc, argv, i, "--target", cfg.tcd_target,
                            bad)) {
        } else if (flag_u64_opt(argc, argv, i, "--inject-skip-barrier",
                                cfg.inject_skip_barrier, bad)) {
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            return usage();
        }
        if (bad) return kExitUsage;
    }
    if (list) {
        for (const auto& wl : testers::crash::crashmonkey_baseline())
            std::printf("%-22s %s\n", wl.name.c_str(),
                        wl.description.c_str());
        return 0;
    }
    for (const auto& name : cfg.workloads) {
        bool known = false;
        for (const auto& wl : testers::crash::crashmonkey_baseline())
            known = known || wl.name == name;
        if (!known) {
            std::fprintf(stderr, "iocov: unknown workload %s "
                                 "(try --list)\n",
                         name.c_str());
            return 2;
        }
    }
    const auto report = testers::crash::run_crashtest(cfg);
    std::printf("%s", report.to_string().c_str());
    if (json_path) {
        if (!write_artifact(json_path, report.to_json())) return kExitIo;
        std::printf("json report saved to %s\n", json_path);
    }
    if (cfg.inject_skip_barrier) {
        // Validation mode: the seeded lost-barrier bug must be caught.
        const bool caught = report.total_bugs > 0;
        std::printf("seeded skip-barrier bug: %s\n",
                    caught ? "CAUGHT" : "MISSED");
        return caught ? kExitOk : kExitFindings;
    }
    return report.total_bugs == 0 ? kExitOk : kExitFindings;
}

int cmd_bugstudy(int argc, char** argv) {
    double scale = 0.01;
    bool export_dataset = false;
    bool bad = false;
    for (int i = 0; i < argc; ++i) {
        if (flag_f64(argc, argv, i, "--scale", scale, bad)) {
        } else if (!std::strcmp(argv[i], "--export"))
            export_dataset = true;
        if (bad) return kExitUsage;
    }
    if (export_dataset) {
        // The dataset the paper promises to release: per-bug coverage
        // sites, classification, and trigger.
        std::printf("%s", bugstudy::render_bug_dataset().c_str());
        return 0;
    }
    const auto r = bugstudy::run_bug_study({scale, 42});
    std::printf("bug study (%d bugs: %d ext4 + %d btrfs), xfstests-sim at "
                "scale %g\n\n",
                r.total, r.ext4, r.btrfs, scale);
    std::printf("detected: %d\n", r.detected);
    std::printf("covered-but-missed: line %d (%.0f%%), function %d "
                "(%.0f%%), branch %d (%.0f%%)\n",
                r.line_cbm, r.pct(r.line_cbm), r.fn_cbm, r.pct(r.fn_cbm),
                r.branch_cbm, r.pct(r.branch_cbm));
    std::printf("classification: input %d (%.0f%%), output %d (%.0f%%), "
                "either %d (%.0f%%)\n\n",
                r.input_bugs, r.pct(r.input_bugs), r.output_bugs,
                r.pct(r.output_bugs), r.either_bugs, r.pct(r.either_bugs));
    std::printf("%-14s %-4s %-4s %-6s %-8s %s\n", "id", "line", "fn",
                "branch", "detected", "description");
    for (const auto& o : r.outcomes)
        std::printf("%-14s %-4s %-4s %-6s %-8s %.60s\n",
                    o.bug->id.c_str(), o.line_covered ? "y" : "-",
                    o.fn_covered ? "y" : "-", o.branch_covered ? "y" : "-",
                    o.detected ? "FOUND" : "-",
                    o.bug->description.c_str());
    return 0;
}

}  // namespace

namespace {

int dispatch(const std::string& cmd, int argc, char** argv) {
    if (cmd == "analyze") return cmd_analyze(argc, argv);
    if (cmd == "convert") return cmd_convert(argc, argv);
    if (cmd == "merge") return cmd_merge(argc, argv);
    if (cmd == "trend") return cmd_trend(argc, argv);
    if (cmd == "report") return cmd_report(argc, argv);
    if (cmd == "diff") return cmd_diff(argc, argv);
    if (cmd == "tcd") return cmd_tcd(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "push") return cmd_push(argc, argv);
    if (cmd == "query") return cmd_query(argc, argv);
    if (cmd == "demo") return cmd_demo(argc, argv);
    if (cmd == "campaign") return cmd_campaign(argc, argv);
    if (cmd == "guide") return cmd_guide(argc, argv);
    if (cmd == "crashtest") return cmd_crashtest(argc, argv);
    if (cmd == "bugstudy") return cmd_bugstudy(argc, argv);
    return usage();
}

}  // namespace

int main(int argc, char** argv) {
    // A consumer that stops reading early (`iocov analyze ... | head`)
    // must surface as a reported error, not a SIGPIPE kill: ignore the
    // signal process-wide so every write fails with EPIPE instead, and
    // map a truncated stdout to the I/O exit code below.
    host::ignore_sigpipe();
    // Self-fault injection into the host I/O layer: IOCOV_SELF_FAULT
    // in the environment, plus any number of hidden `--self-fault
    // SPEC` pairs (stripped here, accepted anywhere on the command
    // line) — the chaos harness's handle for errno sweeps and
    // kill-point placement.  See src/host/fault.hpp for the grammar.
    host::FaultHook::configure_from_env();
    std::vector<char*> args;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--self-fault") && i + 1 < argc) {
            if (auto err = host::FaultHook::configure(argv[++i])) {
                std::fprintf(stderr, "iocov: --self-fault: %s\n",
                             err->c_str());
                return kExitUsage;
            }
            continue;
        }
        args.push_back(argv[i]);
    }
    argc = static_cast<int>(args.size());
    argv = args.data();
    if (argc < 2) return usage();
    int rc = dispatch(argv[1], argc - 2, argv + 2);
    // Flush before exiting so a closed-pipe consumer is detected here,
    // while we can still report it, rather than lost in exit teardown.
    if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
        std::fprintf(stderr,
                     "iocov: stdout: %s (output truncated)\n",
                     std::strerror(errno ? errno : EPIPE));
        if (rc == kExitOk) rc = kExitIo;
    }
    return rc;
}
