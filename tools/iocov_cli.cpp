// iocov — command-line front end for the library.
//
//   iocov analyze  [--mount RE] [--syz] [--strict] [--max-errors N]
//                  [--save FILE] [--snapshot FILE] TRACE...
//   iocov convert  IN OUT                       (text <-> IOCT binary)
//   iocov merge    [--threads N] -o OUT.iocs INPUT...
//                                              (fleet snapshot merge)
//   iocov trend    [--window SECS] [--by-label] DIR
//                                              (coverage-over-time JSON)
//   iocov report   [--untested] [--under N] [--summary] FILE
//   iocov diff     BEFORE AFTER
//   iocov tcd      [--target N] [--arg BASE.KEY] FILE
//   iocov demo     [--suite NAME] [--scale S]   (run a simulator)
//   iocov campaign [--suite NAME] [--scale S] [--seed N] [--runs N]
//                  [--save FILE]               (fault-space exploration)
//   iocov guide    [--suite NAME] [--scale S] [--seed N] [--rounds N]
//                  [--budget N] [--per-gap N] [--target N]
//                  [--baseline FILE] [--save FILE]
//                                              (gap-driven synthesis)
//   iocov crashtest [--workloads a,b | --list] [--seed N] [--reorders N]
//                  [--no-torn] [--max-points N] [--target N]
//                  [--inject-skip-barrier K] [--json FILE]
//                                              (crash-consistency testing)
//   iocov bugstudy [--scale S] [--export]       (Section 2 study/dataset)
//
// `analyze` consumes one or more traces — LTTng-style text or IOCT
// binary, autodetected per file by the "IOCT" magic (or, with --syz,
// syzkaller programs) — and prints the coverage summary; --save writes
// the report in the persistent format `report`/`diff`/`tcd` consume.
// `convert` transcodes between the two trace formats (direction is
// inferred from the input's magic).  `demo` exists so the tool is
// explorable without captured traces: it runs one of the built-in
// suite simulators end to end.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bugstudy/study.hpp"
#include "core/combos.hpp"
#include "trace/binary_format.hpp"
#include "trace/text_format.hpp"
#include "core/diff.hpp"
#include "core/iocov.hpp"
#include "core/report_io.hpp"
#include "core/snapshot.hpp"
#include "core/tcd.hpp"
#include "core/untested.hpp"
#include "exec/alloc_hook.hpp"
#include "report/table.hpp"
#include "report/trend.hpp"
#include "syscall/kernel.hpp"
#include "testers/campaign.hpp"
#include "testers/crash/tester.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "testers/guided/loop.hpp"
#include "vfs/filesystem.hpp"

namespace {

using namespace iocov;  // NOLINT

int usage() {
    std::fprintf(
        stderr,
        "usage:\n"
        "  iocov analyze [--mount RE] [--syz] [--extended] [--threads N]\n"
        "                [--strict] [--max-errors N] [--stats]\n"
        "                [--save FILE] [--snapshot FILE] TRACE...\n"
        "      TRACE format is autodetected per file: IOCT binary (by\n"
        "      its \"IOCT\" magic), IOCS coverage snapshot (\"IOCS\"\n"
        "      magic — merged directly, no re-ingest; a version this\n"
        "      build cannot read is a structured error), or LTTng-style\n"
        "      text.  A TRACE that is a directory analyzes every IOCT\n"
        "      file in it (sorted by name; non-IOCT entries are\n"
        "      diagnosed and skipped), with files scheduled onto\n"
        "      --threads N work-stealing workers.  Malformed input is\n"
        "      skipped and diagnosed; --max-errors N fails the run when\n"
        "      more than N inputs were dropped, --strict is\n"
        "      --max-errors 0.  --stats prints ingest throughput and\n"
        "      steady-state allocation counters.  --snapshot writes the\n"
        "      final state as a compact binary .iocs snapshot for\n"
        "      `iocov merge` / `iocov trend`.\n"
        "  iocov convert IN OUT\n"
        "      transcode text -> IOCT binary or IOCT binary -> text\n"
        "      (direction inferred from IN's magic)\n"
        "  iocov merge   [--threads N] [--strict] [--max-errors N]\n"
        "                [--label L] [--timestamp T] [--json FILE]\n"
        "                -o OUT.iocs INPUT...\n"
        "      fleet aggregation: load every .iocs snapshot from the\n"
        "      INPUTs (directories are scanned non-recursively, sorted\n"
        "      by name), merge them on a deterministic pairwise tree\n"
        "      (--threads N work-stealing workers; byte-identical output\n"
        "      at any thread count), and write the merged snapshot to\n"
        "      OUT.iocs.  Unreadable/foreign/version-skewed entries are\n"
        "      diagnosed per file and counted against --max-errors.\n"
        "      --json writes a deterministic per-space summary.\n"
        "  iocov trend   [--window SECS] [--by-label] [--target N]\n"
        "                [--threads N] [--json FILE] DIR\n"
        "      coverage movement over a snapshot directory: slice the\n"
        "      snapshots by capture-time window (--window) or by label\n"
        "      (--by-label), merge each slice, and emit per-slice TCD +\n"
        "      gap counts as deterministic JSON (stdout, or --json FILE).\n"
        "  iocov report  [--untested] [--under N] FILE\n"
        "  iocov diff    BEFORE AFTER\n"
        "  iocov tcd     [--target N] [--arg BASE.KEY] FILE\n"
        "  iocov demo    [--suite crashmonkey|xfstests|ltp] [--scale S]\n"
        "  iocov campaign [--suite crashmonkey|xfstests|ltp] [--scale S]\n"
        "                 [--seed N] [--samples N] [--runs N] [--chaos N]\n"
        "                 [--permille N] [--extended] [--save FILE]\n"
        "      replay the suite once fault-free, then once per (op,\n"
        "      errno, k-th occurrence) fault point (EIO/ENOMEM/EINTR/\n"
        "      ENOSPC), fsck'ing the file system and checking errno\n"
        "      surfacing after every run; --runs bounds the sweep,\n"
        "      --chaos adds seeded probabilistic runs.  Exits 1 on any\n"
        "      fsck or faithfulness violation.\n"
        "  iocov guide   [--suite crashmonkey|xfstests|ltp] [--scale S]\n"
        "                [--seed N] [--rounds N] [--budget N] [--per-gap N]\n"
        "                [--target N] [--extended] [--baseline FILE]\n"
        "                [--save FILE]\n"
        "      close the coverage loop: measure the baseline's untested\n"
        "      partitions (TCD-ranked), synthesize syscalls + fault\n"
        "      injections aimed at each gap, re-measure, and iterate\n"
        "      until the TCD plateaus or the call budget runs out.\n"
        "      --baseline guides from a saved report instead of\n"
        "      replaying a suite; --save writes the merged final report.\n"
        "      Prints a before/after table per coverage space.\n"
        "  iocov crashtest [--workloads a,b | --list] [--seed N]\n"
        "                  [--reorders N] [--no-torn] [--max-points N]\n"
        "                  [--target N] [--inject-skip-barrier K]\n"
        "                  [--json FILE]\n"
        "      coverage-guided crash-consistency testing: run the\n"
        "      crashmonkey-baseline workloads, log durable effects,\n"
        "      enumerate bounded crash states (barrier points, partial\n"
        "      in-order tails, seeded reordered tails, torn writes) and\n"
        "      check each recovered state against the persisted-prefix\n"
        "      oracle plus fsck.  Deterministic for a fixed --seed.\n"
        "      --inject-skip-barrier K seeds a lost-barrier bug into the\n"
        "      replayer to validate the oracle (exits 0 iff caught);\n"
        "      otherwise exits 1 when any bug is found.\n"
        "  iocov bugstudy [--scale S] [--export]\n");
    return 2;
}

/// Sniffs the IOCT magic without reading the whole file.
bool file_is_ioct(const char* path) {
    std::ifstream in(path, std::ios::binary);
    char head[8] = {};
    in.read(head, sizeof head);
    return in.gcount() > 0 &&
           trace::is_ioct(std::string_view(
               head, static_cast<std::size_t>(in.gcount())));
}

/// Sniffs the IOCS snapshot magic (any version — version skew is
/// reported as a structured error at load time, not silently treated
/// as a text trace).
bool file_is_iocs(const char* path) {
    std::ifstream in(path, std::ios::binary);
    char head[8] = {};
    in.read(head, sizeof head);
    return in.gcount() >= 5 &&
           core::iocs_version(std::string_view(
                                  head,
                                  static_cast<std::size_t>(in.gcount())))
               .has_value();
}

std::optional<core::CoverageReport> load(const char* path) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "iocov: cannot open %s\n", path);
        return std::nullopt;
    }
    auto report = core::load_report(in);
    if (!report)
        std::fprintf(stderr, "iocov: %s is not a coverage report\n", path);
    return report;
}

void print_summary(const core::CoverageReport& report) {
    std::printf("events: %llu tracked / %llu seen\n\n",
                static_cast<unsigned long long>(report.events_tracked),
                static_cast<unsigned long long>(report.events_seen));
    std::vector<std::vector<std::string>> rows;
    for (const auto& row : core::summarize(report)) {
        rows.push_back({row.arg.empty() ? row.base + " (output)"
                                        : row.base + "." + row.arg,
                        std::to_string(row.declared),
                        std::to_string(row.tested),
                        report::fixed(100 * row.fraction, 1) + "%"});
    }
    std::printf("%s", report::render_table(
                          {"space", "partitions", "tested", "coverage"},
                          rows)
                          .c_str());
    const auto* flags = report.find_input("open", "flags");
    if (flags) {
        const auto pc = core::open_flag_pair_coverage(*flags);
        std::printf("\nopen-flag pair coverage: %zu/%zu (%.1f%%)\n",
                    pc.tested, pc.feasible, 100 * pc.fraction);
    }
}

int cmd_analyze(int argc, char** argv) {
    std::string mount = "/mnt/test";
    bool syz = false;
    bool extended = false;
    bool stats = false;
    unsigned threads = 1;
    const char* save_path = nullptr;
    const char* snapshot_path = nullptr;
    // Error budget: how many dropped inputs (malformed lines, corrupt
    // records, lost shards) the run tolerates before failing.  Default
    // is unbounded, matching the historical skip-and-continue behavior.
    std::optional<std::uint64_t> max_errors;
    std::vector<const char*> traces;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--mount") && i + 1 < argc) {
            mount = argv[++i];
        } else if (!std::strcmp(argv[i], "--syz")) {
            syz = true;
        } else if (!std::strcmp(argv[i], "--extended")) {
            extended = true;
        } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
            // 0 = auto (hardware concurrency); 1 = serial.
            threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (!std::strcmp(argv[i], "--stats")) {
            stats = true;
        } else if (!std::strcmp(argv[i], "--strict")) {
            max_errors = 0;
        } else if (!std::strcmp(argv[i], "--max-errors") && i + 1 < argc) {
            max_errors = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--save") && i + 1 < argc) {
            save_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--snapshot") && i + 1 < argc) {
            snapshot_path = argv[++i];
        } else {
            traces.push_back(argv[i]);
        }
    }
    if (traces.empty()) return usage();

    core::IOCov iocov(trace::FilterConfig::mount_point(mount),
                      extended ? core::extended_syscall_registry()
                               : core::syscall_registry());
    for (const char* path : traces) {
        std::error_code dir_ec;
        if (!syz && std::filesystem::is_directory(path, dir_ec)) {
            // Directory of IOCT traces: work-stealing multi-file
            // ingestion, bit-identical to analyzing the files one by
            // one in name order (each file gets its own filter state).
            const auto dir = iocov.consume_binary_dir(path, threads);
            if (!dir) {
                std::fprintf(stderr, "iocov: cannot open directory %s\n",
                             path);
                return 1;
            }
            std::printf("%s: analyzed %zu IOCT files (%zu non-IOCT "
                        "rejected, %zu torn records skipped)\n",
                        path, dir->files, dir->rejected, dir->dropped);
            continue;
        }
        if (!syz && file_is_iocs(path)) {
            // IOCS coverage snapshot: the analyzer state itself — merge
            // it directly, no event re-ingest.
            core::SnapshotError err;
            const auto snap = core::load_snapshot_file(path, &err);
            if (!snap) {
                std::fprintf(stderr, "iocov: %s: %s\n", path,
                             err.to_string().c_str());
                return 1;
            }
            iocov.merge(*snap);
            std::printf("%s: merged [IOCS snapshot] (%llu events seen)\n",
                        path,
                        static_cast<unsigned long long>(
                            snap->report.events_seen));
            continue;
        }
        if (!syz && file_is_ioct(path)) {
            // IOCT binary trace: mmap'd zero-copy ingestion.
            const auto dropped = iocov.consume_binary_file(path, threads);
            if (!dropped) {
                std::fprintf(stderr, "iocov: cannot open %s\n", path);
                return 1;
            }
            std::printf("%s: analyzed [IOCT] (%zu torn records skipped)\n",
                        path, *dropped);
            continue;
        }
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "iocov: cannot open %s\n", path);
            return 1;
        }
        if (syz) {
            const auto parsed = iocov.consume_syz(in);
            std::printf("%s: %zu syscalls parsed (input coverage only)\n",
                        path, parsed);
        } else {
            // --threads shards by pid; pid-sharded analysis is
            // bit-identical to serial for a fresh IOCov per run.
            const auto dropped = threads == 1
                                     ? iocov.consume_text(in)
                                     : iocov.consume_text_parallel(in,
                                                                   threads);
            std::printf("%s: analyzed (%zu malformed lines skipped)\n",
                        path, dropped);
        }
    }
    const auto& diags = iocov.diagnostics();
    if (max_errors && diags.total() > *max_errors) {
        std::fprintf(stderr,
                     "iocov: error budget exceeded (%llu dropped > "
                     "--max-errors %llu)\n%s",
                     static_cast<unsigned long long>(diags.total()),
                     static_cast<unsigned long long>(*max_errors),
                     diags.to_string().c_str());
        return 1;
    }
    if (diags.total() > 0)
        std::fprintf(stderr, "%s", diags.to_string().c_str());
    std::printf("\n");
    print_summary(iocov.report());
    if (stats) {
        const auto& is = iocov.ingest_stats();
        const double secs = is.seconds > 0 ? is.seconds : 1e-9;
        std::printf(
            "\ningest stats (binary paths):\n"
            "  events:   %llu decoded (%.2fM events/s)\n"
            "  bytes:    %llu ingested (%.1f MB/s)\n"
            "  files:    %llu across %u thread(s), %.3fs wall\n",
            static_cast<unsigned long long>(is.events),
            static_cast<double>(is.events) / secs / 1e6,
            static_cast<unsigned long long>(is.bytes),
            static_cast<double>(is.bytes) / secs / 1e6,
            static_cast<unsigned long long>(is.files), is.threads, secs);
        if (exec::has_allocation_counting()) {
            std::printf("  allocs:   %llu in the steady-state decode "
                        "loop\n",
                        static_cast<unsigned long long>(
                            is.hot_loop_allocs));
        } else {
            std::printf("  allocs:   (allocation counting unavailable "
                        "in this build)\n");
        }
    }
    if (save_path) {
        std::ofstream out(save_path);
        core::save_report(out, iocov.report());
        std::printf("\nreport saved to %s\n", save_path);
    }
    if (snapshot_path) {
        if (!core::save_snapshot_file(snapshot_path, iocov.snapshot())) {
            std::fprintf(stderr, "iocov: cannot write %s\n", snapshot_path);
            return 1;
        }
        std::printf("\nsnapshot saved to %s\n", snapshot_path);
    }
    return 0;
}

int cmd_merge(int argc, char** argv) {
    unsigned threads = 0;  // auto
    std::optional<std::uint64_t> max_errors;
    const char* out_path = nullptr;
    const char* json_path = nullptr;
    const char* label = nullptr;
    std::optional<std::uint64_t> timestamp;
    std::vector<const char*> inputs;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
            threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (!std::strcmp(argv[i], "--strict"))
            max_errors = 0;
        else if (!std::strcmp(argv[i], "--max-errors") && i + 1 < argc)
            max_errors = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--label") && i + 1 < argc)
            label = argv[++i];
        else if (!std::strcmp(argv[i], "--timestamp") && i + 1 < argc)
            timestamp = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else if (!std::strcmp(argv[i], "-o") && i + 1 < argc)
            out_path = argv[++i];
        else
            inputs.push_back(argv[i]);
    }
    if (!out_path || inputs.empty()) return usage();

    // Collect snapshots in argument order; each directory contributes
    // its name-sorted contents, so the full sequence — and with it the
    // pairwise merge tree — is deterministic for a given command line.
    core::SnapshotDirLoad all;
    for (const char* input : inputs) {
        std::error_code dir_ec;
        if (std::filesystem::is_directory(input, dir_ec)) {
            auto dir = core::load_snapshot_dir(input, threads);
            if (!dir) {
                std::fprintf(stderr, "iocov: cannot open directory %s\n",
                             input);
                return 1;
            }
            for (auto& ns : dir->snapshots)
                all.snapshots.push_back(std::move(ns));
            all.rejected += dir->rejected;
            all.bytes += dir->bytes;
            all.diags.merge(dir->diags);
            continue;
        }
        core::SnapshotError err;
        auto snap = core::load_snapshot_file(input, &err);
        if (snap) {
            all.bytes += std::filesystem::file_size(input, dir_ec);
            all.snapshots.push_back(
                {std::filesystem::path(input).filename().string(),
                 std::move(*snap)});
        } else {
            ++all.rejected;
            all.diags.record(0, err.offset,
                             std::string(input) + ": " + err.to_string());
        }
    }
    if (max_errors && all.rejected > *max_errors) {
        std::fprintf(stderr,
                     "iocov: error budget exceeded (%zu rejected > "
                     "--max-errors %llu)\n%s",
                     all.rejected,
                     static_cast<unsigned long long>(*max_errors),
                     all.diags.to_string().c_str());
        return 1;
    }
    if (all.rejected > 0)
        std::fprintf(stderr, "%s", all.diags.to_string().c_str());

    const std::size_t count = all.snapshots.size();
    auto merged = core::merge_snapshots(std::move(all.snapshots), threads);
    if (label) merged.label = label;
    if (timestamp) merged.timestamp = *timestamp;
    if (!core::save_snapshot_file(out_path, merged)) {
        std::fprintf(stderr, "iocov: cannot write %s\n", out_path);
        return 1;
    }
    std::printf("%s: merged %zu snapshots (%zu rejected, %llu events "
                "seen)\n",
                out_path, count, all.rejected,
                static_cast<unsigned long long>(merged.report.events_seen));
    if (json_path) {
        // Reconstruct the load-shaped struct the summary renders from
        // (snapshots were consumed by the merge; only counts matter).
        core::SnapshotDirLoad shape;
        shape.snapshots.resize(count);
        shape.rejected = all.rejected;
        shape.bytes = all.bytes;
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "iocov: cannot write %s\n", json_path);
            return 1;
        }
        out << core::merge_summary_json(shape, merged);
        std::printf("json summary saved to %s\n", json_path);
    }
    return 0;
}

int cmd_trend(int argc, char** argv) {
    report::TrendOptions opts;
    unsigned threads = 0;  // auto
    const char* json_path = nullptr;
    const char* dir = nullptr;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--window") && i + 1 < argc)
            opts.window_seconds = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--by-label"))
            opts.by_label = true;
        else if (!std::strcmp(argv[i], "--target") && i + 1 < argc)
            opts.target = std::atof(argv[++i]);
        else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
            threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else
            dir = argv[i];
    }
    if (!dir) return usage();
    auto load = core::load_snapshot_dir(dir, threads);
    if (!load) {
        std::fprintf(stderr, "iocov: cannot open directory %s\n", dir);
        return 1;
    }
    if (load->rejected > 0)
        std::fprintf(stderr, "%s", load->diags.to_string().c_str());
    const auto json =
        report::trend_json(load->snapshots, opts, threads);
    if (json_path) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "iocov: cannot write %s\n", json_path);
            return 1;
        }
        out << json;
        std::printf("trend (%zu snapshots, %zu rejected) saved to %s\n",
                    load->snapshots.size(), load->rejected, json_path);
    } else {
        std::printf("%s", json.c_str());
    }
    return 0;
}

int cmd_convert(int argc, char** argv) {
    if (argc != 2) return usage();
    const char* in_path = argv[0];
    const char* out_path = argv[1];

    if (file_is_ioct(in_path)) {
        // IOCT binary -> text.
        auto mapped = trace::MappedFile::open(in_path);
        if (!mapped) {
            std::fprintf(stderr, "iocov: cannot open %s\n", in_path);
            return 1;
        }
        std::size_t dropped = 0;
        const auto events = trace::decode_trace(mapped->data(), &dropped);
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "iocov: cannot write %s\n", out_path);
            return 1;
        }
        for (const auto& ev : events)
            out << trace::format_event(ev) << '\n';
        std::printf("%s -> %s: %zu events to text (%zu torn records "
                    "dropped)\n",
                    in_path, out_path, events.size(), dropped);
        return 0;
    }

    // Text -> IOCT binary.
    std::ifstream in(in_path);
    if (!in) {
        std::fprintf(stderr, "iocov: cannot open %s\n", in_path);
        return 1;
    }
    std::size_t dropped = 0;
    const auto events = trace::parse_stream(in, &dropped);
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "iocov: cannot write %s\n", out_path);
        return 1;
    }
    {
        trace::BinarySink sink(out);
        for (const auto& ev : events) sink.emit(ev);
        sink.finish();
    }
    std::printf("%s -> %s: %zu events to IOCT (%zu malformed lines "
                "dropped)\n",
                in_path, out_path, events.size(), dropped);
    return 0;
}

int cmd_report(int argc, char** argv) {
    bool untested = false;
    std::uint64_t under = 0;
    const char* path = nullptr;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--untested")) untested = true;
        else if (!std::strcmp(argv[i], "--under") && i + 1 < argc)
            under = std::strtoull(argv[++i], nullptr, 10);
        else path = argv[i];
    }
    if (!path) return usage();
    auto report = load(path);
    if (!report) return 1;

    if (untested) {
        for (const auto& gap : core::find_untested(*report))
            std::printf("%-8s %-10s %-18s %s\n",
                        gap.kind == core::UntestedPartition::Kind::Input
                            ? "input"
                            : "output",
                        gap.base.c_str(), gap.partition.c_str(),
                        gap.suggestion.c_str());
        return 0;
    }
    if (under > 0) {
        for (const auto& gap : core::find_under_tested(*report, under))
            std::printf("%-10s %-18s under-tested\n", gap.base.c_str(),
                        gap.partition.c_str());
        return 0;
    }
    print_summary(*report);
    return 0;
}

int cmd_diff(int argc, char** argv) {
    if (argc != 2) return usage();
    auto before = load(argv[0]);
    auto after = load(argv[1]);
    if (!before || !after) return 1;
    const auto deltas = core::diff_reports(*before, *after);
    for (const auto& d : deltas)
        std::printf("%-9s %s%s%s [%s] %llu -> %llu\n",
                    core::delta_kind_name(d.kind).c_str(), d.base.c_str(),
                    d.arg.empty() ? "" : ".", d.arg.c_str(),
                    d.partition.c_str(),
                    static_cast<unsigned long long>(d.before),
                    static_cast<unsigned long long>(d.after));
    const bool regressed = core::has_coverage_regression(*before, *after);
    std::printf("%zu deltas; regression: %s\n", deltas.size(),
                regressed ? "YES" : "no");
    return regressed ? 3 : 0;
}

int cmd_tcd(int argc, char** argv) {
    double target = 1000;
    std::string arg = "open.flags";
    const char* path = nullptr;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--target") && i + 1 < argc)
            target = std::atof(argv[++i]);
        else if (!std::strcmp(argv[i], "--arg") && i + 1 < argc)
            arg = argv[++i];
        else path = argv[i];
    }
    if (!path) return usage();
    auto report = load(path);
    if (!report) return 1;
    const auto dot = arg.find('.');
    if (dot == std::string::npos) return usage();
    const auto* in = report->find_input(arg.substr(0, dot),
                                        arg.substr(dot + 1));
    if (!in) {
        std::fprintf(stderr, "iocov: no input space %s\n", arg.c_str());
        return 1;
    }
    std::printf("TCD(%s, target=%g) = %.4f\n", arg.c_str(), target,
                core::tcd_uniform(in->hist, target));
    return 0;
}

int cmd_demo(int argc, char** argv) {
    std::string suite = "xfstests";
    double scale = 0.01;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--suite") && i + 1 < argc)
            suite = argv[++i];
        else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc)
            scale = std::atof(argv[++i]);
    }
    vfs::FileSystem fs(testers::recommended_fs_config());
    auto fx = testers::prepare_environment(fs, "/mnt/test");
    core::IOCov iocov;
    syscall::Kernel kernel(fs, &iocov.live_sink());
    if (suite == "crashmonkey")
        testers::run_crashmonkey(kernel, fx, scale, 42);
    else if (suite == "ltp")
        testers::run_ltp(kernel, fx, scale, 42);
    else
        testers::run_xfstests(kernel, fx, scale, 42);
    std::printf("suite: %s at scale %g\n\n", suite.c_str(), scale);
    print_summary(iocov.report());
    return 0;
}

int cmd_campaign(int argc, char** argv) {
    testers::CampaignConfig cfg;
    const char* save_path = nullptr;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--suite") && i + 1 < argc)
            cfg.suite = argv[++i];
        else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc)
            cfg.scale = std::atof(argv[++i]);
        else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc)
            cfg.seed = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--samples") && i + 1 < argc)
            cfg.occurrences_per_point = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (!std::strcmp(argv[i], "--runs") && i + 1 < argc)
            cfg.max_runs = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--chaos") && i + 1 < argc)
            cfg.chaos_runs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (!std::strcmp(argv[i], "--permille") && i + 1 < argc)
            cfg.chaos_permille = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (!std::strcmp(argv[i], "--mount") && i + 1 < argc)
            cfg.mount = argv[++i];
        else if (!std::strcmp(argv[i], "--extended"))
            cfg.extended_registry = true;
        else if (!std::strcmp(argv[i], "--save") && i + 1 < argc)
            save_path = argv[++i];
        else
            return usage();
    }
    if (cfg.suite != "crashmonkey" && cfg.suite != "xfstests" &&
        cfg.suite != "ltp") {
        std::fprintf(stderr, "iocov: unknown suite %s\n", cfg.suite.c_str());
        return 2;
    }
    const auto result = testers::run_campaign(cfg);
    std::printf("suite: %s at scale %g, seed %llu\n\n", cfg.suite.c_str(),
                cfg.scale,
                static_cast<unsigned long long>(cfg.seed));
    std::printf("%s\n", result.summary().c_str());
    print_summary(result.aggregate);
    if (save_path) {
        std::ofstream out(save_path);
        core::save_report(out, result.aggregate);
        std::printf("\naggregate report saved to %s\n", save_path);
    }
    return result.clean() ? 0 : 1;
}

int cmd_guide(int argc, char** argv) {
    testers::guided::GuideConfig cfg;
    const char* baseline_path = nullptr;
    const char* save_path = nullptr;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--suite") && i + 1 < argc)
            cfg.suite = argv[++i];
        else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc)
            cfg.scale = std::atof(argv[++i]);
        else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc)
            cfg.seed = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--rounds") && i + 1 < argc)
            cfg.max_rounds = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (!std::strcmp(argv[i], "--budget") && i + 1 < argc)
            cfg.call_budget = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--per-gap") && i + 1 < argc)
            cfg.calls_per_gap = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--target") && i + 1 < argc)
            cfg.target = std::atof(argv[++i]);
        else if (!std::strcmp(argv[i], "--mount") && i + 1 < argc)
            cfg.mount = argv[++i];
        else if (!std::strcmp(argv[i], "--extended"))
            cfg.extended_registry = true;
        else if (!std::strcmp(argv[i], "--baseline") && i + 1 < argc)
            baseline_path = argv[++i];
        else if (!std::strcmp(argv[i], "--save") && i + 1 < argc)
            save_path = argv[++i];
        else
            return usage();
    }
    if (cfg.suite != "crashmonkey" && cfg.suite != "xfstests" &&
        cfg.suite != "ltp") {
        std::fprintf(stderr, "iocov: unknown suite %s\n", cfg.suite.c_str());
        return 2;
    }
    testers::guided::GuideResult result;
    if (baseline_path) {
        auto baseline = load(baseline_path);
        if (!baseline) return 1;
        result = testers::guided::run_guide_on_baseline(*baseline, cfg);
    } else {
        result = testers::guided::run_guide(cfg);
    }
    std::printf("%s\n", result.summary().c_str());
    std::printf("%s", result.table().c_str());
    if (save_path) {
        std::ofstream out(save_path);
        core::save_report(out, result.final_report);
        std::printf("\nmerged report saved to %s\n", save_path);
    }
    return 0;
}

int cmd_crashtest(int argc, char** argv) {
    testers::crash::CrashTestConfig cfg;
    const char* json_path = nullptr;
    bool list = false;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--list")) {
            list = true;
        } else if (!std::strcmp(argv[i], "--workloads") && i + 1 < argc) {
            // Comma-separated workload names.
            std::string arg = argv[++i];
            std::size_t pos = 0;
            while (pos <= arg.size()) {
                const std::size_t comma = arg.find(',', pos);
                const std::string name =
                    arg.substr(pos, comma == std::string::npos
                                        ? std::string::npos
                                        : comma - pos);
                if (!name.empty()) cfg.workloads.push_back(name);
                if (comma == std::string::npos) break;
                pos = comma + 1;
            }
        } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
            cfg.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--reorders") && i + 1 < argc) {
            cfg.reorder_variants = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (!std::strcmp(argv[i], "--no-torn")) {
            cfg.torn_writes = false;
        } else if (!std::strcmp(argv[i], "--max-points") && i + 1 < argc) {
            cfg.max_points_per_workload =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--target") && i + 1 < argc) {
            cfg.tcd_target = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--inject-skip-barrier") &&
                   i + 1 < argc) {
            cfg.inject_skip_barrier =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            return usage();
        }
    }
    if (list) {
        for (const auto& wl : testers::crash::crashmonkey_baseline())
            std::printf("%-22s %s\n", wl.name.c_str(),
                        wl.description.c_str());
        return 0;
    }
    for (const auto& name : cfg.workloads) {
        bool known = false;
        for (const auto& wl : testers::crash::crashmonkey_baseline())
            known = known || wl.name == name;
        if (!known) {
            std::fprintf(stderr, "iocov: unknown workload %s "
                                 "(try --list)\n",
                         name.c_str());
            return 2;
        }
    }
    const auto report = testers::crash::run_crashtest(cfg);
    std::printf("%s", report.to_string().c_str());
    if (json_path) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "iocov: cannot write %s\n", json_path);
            return 1;
        }
        out << report.to_json();
        std::printf("json report saved to %s\n", json_path);
    }
    if (cfg.inject_skip_barrier) {
        // Validation mode: the seeded lost-barrier bug must be caught.
        const bool caught = report.total_bugs > 0;
        std::printf("seeded skip-barrier bug: %s\n",
                    caught ? "CAUGHT" : "MISSED");
        return caught ? 0 : 1;
    }
    return report.total_bugs == 0 ? 0 : 1;
}

int cmd_bugstudy(int argc, char** argv) {
    double scale = 0.01;
    bool export_dataset = false;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--scale") && i + 1 < argc)
            scale = std::atof(argv[++i]);
        else if (!std::strcmp(argv[i], "--export"))
            export_dataset = true;
    }
    if (export_dataset) {
        // The dataset the paper promises to release: per-bug coverage
        // sites, classification, and trigger.
        std::printf("%s", bugstudy::render_bug_dataset().c_str());
        return 0;
    }
    const auto r = bugstudy::run_bug_study({scale, 42});
    std::printf("bug study (%d bugs: %d ext4 + %d btrfs), xfstests-sim at "
                "scale %g\n\n",
                r.total, r.ext4, r.btrfs, scale);
    std::printf("detected: %d\n", r.detected);
    std::printf("covered-but-missed: line %d (%.0f%%), function %d "
                "(%.0f%%), branch %d (%.0f%%)\n",
                r.line_cbm, r.pct(r.line_cbm), r.fn_cbm, r.pct(r.fn_cbm),
                r.branch_cbm, r.pct(r.branch_cbm));
    std::printf("classification: input %d (%.0f%%), output %d (%.0f%%), "
                "either %d (%.0f%%)\n\n",
                r.input_bugs, r.pct(r.input_bugs), r.output_bugs,
                r.pct(r.output_bugs), r.either_bugs, r.pct(r.either_bugs));
    std::printf("%-14s %-4s %-4s %-6s %-8s %s\n", "id", "line", "fn",
                "branch", "detected", "description");
    for (const auto& o : r.outcomes)
        std::printf("%-14s %-4s %-4s %-6s %-8s %.60s\n",
                    o.bug->id.c_str(), o.line_covered ? "y" : "-",
                    o.fn_covered ? "y" : "-", o.branch_covered ? "y" : "-",
                    o.detected ? "FOUND" : "-",
                    o.bug->description.c_str());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "analyze") return cmd_analyze(argc - 2, argv + 2);
    if (cmd == "convert") return cmd_convert(argc - 2, argv + 2);
    if (cmd == "merge") return cmd_merge(argc - 2, argv + 2);
    if (cmd == "trend") return cmd_trend(argc - 2, argv + 2);
    if (cmd == "report") return cmd_report(argc - 2, argv + 2);
    if (cmd == "diff") return cmd_diff(argc - 2, argv + 2);
    if (cmd == "tcd") return cmd_tcd(argc - 2, argv + 2);
    if (cmd == "demo") return cmd_demo(argc - 2, argv + 2);
    if (cmd == "campaign") return cmd_campaign(argc - 2, argv + 2);
    if (cmd == "guide") return cmd_guide(argc - 2, argv + 2);
    if (cmd == "crashtest") return cmd_crashtest(argc - 2, argv + 2);
    if (cmd == "bugstudy") return cmd_bugstudy(argc - 2, argv + 2);
    return usage();
}
