#include "testers/profile.hpp"

#include "abi/fcntl.hpp"
#include "abi/seek.hpp"

namespace iocov::testers {

using namespace iocov::abi;  // NOLINT: flag constants read better unqualified

TesterProfile crashmonkey_profile() {
    TesterProfile p;
    p.name = "CrashMonkey";
    p.persistence_heavy = true;
    p.variant_permille = 20;  // the harness occasionally uses openat

    // Calibrated to Fig. 2 (O_RDONLY = 7,924) and Table 1's cardinality
    // rows (1:9.3%, 2:2.8%, 3:22.1%, 4:65.4%, 5:0.5%, 6:0), with ~99.5%
    // of opens including O_RDONLY so the "O_RDONLY" row tracks "all".
    p.open_combos = {
        {O_RDONLY, 737},
        {O_WRONLY, 4},
        {O_RDONLY | O_CLOEXEC, 222},
        {O_RDONLY | O_DIRECTORY | O_CLOEXEC, 1735},
        {O_RDWR | O_CREAT | O_DIRECT, 25},
        {O_RDONLY | O_CREAT | O_DIRECT | O_SYNC, 2592},
        {O_RDONLY | O_DIRECTORY | O_NOFOLLOW | O_CLOEXEC, 2598},
        {O_WRONLY | O_CREAT | O_TRUNC | O_DIRECT, 10},
        {O_RDONLY | O_CREAT | O_EXCL | O_DIRECT | O_SYNC, 40},
    };

    // Fig. 3: CrashMonkey exercises only a handful of small write-size
    // buckets (log2 10-16) and never writes 0 bytes.
    p.write_sizes = {
        {false, 10, 900, false, 0},
        {false, 12, 4200, false, 0},
        {false, 13, 1100, false, 0},
        {false, 15, 600, false, 0},
        {false, 16, 1500, false, 0},
    };
    p.read_sizes = {
        {false, 12, 2400, false, 0},
        {false, 16, 800, false, 0},
    };
    p.truncate_lengths = {
        {true, 0, 150, false, 0},
        {false, 12, 150, false, 0},
    };
    p.lseek_whences = {
        {SEEK_SET_, 1200},
    };
    p.mkdir_modes = {
        {0755, 450},
    };
    // CrashMonkey does not exercise chmod or xattrs at all (untested
    // input spaces the paper highlights).
    p.chmod_modes = {};
    p.xattr_set_sizes = {};
    p.xattr_get_sizes = {};

    p.chdir_count = 600;
    p.chdir_diverse = false;

    // Fig. 4: only four open error codes, and ENOTDIR *more* often than
    // xfstests (the one code where CrashMonkey wins).
    p.error_targets = {
        {"open",
         {{Err::ENOENT_, 310},
          // EEXIST needs O_CREAT|O_EXCL, whose only CrashMonkey combo
          // has 40 uses total (Table 1's 0.5% five-flag share) — the
          // error target must fit inside that marginal.
          {Err::EEXIST_, 40},
          {Err::ENOTDIR_, 880},
          {Err::EISDIR_, 45}}},
        {"write", {{Err::EBADF_, 25}}},
        {"read", {{Err::EBADF_, 25}}},
        {"close", {{Err::EBADF_, 40}}},
        {"mkdir", {{Err::EEXIST_, 60}}},
    };
    return p;
}

TesterProfile xfstests_profile() {
    TesterProfile p;
    p.name = "xfstests";
    p.variant_permille = 180;

    // Calibrated to Fig. 2 (O_RDONLY = 4,099,770) and Table 1
    // (all: 6.1/28.2/18.2/46.8/0.5/0.4; O_RDONLY: 6.0/30.8/10.5/51.9/
    // 0.5/0.3).  O_RDONLY-containing opens are ~85% of the total.
    p.open_combos = {
        // -- 1 flag --
        {O_RDONLY, 245986},
        {O_WRONLY, 30000},
        {O_RDWR, 18233},
        // -- 2 flags --
        {O_RDONLY | O_DIRECTORY, 700000},
        {O_RDONLY | O_CLOEXEC, 400000},
        {O_RDONLY | O_NOFOLLOW, 162729},
        {O_RDWR | O_CREAT, 60000},
        {O_WRONLY | O_APPEND, 37430},
        // -- 3 flags --
        {O_RDONLY | O_DIRECTORY | O_CLOEXEC, 250000},
        {O_RDONLY | O_CREAT | O_NONBLOCK, 100476},
        {O_RDONLY | O_SYNC | O_CLOEXEC, 80000},
        {O_WRONLY | O_CREAT | O_TRUNC, 400000},
        {O_RDWR | O_CREAT | O_EXCL, 47357},
        // -- 4 flags --
        {O_RDONLY | O_DIRECTORY | O_NOFOLLOW | O_CLOEXEC, 1500000},
        {O_RDONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 627781},
        {O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 80000},
        {O_RDWR | O_CREAT | O_DIRECT | O_DSYNC, 49504},
        // -- 5 flags --
        {O_RDONLY | O_CREAT | O_EXCL | O_NONBLOCK | O_CLOEXEC, 20499},
        {O_WRONLY | O_CREAT | O_EXCL | O_TRUNC | O_CLOEXEC, 3617},
        // -- 6 flags --
        {O_RDONLY | O_CREAT | O_EXCL | O_TRUNC | O_NONBLOCK | O_CLOEXEC,
         12299},
        {O_RDWR | O_CREAT | O_EXCL | O_APPEND | O_DSYNC | O_CLOEXEC, 6994},
    };

    // Fig. 3: xfstests covers "=0" and every bucket up to 2^28, with the
    // largest observed write exactly 258 MiB; nothing above that even
    // though 64-bit systems (and ext4's 16 TiB files) would allow it.
    p.write_sizes = {
        {true, 0, 5200, false, 0},        // write(fd, buf, 0)
        {false, 0, 310000, false, 0},     {false, 1, 160000, false, 0},
        {false, 2, 150000, false, 0},     {false, 3, 120000, false, 0},
        {false, 4, 130000, false, 0},     {false, 5, 95000, false, 0},
        {false, 6, 88000, false, 0},      {false, 7, 76000, false, 0},
        {false, 8, 240000, false, 0},     {false, 9, 450000, false, 0},
        {false, 10, 90000, false, 0},     {false, 11, 85000, false, 0},
        {false, 12, 980000, false, 0},    {false, 13, 130000, false, 0},
        {false, 14, 76000, false, 0},     {false, 15, 64000, false, 0},
        {false, 16, 310000, false, 0},    {false, 17, 28000, false, 0},
        {false, 18, 21000, false, 0},     {false, 19, 16000, false, 0},
        {false, 20, 52000, false, 0},     {false, 21, 8200, false, 0},
        {false, 22, 4600, false, 0},      {false, 23, 2900, false, 0},
        {false, 24, 2100, false, 0},      {false, 25, 640, false, 0},
        {false, 26, 230, false, 0},       {false, 27, 85, false, 0},
        // The single largest write: 258 MiB (the Fig. 3 annotation).
        {false, 28, 12, true, 258ULL << 20},
    };
    p.read_sizes = {
        {true, 0, 2100, false, 0},     {false, 0, 120000, false, 0},
        {false, 4, 60000, false, 0},   {false, 9, 220000, false, 0},
        {false, 12, 640000, false, 0}, {false, 14, 48000, false, 0},
        {false, 16, 150000, false, 0}, {false, 20, 21000, false, 0},
        {false, 22, 3400, false, 0},   {false, 24, 900, false, 0},
    };
    p.truncate_lengths = {
        {true, 0, 42000, false, 0},    {false, 9, 5200, false, 0},
        {false, 12, 18000, false, 0},  {false, 16, 7400, false, 0},
        {false, 20, 3100, false, 0},   {false, 24, 800, false, 0},
        {false, 30, 120, false, 0},
    };
    p.lseek_whences = {
        {SEEK_SET_, 310000},
        {SEEK_CUR_, 52000},
        {SEEK_END_, 48000},
        {SEEK_DATA_, 6200},
        {SEEK_HOLE_, 6100},
    };
    p.mkdir_modes = {
        {0755, 88000}, {0777, 21000}, {0700, 9800},
        {0000, 340},   {01777, 520},  {02755, 180},
    };
    p.chmod_modes = {
        {0644, 26000}, {0755, 14000}, {0600, 8800}, {0000, 900},
        {0444, 2100},  {04755, 310},  {02755, 280}, {0777, 5200},
    };
    p.xattr_set_sizes = {
        {true, 0, 800, false, 0},     {false, 2, 2400, false, 0},
        {false, 4, 6800, false, 0},   {false, 6, 3100, false, 0},
        {false, 8, 1900, false, 0},   {false, 10, 850, false, 0},
        {false, 12, 420, false, 0},   {false, 14, 160, false, 0},
        // Largest value xfstests ever sets: 32 KiB on the nose.  The
        // XATTR_SIZE_MAX boundary (65536) stays untested — which is how
        // the paper's Fig. 1 lsetxattr bug slipped past the suite.
        {false, 15, 40, true, 32768},
    };
    p.xattr_get_sizes = {
        {true, 0, 3200, false, 0},  // size-probe calls
        {false, 6, 2600, false, 0},
        {false, 8, 5200, false, 0},
        {false, 12, 900, false, 0},
    };

    p.chdir_count = 26000;
    p.chdir_diverse = true;

    // Fig. 4: xfstests beats CrashMonkey on every open error except
    // ENOTDIR; 12 of the 27 documented codes stay untested (ENOMEM,
    // EINTR, EAGAIN, EDQUOT, E2BIG, ENODEV, ENFILE, EFBIG, EXDEV,
    // EOVERFLOW, ETXTBSY is tested, ...).
    p.error_targets = {
        {"open",
         {{Err::ENOENT_, 196000},
          {Err::EEXIST_, 21000},
          {Err::EACCES_, 5200},
          {Err::EISDIR_, 3100},
          {Err::EINVAL_, 1900},
          {Err::ENAMETOOLONG_, 820},
          {Err::ELOOP_, 640},
          {Err::EROFS_, 410},
          {Err::ENOTDIR_, 150},
          {Err::EPERM_, 85},
          {Err::ETXTBSY_, 52},
          {Err::ENXIO_, 38},
          {Err::EBUSY_, 31},
          {Err::EFAULT_, 18},
          {Err::EMFILE_, 9}}},
        {"write",
         {{Err::EBADF_, 1400},
          {Err::EFBIG_, 120},
          {Err::ENOSPC_, 260},
          {Err::EFAULT_, 45}}},
        {"read",
         {{Err::EBADF_, 1400}, {Err::EISDIR_, 380}, {Err::EFAULT_, 45}}},
        {"lseek",
         {{Err::EBADF_, 300}, {Err::EINVAL_, 520}, {Err::ENXIO_, 240}}},
        {"truncate",
         {{Err::ENOENT_, 900},
          {Err::EISDIR_, 240},
          {Err::EACCES_, 310},
          {Err::EINVAL_, 410},
          {Err::EFBIG_, 60}}},
        {"mkdir",
         {{Err::EEXIST_, 5200},
          {Err::ENOENT_, 2400},
          {Err::EACCES_, 480},
          {Err::ENAMETOOLONG_, 160}}},
        {"chmod",
         {{Err::ENOENT_, 1900}, {Err::EPERM_, 420}}},
        {"close", {{Err::EBADF_, 2600}}},
        {"chdir",
         {{Err::ENOENT_, 840},
          {Err::ENOTDIR_, 310},
          {Err::EACCES_, 120}}},
        {"setxattr",
         {{Err::ENODATA_, 620},
          {Err::EEXIST_, 540},
          {Err::E2BIG_, 85},
          {Err::ERANGE_, 64},
          {Err::EOPNOTSUPP_, 120},
          {Err::ENOSPC_, 96}}},
        {"getxattr",
         {{Err::ENODATA_, 2800}, {Err::ERANGE_, 410}}},
    };
    return p;
}

TesterProfile ltp_profile() {
    TesterProfile p;
    p.name = "LTP";
    p.variant_permille = 300;  // conformance suites exercise variants hard

    // Wide but shallow: each combination a few hundred times, one combo
    // per cardinality class; every access mode appears.
    p.open_combos = {
        {O_RDONLY, 2200},
        {O_WRONLY, 800},
        {O_RDWR, 900},
        {O_RDONLY | O_CLOEXEC, 400},
        {O_WRONLY | O_APPEND, 350},
        {O_RDONLY | O_DIRECTORY, 450},
        {O_RDONLY | O_NONBLOCK, 300},
        {O_WRONLY | O_CREAT | O_TRUNC, 700},
        {O_RDWR | O_CREAT | O_EXCL, 320},
        {O_RDONLY | O_NOFOLLOW | O_CLOEXEC, 180},
        {O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 150},
        {O_RDWR | O_CREAT | O_DIRECT | O_DSYNC, 90},
        {O_RDONLY | O_SYNC | O_CLOEXEC, 80},
        {O_RDONLY | O_NOATIME, 12},
        {O_WRONLY | O_CREAT | O_EXCL | O_TRUNC | O_CLOEXEC, 40},
    };
    // Conformance sweeps hit the documented boundaries deliberately:
    // zero, one byte, a page, odd sizes — but no giant writes.
    p.write_sizes = {
        {true, 0, 120, false, 0},  {false, 0, 450, false, 0},
        {false, 3, 260, false, 0}, {false, 9, 380, false, 0},
        {false, 12, 520, false, 0}, {false, 16, 140, false, 0},
        {false, 20, 25, false, 0},
    };
    p.read_sizes = {
        {true, 0, 80, false, 0},
        {false, 0, 300, false, 0},
        {false, 12, 420, false, 0},
        {false, 16, 110, false, 0},
    };
    p.truncate_lengths = {
        {true, 0, 160, false, 0},
        {false, 9, 90, false, 0},
        {false, 12, 120, false, 0},
        {false, 20, 30, false, 0},
    };
    p.lseek_whences = {
        {SEEK_SET_, 900}, {SEEK_CUR_, 450}, {SEEK_END_, 420},
        {SEEK_DATA_, 60}, {SEEK_HOLE_, 60},
    };
    p.mkdir_modes = {
        {0755, 500}, {0777, 140}, {0700, 120}, {0000, 60}, {01777, 40},
        {04755, 24}, {02755, 24},
    };
    p.chmod_modes = {
        {0644, 260}, {0755, 180}, {0000, 90}, {0444, 80}, {0222, 70},
        {0111, 70},  {04755, 40}, {02755, 40}, {01777, 40}, {0777, 90},
    };
    p.xattr_set_sizes = {
        {true, 0, 60, false, 0},
        {false, 4, 180, false, 0},
        {false, 8, 90, false, 0},
        {false, 12, 40, false, 0},
    };
    p.xattr_get_sizes = {
        {true, 0, 120, false, 0},
        {false, 7, 160, false, 0},
    };
    p.chdir_count = 800;
    p.chdir_diverse = true;

    // The conformance mandate: every documented error gets a test.
    p.error_targets = {
        {"open",
         {{Err::ENOENT_, 260},
          {Err::EEXIST_, 120},
          {Err::EACCES_, 140},
          {Err::EISDIR_, 80},
          {Err::ENOTDIR_, 90},
          {Err::EINVAL_, 60},
          {Err::ENAMETOOLONG_, 70},
          {Err::ELOOP_, 60},
          {Err::EROFS_, 50},
          {Err::EPERM_, 24},
          {Err::ETXTBSY_, 20},
          {Err::ENXIO_, 20},
          {Err::EBUSY_, 16},
          {Err::ENODEV_, 16},
          {Err::EFAULT_, 30},
          {Err::EMFILE_, 12}}},
        {"write",
         {{Err::EBADF_, 90},
          {Err::EFBIG_, 20},
          {Err::ENOSPC_, 30},
          {Err::EFAULT_, 40}}},
        {"read",
         {{Err::EBADF_, 90}, {Err::EISDIR_, 40}, {Err::EFAULT_, 40}}},
        {"lseek",
         {{Err::EBADF_, 60}, {Err::EINVAL_, 80}, {Err::ENXIO_, 30}}},
        {"truncate",
         {{Err::ENOENT_, 60},
          {Err::EISDIR_, 30},
          {Err::EACCES_, 40},
          {Err::EINVAL_, 50},
          {Err::EFBIG_, 12}}},
        {"mkdir",
         {{Err::EEXIST_, 80},
          {Err::ENOENT_, 60},
          {Err::EACCES_, 40},
          {Err::ENAMETOOLONG_, 30}}},
        {"chmod", {{Err::ENOENT_, 60}, {Err::EPERM_, 40}}},
        {"close", {{Err::EBADF_, 120}}},
        {"chdir",
         {{Err::ENOENT_, 60}, {Err::ENOTDIR_, 40}, {Err::EACCES_, 30}}},
        {"setxattr",
         {{Err::ENODATA_, 40},
          {Err::EEXIST_, 40},
          {Err::E2BIG_, 16},
          {Err::ERANGE_, 16},
          {Err::EOPNOTSUPP_, 20},
          {Err::ENOSPC_, 12}}},
        {"getxattr", {{Err::ENODATA_, 60}, {Err::ERANGE_, 30}}},
    };
    return p;
}

}  // namespace iocov::testers
