// Test-environment fixtures: the file-system state both simulated
// testers run against.
//
// Mirrors what a real tester's setup phase (mkfs + fixture scripts)
// provides: a writable mount point plus the special objects that make
// hard error paths reachable — permission-denied files, symlink loops,
// device nodes in various broken states, a running executable, a file
// too large for 32-bit offsets, and a directory marked as a mount
// boundary.
#pragma once

#include <string>

#include "vfs/filesystem.hpp"

namespace iocov::testers {

struct Fixtures {
    std::string mount;          ///< e.g. "/mnt/test"
    std::string scratch;        ///< mount + "/scratch" (0777, free for all)
    std::string fixture_dir;    ///< mount + "/fixtures"
    std::string plain_file;     ///< small regular file with data
    std::string noperm_file;    ///< mode 0000, owned by root
    std::string noperm_dir;     ///< mode 0000 directory
    std::string loop_link;      ///< symlink loop head (a -> b -> a)
    std::string dangling_link;  ///< symlink to a missing target
    std::string busy_dev;       ///< block device, opens fail EBUSY
    std::string nodriver_dev;   ///< char device, opens fail ENODEV
    std::string nounit_dev;     ///< char device, opens fail ENXIO
    std::string fifo;           ///< fifo with no reader
    std::string running_exe;    ///< executing binary (write -> ETXTBSY)
    std::string big_file;       ///< sparse 3 GiB file (EOVERFLOW bait)
    std::string inner_mount;    ///< directory marked as a mount boundary
    std::string deep_dir;       ///< nested directory chain
};

/// Builds the fixture tree under `mount` directly through the VFS API
/// (the way mkfs/fixture scripts prepare a device before a tester runs,
/// outside the traced workload).
Fixtures prepare_environment(vfs::FileSystem& fs, const std::string& mount);

}  // namespace iocov::testers
