#include "testers/fixtures.hpp"

#include <cassert>

#include "vfs/path.hpp"

namespace iocov::testers {

namespace {

/// mkdir -p through the VFS API as root.
vfs::InodeId mkdirs(vfs::FileSystem& fs, const std::string& path,
                    abi::mode_t_ perm = 0755) {
    const auto root_cred = vfs::Credentials::root();
    vfs::InodeId cur = vfs::kRootInode;
    for (const auto& comp : vfs::split_path(path)) {
        auto resolved = fs.resolve("/", root_cred);  // keep clock moving
        (void)resolved;
        const vfs::Inode* dir = fs.find(cur);
        assert(dir && dir->is_dir());
        auto it = dir->dirents.find(comp);
        if (it != dir->dirents.end()) {
            cur = it->second;
            continue;
        }
        auto made = fs.make_dir(cur, comp, perm, root_cred);
        assert(made.ok());
        cur = made.value();
    }
    return cur;
}

}  // namespace

Fixtures prepare_environment(vfs::FileSystem& fs, const std::string& mount) {
    const auto root = vfs::Credentials::root();
    Fixtures fx;
    fx.mount = mount;
    fx.scratch = mount + "/scratch";
    fx.fixture_dir = mount + "/fixtures";

    mkdirs(fs, mount, 0755);
    const vfs::InodeId mount_ino = fs.resolve(mount, root).value();
    // World-writable scratch area so unprivileged workload processes can
    // create and delete freely.
    const vfs::InodeId scratch = fs.make_dir(mount_ino, "scratch",
                                             0777, root).value();
    (void)scratch;
    const vfs::InodeId fxdir =
        fs.make_dir(mount_ino, "fixtures", 0755, root).value();

    auto file_with_data = [&](vfs::InodeId dir, const char* name,
                              abi::mode_t_ perm,
                              std::uint64_t size) -> vfs::InodeId {
        auto ino = fs.create_file(dir, name, perm, root).value();
        if (size) {
            const auto w = fs.write_pattern(ino, 0, size, std::byte{0x5a});
            assert(w.ok());
            (void)w;
        }
        return ino;
    };

    fx.plain_file = fx.fixture_dir + "/plain";
    file_with_data(fxdir, "plain", 0644, 4096);

    fx.noperm_file = fx.fixture_dir + "/noperm";
    file_with_data(fxdir, "noperm", 0000, 128);

    fx.noperm_dir = fx.fixture_dir + "/noperm_dir";
    auto npd = fs.make_dir(fxdir, "noperm_dir", 0755, root).value();
    fs.create_file(npd, "inside", 0644, root);
    fs.chmod(npd, 0000, root);

    fx.loop_link = fx.fixture_dir + "/loop_a";
    fs.make_symlink(fxdir, "loop_a", fx.fixture_dir + "/loop_b", root);
    fs.make_symlink(fxdir, "loop_b", fx.fixture_dir + "/loop_a", root);

    fx.dangling_link = fx.fixture_dir + "/dangling";
    fs.make_symlink(fxdir, "dangling", fx.fixture_dir + "/nowhere", root);

    fx.busy_dev = fx.fixture_dir + "/busy_dev";
    fs.make_special(fxdir, "busy_dev", abi::S_IFBLK | 0644,
                    vfs::DeviceState::Busy, root);
    fx.nodriver_dev = fx.fixture_dir + "/nodriver_dev";
    fs.make_special(fxdir, "nodriver_dev", abi::S_IFCHR | 0644,
                    vfs::DeviceState::NoDriver, root);
    fx.nounit_dev = fx.fixture_dir + "/nounit_dev";
    fs.make_special(fxdir, "nounit_dev", abi::S_IFCHR | 0644,
                    vfs::DeviceState::NoUnit, root);

    fx.fifo = fx.fixture_dir + "/fifo";
    fs.make_special(fxdir, "fifo", abi::S_IFIFO | 0666,
                    vfs::DeviceState::None, root);

    fx.running_exe = fx.fixture_dir + "/running_exe";
    auto exe = file_with_data(fxdir, "running_exe", 0755, 8192);
    fs.find_mutable(exe)->executing = true;

    fx.big_file = fx.fixture_dir + "/big3g";
    auto big = fs.create_file(fxdir, "big3g", 0666, root).value();
    // Sparse: 3 GiB of size, zero allocated blocks.
    fs.truncate(big, 3ULL << 30);

    fx.inner_mount = fx.fixture_dir + "/inner_mount";
    auto inner = fs.make_dir(fxdir, "inner_mount", 0755, root).value();
    fs.find_mutable(inner)->mountpoint = true;

    fx.deep_dir = fx.fixture_dir + "/d1/d2/d3/d4";
    mkdirs(fs, fx.deep_dir, 0755);

    return fx;
}

}  // namespace iocov::testers
