// Fault-space exploration campaigns.
//
// The paper observes that environmental errnos (EIO, ENOMEM, EINTR,
// ENOSPC) are the output partitions file-system testers reach least:
// argument validation alone cannot produce them, so a fault-free replay
// of any suite leaves those buckets empty.  A campaign closes that gap
// systematically: it replays one generated workload many times, arming
// exactly one (op, errno, k-th occurrence) fault point per run, and
// verifies three properties after every injected run —
//
//   1. the injector actually fired (the k-th occurrence exists, which
//      the fault-free baseline's per-op counts guarantee by
//      construction);
//   2. the syscall layer surfaced the injected errno faithfully (the
//      trace contains at least as many `op -> -errno` events as the
//      injector reports fired);
//   3. the file system still satisfies every fsck invariant — an
//      injected fault must make a syscall fail, never corrupt state.
//
// Coverage flows through the ordinary IOCov report path: each run's
// trace is analyzed live, the per-run reports merge into one aggregate
// CoverageReport, and the campaign diffs its errno output partitions
// against the fault-free baseline to name exactly which buckets fault
// injection newly reached.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "abi/errno.hpp"
#include "core/coverage.hpp"

namespace iocov::testers {

struct CampaignConfig {
    /// Suite profile to replay: "crashmonkey", "xfstests", or "ltp".
    std::string suite = "crashmonkey";
    /// Workload scale per run.  Campaigns run the workload dozens of
    /// times, so the default is much lighter than demo/bench scales.
    double scale = 0.002;
    /// Workload seed.  Every run replays the same seed; runs differ
    /// only in which fault is armed.
    std::uint64_t seed = 42;
    /// Errnos to inject at every fault point.  The default is the
    /// paper's hard-to-reach environmental set.
    std::vector<abi::Err> errors = {abi::Err::EIO_, abi::Err::ENOMEM_,
                                    abi::Err::EINTR_, abi::Err::ENOSPC_};
    /// Occurrences sampled per (op, errno): k-th occurrence targets are
    /// spaced evenly across the op's baseline call count.
    unsigned occurrences_per_point = 1;
    /// Probabilistic chaos runs appended after the systematic sweep.
    /// Each arms a seeded "*" fault per configured errno.
    unsigned chaos_runs = 2;
    /// Per-call fault probability (in 1/1000) for chaos runs.
    unsigned chaos_permille = 5;
    /// Bounded sweep: 0 runs every planned point; otherwise at most
    /// this many injected runs, subsampled evenly across the plan.
    std::size_t max_runs = 0;
    std::string mount = "/mnt/test";
    /// Analyze with extended_syscall_registry() instead of the paper's
    /// 27-variant registry.
    bool extended_registry = false;
};

/// One armed fault: fail op's (skip+1)-th occurrence with err.
struct FaultPoint {
    std::string op;  ///< syscall variant name as traced ("pwrite64")
    abi::Err err = abi::Err::EIO_;
    unsigned skip = 0;
};

/// Outcome of one injected run.
struct CampaignRun {
    FaultPoint point;            ///< armed point ("*" op for chaos runs)
    bool probabilistic = false;  ///< chaos run (seeded probabilistic arm)
    std::uint64_t fired = 0;     ///< faults the injector reports fired
    /// Fired faults whose errno the trace does NOT surface at least as
    /// often as the injector fired it (must be 0: property 2 above).
    std::uint64_t unsurfaced = 0;
    std::size_t fsck_violations = 0;

    bool faithful() const { return unsurfaced == 0; }
};

struct CampaignResult {
    core::CoverageReport baseline;   ///< fault-free run
    core::CoverageReport aggregate;  ///< baseline + every injected run
    std::vector<CampaignRun> runs;

    std::size_t points_planned = 0;  ///< before max_runs subsampling
    std::size_t sweep_runs = 0;      ///< systematic one-shot runs executed
    std::size_t chaos_runs = 0;      ///< probabilistic runs executed
    std::uint64_t faults_fired = 0;
    /// Runs violating property 2 (injected errno not surfaced) and the
    /// total fsck violations across every run (property 3).  Both stay
    /// 0 on a healthy kernel model.
    std::size_t unfaithful_runs = 0;
    std::size_t fsck_violations = 0;
    std::size_t baseline_fsck_violations = 0;
    /// First few fsck violation strings, for diagnosis.
    std::vector<std::string> fsck_details;
    /// Errno output partitions ("base:ERRNO") with a nonzero count in
    /// the aggregate but zero in the baseline — the coverage the
    /// campaign bought.
    std::vector<std::string> new_output_partitions;

    bool clean() const {
        return unfaithful_runs == 0 && fsck_violations == 0 &&
               baseline_fsck_violations == 0;
    }

    /// Human-readable campaign summary (verdict, run counts, newly
    /// reached partitions).
    std::string summary() const;
};

/// Runs a full campaign: baseline, systematic (op, errno, occurrence)
/// sweep, then chaos runs.  Deterministic for a fixed config.
CampaignResult run_campaign(const CampaignConfig& config);

}  // namespace iocov::testers
