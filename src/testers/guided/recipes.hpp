// Gap → syscall-recipe planning: the synthesize half of the guide loop.
//
// plan_gaps() turns a structured GapReport (core/gap) into three kinds
// of executable work:
//
//   1. a synthetic TesterProfile — open-flag combos, lseek whences,
//      mkdir/chmod modes, and error-scenario targets that TesterSim's
//      existing phases know how to drive (reuse, not reimplementation);
//   2. DirectRecipes — single-call argument constructions the profile
//      machinery has no phase for (exact numeric buckets, path shapes,
//      xattr flag values, output-size probes);
//   3. FaultRecipes — errno output partitions no argument construction
//      can reach (EIO, ENOMEM, EINTR, ...): arm a one-shot
//      FaultInjector point on the base variant and issue a benign call.
//
// Gaps nothing can address are returned with a reason instead of being
// silently dropped; the guide loop reports them.  Everything here is a
// pure function of the gap list — determinism comes for free.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "abi/errno.hpp"
#include "core/gap.hpp"
#include "testers/profile.hpp"

namespace iocov::testers::guided {

/// One hand-constructed call pattern, interpreted by the synthesizer.
/// `arg` empty means the recipe targets an output partition.
struct DirectRecipe {
    std::string base;
    std::string arg;
    std::string partition;
    std::uint64_t calls = 1;
};

/// Arm `err` on the base variant `op` and issue a benign call of it,
/// `calls` times (one one-shot arm per call).
struct FaultRecipe {
    std::string op;
    abi::Err err = abi::Err::EIO_;
    std::uint64_t calls = 1;
};

/// A gap the planner cannot (or chose not to) address, with why.
struct UnaddressedGap {
    core::Gap gap;
    std::string reason;
};

/// Everything one synthesis round will execute.
struct GapPlan {
    TesterProfile profile;  ///< counts are absolute (run at scale 1.0)
    std::vector<DirectRecipe> direct;
    std::vector<FaultRecipe> faults;
    std::vector<UnaddressedGap> unaddressed;
    std::size_t gaps_addressed = 0;
    std::uint64_t planned_calls = 0;

    bool empty() const { return gaps_addressed == 0; }
};

/// Maps every gap in `gaps` (inputs first, then outputs — each already
/// deviation-ranked within its space) to a recipe, spending at most
/// `max_calls` planned calls at `calls_per_gap` calls each.  Gaps past
/// the budget or with no known construction land in `unaddressed`.
GapPlan plan_gaps(const core::GapReport& gaps, std::uint64_t calls_per_gap,
                  std::uint64_t max_calls);

}  // namespace iocov::testers::guided
