#include "testers/guided/recipes.hpp"

#include <array>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "abi/fcntl.hpp"
#include "abi/seek.hpp"
#include "abi/stat_mode.hpp"
#include "stats/log_bucket.hpp"

namespace iocov::testers::guided {
namespace {

using abi::Err;
using namespace iocov::abi;  // NOLINT: flag constants read better unqualified

/// Errnos run_error_scenario() can construct per base syscall *and*
/// whose failing events survive TraceFilter admission (in-scope path,
/// or a watched fd).  Notably absent: every EBADF — bad-fd calls are
/// dropped by the filter (the fd was never returned by an admitted
/// open), so EBADF goes through fault injection on a watched fd.
const std::map<std::string, std::set<Err>>& scenario_errors() {
    static const std::map<std::string, std::set<Err>> table = {
        {"open",
         {Err::ENOENT_, Err::EEXIST_, Err::EISDIR_, Err::ENOTDIR_,
          Err::EACCES_, Err::EINVAL_, Err::ENAMETOOLONG_, Err::ELOOP_,
          Err::EROFS_, Err::EPERM_, Err::ETXTBSY_, Err::ENXIO_, Err::EBUSY_,
          Err::ENODEV_, Err::EFAULT_, Err::EMFILE_}},
        {"write", {Err::EFAULT_, Err::EFBIG_, Err::ENOSPC_}},
        {"read", {Err::EFAULT_, Err::EISDIR_}},
        {"lseek", {Err::EINVAL_, Err::ENXIO_}},
        {"truncate",
         {Err::ENOENT_, Err::EISDIR_, Err::EACCES_, Err::EINVAL_,
          Err::EFBIG_}},
        {"mkdir",
         {Err::EEXIST_, Err::ENOENT_, Err::EACCES_, Err::ENAMETOOLONG_}},
        {"chmod", {Err::ENOENT_, Err::EPERM_}},
        {"chdir", {Err::ENOENT_, Err::ENOTDIR_, Err::EACCES_}},
        {"setxattr",
         {Err::ENODATA_, Err::EEXIST_, Err::E2BIG_, Err::ERANGE_,
          Err::EOPNOTSUPP_, Err::ENOSPC_}},
        {"getxattr", {Err::ENODATA_, Err::ERANGE_}},
    };
    return table;
}

std::optional<std::uint32_t> mode_bit_by_name(const std::string& name) {
    static constexpr std::array<std::pair<std::uint32_t, const char*>, 13>
        kBits = {{
            {S_ISUID, "S_ISUID"},
            {S_ISGID, "S_ISGID"},
            {S_ISVTX, "S_ISVTX"},
            {S_IRUSR, "S_IRUSR"},
            {S_IWUSR, "S_IWUSR"},
            {S_IXUSR, "S_IXUSR"},
            {S_IRGRP, "S_IRGRP"},
            {S_IWGRP, "S_IWGRP"},
            {S_IXGRP, "S_IXGRP"},
            {S_IROTH, "S_IROTH"},
            {S_IWOTH, "S_IWOTH"},
            {S_IXOTH, "S_IXOTH"},
            {0, "none"},
        }};
    for (const auto& [bits, n] : kBits)
        if (name == n) return bits;
    return std::nullopt;
}

/// Open-flag combo that exercises the named flag partition.  The bare
/// flag usually suffices (input coverage counts flag bits regardless of
/// the call's outcome); a few flags only make sense in combination.
std::optional<std::uint32_t> combo_for_flag(const std::string& name) {
    if (name == "O_RDONLY") return static_cast<std::uint32_t>(O_RDONLY);
    if (name == "O_WRONLY") return static_cast<std::uint32_t>(O_WRONLY);
    if (name == "O_RDWR") return static_cast<std::uint32_t>(O_RDWR);
    if (name == "O_EXCL")
        return static_cast<std::uint32_t>(O_CREAT | O_EXCL | O_WRONLY);
    if (name == "O_TMPFILE")
        return static_cast<std::uint32_t>(O_TMPFILE | O_RDWR);
    for (const auto& info : abi::open_flag_table())
        if (name == info.name)
            return static_cast<std::uint32_t>(info.bits);
    return std::nullopt;
}

std::optional<int> whence_by_name(const std::string& name) {
    for (int w : abi::seek_whence_values())
        if (abi::seek_whence_name(w) == name) return w;
    if (name == "INVALID") return 99;
    return std::nullopt;
}

/// "2^k" → k; nullopt for non-power labels.
std::optional<unsigned> exp_of(const std::string& partition) {
    const auto b = stats::parse_bucket_label(partition);
    if (b && b->kind == stats::LogBucket::Kind::Pow2) return b->exponent;
    return std::nullopt;
}

bool is_numeric_label(const std::string& partition) {
    return stats::parse_bucket_label(partition).has_value();
}

class Planner {
  public:
    Planner(std::uint64_t calls_per_gap, std::uint64_t max_calls)
        : calls_(calls_per_gap ? calls_per_gap : 1), max_calls_(max_calls) {}

    GapPlan take() && {
        finalize();
        return std::move(plan_);
    }

    void consider(const core::Gap& gap) {
        static const std::set<std::string> kKnownBases = {
            "open",  "read",  "write", "lseek", "truncate", "mkdir",
            "chmod", "close", "chdir", "setxattr", "getxattr"};
        if (!kKnownBases.count(gap.base)) {
            skip(gap, "outside the guided 11-syscall registry");
            return;
        }
        if (max_calls_ != 0 && plan_.planned_calls >= max_calls_) {
            skip(gap, "call budget exhausted");
            return;
        }
        if (gap.kind == core::Gap::Kind::Input)
            plan_input(gap);
        else
            plan_output(gap);
    }

  private:
    void address(std::uint64_t n) {
        ++plan_.gaps_addressed;
        plan_.planned_calls += n;
    }
    void skip(const core::Gap& gap, std::string reason) {
        plan_.unaddressed.push_back({gap, std::move(reason)});
    }
    void direct(const core::Gap& gap) {
        plan_.direct.push_back({gap.base, gap.arg, gap.partition, calls_});
        address(calls_);
    }

    void plan_input(const core::Gap& gap) {
        const std::string& p = gap.partition;
        if (gap.base == "open" && gap.arg == "flags") {
            if (const auto combo = combo_for_flag(p)) {
                open_combos_[*combo] += calls_;
                address(calls_);
            } else {
                skip(gap, "unknown open flag");
            }
            return;
        }
        if (gap.arg == "mode") {  // open.mode / mkdir.mode / chmod.mode
            if (!mode_bit_by_name(p)) {
                skip(gap, "unknown mode bit");
                return;
            }
            if (gap.base == "mkdir")
                mkdir_modes_[*mode_bit_by_name(p)] += calls_;
            else if (gap.base == "chmod")
                chmod_modes_[*mode_bit_by_name(p)] += calls_;
            else
                direct(gap);  // open.mode: O_CREAT open with this mode
            if (gap.base != "open") address(calls_);
            return;
        }
        if (gap.base == "lseek" && gap.arg == "whence") {
            const auto w = whence_by_name(p);
            if (!w) {
                skip(gap, "unknown whence");
            } else if (p == "INVALID") {
                direct(gap);
            } else {
                whences_[*w] += calls_;
                address(calls_);
            }
            return;
        }
        if (gap.base == "setxattr" && gap.arg == "flags") {
            direct(gap);
            return;
        }
        if (gap.base == "close" && gap.arg == "fd") {
            // Only fds returned by an admitted open pass the trace
            // filter; negative / huge / AT_FDCWD close events are
            // structurally invisible to the analyzer.
            if (p == "stdio(0-2)" || p == "valid(>=3)")
                direct(gap);
            else
                skip(gap, "filter drops events on unwatched fds");
            return;
        }
        if (gap.base == "chdir" && gap.arg == "pathname") {
            if (p == "contains-symlinkish")
                skip(gap, "partitioner never emits this label");
            else
                direct(gap);
            return;
        }
        // Numeric size/offset/length arguments.
        if (is_numeric_label(p)) {
            if (p == "<0" && gap.base != "truncate" && gap.base != "lseek") {
                skip(gap, "argument is unsigned at the syscall boundary");
                return;
            }
            if (gap.base == "setxattr") {
                const auto e = exp_of(p);
                if (e && *e > kMaxSetxattrExp) {
                    skip(gap, "value buffer too large to materialize");
                    return;
                }
            }
            direct(gap);
            return;
        }
        skip(gap, "no construction for this partition");
    }

    void plan_output(const core::Gap& gap) {
        const std::string& p = gap.partition;
        if (p == "OK" || p == "OK:=0") {
            direct(gap);
            return;
        }
        if (p.rfind("OK:2^", 0) == 0) {
            const auto e = exp_of(p.substr(3));
            if (!e) {
                skip(gap, "unparseable output size bucket");
                return;
            }
            if (gap.base == "getxattr" && *e > 16) {
                skip(gap, "xattr values cap at XATTR_SIZE_MAX (2^16)");
                return;
            }
            if ((gap.base == "write" || gap.base == "read" ||
                 gap.base == "lseek") &&
                *e > 32) {
                skip(gap, "beyond the declared numeric range");
                return;
            }
            direct(gap);
            return;
        }
        // Errno partition: scenario if the generator knows a real
        // argument/state construction for it, fault injection otherwise.
        const auto err = abi::err_from_name(p);
        if (!err) {
            skip(gap, "unknown errno label");
            return;
        }
        const auto it = scenario_errors().find(gap.base);
        if (it != scenario_errors().end() && it->second.count(*err)) {
            error_targets_[gap.base][*err] += calls_;
            address(calls_);
            return;
        }
        plan_.faults.push_back({gap.base, *err, calls_});
        address(calls_);
    }

    void finalize() {
        TesterProfile& prof = plan_.profile;
        prof.name = "guided-synthesis";
        for (const auto& [flags, count] : open_combos_)
            prof.open_combos.push_back({flags, count});
        for (const auto& [w, count] : whences_)
            prof.lseek_whences.push_back({w, count});
        for (const auto& [m, count] : mkdir_modes_)
            prof.mkdir_modes.push_back({m, count});
        for (const auto& [m, count] : chmod_modes_)
            prof.chmod_modes.push_back({m, count});
        prof.error_targets = error_targets_;
        // The open-EFAULT scenario issues a relative "<fault>" path:
        // the filter only admits it once the workload's cwd is inside
        // the mount, which phase_chdir (running before phase_errors)
        // guarantees.
        if (!prof.error_targets.empty()) prof.chdir_count = 1;
    }

    static constexpr unsigned kMaxSetxattrExp = 20;  // 1 MiB value buffer

    std::uint64_t calls_;
    std::uint64_t max_calls_;
    GapPlan plan_;
    std::map<std::uint32_t, std::uint64_t> open_combos_;
    std::map<int, std::uint64_t> whences_;
    std::map<std::uint32_t, std::uint64_t> mkdir_modes_;
    std::map<std::uint32_t, std::uint64_t> chmod_modes_;
    std::map<std::string, std::map<Err, std::uint64_t>> error_targets_;
};

}  // namespace

GapPlan plan_gaps(const core::GapReport& gaps, std::uint64_t calls_per_gap,
                  std::uint64_t max_calls) {
    Planner planner(calls_per_gap, max_calls);
    for (const core::Gap& g : gaps.input_gaps) planner.consider(g);
    for (const core::Gap& g : gaps.output_gaps) planner.consider(g);
    return std::move(planner).take();
}

}  // namespace iocov::testers::guided
