#include "testers/guided/synthesizer.hpp"

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "abi/fcntl.hpp"
#include "abi/limits.hpp"
#include "abi/seek.hpp"
#include "abi/stat_mode.hpp"
#include "abi/xattr.hpp"
#include "stats/log_bucket.hpp"
#include "syscall/process.hpp"
#include "vfs/fault.hpp"

namespace iocov::testers::guided {
namespace {

using namespace iocov::abi;  // NOLINT: flag constants read better unqualified
using syscall::Process;
using syscall::ReadDst;
using syscall::WriteSrc;

constexpr std::byte kFill{0x5a};
constexpr std::uint64_t kBigFileSize = 1ULL << 32;  // sparse read source

std::optional<unsigned> exp_of(const std::string& partition) {
    const auto b = stats::parse_bucket_label(partition);
    if (b && b->kind == stats::LogBucket::Kind::Pow2) return b->exponent;
    return std::nullopt;
}

/// Driver-side state for direct and fault recipes.  All paths live
/// under <scratch>/guided so recipe traffic never collides with the
/// profile phases' scratch files.
struct Env {
    syscall::Kernel& kernel;
    const Fixtures& fx;
    Process user;
    std::string gdir, wpath, bigpath, cpath, tpath, xpath;
    int wfd = -1;  ///< O_RDWR fd on wpath (watched, reusable)
    int rfd = -1;  ///< O_RDONLY fd on the sparse big file
    std::uint64_t uniq = 0;
    SynthesisOutcome& out;

    Env(syscall::Kernel& k, const Fixtures& f, SynthesisOutcome& o)
        : kernel(k),
          fx(f),
          user(k.make_process(2000, vfs::Credentials::user(1000, 1000))),
          out(o) {
        gdir = fx.scratch + "/guided";
        wpath = gdir + "/w";
        bigpath = gdir + "/big";
        cpath = gdir + "/c";
        tpath = gdir + "/t";
        xpath = gdir + "/x";

        user.sys_chdir(fx.scratch.c_str());
        user.sys_mkdir(gdir.c_str(), 0755);
        // Hold three fds so the driver's fd numbering mimics a real
        // process (0-2 = stdio); recipe fds then land at >= 3, keeping
        // the "valid(>=3)" identifier partition honest.
        const auto w0 = user.sys_open(wpath.c_str(), O_CREAT | O_RDWR, 0644);
        user.sys_open(wpath.c_str(), O_RDONLY);
        user.sys_open(wpath.c_str(), O_RDONLY);
        (void)w0;
        wfd = static_cast<int>(
            user.sys_open(wpath.c_str(), O_RDWR));
        const auto bfd =
            user.sys_open(bigpath.c_str(), O_CREAT | O_WRONLY, 0644);
        if (bfd >= 0) {
            user.sys_ftruncate(static_cast<int>(bfd),
                               static_cast<std::int64_t>(kBigFileSize));
            user.sys_close(static_cast<int>(bfd));
        }
        rfd = static_cast<int>(user.sys_open(bigpath.c_str(), O_RDONLY));
        touch(cpath);
        touch(tpath);
        touch(xpath);
        user.sys_setxattr(xpath.c_str(), "user.g", small_value(), 0);
        user.sys_setxattr(xpath.c_str(), "user.empty", {}, 0);
    }

    void touch(const std::string& path) {
        const auto fd = user.sys_open(path.c_str(), O_CREAT | O_WRONLY, 0644);
        if (fd >= 0) user.sys_close(static_cast<int>(fd));
    }

    static std::span<const std::byte> small_value() {
        static const std::vector<std::byte> v(32, kFill);
        return v;
    }

    std::string unique(const char* stem) {
        return gdir + "/" + stem + std::to_string(uniq++);
    }
};

// ---- direct recipes -------------------------------------------------------

void direct_open_mode(Env& e, std::uint32_t mode, std::uint64_t calls) {
    for (std::uint64_t i = 0; i < calls; ++i) {
        const std::string path = e.unique("om");
        const auto fd =
            e.user.sys_open(path.c_str(), O_CREAT | O_WRONLY, mode);
        if (fd >= 0) e.user.sys_close(static_cast<int>(fd));
    }
}

std::optional<std::uint32_t> mode_bits(const std::string& name) {
    static constexpr std::pair<std::uint32_t, const char*> kBits[] = {
        {S_ISUID, "S_ISUID"}, {S_ISGID, "S_ISGID"}, {S_ISVTX, "S_ISVTX"},
        {S_IRUSR, "S_IRUSR"}, {S_IWUSR, "S_IWUSR"}, {S_IXUSR, "S_IXUSR"},
        {S_IRGRP, "S_IRGRP"}, {S_IWGRP, "S_IWGRP"}, {S_IXGRP, "S_IXGRP"},
        {S_IROTH, "S_IROTH"}, {S_IWOTH, "S_IWOTH"}, {S_IXOTH, "S_IXOTH"},
        {0, "none"}};
    for (const auto& [bits, n] : kBits)
        if (name == n) return bits;
    return std::nullopt;
}

/// One pwrite of `size` at offset 0, releasing the blocks afterwards so
/// a sweep of large buckets cannot exhaust the 8 GiB volume.
void sized_write(Env& e, std::uint64_t size) {
    e.user.sys_pwrite64(e.wfd, WriteSrc::pattern(size, kFill), 0);
    if (size >= (1ULL << 26)) e.user.sys_ftruncate(e.wfd, 0);
}

void chdir_recipe(Env& e, const std::string& partition) {
    const std::string& scratch = e.fx.scratch;
    if (partition == "absolute") {
        e.user.sys_chdir(scratch.c_str());
        return;  // cwd unchanged; no restore needed
    }
    if (partition == "relative") {
        e.user.sys_chdir("guided");
    } else if (partition == "dot") {
        e.user.sys_chdir(".");
    } else if (partition == "dotdot") {
        e.user.sys_chdir("..");  // scratch -> mount, still in scope
    } else if (partition == "trailing-slash") {
        e.user.sys_chdir((e.gdir + "/").c_str());
    } else if (partition == "name-max") {
        const std::string jam = scratch + "/" + std::string(300, 'n');
        e.user.sys_chdir(jam.c_str());
    } else if (partition == "path-max") {
        // Many short components, so only the whole-path boundary trips.
        std::string deep = scratch;
        while (deep.size() < PATH_MAX_ + 8) deep += "/pathmax8";
        e.user.sys_chdir(deep.c_str());
    } else if (partition == "via-fd") {
        const auto dirfd =
            e.user.sys_open(scratch.c_str(), O_DIRECTORY | O_RDONLY);
        if (dirfd >= 0) {
            e.user.sys_fchdir(static_cast<int>(dirfd));
            e.user.sys_close(static_cast<int>(dirfd));
        }
    } else if (partition == "faulting") {
        e.user.sys_chdir(nullptr);
    } else if (partition == "empty") {
        e.user.sys_chdir("");
    }
    e.user.sys_chdir(scratch.c_str());  // restore the cwd invariant
}

void input_recipe(Env& e, const DirectRecipe& r) {
    const auto exp = exp_of(r.partition);
    for (std::uint64_t i = 0; i < r.calls; ++i) {
        if (r.base == "open" && r.arg == "mode") {
            if (const auto m = mode_bits(r.partition))
                direct_open_mode(e, *m, 1);
        } else if (r.base == "write" && r.arg == "count") {
            if (r.partition == "=0")
                e.user.sys_write(e.wfd, WriteSrc::pattern(0, kFill));
            else if (exp)
                sized_write(e, 1ULL << *exp);
        } else if (r.base == "read" && r.arg == "count") {
            if (r.partition == "=0")
                e.user.sys_read(e.rfd, ReadDst::discard(0));
            else if (exp)
                e.user.sys_pread64(e.rfd, ReadDst::discard(1ULL << *exp), 0);
        } else if (r.base == "truncate" && r.arg == "length") {
            if (r.partition == "<0")
                e.user.sys_truncate(e.tpath.c_str(), -1);
            else if (r.partition == "=0")
                e.user.sys_truncate(e.tpath.c_str(), 0);
            else if (exp)
                e.user.sys_truncate(e.tpath.c_str(),
                                    std::int64_t{1} << *exp);
        } else if (r.base == "lseek" && r.arg == "offset") {
            if (r.partition == "<0")
                e.user.sys_lseek(e.wfd, -1, SEEK_SET_);
            else if (r.partition == "=0")
                e.user.sys_lseek(e.wfd, 0, SEEK_SET_);
            else if (exp)
                e.user.sys_lseek(e.wfd, std::int64_t{1} << *exp, SEEK_SET_);
        } else if (r.base == "lseek" && r.arg == "whence") {
            e.user.sys_lseek(e.wfd, 0, 99);  // only INVALID lands here
        } else if (r.base == "setxattr" && r.arg == "flags") {
            if (r.partition == "0") {
                e.user.sys_setxattr(e.xpath.c_str(), "user.f0",
                                    Env::small_value(), 0);
            } else if (r.partition == "XATTR_CREATE") {
                const std::string name = "user.fc" + std::to_string(e.uniq++);
                e.user.sys_setxattr(e.xpath.c_str(), name.c_str(),
                                    Env::small_value(), XATTR_CREATE_);
            } else if (r.partition == "XATTR_REPLACE") {
                e.user.sys_setxattr(e.xpath.c_str(), "user.g",
                                    Env::small_value(), XATTR_REPLACE_);
            } else {  // INVALID
                e.user.sys_setxattr(e.xpath.c_str(), "user.fi",
                                    Env::small_value(), 7);
            }
        } else if (r.base == "setxattr" && r.arg == "size") {
            if (r.partition == "=0") {
                e.user.sys_setxattr(e.xpath.c_str(), "user.sz", {}, 0);
            } else if (exp) {
                std::vector<std::byte> buf(1ULL << *exp, kFill);
                e.user.sys_setxattr(e.xpath.c_str(), "user.sz", buf, 0);
                e.user.sys_removexattr(e.xpath.c_str(), "user.sz");
            }
        } else if (r.base == "getxattr" && r.arg == "size") {
            if (r.partition == "=0")
                e.user.sys_getxattr(e.xpath.c_str(), "user.g", 0);
            else if (exp)
                e.user.sys_getxattr(e.xpath.c_str(), "user.g",
                                    1ULL << *exp);
        } else if (r.base == "close" && r.arg == "fd") {
            if (r.partition == "stdio(0-2)") {
                // A fresh process has an empty fd table, so its first
                // open lands on fd 0 — the only admissible way to close
                // a stdio-range fd (the filter needs a watched fd).
                Process p = e.kernel.make_process(
                    2100 + static_cast<int>(i),
                    vfs::Credentials::user(1000, 1000));
                const auto fd = p.sys_open(e.wpath.c_str(), O_RDONLY);
                if (fd >= 0) p.sys_close(static_cast<int>(fd));
            } else {  // valid(>=3)
                const auto fd = e.user.sys_open(e.wpath.c_str(), O_RDONLY);
                if (fd >= 0) e.user.sys_close(static_cast<int>(fd));
            }
        } else if (r.base == "chdir" && r.arg == "pathname") {
            chdir_recipe(e, r.partition);
        }
        ++e.out.direct_calls;
    }
}

void output_recipe(Env& e, const DirectRecipe& r) {
    const auto exp =
        r.partition.rfind("OK:2^", 0) == 0 ? exp_of(r.partition.substr(3))
                                           : std::nullopt;
    for (std::uint64_t i = 0; i < r.calls; ++i) {
        if (r.partition == "OK") {
            if (r.base == "open" || r.base == "close") {
                const auto fd = e.user.sys_open(e.wpath.c_str(), O_RDONLY);
                if (fd >= 0) e.user.sys_close(static_cast<int>(fd));
            } else if (r.base == "truncate") {
                e.user.sys_truncate(e.tpath.c_str(), 0);
            } else if (r.base == "mkdir") {
                e.user.sys_mkdir(e.unique("ok").c_str(), 0755);
            } else if (r.base == "chmod") {
                e.user.sys_chmod(e.cpath.c_str(), 0644);
            } else if (r.base == "chdir") {
                e.user.sys_chdir(e.fx.scratch.c_str());
            } else if (r.base == "setxattr") {
                e.user.sys_setxattr(e.xpath.c_str(), "user.g",
                                    Env::small_value(), 0);
            }
        } else if (r.partition == "OK:=0") {
            if (r.base == "write")
                e.user.sys_pwrite64(e.wfd, WriteSrc::pattern(0, kFill), 0);
            else if (r.base == "read")
                e.user.sys_pread64(e.rfd, ReadDst::discard(0), 0);
            else if (r.base == "lseek")
                e.user.sys_lseek(e.wfd, 0, SEEK_SET_);
            else if (r.base == "getxattr")
                e.user.sys_getxattr(e.xpath.c_str(), "user.empty", 256);
        } else if (exp) {
            const std::uint64_t size = 1ULL << *exp;
            if (r.base == "write") {
                sized_write(e, size);
            } else if (r.base == "read") {
                e.user.sys_pread64(e.rfd, ReadDst::discard(size), 0);
            } else if (r.base == "lseek") {
                e.user.sys_lseek(e.wfd, static_cast<std::int64_t>(size),
                                 SEEK_SET_);
            } else if (r.base == "getxattr") {
                std::vector<std::byte> buf(size, kFill);
                e.user.sys_setxattr(e.xpath.c_str(), "user.p", buf, 0);
                e.user.sys_getxattr(e.xpath.c_str(), "user.p", size);
                e.user.sys_removexattr(e.xpath.c_str(), "user.p");
            }
        }
        ++e.out.direct_calls;
    }
}

// ---- fault recipes --------------------------------------------------------

/// Issues one call of `base` that the filter admits (in-scope path or
/// watched fd), so an armed fault's errno surfaces in the report.
void benign_call(Env& e, const std::string& base) {
    if (base == "open") {
        const auto fd = e.user.sys_open(e.wpath.c_str(), O_RDONLY);
        if (fd >= 0) e.user.sys_close(static_cast<int>(fd));
    } else if (base == "read") {
        e.user.sys_read(e.rfd, ReadDst::discard(16));
    } else if (base == "write") {
        e.user.sys_pwrite64(e.wfd, WriteSrc::pattern(16, kFill), 0);
    } else if (base == "lseek") {
        e.user.sys_lseek(e.wfd, 0, SEEK_CUR_);
    } else if (base == "truncate") {
        e.user.sys_truncate(e.tpath.c_str(), 0);
    } else if (base == "mkdir") {
        e.user.sys_mkdir(e.unique("fj").c_str(), 0755);
    } else if (base == "chmod") {
        e.user.sys_chmod(e.cpath.c_str(), 0644);
    } else if (base == "chdir") {
        e.user.sys_chdir(e.fx.scratch.c_str());
    } else if (base == "setxattr") {
        e.user.sys_setxattr(e.xpath.c_str(), "user.g", Env::small_value(),
                            0);
    } else if (base == "getxattr") {
        e.user.sys_getxattr(e.xpath.c_str(), "user.g", 256);
    }
}

void fault_recipe(Env& e, const FaultRecipe& r) {
    for (std::uint64_t i = 0; i < r.calls; ++i) {
        if (r.op == "close") {
            // The fd must exist (and be watched) before the armed fault
            // can fail its close; the clean retry releases it.
            const auto fd = e.user.sys_open(e.wpath.c_str(), O_RDONLY);
            e.kernel.faults().arm(r.op, r.err, 0);
            if (fd >= 0) {
                e.user.sys_close(static_cast<int>(fd));  // fails with err
                e.user.sys_close(static_cast<int>(fd));  // clean release
            } else {
                e.kernel.faults().disarm(r.op, r.err);
            }
        } else {
            // The benign driver uses pwrite64 for write (stable offset),
            // so arm the variant the driver actually issues.
            const std::string op = r.op == "write" ? "pwrite64" : r.op;
            e.kernel.faults().arm(op, r.err, 0);
            benign_call(e, r.op);
        }
        ++e.out.fault_calls;
    }
}

bool profile_active(const TesterProfile& p) {
    return !p.open_combos.empty() || !p.write_sizes.empty() ||
           !p.read_sizes.empty() || !p.truncate_lengths.empty() ||
           !p.xattr_set_sizes.empty() || !p.xattr_get_sizes.empty() ||
           !p.lseek_whences.empty() || !p.mkdir_modes.empty() ||
           !p.chmod_modes.empty() || p.chdir_count != 0 ||
           !p.error_targets.empty();
}

}  // namespace

SynthesisOutcome synthesize(const GapPlan& plan, syscall::Kernel& kernel,
                            const Fixtures& fx, std::uint64_t seed) {
    SynthesisOutcome out;
    if (profile_active(plan.profile)) {
        TesterSim sim(plan.profile, {1.0, seed});
        out.sim_stats = sim.run(kernel, fx);
    }
    {
        Env env(kernel, fx, out);
        for (const DirectRecipe& r : plan.direct) {
            if (r.arg.empty())
                output_recipe(env, r);
            else
                input_recipe(env, r);
        }
        const std::uint64_t fired_before = kernel.faults().fired_total();
        for (const FaultRecipe& r : plan.faults) fault_recipe(env, r);
        out.faults_fired = kernel.faults().fired_total() - fired_before;
    }
    return out;
}

}  // namespace iocov::testers::guided
