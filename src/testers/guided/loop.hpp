// The guide loop: measure → synthesize → re-measure until TCD
// improvement plateaus or the call budget runs out.
//
// Round structure mirrors the campaign runner (PR 3): every synthesis
// round gets a fresh FileSystem/Kernel/IOCov (no fd table, filter
// state, or quota ledger carries over), and its report merges into a
// cumulative report that only ever grows — so partitions close
// monotonically and the loop's TCD sequence is non-increasing in
// expectation.  Everything is seeded and deterministic: the same
// config and baseline produce bit-identical reports and tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/coverage.hpp"
#include "core/gap.hpp"
#include "report/delta.hpp"
#include "testers/guided/recipes.hpp"

namespace iocov::testers::guided {

struct GuideConfig {
    /// Baseline suite to replay when no external baseline is given:
    /// "crashmonkey", "xfstests", or "ltp".
    std::string suite = "crashmonkey";
    /// Baseline workload scale (campaign-style light default).
    double scale = 0.002;
    std::uint64_t seed = 42;
    /// Uniform per-partition TCD target.  Small-scale baselines sit in
    /// the tens of calls per partition, so 10 keeps the metric honest.
    double target = 10.0;
    unsigned max_rounds = 4;
    /// Synthesized calls per gap per round.
    std::uint64_t calls_per_gap = 2;
    /// Total planned synthesized calls across all rounds (0 = unbounded).
    std::uint64_t call_budget = 50000;
    /// Stop when a round improves aggregate TCD by less than this.
    double min_tcd_gain = 1e-4;
    std::string mount = "/mnt/test";
    bool extended_registry = false;
};

/// One measure→synthesize→re-measure iteration.
struct GuideRound {
    std::size_t gaps_before = 0;
    std::size_t gaps_after = 0;
    std::size_t gaps_addressed = 0;
    std::size_t gaps_unaddressed = 0;
    std::uint64_t planned_calls = 0;
    std::uint64_t faults_fired = 0;
    double tcd_before = 0.0;
    double tcd_after = 0.0;

    std::size_t closed() const { return gaps_before - gaps_after; }
    double gain() const { return tcd_before - tcd_after; }
};

struct GuideResult {
    core::CoverageReport baseline;
    core::CoverageReport final_report;  ///< baseline + every round, merged
    core::GapReport gaps_before;
    core::GapReport gaps_after;
    std::vector<GuideRound> rounds;
    /// Per-space before/after movement (baseline vs final).
    std::vector<report::SpaceDelta> deltas;
    /// Gaps the last executed plan could not address, with reasons.
    std::vector<UnaddressedGap> unaddressed;
    std::uint64_t total_planned_calls = 0;
    double target = 0.0;

    /// Previously-untested partitions the loop reached.
    std::size_t partitions_closed() const {
        return gaps_before.total_gaps() - gaps_after.total_gaps();
    }
    double tcd_improvement() const {
        return gaps_before.aggregate_tcd - gaps_after.aggregate_tcd;
    }

    /// Fixed-width before/after table over every coverage space.
    std::string table() const;
    /// Round-by-round narrative plus the headline numbers.
    std::string summary() const;
};

/// Runs the baseline suite at the configured scale, then guides.
GuideResult run_guide(const GuideConfig& config);

/// Guides from an existing baseline report (e.g. an ingested trace).
GuideResult run_guide_on_baseline(const core::CoverageReport& baseline,
                                  const GuideConfig& config);

}  // namespace iocov::testers::guided
