#include "testers/guided/loop.hpp"

#include <sstream>
#include <stdexcept>

#include "core/iocov.hpp"
#include "core/syscall_spec.hpp"
#include "syscall/kernel.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "testers/guided/synthesizer.hpp"
#include "testers/profile.hpp"
#include "trace/filter.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::testers::guided {
namespace {

TesterProfile profile_for_suite(const std::string& suite) {
    if (suite == "crashmonkey") return crashmonkey_profile();
    if (suite == "xfstests") return xfstests_profile();
    if (suite == "ltp") return ltp_profile();
    throw std::invalid_argument("unknown suite: " + suite);
}

const std::vector<core::SyscallSpec>& registry_for(const GuideConfig& cfg) {
    return cfg.extended_registry ? core::extended_syscall_registry()
                                 : core::syscall_registry();
}

/// One isolated run (baseline replay or synthesis round): fresh
/// FileSystem/Kernel/IOCov, live-analyzed, report returned.
template <typename WorkFn>
core::CoverageReport execute_isolated(const GuideConfig& cfg,
                                      WorkFn&& work) {
    vfs::FileSystem fs(recommended_fs_config());
    Fixtures fx = prepare_environment(fs, cfg.mount);
    core::IOCov iocov(trace::FilterConfig::mount_point(cfg.mount),
                      registry_for(cfg));
    syscall::Kernel kernel(fs, &iocov.live_sink());
    work(kernel, fx);
    return iocov.report();
}

}  // namespace

GuideResult run_guide(const GuideConfig& config) {
    const TesterProfile profile = profile_for_suite(config.suite);
    const core::CoverageReport baseline = execute_isolated(
        config, [&](syscall::Kernel& kernel, const Fixtures& fx) {
            TesterSim sim(profile, {config.scale, config.seed});
            sim.run(kernel, fx);
        });
    return run_guide_on_baseline(baseline, config);
}

GuideResult run_guide_on_baseline(const core::CoverageReport& baseline,
                                  const GuideConfig& config) {
    GuideResult result;
    result.target = config.target;
    result.baseline = baseline;
    result.final_report = baseline;
    result.gaps_before = core::extract_gaps(baseline, config.target);

    core::GapReport gaps = result.gaps_before;
    for (unsigned round = 0; round < config.max_rounds; ++round) {
        if (config.call_budget != 0 &&
            result.total_planned_calls >= config.call_budget)
            break;
        const std::uint64_t budget_left =
            config.call_budget == 0
                ? 0  // plan_gaps treats 0 as unbounded
                : config.call_budget - result.total_planned_calls;
        GapPlan plan =
            plan_gaps(gaps, config.calls_per_gap, budget_left);
        if (plan.empty()) {
            result.unaddressed = std::move(plan.unaddressed);
            break;
        }

        SynthesisOutcome outcome;
        const core::CoverageReport round_report = execute_isolated(
            config, [&](syscall::Kernel& kernel, const Fixtures& fx) {
                outcome = synthesize(plan, kernel, fx,
                                     config.seed + round + 1);
            });
        result.final_report.merge(round_report);
        core::GapReport after =
            core::extract_gaps(result.final_report, config.target);

        GuideRound r;
        r.gaps_before = gaps.total_gaps();
        r.gaps_after = after.total_gaps();
        r.gaps_addressed = plan.gaps_addressed;
        r.gaps_unaddressed = plan.unaddressed.size();
        r.planned_calls = plan.planned_calls;
        r.faults_fired = outcome.faults_fired;
        r.tcd_before = gaps.aggregate_tcd;
        r.tcd_after = after.aggregate_tcd;
        result.rounds.push_back(r);
        result.total_planned_calls += plan.planned_calls;
        result.unaddressed = std::move(plan.unaddressed);

        gaps = std::move(after);
        if (r.gain() < config.min_tcd_gain) break;
    }

    result.gaps_after = std::move(gaps);
    result.deltas = report::coverage_deltas(result.baseline,
                                            result.final_report,
                                            config.target);
    return result;
}

std::string GuideResult::table() const {
    return report::render_coverage_delta(deltas);
}

std::string GuideResult::summary() const {
    std::ostringstream os;
    os << "guide: " << rounds.size() << " round(s), "
       << total_planned_calls << " synthesized calls planned\n";
    for (std::size_t i = 0; i < rounds.size(); ++i) {
        const GuideRound& r = rounds[i];
        os << "  round " << (i + 1) << ": gaps " << r.gaps_before << " -> "
           << r.gaps_after << " (addressed " << r.gaps_addressed
           << ", unaddressed " << r.gaps_unaddressed << ", faults fired "
           << r.faults_fired << "), TCD " << r.tcd_before << " -> "
           << r.tcd_after << "\n";
    }
    os << "partitions closed: " << partitions_closed() << " of "
       << gaps_before.total_gaps() << " (remaining "
       << gaps_after.total_gaps() << ")\n";
    os << "aggregate TCD (target " << target
       << "): " << gaps_before.aggregate_tcd << " -> "
       << gaps_after.aggregate_tcd << "\n";
    if (!unaddressed.empty()) {
        os << "unaddressed (" << unaddressed.size() << "):\n";
        std::size_t shown = 0;
        for (const UnaddressedGap& u : unaddressed) {
            if (++shown > 12) {
                os << "  ... " << (unaddressed.size() - 12) << " more\n";
                break;
            }
            os << "  " << u.gap.id() << ": " << u.reason << "\n";
        }
    }
    return os.str();
}

}  // namespace iocov::testers::guided
