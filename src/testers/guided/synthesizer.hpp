// Executes a GapPlan against a kernel: the workload half of a guide
// round.
//
// Three stages, in order: the synthetic-profile portion replays through
// TesterSim (reusing its phases and error scenarios at scale 1.0),
// then the direct recipes run through a dedicated driver process, then
// the fault recipes arm one-shot FaultInjector points and issue benign
// calls to surface each errno through an admitted event.  Ordering
// matters: faults arm last so the injector cannot perturb the
// profile/direct traffic.
#pragma once

#include <cstdint>

#include "syscall/kernel.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "testers/guided/recipes.hpp"

namespace iocov::testers::guided {

struct SynthesisOutcome {
    RunStats sim_stats;  ///< profile-driven portion (if any)
    std::uint64_t direct_calls = 0;
    std::uint64_t fault_calls = 0;
    std::uint64_t faults_fired = 0;  ///< injector-confirmed firings
};

/// Runs `plan` on `kernel` (whose sink should already feed an
/// analyzer).  `fx` must be prepared on the kernel's file system.
/// Deterministic for a fixed (plan, seed).
SynthesisOutcome synthesize(const GapPlan& plan, syscall::Kernel& kernel,
                            const Fixtures& fx, std::uint64_t seed);

}  // namespace iocov::testers::guided
