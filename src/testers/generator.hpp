// Workload generator: turns a TesterProfile into real syscall traffic.
//
// The generator owns no statistics of its own — it issues opens, reads,
// writes, seeks, metadata operations, and deliberately failing calls
// against the simulated kernel until the profile's (scaled) targets are
// met.  Whatever IOCov later reports is computed from the trace those
// calls produce.
//
// Open-flag bookkeeping: workload phases need file descriptors, and
// every open they issue is also an open the suite "spent".  The
// generator therefore draws all opens from a per-combination budget
// initialized from the profile; a final pass issues whatever budget the
// workload phases did not consume, keeping the aggregate combination
// counts on target.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "syscall/kernel.hpp"
#include "syscall/process.hpp"
#include "testers/fixtures.hpp"
#include "testers/profile.hpp"
#include "testers/rng.hpp"

namespace iocov::testers {

struct RunStats {
    std::uint64_t opens = 0;
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t error_scenarios = 0;
    std::uint64_t total_syscalls = 0;  ///< per the kernel's trace counter
};

/// A file-system configuration sized for the simulated suites: room for
/// xattr sweeps up to XATTR_SIZE_MAX and enough inodes/blocks that only
/// deliberate scenarios hit ENOSPC.
vfs::FsConfig recommended_fs_config();

class TesterSim {
  public:
    struct Options {
        /// Fraction of the profile's (full-run) counts to issue.  1.0
        /// replays the suite at published volume (~15M syscalls for
        /// xfstests); benches default to a lighter scale and report it.
        double scale = 0.02;
        std::uint64_t seed = 42;
    };

    TesterSim(TesterProfile profile, Options options);

    struct Ctx;  // per-run state (processes, budgets, paths)

    /// Runs the workload. `fx` must have been prepared on `kernel`'s
    /// file system and the kernel's sink should already be connected.
    RunStats run(syscall::Kernel& kernel, const Fixtures& fx);

    const TesterProfile& profile() const { return profile_; }

    /// scaled(n) = how many calls an n-count target becomes at this
    /// scale (at least 1 for any nonzero target, so "tested at all"
    /// never degrades into "untested" at small scales).
    std::uint64_t scaled(std::uint64_t count) const;

  private:
    void phase_io(Ctx& c);
    void phase_lseek(Ctx& c);
    void phase_truncate(Ctx& c);
    void phase_mkdir(Ctx& c);
    void phase_chmod(Ctx& c);
    void phase_xattr(Ctx& c);
    void phase_chdir(Ctx& c);
    void phase_errors(Ctx& c);
    void phase_remaining_opens(Ctx& c);

    void run_error_scenario(Ctx& c, const std::string& base, abi::Err err,
                            std::uint64_t n);

    TesterProfile profile_;
    Options options_;
};

/// Convenience wrappers used by benches and examples.
RunStats run_crashmonkey(syscall::Kernel& kernel, const Fixtures& fx,
                         double scale, std::uint64_t seed = 42);
RunStats run_xfstests(syscall::Kernel& kernel, const Fixtures& fx,
                      double scale, std::uint64_t seed = 42);
RunStats run_ltp(syscall::Kernel& kernel, const Fixtures& fx, double scale,
                 std::uint64_t seed = 42);

}  // namespace iocov::testers
