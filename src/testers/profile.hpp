// Tester profiles: the published input/output footprints of xfstests
// and CrashMonkey, expressed as generator targets.
//
// The paper reports the two suites' behaviour as marginal distributions
// (Fig. 2: open-flag frequencies, Table 1: flag-combination
// cardinalities, Fig. 3: write-size buckets, Fig. 4: open error codes).
// We cannot rerun the real suites against a real kernel here, so each
// simulator is driven by a profile holding those published marginals
// (exact where the paper gives numbers, calibrated to the figures'
// log-scale bars elsewhere).  The generator then issues *real* syscalls
// whose aggregate statistics match the profile at the configured scale.
// Everything downstream — coverage histograms, untested partitions,
// Table 1 percentages, the Fig. 5 TCD crossover — is computed from the
// resulting traces, not copied from the paper.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "abi/errno.hpp"

namespace iocov::testers {

/// One open-flag combination with its target call count (at scale 1.0).
struct OpenComboTarget {
    std::uint32_t flags = 0;
    std::uint64_t count = 0;
};

/// One numeric-argument bucket target: `zero` selects the "=0" boundary
/// partition, otherwise values are drawn from [2^exp, 2^(exp+1)) —
/// except `exact`, which pins the value to 2^exp + delta (used for the
/// paper's "Max 258 MiB" write annotation).
struct NumericBucketTarget {
    bool zero = false;
    unsigned exp = 0;
    std::uint64_t count = 0;
    bool exact = false;
    std::uint64_t exact_value = 0;
};

/// lseek whence usage.
struct WhenceTarget {
    int whence = 0;
    std::uint64_t count = 0;
};

/// mkdir/chmod mode usage.
struct ModeTarget {
    std::uint32_t mode = 0;
    std::uint64_t count = 0;
};

struct TesterProfile {
    std::string name;

    std::vector<OpenComboTarget> open_combos;
    std::vector<NumericBucketTarget> write_sizes;
    std::vector<NumericBucketTarget> read_sizes;
    std::vector<NumericBucketTarget> truncate_lengths;
    std::vector<NumericBucketTarget> xattr_set_sizes;
    std::vector<NumericBucketTarget> xattr_get_sizes;
    std::vector<WhenceTarget> lseek_whences;
    std::vector<ModeTarget> mkdir_modes;
    std::vector<ModeTarget> chmod_modes;

    /// Successful chdir calls to issue.  When `chdir_diverse` is set the
    /// generator cycles through absolute / relative / "." / ".." paths
    /// and fchdir, covering the pathname identifier partitions.
    std::uint64_t chdir_count = 0;
    bool chdir_diverse = false;

    /// Error-path scenarios to drive, per base syscall, per errno, with
    /// target counts.  The generator realizes each by constructing the
    /// corresponding file-system state and issuing the failing call.
    std::map<std::string, std::map<abi::Err, std::uint64_t>> error_targets;

    /// Fraction of tracked calls issued through the non-default variant
    /// (openat instead of open, pwrite64 instead of write, ...), per
    /// mille.  xfstests mixes variants; CrashMonkey sticks to the base.
    unsigned variant_permille = 0;

    /// Whether the workload sprinkles fsync/fdatasync/sync calls
    /// (crash-consistency testers are persistence-heavy).
    bool persistence_heavy = false;
};

/// CrashMonkey (OSDI '18): bounded black-box crash-consistency tester.
/// Narrow flag vocabulary, ~7.9k O_RDONLY opens, small write sizes,
/// almost no error-path coverage — but a strong ENOTDIR habit.
TesterProfile crashmonkey_profile();

/// xfstests: 706 generic + 308 ext4 hand-written regression tests.
/// Broad flags (up to 6 combined), writes spanning "=0" through the
/// 258 MiB maximum, and deliberate error-path tests.
TesterProfile xfstests_profile();

/// LTP (Linux Test Project): a syscall-conformance suite the paper
/// names alongside xfstests.  Its footprint is wide but shallow — every
/// documented behaviour (success and error) of every syscall gets a
/// handful of dedicated tests, at a fraction of xfstests' volume.
/// Included as a third comparison point for the coverage tooling.
TesterProfile ltp_profile();

}  // namespace iocov::testers
