// VFS -> core::StateSnapshot bridge.
//
// Walks the reachable namespace of a FileSystem and renders every path
// as a StateFact (type, mode, owner, size, content/xattr hashes).  The
// walk is over std::map dirents, so path order — and every diff or
// report derived from a snapshot — is deterministic.  Lives in
// testers/crash rather than core so core stays VFS-free.
#pragma once

#include <map>
#include <string>

#include "core/diff.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::testers::crash {

/// Snapshots every reachable path ("/" included).  When `path_inos` is
/// non-null it receives path -> inode id for the snapshotted tree (the
/// oracle uses this to translate effect inodes to paths).  Reads file
/// contents via the extent map directly — no atime updates, no fault
/// injection, usable on a const FileSystem.
core::StateSnapshot snapshot_vfs(
    const vfs::FileSystem& fs,
    std::map<std::string, vfs::InodeId>* path_inos = nullptr);

/// FNV-1a over a file's bytes (holes read as zeros).  Exposed for
/// tests that assert hash stability.
std::uint64_t content_hash(const vfs::FileSystem& fs, vfs::InodeId ino);

}  // namespace iocov::testers::crash
