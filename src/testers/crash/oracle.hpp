// Persisted-prefix oracle: what MUST survive each crash point.
//
// Barrier semantics modeled (ext4 ordered-journal analogy, documented
// in DESIGN.md §9): every barrier — scoped or global — commits all
// metadata logged so far (namespace structure, modes, owners, xattrs,
// symlink targets); file *data* (content + size) is committed only for
// the barrier's scope: the fsynced inode, or every file for
// sync/syncfs.  A file written after its last data barrier has no data
// guarantee until the next one.
//
// The oracle replays the full log in order on a private FileSystem,
// snapshotting the guaranteed facts at every barrier.  check() then
// takes the snapshot of the last barrier the crash point retired,
// *invalidates* facts the applied tail effects legitimately touched
// (a persisted tail write may change content; a persisted tail unlink
// removes the entry), and diffs the recovered state against what
// remains.  Anything still asserted that the recovered state lacks is
// a crash-consistency bug.  Extra files are allowed: un-synced
// creations may survive.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/diff.hpp"
#include "testers/crash/effect_log.hpp"
#include "testers/crash/replay.hpp"
#include "vfs/fsck.hpp"

namespace iocov::testers::crash {

/// One confirmed violation: a fact a retired barrier guaranteed that
/// the recovered state lost, or an fsck invariant breach.
struct CrashBug {
    std::string workload;     ///< filled in by the tester driver
    std::string crash_point;  ///< CrashPoint::id()
    std::string kind;         ///< state_delta_kind_name or fsck code
    std::string path;         ///< affected path (empty for fsck bugs)
    std::string detail;
    std::string recipe;       ///< how to reproduce (CLI invocation)

    std::string to_string() const;
};

class PersistenceOracle {
  public:
    /// Replays `log` in order on a private FileSystem built by `base`
    /// (same FsConfig as the workload ran with) and snapshots the
    /// guaranteed facts after every barrier.  `log` must outlive the
    /// oracle.
    PersistenceOracle(const EffectLog& log, vfs::FsConfig config,
                      const BaseSetup& base);

    /// Diffs `recovered` against the persisted-prefix expectation for
    /// `point`.  Also runs vfs::fsck with the recovered state's pinned
    /// (O_TMPFILE) inodes.  Returns every violation found.
    std::vector<CrashBug> check(const CrashPoint& point,
                                const RecoveredState& recovered) const;

    /// Number of barrier snapshots taken (tests).
    std::size_t snapshot_count() const { return snapshots_.size(); }

  private:
    struct BarrierSnapshot {
        /// Prefix length this snapshot covers: effects [0, prefix) are
        /// retired when the crash point's prefix >= this value.
        std::size_t prefix = 0;
        core::StateSnapshot expected;
        /// path -> original (logged) inode id at snapshot time.
        std::map<std::string, vfs::InodeId> path_inos;
    };

    /// Clears expectations the applied tail effect `e` legitimately
    /// invalidates (content of rewritten files, removed entries, ...).
    static void invalidate_for_tail_effect(BarrierSnapshot& snap,
                                           const vfs::Effect& e);

    const EffectLog& log_;
    std::vector<BarrierSnapshot> snapshots_;
};

}  // namespace iocov::testers::crash
