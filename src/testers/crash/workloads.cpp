#include "testers/crash/workloads.hpp"

#include <cstring>
#include <span>
#include <string_view>

namespace iocov::testers::crash {

const char* const kCrashMount = "/mnt/test";

namespace {

using syscall::Process;
using syscall::WriteSrc;

WriteSrc bytes_of(std::string_view s) {
    return WriteSrc::real(std::as_bytes(std::span(s.data(), s.size())));
}

/// fsync the directory holding the scratch tree — how real applications
/// commit namespace changes (create/unlink/rename) to disk.
void fsync_scratch_dir(Process& p, const Fixtures& fx) {
    const std::int64_t dfd =
        p.sys_open(fx.scratch.c_str(), abi::O_RDONLY | abi::O_DIRECTORY);
    if (dfd >= 0) {
        p.sys_fsync(static_cast<int>(dfd));
        p.sys_close(static_cast<int>(dfd));
    }
}

std::string scratch(const Fixtures& fx, const char* name) {
    return fx.scratch + "/" + name;
}

// ---- the workloads ---------------------------------------------------
// Each is a miniature CrashMonkey seq-1/seq-2 test: a few mutations,
// one or two barriers, and (usually) an unsynced tail for the crash
// epoch to tear apart.

void wl_create_fsync(Process& p, const Fixtures& fx) {
    const std::string f = scratch(fx, "cf_file");
    const std::int64_t fd = p.sys_open(
        f.c_str(), abi::O_CREAT | abi::O_WRONLY | abi::O_TRUNC, 0644);
    if (fd < 0) return;
    p.sys_write(static_cast<int>(fd), bytes_of("hello crash world"));
    p.sys_fsync(static_cast<int>(fd));
    p.sys_write(static_cast<int>(fd), bytes_of(" unsynced tail"));
    p.sys_close(static_cast<int>(fd));
}

void wl_append_fsync(Process& p, const Fixtures& fx) {
    const std::int64_t fd =
        p.sys_open(fx.plain_file.c_str(), abi::O_WRONLY | abi::O_APPEND);
    if (fd < 0) return;
    p.sys_write(static_cast<int>(fd), bytes_of("appended-block-1"));
    p.sys_fsync(static_cast<int>(fd));
    p.sys_write(static_cast<int>(fd), bytes_of("appended-block-2"));
    p.sys_close(static_cast<int>(fd));
}

void wl_overwrite_no_sync(Process& p, const Fixtures& fx) {
    const std::int64_t fd = p.sys_open(fx.plain_file.c_str(), abi::O_WRONLY);
    if (fd < 0) return;
    p.sys_pwrite64(static_cast<int>(fd), bytes_of("OVERWRITTEN"), 0);
    p.sys_close(static_cast<int>(fd));
}

void wl_rename_commit(Process& p, const Fixtures& fx) {
    const std::string tmp = scratch(fx, "rc_tmp");
    const std::string dst = scratch(fx, "rc_dst");
    const std::int64_t fd = p.sys_creat(tmp.c_str(), 0644);
    if (fd < 0) return;
    p.sys_write(static_cast<int>(fd), bytes_of("new version of dst"));
    p.sys_fsync(static_cast<int>(fd));
    p.sys_close(static_cast<int>(fd));
    p.sys_rename(tmp.c_str(), dst.c_str());
    fsync_scratch_dir(p, fx);
}

void wl_mkdir_tree_sync(Process& p, const Fixtures& fx) {
    const std::string a = scratch(fx, "mt_a");
    const std::string b = a + "/b";
    const std::string c = b + "/c";
    p.sys_mkdir(a.c_str(), 0755);
    p.sys_mkdir(b.c_str(), 0750);
    const std::int64_t fd =
        p.sys_creat((b + "/leaf").c_str(), 0600);
    if (fd >= 0) {
        p.sys_write(static_cast<int>(fd), bytes_of("leaf data"));
        p.sys_close(static_cast<int>(fd));
    }
    p.sys_sync();
    p.sys_mkdir(c.c_str(), 0700);
}

void wl_unlink_fsync(Process& p, const Fixtures& fx) {
    const std::string victim = scratch(fx, "uf_victim");
    const std::int64_t fd = p.sys_creat(victim.c_str(), 0644);
    if (fd >= 0) {
        p.sys_write(static_cast<int>(fd), bytes_of("short-lived"));
        p.sys_fsync(static_cast<int>(fd));
        p.sys_close(static_cast<int>(fd));
    }
    p.sys_unlink(victim.c_str());
    fsync_scratch_dir(p, fx);
}

void wl_truncate_fdatasync(Process& p, const Fixtures& fx) {
    const std::string f = scratch(fx, "tf_file");
    const std::int64_t fd = p.sys_open(
        f.c_str(), abi::O_CREAT | abi::O_RDWR, 0644);
    if (fd < 0) return;
    p.sys_write(static_cast<int>(fd),
                WriteSrc::pattern(4096, std::byte{0xAB}));
    p.sys_fsync(static_cast<int>(fd));
    p.sys_ftruncate(static_cast<int>(fd), 100);
    p.sys_fdatasync(static_cast<int>(fd));
    p.sys_ftruncate(static_cast<int>(fd), 0);
    p.sys_close(static_cast<int>(fd));
}

void wl_symlink_rename(Process& p, const Fixtures& fx) {
    const std::string lnk = scratch(fx, "sr_link");
    const std::string moved = scratch(fx, "sr_link2");
    p.sys_symlink(fx.plain_file.c_str(), lnk.c_str());
    p.sys_sync();
    p.sys_rename(lnk.c_str(), moved.c_str());
}

void wl_hardlink_fsync(Process& p, const Fixtures& fx) {
    const std::string f = scratch(fx, "hl_orig");
    const std::string g = scratch(fx, "hl_link");
    const std::int64_t fd = p.sys_creat(f.c_str(), 0644);
    if (fd >= 0) {
        p.sys_write(static_cast<int>(fd), bytes_of("linked payload"));
        p.sys_close(static_cast<int>(fd));
    }
    p.sys_link(f.c_str(), g.c_str());
    fsync_scratch_dir(p, fx);
    p.sys_unlink(f.c_str());
}

void wl_xattr_syncfs(Process& p, const Fixtures& fx) {
    const std::string f = scratch(fx, "xa_file");
    const std::int64_t fd = p.sys_creat(f.c_str(), 0644);
    if (fd < 0) return;
    const std::string_view v1 = "crash-v1";
    p.sys_setxattr(f.c_str(), "user.tag",
                   std::as_bytes(std::span(v1.data(), v1.size())), 0);
    p.sys_syncfs(static_cast<int>(fd));
    const std::string_view v2 = "crash-v2";
    p.sys_setxattr(f.c_str(), "user.tag",
                   std::as_bytes(std::span(v2.data(), v2.size())), 0);
    p.sys_removexattr(f.c_str(), "user.tag");
    p.sys_close(static_cast<int>(fd));
}

void wl_osync_log(Process& p, const Fixtures& fx) {
    const std::string f = scratch(fx, "ol_log");
    const std::int64_t fd = p.sys_open(
        f.c_str(), abi::O_CREAT | abi::O_WRONLY | abi::O_SYNC, 0600);
    if (fd < 0) return;
    p.sys_write(static_cast<int>(fd), bytes_of("rec1;"));
    p.sys_write(static_cast<int>(fd), bytes_of("rec2;"));
    p.sys_write(static_cast<int>(fd), bytes_of("rec3;"));
    p.sys_close(static_cast<int>(fd));
}

void wl_tmpfile_write(Process& p, const Fixtures& fx) {
    const std::int64_t fd = p.sys_open(
        fx.scratch.c_str(), abi::O_TMPFILE | abi::O_RDWR, 0600);
    if (fd < 0) return;
    p.sys_write(static_cast<int>(fd), bytes_of("anonymous scratch data"));
    p.sys_fsync(static_cast<int>(fd));
    p.sys_close(static_cast<int>(fd));
}

void wl_chmod_fsync(Process& p, const Fixtures& fx) {
    const std::string f = scratch(fx, "cm_file");
    const std::int64_t fd = p.sys_creat(f.c_str(), 0666);
    if (fd < 0) return;
    p.sys_fchmod(static_cast<int>(fd), 0640);
    p.sys_fsync(static_cast<int>(fd));
    p.sys_chmod(f.c_str(), 0400);
    p.sys_close(static_cast<int>(fd));
}

void wl_many_writes_fdatasync(Process& p, const Fixtures& fx) {
    const std::string f = scratch(fx, "mw_file");
    const std::int64_t fd = p.sys_open(
        f.c_str(), abi::O_CREAT | abi::O_RDWR, 0644);
    if (fd < 0) return;
    for (int i = 0; i < 4; ++i)
        p.sys_pwrite64(static_cast<int>(fd),
                       WriteSrc::pattern(512, std::byte(0x10 + i)),
                       i * 4096);
    p.sys_fdatasync(static_cast<int>(fd));
    p.sys_pwrite64(static_cast<int>(fd),
                   WriteSrc::pattern(512, std::byte{0x77}), 2048);
    p.sys_pwrite64(static_cast<int>(fd),
                   WriteSrc::pattern(512, std::byte{0x88}), 6144);
    p.sys_close(static_cast<int>(fd));
}

void wl_rmdir_sync(Process& p, const Fixtures& fx) {
    const std::string d = scratch(fx, "rd_dir");
    p.sys_mkdir(d.c_str(), 0755);
    const std::int64_t fd = p.sys_creat((d + "/tmp").c_str(), 0644);
    if (fd >= 0) p.sys_close(static_cast<int>(fd));
    p.sys_sync();
    p.sys_unlink((d + "/tmp").c_str());
    p.sys_rmdir(d.c_str());
    fsync_scratch_dir(p, fx);
}

}  // namespace

void crash_base_setup(vfs::FileSystem& fs) {
    prepare_environment(fs, kCrashMount);
}

const Fixtures& crash_fixtures() {
    // Paths only; computed once on a throwaway FS (prepare_environment
    // is deterministic, so the strings match every crash_base_setup run).
    static const Fixtures fx = [] {
        vfs::FileSystem fs{vfs::FsConfig{}};
        return prepare_environment(fs, kCrashMount);
    }();
    return fx;
}

const std::vector<CrashWorkload>& crashmonkey_baseline() {
    static const std::vector<CrashWorkload> set = {
        {"create_fsync", "create + write + fsync, unsynced tail write",
         wl_create_fsync},
        {"append_fsync", "append to existing file around an fsync",
         wl_append_fsync},
        {"overwrite_no_sync", "overwrite file head with no barrier",
         wl_overwrite_no_sync},
        {"rename_commit", "write tmp, fsync, rename over dst, fsync dir",
         wl_rename_commit},
        {"mkdir_tree_sync", "nested mkdirs + leaf file, sync, late mkdir",
         wl_mkdir_tree_sync},
        {"unlink_fsync", "create+fsync a file, unlink it, fsync dir",
         wl_unlink_fsync},
        {"truncate_fdatasync", "grow, fsync, shrink, fdatasync, shrink",
         wl_truncate_fdatasync},
        {"symlink_rename", "symlink, sync, rename the link",
         wl_symlink_rename},
        {"hardlink_fsync", "link a file, fsync dir, drop the old name",
         wl_hardlink_fsync},
        {"xattr_syncfs", "setxattr, syncfs, replace + remove xattr",
         wl_xattr_syncfs},
        {"osync_log", "O_SYNC log: every write is its own barrier",
         wl_osync_log},
        {"tmpfile_write", "O_TMPFILE write + fsync + close (release)",
         wl_tmpfile_write},
        {"chmod_fsync", "fchmod + fsync, then unsynced chmod",
         wl_chmod_fsync},
        {"many_writes_fdatasync", "4 strided writes, fdatasync, 2 more",
         wl_many_writes_fdatasync},
        {"rmdir_sync", "populate dir, sync, empty + rmdir it, fsync dir",
         wl_rmdir_sync},
    };
    return set;
}

}  // namespace iocov::testers::crash
