#include "testers/crash/oracle.hpp"

#include <cassert>

#include "testers/crash/snapshot.hpp"

namespace iocov::testers::crash {

using vfs::Effect;
using vfs::EffectOp;
using vfs::InodeId;

std::string CrashBug::to_string() const {
    std::string out = "[" + kind + "] ";
    if (!workload.empty()) out += workload + " ";
    out += "@" + crash_point;
    if (!path.empty()) out += " " + path;
    if (!detail.empty()) out += ": " + detail;
    return out;
}

PersistenceOracle::PersistenceOracle(const EffectLog& log,
                                     vfs::FsConfig config,
                                     const BaseSetup& base)
    : log_(log) {
    vfs::FileSystem fs(config);
    base(fs);

    std::map<InodeId, InodeId> ino_map;  // original -> private journal
    for (const auto& [id, node] : fs.inodes()) ino_map.emplace(id, id);
    std::vector<InodeId> pinned;

    // Files whose *data* is currently guaranteed durable.  The base
    // image predates the workload (mkfs + fixtures reach the device
    // before any crash window opens), so base files start synced.
    std::set<InodeId> synced_data;
    for (const auto& [id, node] : fs.inodes())
        if (node.is_reg()) synced_data.insert(id);

    auto take_snapshot = [&](std::size_t prefix) {
        BarrierSnapshot snap;
        snap.prefix = prefix;
        std::map<std::string, InodeId> path_priv;
        snap.expected = snapshot_vfs(fs, &path_priv);
        std::map<InodeId, InodeId> inverse;  // private -> original
        for (const auto& [orig, priv] : ino_map) inverse[priv] = orig;
        for (const auto& [path, priv] : path_priv) {
            auto inv = inverse.find(priv);
            const InodeId orig = inv == inverse.end() ? priv : inv->second;
            snap.path_inos[path] = orig;
            auto& fact = snap.expected.entries[path];
            fact.check_meta = true;
            fact.check_data = fact.type == core::StateFact::Type::File &&
                              synced_data.count(orig) > 0;
        }
        snapshots_.push_back(std::move(snap));
    };

    // The pre-workload state is itself a guarantee: crashing before any
    // effect must preserve the base image.
    take_snapshot(0);

    const auto& effects = log_.effects();
    for (std::size_t i = 0; i < effects.size(); ++i) {
        const Effect& e = effects[i];
        if (e.op == EffectOp::Barrier) {
            if (vfs::barrier_is_global(e.barrier)) {
                for (const auto& [orig, priv] : ino_map) {
                    const vfs::Inode* n = fs.find(priv);
                    if (n && n->is_reg()) synced_data.insert(orig);
                }
            } else if (e.ino != vfs::kInvalidInode) {
                synced_data.insert(e.ino);
            }
            take_snapshot(i + 1);
            continue;
        }
        const bool ok = apply_logged_effect(fs, e, ino_map, pinned);
        assert(ok && "a correct effect log must replay in order");
        (void)ok;
        // Data mutations void the file's durability until re-synced.
        if (e.op == EffectOp::Write || e.op == EffectOp::Truncate)
            synced_data.erase(e.ino);
    }
}

void PersistenceOracle::invalidate_for_tail_effect(BarrierSnapshot& snap,
                                                   const Effect& e) {
    auto paths_of = [&](InodeId ino, std::vector<std::string>* out) {
        for (const auto& [path, id] : snap.path_inos)
            if (id == ino) out->push_back(path);
    };
    // Snapshot path of a directory inode (unique: dirs have one parent);
    // empty when the dir is not part of the snapshot (e.g. tail-created).
    auto dir_path = [&](InodeId ino) -> std::string {
        for (const auto& [path, id] : snap.path_inos)
            if (id == ino) return path;
        return {};
    };
    auto erase_entry = [&](const std::string& path) {
        snap.expected.entries.erase(path);
        snap.path_inos.erase(path);
    };
    auto erase_subtree = [&](const std::string& path) {
        if (path.empty()) return;
        erase_entry(path);
        const std::string prefix = path + "/";
        for (auto it = snap.expected.entries.lower_bound(prefix);
             it != snap.expected.entries.end() &&
             it->first.compare(0, prefix.size(), prefix) == 0;) {
            snap.path_inos.erase(it->first);
            it = snap.expected.entries.erase(it);
        }
    };
    auto child_path = [&](InodeId parent, const std::string& name) {
        const std::string dir = dir_path(parent);
        if (dir.empty()) return std::string{};
        return dir == "/" ? dir + name : dir + "/" + name;
    };

    switch (e.op) {
        case EffectOp::Write:
        case EffectOp::Truncate: {
            std::vector<std::string> paths;
            paths_of(e.ino, &paths);
            for (const auto& p : paths)
                snap.expected.entries[p].check_data = false;
            break;
        }
        case EffectOp::SetMode:
        case EffectOp::SetOwner:
        case EffectOp::SetXattr:
        case EffectOp::RemoveXattr: {
            std::vector<std::string> paths;
            paths_of(e.ino, &paths);
            for (const auto& p : paths)
                snap.expected.entries[p].check_meta = false;
            break;
        }
        case EffectOp::Unlink: {
            const std::string p = child_path(e.parent, e.name);
            if (!p.empty()) erase_entry(p);
            break;
        }
        case EffectOp::Rmdir: {
            erase_subtree(child_path(e.parent, e.name));
            break;
        }
        case EffectOp::Rename: {
            // Source moved away; whatever sat at the destination was
            // replaced.  The moved tree's new location is "extra"
            // (allowed), so both old assertions must go.
            erase_subtree(child_path(e.parent, e.name));
            erase_subtree(child_path(e.parent2, e.name2));
            break;
        }
        case EffectOp::Create:
        case EffectOp::CreateAnonymous:
        case EffectOp::ReleaseAnonymous:
        case EffectOp::Link:
        case EffectOp::Barrier:
            break;  // additions only; allow_extra covers them
    }
}

std::vector<CrashBug> PersistenceOracle::check(
    const CrashPoint& point, const RecoveredState& recovered) const {
    // Last barrier snapshot the crash point's prefix retired.
    const BarrierSnapshot* best = &snapshots_.front();
    for (const auto& snap : snapshots_) {
        if (snap.prefix <= point.prefix) best = &snap;
        else break;
    }
    BarrierSnapshot working = *best;

    // Applied tail effects legitimately perturb the barrier state:
    // drop the assertions they touch so surviving tails are not
    // misreported as corruption.  (Dropped *prefix* effects get no such
    // excuse — that is exactly the skip-a-barrier bug signature.)
    for (std::size_t idx : recovered.applied)
        if (idx >= working.prefix)
            invalidate_for_tail_effect(working, log_.effects()[idx]);

    std::vector<CrashBug> bugs;
    const core::StateSnapshot actual = snapshot_vfs(*recovered.fs);
    for (const auto& delta :
         core::diff_states(working.expected, actual, {.allow_extra = true})) {
        CrashBug bug;
        bug.crash_point = point.id();
        bug.kind = core::state_delta_kind_name(delta.kind);
        bug.path = delta.path;
        bug.detail = delta.detail;
        bugs.push_back(std::move(bug));
    }

    vfs::FsckOptions opts;
    opts.pinned_inodes = recovered.pinned;
    const vfs::FsckReport report = vfs::fsck(*recovered.fs, opts);
    for (const auto& violation : report.violations) {
        CrashBug bug;
        bug.crash_point = point.id();
        bug.kind = std::string("fsck:") + vfs::fsck_code_name(violation.code);
        bug.detail = violation.detail;
        bugs.push_back(std::move(bug));
    }
    return bugs;
}

}  // namespace iocov::testers::crash
