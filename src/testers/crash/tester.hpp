// Coverage-guided crash-consistency tester (the `iocov crashtest` verb).
//
// For each workload of the crashmonkey-baseline set, runs it live once
// (syscall layer, traced into IOCov, durable effects into an
// EffectLog), then enumerates bounded crash points (CrashReplayer) and
// checks every recovered state against the persisted-prefix oracle and
// vfs::fsck.  Workloads are ordered coverage-greedily: the next
// workload is the one adding the most not-yet-covered input/output
// partitions, so the report reads as "bugs found per unit of coverage
// bought" — the paper's argument that coverage, not test count, is
// what a crash tester should maximize.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/gap.hpp"
#include "testers/crash/oracle.hpp"
#include "testers/crash/replay.hpp"
#include "testers/crash/workloads.hpp"

namespace iocov::testers::crash {

struct CrashTestConfig {
    std::uint64_t seed = 42;
    /// Seeded reordered-tail variants per crash epoch.
    unsigned reorder_variants = 3;
    bool torn_writes = true;
    /// Cap on crash points per workload (0 = no cap).
    std::size_t max_points_per_workload = 0;
    /// Workload names to run (empty = the whole baseline set).
    std::vector<std::string> workloads;
    /// Seeded replayer bug: drop the epoch of the given barrier ordinal
    /// (per workload) even when the prefix retired it.  The oracle must
    /// catch it — this validates the tester end to end.
    std::optional<std::size_t> inject_skip_barrier;
    /// Uniform TCD target for the remaining-gaps summary.
    double tcd_target = 10.0;
};

/// One workload's crash-test outcome, in guided (greedy) order.
struct WorkloadOutcome {
    std::string name;
    std::size_t effects = 0;   ///< logged durable effects
    std::size_t barriers = 0;  ///< persistence barriers among them
    std::size_t points = 0;    ///< crash points enumerated
    /// Input/output partitions this workload covered in total, and how
    /// many were new versus everything scheduled before it.
    std::size_t covered_partitions = 0;
    std::size_t new_partitions = 0;
    std::vector<std::string> point_ids;  ///< plan order (deterministic)
    std::vector<CrashBug> bugs;
};

struct CrashTestReport {
    std::uint64_t seed = 42;
    std::vector<WorkloadOutcome> workloads;  ///< guided order
    std::size_t total_points = 0;
    std::size_t total_bugs = 0;
    /// Union coverage across the set (tested / declared partitions).
    std::size_t partitions_covered = 0;
    std::size_t partitions_declared = 0;
    /// Remaining untested partitions of the aggregate report.
    core::GapReport gaps;

    /// total_bugs / partitions_covered (0 when nothing covered) — the
    /// headline bugs-per-partition-covered number.
    double bugs_per_partition() const {
        return partitions_covered == 0
                   ? 0.0
                   : static_cast<double>(total_bugs) /
                         static_cast<double>(partitions_covered);
    }

    /// Human-readable table (deterministic for a fixed seed).
    std::string to_string() const;
    /// Machine-readable report: workloads, point ids, bugs, coverage.
    std::string to_json() const;
};

/// Runs the crash-consistency tester.  Deterministic for a fixed
/// config: same seed => same workload order, same crash-point ids,
/// same verdicts.
CrashTestReport run_crashtest(const CrashTestConfig& config = {});

}  // namespace iocov::testers::crash
