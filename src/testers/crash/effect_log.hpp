// EffectLog: the recorded WAL of one workload run.
//
// Installed on a FileSystem via set_effect_observer(), it accumulates
// every durable effect the workload produced, and exposes the barrier
// segmentation the crash-point enumerator works over: the log is a
// sequence of *epochs*, each a run of effects terminated by a Barrier
// record (the final epoch may be open, i.e. never synced).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "vfs/effect.hpp"

namespace iocov::testers::crash {

class EffectLog final : public vfs::EffectObserver {
  public:
    void on_effect(const vfs::Effect& effect) override {
        effects_.push_back(effect);
    }

    const std::vector<vfs::Effect>& effects() const { return effects_; }
    std::size_t size() const { return effects_.size(); }
    bool empty() const { return effects_.empty(); }
    void clear() { effects_.clear(); }

    /// Indices of Barrier records, ascending.
    std::vector<std::size_t> barrier_positions() const;

    /// One run of mutations ending at a barrier (or at EOF).
    struct Epoch {
        std::size_t begin = 0;    ///< first effect index (inclusive)
        std::size_t end = 0;      ///< one past the last mutation (the
                                  ///< barrier's index, or log size)
        std::size_t barrier = 0;  ///< index of the terminating Barrier
        bool has_barrier = false; ///< false only for the open tail epoch

        std::size_t length() const { return end - begin; }
    };

    /// Barrier segmentation, in log order.  Always returns at least the
    /// open tail epoch (possibly empty) so enumeration code need not
    /// special-case an unsynced log.
    std::vector<Epoch> epochs() const;

    /// One effect per line, prefixed with its index.
    std::string to_string() const;

  private:
    std::vector<vfs::Effect> effects_;
};

}  // namespace iocov::testers::crash
