// The crashmonkey-baseline workload set.
//
// Small deterministic workloads in the shape of CrashMonkey/B3 seq-1
// and seq-2 tests: a handful of mutations around one or two persistence
// barriers each.  Every workload drives the syscall layer (so IOCov
// sees a real trace for coverage accounting) against the shared fixture
// image, and every durable effect it causes lands in the attached
// EffectLog for crash replay.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "syscall/process.hpp"
#include "testers/crash/replay.hpp"
#include "testers/fixtures.hpp"

namespace iocov::testers::crash {

/// Mount point all crash workloads run under (matches the default
/// IOCov trace filter).
extern const char* const kCrashMount;

struct CrashWorkload {
    std::string name;
    std::string description;
    /// Runs the workload through the syscall layer.  Must be
    /// deterministic and must leave no fd open (close-time effects such
    /// as O_TMPFILE release need to reach the effect log).
    std::function<void(syscall::Process&, const Fixtures&)> run;
};

/// The built-in workload set, stable order and names.
const std::vector<CrashWorkload>& crashmonkey_baseline();

/// The deterministic pre-workload image every crash workload starts
/// from: the standard fixture tree under kCrashMount.  Used both for
/// the live run and for every crash replay (BaseSetup contract).
void crash_base_setup(vfs::FileSystem& fs);

/// The Fixtures paths crash_base_setup produces (path strings only —
/// safe to compute once and reuse across replays).
const Fixtures& crash_fixtures();

}  // namespace iocov::testers::crash
