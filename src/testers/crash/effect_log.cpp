#include "testers/crash/effect_log.hpp"

#include <sstream>

namespace iocov::testers::crash {

std::vector<std::size_t> EffectLog::barrier_positions() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < effects_.size(); ++i)
        if (effects_[i].op == vfs::EffectOp::Barrier) out.push_back(i);
    return out;
}

std::vector<EffectLog::Epoch> EffectLog::epochs() const {
    std::vector<Epoch> out;
    std::size_t begin = 0;
    for (std::size_t i = 0; i < effects_.size(); ++i) {
        if (effects_[i].op != vfs::EffectOp::Barrier) continue;
        Epoch e;
        e.begin = begin;
        e.end = i;
        e.barrier = i;
        e.has_barrier = true;
        out.push_back(e);
        begin = i + 1;
    }
    Epoch tail;
    tail.begin = begin;
    tail.end = effects_.size();
    tail.has_barrier = false;
    out.push_back(tail);
    return out;
}

std::string EffectLog::to_string() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < effects_.size(); ++i)
        os << i << ": " << effects_[i].to_string() << '\n';
    return os.str();
}

}  // namespace iocov::testers::crash
