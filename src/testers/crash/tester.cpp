#include "testers/crash/tester.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "core/iocov.hpp"
#include "report/table.hpp"
#include "syscall/kernel.hpp"
#include "testers/generator.hpp"

namespace iocov::testers::crash {

namespace {

/// Partition ids ("base.arg:label" / "base:label") with nonzero count.
std::set<std::string> covered_partition_ids(
    const core::CoverageReport& report) {
    std::set<std::string> ids;
    for (const auto& in : report.inputs)
        for (const auto& label : in.hist.tested())
            ids.insert(in.base + "." + in.key + ":" + label);
    for (const auto& out : report.outputs)
        for (const auto& label : out.hist.tested())
            ids.insert(out.base + ":" + label);
    return ids;
}

std::size_t declared_partitions(const core::CoverageReport& report) {
    std::size_t n = 0;
    for (const auto& in : report.inputs) n += in.hist.partition_count();
    for (const auto& out : report.outputs) n += out.hist.partition_count();
    return n;
}

/// One workload's live run: the effect log plus what it covered.
struct LiveRun {
    const CrashWorkload* workload = nullptr;
    EffectLog log;
    core::CoverageReport coverage;
    std::set<std::string> partitions;
};

LiveRun run_live(const CrashWorkload& wl) {
    LiveRun run;
    run.workload = &wl;
    vfs::FileSystem fs(recommended_fs_config());
    crash_base_setup(fs);
    fs.set_effect_observer(&run.log);
    core::IOCov iocov(trace::FilterConfig::mount_point(kCrashMount));
    syscall::Kernel kernel(fs, &iocov.live_sink());
    {
        // Scoped so close-time effects (O_TMPFILE release) are logged.
        syscall::Process proc =
            kernel.make_process(1, vfs::Credentials::root());
        wl.run(proc, crash_fixtures());
    }
    fs.set_effect_observer(nullptr);
    run.coverage = iocov.report();
    run.partitions = covered_partition_ids(run.coverage);
    return run;
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::string CrashTestReport::to_string() const {
    std::ostringstream os;
    os << "crashtest seed=" << seed << " workloads=" << workloads.size()
       << " (coverage-greedy order)\n";
    std::vector<std::vector<std::string>> rows;
    for (const auto& wl : workloads) {
        rows.push_back({wl.name, std::to_string(wl.effects),
                        std::to_string(wl.barriers),
                        std::to_string(wl.points),
                        std::to_string(wl.new_partitions),
                        std::to_string(wl.bugs.size())});
    }
    os << report::render_table(
        {"workload", "effects", "barriers", "points", "new-parts", "bugs"},
        rows);
    os << "total: " << total_points << " crash points, " << total_bugs
       << " bugs, " << partitions_covered << "/" << partitions_declared
       << " partitions covered, bugs-per-partition = "
       << report::fixed(bugs_per_partition(), 4) << "\n";
    os << "remaining gaps: " << gaps.input_gaps.size() << " input, "
       << gaps.output_gaps.size() << " output (aggregate TCD "
       << report::fixed(gaps.aggregate_tcd, 3) << ")\n";
    for (const auto& wl : workloads)
        for (const auto& bug : wl.bugs) os << "  " << bug.to_string() << "\n";
    return os.str();
}

std::string CrashTestReport::to_json() const {
    std::ostringstream os;
    os << "{\n  \"seed\": " << seed
       << ",\n  \"total_points\": " << total_points
       << ",\n  \"total_bugs\": " << total_bugs
       << ",\n  \"partitions_covered\": " << partitions_covered
       << ",\n  \"partitions_declared\": " << partitions_declared
       << ",\n  \"bugs_per_partition\": "
       << report::fixed(bugs_per_partition(), 6)
       << ",\n  \"remaining_input_gaps\": " << gaps.input_gaps.size()
       << ",\n  \"remaining_output_gaps\": " << gaps.output_gaps.size()
       << ",\n  \"workloads\": [\n";
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const auto& wl = workloads[w];
        os << "    {\"name\": \"" << json_escape(wl.name) << "\""
           << ", \"effects\": " << wl.effects
           << ", \"barriers\": " << wl.barriers
           << ", \"points\": " << wl.points
           << ", \"covered_partitions\": " << wl.covered_partitions
           << ", \"new_partitions\": " << wl.new_partitions
           << ",\n     \"point_ids\": [";
        for (std::size_t i = 0; i < wl.point_ids.size(); ++i) {
            if (i) os << ", ";
            os << "\"" << json_escape(wl.point_ids[i]) << "\"";
        }
        os << "],\n     \"bugs\": [";
        for (std::size_t i = 0; i < wl.bugs.size(); ++i) {
            const auto& bug = wl.bugs[i];
            if (i) os << ", ";
            os << "{\"point\": \"" << json_escape(bug.crash_point)
               << "\", \"kind\": \"" << json_escape(bug.kind)
               << "\", \"path\": \"" << json_escape(bug.path)
               << "\", \"detail\": \"" << json_escape(bug.detail)
               << "\", \"recipe\": \"" << json_escape(bug.recipe) << "\"}";
        }
        os << "]}" << (w + 1 < workloads.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

CrashTestReport run_crashtest(const CrashTestConfig& config) {
    CrashTestReport report;
    report.seed = config.seed;

    // Select workloads, preserving baseline order.
    std::vector<const CrashWorkload*> selected;
    for (const auto& wl : crashmonkey_baseline()) {
        if (config.workloads.empty() ||
            std::find(config.workloads.begin(), config.workloads.end(),
                      wl.name) != config.workloads.end())
            selected.push_back(&wl);
    }

    // Phase 1: live runs — effect log + coverage per workload.
    std::vector<LiveRun> runs;
    runs.reserve(selected.size());
    for (const auto* wl : selected) runs.push_back(run_live(*wl));

    // Coverage-greedy order: maximize marginal new partitions; ties go
    // to baseline order (stable and deterministic).
    std::vector<std::size_t> order;
    std::set<std::string> covered;
    std::vector<bool> used(runs.size(), false);
    for (std::size_t round = 0; round < runs.size(); ++round) {
        std::size_t best = runs.size();
        std::size_t best_gain = 0;
        for (std::size_t i = 0; i < runs.size(); ++i) {
            if (used[i]) continue;
            std::size_t gain = 0;
            for (const auto& id : runs[i].partitions)
                if (!covered.count(id)) ++gain;
            if (best == runs.size() || gain > best_gain) {
                best = i;
                best_gain = gain;
            }
        }
        used[best] = true;
        order.push_back(best);
        for (const auto& id : runs[best].partitions) covered.insert(id);
    }

    // Aggregate coverage for the headline numbers and the gap summary.
    core::CoverageReport aggregate;
    for (const auto& run : runs) aggregate.merge(run.coverage);
    report.partitions_covered = covered_partition_ids(aggregate).size();
    report.partitions_declared = declared_partitions(aggregate);
    report.gaps = core::extract_gaps(aggregate, config.tcd_target);

    // Phase 2: bounded crash enumeration + oracle, in guided order.
    const vfs::FsConfig fs_config = recommended_fs_config();
    CrashPlanConfig plan_config;
    plan_config.seed = config.seed;
    plan_config.reorder_variants = config.reorder_variants;
    plan_config.torn_writes = config.torn_writes;
    plan_config.max_points = config.max_points_per_workload;

    std::set<std::string> seen;  // re-tracks covered for new_partitions
    for (const std::size_t idx : order) {
        const LiveRun& run = runs[idx];
        WorkloadOutcome outcome;
        outcome.name = run.workload->name;
        outcome.effects = run.log.effects().size();
        outcome.barriers = run.log.barrier_positions().size();
        outcome.covered_partitions = run.partitions.size();
        for (const auto& id : run.partitions)
            if (seen.insert(id).second) ++outcome.new_partitions;

        CrashReplayer replayer(run.log, fs_config, crash_base_setup);
        if (config.inject_skip_barrier)
            replayer.inject_skip_barrier(*config.inject_skip_barrier);
        const PersistenceOracle oracle(run.log, fs_config,
                                       crash_base_setup);

        std::string recipe = "iocov crashtest --workloads " + outcome.name +
                             " --seed " + std::to_string(config.seed);
        if (config.inject_skip_barrier)
            recipe += " --inject-skip-barrier " +
                      std::to_string(*config.inject_skip_barrier);

        for (const CrashPoint& point : replayer.plan(plan_config)) {
            outcome.point_ids.push_back(point.id());
            const RecoveredState recovered = replayer.replay(point);
            for (CrashBug& bug : oracle.check(point, recovered)) {
                bug.workload = outcome.name;
                bug.recipe = recipe;
                outcome.bugs.push_back(std::move(bug));
            }
        }
        outcome.points = outcome.point_ids.size();
        report.total_points += outcome.points;
        report.total_bugs += outcome.bugs.size();
        report.workloads.push_back(std::move(outcome));
    }
    return report;
}

}  // namespace iocov::testers::crash
