// Bounded crash replay (the B3 recipe on our own VFS).
//
// A crash can leave on disk: everything up to some persistence barrier
// (the retired prefix), plus an arbitrary *subset* of the writes issued
// since that barrier, possibly reordered, with the last data write
// possibly torn mid-extent.  Nothing ever crosses a barrier: the crash
// epoch is exactly one entry of EffectLog::epochs().
//
// CrashReplayer enumerates those states deterministically (seeded) and
// reconstructs each one on a fresh FileSystem by re-running the base
// image setup and re-applying logged effects through the public VFS
// API.  Replay uses superuser credentials and the recorded *post-op*
// values, so a correct log replays without permission divergence.
//
// Inode translation: the base setup is re-run verbatim, so base inodes
// keep their original ids; inodes created *during* the workload get
// fresh ids on replay and are tracked via an original -> replayed map.
// An effect referencing an unmapped workload inode (its creation was
// dropped from the tail) cannot apply and is counted as dropped —
// exactly the lost-metadata crash states B3 explores.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "testers/crash/effect_log.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::testers::crash {

/// Rebuilds the pre-workload image on a fresh FileSystem.  Must be
/// deterministic: it runs once for the live FS and once per replay.
using BaseSetup = std::function<void(vfs::FileSystem&)>;

/// One simulated crash state.
struct CrashPoint {
    enum class Tail : std::uint8_t {
        None,      ///< crash exactly at a barrier (or before any effect)
        InOrder,   ///< first `t` effects of the crash epoch persisted
        Reordered, ///< seeded subset of the epoch, seeded order
        Torn,      ///< full epoch, last data write torn mid-extent
    };

    /// Number of in-order prefix effects persisted before the crash
    /// epoch begins (index one past the retired barrier; 0 = nothing).
    std::size_t prefix = 0;
    Tail tail = Tail::None;
    /// Tail parameter: InOrder length, or Reordered variant ordinal.
    std::uint32_t variant = 0;
    /// Plan seed, baked in by plan() so replay() is self-contained.
    std::uint64_t seed = 42;

    /// Stable recipe id, e.g. "p12+none", "p12+seq3", "p12+shuf1",
    /// "p12+torn" — same seed, same log => same id list.
    std::string id() const;
};

struct CrashPlanConfig {
    std::uint64_t seed = 42;
    /// Seeded reordered-tail variants per crash epoch.
    unsigned reorder_variants = 3;
    /// Also tear the last data write of each epoch.
    bool torn_writes = true;
    /// Hard cap on points per log (0 = no cap); points are subsampled
    /// evenly, keeping the first and last.
    std::size_t max_points = 0;
};

/// What replay() hands to the oracle.
struct RecoveredState {
    std::unique_ptr<vfs::FileSystem> fs;
    /// Original workload inode -> replayed inode.
    std::map<vfs::InodeId, vfs::InodeId> ino_map;
    /// Log indices actually applied, in application order (prefix then
    /// tail; a reordered tail lists its seeded order).
    std::vector<std::size_t> applied;
    /// Effects that could not be applied (unmapped inode, conflicting
    /// namespace state in a reordered tail, or a skipped barrier epoch).
    std::size_t dropped = 0;
    /// Anonymous (O_TMPFILE) inodes still live, in replay ids — pass to
    /// FsckOptions::pinned_inodes.
    std::vector<vfs::InodeId> pinned;
};

class CrashReplayer {
  public:
    /// `log` and `base` must outlive the replayer.  `config` is the
    /// FsConfig the workload ran with (replays use the same).
    CrashReplayer(const EffectLog& log, vfs::FsConfig config,
                  BaseSetup base);

    /// Deterministic crash-point enumeration: for every epoch — the
    /// barrier state itself, every in-order partial tail, `reorder_variants`
    /// seeded shuffled subsets, and a torn last write.
    std::vector<CrashPoint> plan(const CrashPlanConfig& config) const;

    /// Reconstructs the crash state `point` describes.
    RecoveredState replay(const CrashPoint& point) const;

    /// Seeded bug for oracle validation: when set, replay *drops* every
    /// effect of the epoch terminated by the given barrier (0-based
    /// ordinal among barriers) even when the crash point's prefix
    /// retired it — i.e. the file system "forgot" a barrier it
    /// acknowledged.  A persisted-prefix oracle must flag this; fsck
    /// alone stays clean (the recovered state is self-consistent).
    void inject_skip_barrier(std::optional<std::size_t> barrier_ordinal) {
        skip_barrier_ = barrier_ordinal;
    }

  private:
    const EffectLog& log_;
    vfs::FsConfig config_;
    BaseSetup base_;
    std::optional<std::size_t> skip_barrier_;
};

/// Applies one logged effect to `fs` as superuser using the recorded
/// post-op values.  `ino_map` translates original to replayed inode
/// ids (extended on creations); `pinned` tracks live anonymous inodes.
/// Returns false — with no partial mutation — when the effect cannot
/// apply in the current state.  Shared by CrashReplayer (crash states)
/// and PersistenceOracle (the in-order journal).
bool apply_logged_effect(vfs::FileSystem& fs, const vfs::Effect& effect,
                         std::map<vfs::InodeId, vfs::InodeId>& ino_map,
                         std::vector<vfs::InodeId>& pinned);

}  // namespace iocov::testers::crash
