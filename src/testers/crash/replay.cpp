#include "testers/crash/replay.hpp"

#include <algorithm>
#include <sstream>

#include "testers/rng.hpp"

namespace iocov::testers::crash {

using vfs::Effect;
using vfs::EffectOp;
using vfs::InodeId;

namespace {

/// Payload length of a write effect (materialized or pattern).
std::uint64_t write_len(const Effect& e) {
    return e.bytes.empty() ? e.len : e.bytes.size();
}

/// Seed for one crash point's tail randomness: mixes the plan seed,
/// the epoch position and the variant so every point draws an
/// independent, reproducible stream.
std::uint64_t point_seed(const CrashPoint& p) {
    return p.seed ^ (static_cast<std::uint64_t>(p.prefix) * 0x9E3779B97F4A7C15ULL)
                  ^ (static_cast<std::uint64_t>(p.variant) * 0xD1B54A32D192ED03ULL);
}

}  // namespace

std::string CrashPoint::id() const {
    std::ostringstream os;
    os << 'p' << prefix;
    switch (tail) {
        case Tail::None: os << "+none"; break;
        case Tail::InOrder: os << "+seq" << variant; break;
        case Tail::Reordered: os << "+shuf" << variant; break;
        case Tail::Torn: os << "+torn"; break;
    }
    return os.str();
}

CrashReplayer::CrashReplayer(const EffectLog& log, vfs::FsConfig config,
                             BaseSetup base)
    : log_(log), config_(config), base_(std::move(base)) {}

std::vector<CrashPoint> CrashReplayer::plan(
    const CrashPlanConfig& config) const {
    std::vector<CrashPoint> points;
    for (const auto& epoch : log_.epochs()) {
        CrashPoint at_barrier;
        at_barrier.prefix = epoch.begin;
        at_barrier.tail = CrashPoint::Tail::None;
        at_barrier.seed = config.seed;
        points.push_back(at_barrier);

        const std::size_t n = epoch.length();
        for (std::size_t t = 1; t <= n; ++t) {
            CrashPoint p;
            p.prefix = epoch.begin;
            p.tail = CrashPoint::Tail::InOrder;
            p.variant = static_cast<std::uint32_t>(t);
            p.seed = config.seed;
            points.push_back(p);
        }
        if (n >= 2) {
            for (unsigned k = 1; k <= config.reorder_variants; ++k) {
                CrashPoint p;
                p.prefix = epoch.begin;
                p.tail = CrashPoint::Tail::Reordered;
                p.variant = k;
                p.seed = config.seed;
                points.push_back(p);
            }
        }
        if (config.torn_writes) {
            for (std::size_t i = epoch.end; i > epoch.begin; --i) {
                const Effect& e = log_.effects()[i - 1];
                if (e.op == EffectOp::Write && write_len(e) >= 2) {
                    CrashPoint p;
                    p.prefix = epoch.begin;
                    p.tail = CrashPoint::Tail::Torn;
                    p.seed = config.seed;
                    points.push_back(p);
                    break;
                }
            }
        }
    }
    if (config.max_points > 0 && points.size() > config.max_points) {
        // Even subsample keeping first and last (deterministic).
        std::vector<CrashPoint> kept;
        kept.reserve(config.max_points);
        const std::size_t m = config.max_points;
        std::size_t prev = points.size();  // sentinel
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t idx =
                m == 1 ? 0 : i * (points.size() - 1) / (m - 1);
            if (idx != prev) kept.push_back(points[idx]);
            prev = idx;
        }
        points = std::move(kept);
    }
    return points;
}

bool apply_logged_effect(vfs::FileSystem& fs, const Effect& e,
                         std::map<InodeId, InodeId>& ino_map,
                         std::vector<InodeId>& pinned) {
    const auto root = vfs::Credentials::root();
    auto mapped = [&](InodeId orig) -> std::optional<InodeId> {
        auto it = ino_map.find(orig);
        if (it == ino_map.end()) return std::nullopt;
        return it->second;
    };
    // True when the replayed dirent (parent, name) still points at the
    // replayed image of `orig` — reordered tails can leave a different
    // file under that name, in which case the logged removal/move of
    // `orig`'s entry did not persist as such.
    auto dirent_matches = [&](InodeId parent, const std::string& name,
                              InodeId orig) {
        auto p = mapped(parent);
        auto o = mapped(orig);
        if (!p || !o) return false;
        const vfs::Inode* dir = fs.find(*p);
        if (!dir || !dir->is_dir()) return false;
        auto it = dir->dirents.find(name);
        return it != dir->dirents.end() && it->second == *o;
    };

    switch (e.op) {
        case EffectOp::Create: {
            auto p = mapped(e.parent);
            if (!p) return false;
            const vfs::Credentials cred{e.uid, e.gid};
            const abi::mode_t_ perm = e.mode & abi::MODE_PERM_MASK;
            vfs::Result<InodeId> r = abi::Err::EINVAL_;
            if (e.is_dir) {
                r = fs.make_dir(*p, e.name, perm, cred);
            } else if (abi::is_lnk(e.mode)) {
                r = fs.make_symlink(*p, e.name, e.name2, cred);
            } else if (abi::is_reg(e.mode)) {
                r = fs.create_file(*p, e.name, perm, cred);
            } else {
                r = fs.make_special(*p, e.name, e.mode,
                                    static_cast<vfs::DeviceState>(e.device),
                                    cred);
            }
            if (!r.ok()) return false;
            ino_map[e.ino] = r.value();
            return true;
        }
        case EffectOp::CreateAnonymous: {
            auto p = mapped(e.parent);
            if (!p) return false;
            auto r = fs.create_anonymous(*p, e.mode & abi::MODE_PERM_MASK,
                                         vfs::Credentials{e.uid, e.gid});
            if (!r.ok()) return false;
            ino_map[e.ino] = r.value();
            pinned.push_back(r.value());
            return true;
        }
        case EffectOp::ReleaseAnonymous: {
            auto i = mapped(e.ino);
            if (!i) return false;
            fs.release_anonymous(*i);
            std::erase(pinned, *i);
            return true;
        }
        case EffectOp::Link: {
            auto t = mapped(e.ino);
            auto p = mapped(e.parent);
            if (!t || !p) return false;
            return fs.link(*t, *p, e.name, root).ok();
        }
        case EffectOp::Unlink: {
            if (!dirent_matches(e.parent, e.name, e.ino)) return false;
            return fs.unlink(*mapped(e.parent), e.name, root).ok();
        }
        case EffectOp::Rmdir: {
            if (!dirent_matches(e.parent, e.name, e.ino)) return false;
            return fs.remove_dir(*mapped(e.parent), e.name, root).ok();
        }
        case EffectOp::Rename: {
            if (!dirent_matches(e.parent, e.name, e.ino)) return false;
            auto np = mapped(e.parent2);
            if (!np) return false;
            return fs.rename(*mapped(e.parent), e.name, *np, e.name2, root)
                .ok();
        }
        case EffectOp::Write: {
            auto i = mapped(e.ino);
            if (!i) return false;
            if (e.bytes.empty())
                return fs.write_pattern(*i, e.off, e.len, e.fill).ok();
            return fs.write(*i, e.off, e.bytes).ok();
        }
        case EffectOp::Truncate: {
            auto i = mapped(e.ino);
            if (!i) return false;
            return fs.truncate(*i, e.size).ok();
        }
        case EffectOp::SetMode: {
            auto i = mapped(e.ino);
            if (!i) return false;
            return fs.chmod(*i, e.mode, root).ok();
        }
        case EffectOp::SetOwner: {
            auto i = mapped(e.ino);
            if (!i) return false;
            return fs.chown(*i, e.uid, e.gid, root).ok();
        }
        case EffectOp::SetXattr: {
            auto i = mapped(e.ino);
            if (!i) return false;
            return fs.set_xattr(*i, e.name, e.bytes, 0, root).ok();
        }
        case EffectOp::RemoveXattr: {
            auto i = mapped(e.ino);
            if (!i) return false;
            return fs.remove_xattr(*i, e.name, root).ok();
        }
        case EffectOp::Barrier:
            return true;  // no state of its own
    }
    return false;
}

RecoveredState CrashReplayer::replay(const CrashPoint& point) const {
    RecoveredState rec;
    rec.fs = std::make_unique<vfs::FileSystem>(config_);
    base_(*rec.fs);
    // The base setup re-runs verbatim, so base inodes map to themselves.
    for (const auto& [id, node] : rec.fs->inodes())
        rec.ino_map.emplace(id, id);

    // Optional seeded bug: the epoch ending at barrier #skip_barrier_
    // silently loses its effects even though the barrier retired them.
    std::size_t skip_begin = 0, skip_end = 0;
    if (skip_barrier_) {
        const auto barriers = log_.barrier_positions();
        if (*skip_barrier_ < barriers.size()) {
            const std::size_t bpos = barriers[*skip_barrier_];
            for (const auto& epoch : log_.epochs()) {
                if (epoch.has_barrier && epoch.barrier == bpos) {
                    skip_begin = epoch.begin;
                    skip_end = epoch.end;
                    break;
                }
            }
        }
    }
    auto skipped = [&](std::size_t idx) {
        return skip_barrier_ && idx >= skip_begin && idx < skip_end &&
               skip_end > skip_begin;
    };

    const auto& effects = log_.effects();
    const std::size_t prefix = std::min(point.prefix, effects.size());
    for (std::size_t i = 0; i < prefix; ++i) {
        if (skipped(i)) {
            ++rec.dropped;
            continue;
        }
        if (apply_logged_effect(*rec.fs, effects[i], rec.ino_map, rec.pinned))
            rec.applied.push_back(i);
        else
            ++rec.dropped;
    }

    // The crash epoch: effects from `prefix` up to the next barrier.
    std::size_t epoch_end = prefix;
    while (epoch_end < effects.size() &&
           effects[epoch_end].op != EffectOp::Barrier)
        ++epoch_end;

    auto apply_tail = [&](std::size_t idx, const Effect& e) {
        if (apply_logged_effect(*rec.fs, e, rec.ino_map, rec.pinned))
            rec.applied.push_back(idx);
        else
            ++rec.dropped;
    };

    switch (point.tail) {
        case CrashPoint::Tail::None:
            break;
        case CrashPoint::Tail::InOrder: {
            const std::size_t t = std::min<std::size_t>(
                point.variant, epoch_end - prefix);
            for (std::size_t i = prefix; i < prefix + t; ++i)
                apply_tail(i, effects[i]);
            break;
        }
        case CrashPoint::Tail::Reordered: {
            Rng rng(point_seed(point));
            std::vector<std::size_t> picked;
            for (std::size_t i = prefix; i < epoch_end; ++i)
                if (rng.chance(2, 3)) picked.push_back(i);
            // Fisher-Yates with the same stream.
            for (std::size_t i = picked.size(); i > 1; --i)
                std::swap(picked[i - 1], picked[rng.below(i)]);
            for (std::size_t idx : picked) apply_tail(idx, effects[idx]);
            break;
        }
        case CrashPoint::Tail::Torn: {
            // Find the last data write; everything before it persists in
            // order, the write itself lands truncated mid-extent.
            std::size_t torn = epoch_end;
            for (std::size_t i = epoch_end; i > prefix; --i) {
                const Effect& e = effects[i - 1];
                if (e.op == EffectOp::Write && write_len(e) >= 2) {
                    torn = i - 1;
                    break;
                }
            }
            Rng rng(point_seed(point));
            for (std::size_t i = prefix; i < epoch_end; ++i) {
                if (i != torn) {
                    apply_tail(i, effects[i]);
                    continue;
                }
                Effect partial = effects[i];
                const std::uint64_t len = write_len(partial);
                const std::uint64_t split = 1 + rng.below(len - 1);
                if (partial.bytes.empty()) partial.len = split;
                else partial.bytes.resize(split);
                apply_tail(i, partial);
            }
            break;
        }
    }
    return rec;
}

}  // namespace iocov::testers::crash
