#include "testers/crash/snapshot.hpp"

#include <algorithm>
#include <array>
#include <cstddef>

namespace iocov::testers::crash {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

std::uint64_t hash_file(const vfs::Inode& node) {
    // Extent-aware: hash only allocated regions, tagged with their
    // offset and length, and skip holes entirely — fixture images carry
    // multi-GiB sparse files that must not cost O(size) per snapshot.
    // (StateFact::size covers total length; this hash covers layout +
    // bytes of what is actually stored.)
    std::uint64_t h = kFnvOffset;
    std::array<std::byte, 64 * 1024> chunk;
    const std::uint64_t size = node.data.size();
    std::uint64_t off = 0;
    while (off < size) {
        const auto data = node.data.next_data(off);
        if (!data || *data >= size) break;
        const std::uint64_t end =
            std::min<std::uint64_t>(node.data.next_hole(*data), size);
        const std::uint64_t region[2] = {*data, end - *data};
        fnv_bytes(h, region, sizeof region);
        std::uint64_t pos = *data;
        while (pos < end) {
            const std::uint64_t want =
                std::min<std::uint64_t>(chunk.size(), end - pos);
            const std::uint64_t got =
                node.data.read(pos, std::span(chunk.data(), want));
            fnv_bytes(h, chunk.data(), got);
            if (got < want) break;  // defensive
            pos += got;
        }
        off = end;
    }
    return h;
}

std::uint64_t hash_xattrs(const vfs::Inode& node) {
    if (node.xattrs.empty()) return 0;
    std::uint64_t h = kFnvOffset;
    for (const auto& [name, value] : node.xattrs) {  // map: sorted
        fnv_bytes(h, name.data(), name.size());
        fnv_bytes(h, "=", 1);
        fnv_bytes(h, value.data(), value.size());
        fnv_bytes(h, ";", 1);
    }
    return h;
}

core::StateFact fact_for(const vfs::Inode& node) {
    core::StateFact f;
    if (node.is_dir()) f.type = core::StateFact::Type::Dir;
    else if (node.is_lnk()) f.type = core::StateFact::Type::Symlink;
    else if (node.is_reg()) f.type = core::StateFact::Type::File;
    else f.type = core::StateFact::Type::Special;
    f.mode = node.mode;
    f.uid = node.uid;
    f.gid = node.gid;
    if (f.type == core::StateFact::Type::File) {
        f.size = node.data.size();
        f.content_hash = hash_file(node);
    }
    f.xattr_hash = hash_xattrs(node);
    f.symlink_target = node.symlink_target;
    return f;
}

void walk(const vfs::FileSystem& fs, vfs::InodeId ino,
          const std::string& path, core::StateSnapshot* snap,
          std::map<std::string, vfs::InodeId>* path_inos) {
    const vfs::Inode* node = fs.find(ino);
    if (!node) return;  // dangling dirent: fsck's problem, not ours
    snap->entries.emplace(path, fact_for(*node));
    if (path_inos) path_inos->emplace(path, ino);
    if (!node->is_dir()) return;
    for (const auto& [name, child] : node->dirents) {
        const std::string child_path =
            (path == "/" ? path : path + "/") + name;
        walk(fs, child, child_path, snap, path_inos);
    }
}

}  // namespace

core::StateSnapshot snapshot_vfs(
    const vfs::FileSystem& fs,
    std::map<std::string, vfs::InodeId>* path_inos) {
    core::StateSnapshot snap;
    walk(fs, vfs::kRootInode, "/", &snap, path_inos);
    return snap;
}

std::uint64_t content_hash(const vfs::FileSystem& fs, vfs::InodeId ino) {
    const vfs::Inode* node = fs.find(ino);
    if (!node) return 0;
    return hash_file(*node);
}

}  // namespace iocov::testers::crash
