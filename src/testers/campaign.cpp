#include "testers/campaign.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/iocov.hpp"
#include "core/syscall_spec.hpp"
#include "syscall/kernel.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "testers/profile.hpp"
#include "trace/sink.hpp"
#include "vfs/fault.hpp"
#include "vfs/filesystem.hpp"
#include "vfs/fsck.hpp"

namespace iocov::testers {
namespace {

TesterProfile profile_for_suite(const std::string& suite) {
    if (suite == "crashmonkey") return crashmonkey_profile();
    if (suite == "xfstests") return xfstests_profile();
    if (suite == "ltp") return ltp_profile();
    throw std::invalid_argument("unknown suite: " + suite);
}

/// Everything one workload replay produces.
struct RunOutcome {
    core::CoverageReport report;
    /// Calls per tracked variant (the sweep's fault-point universe).
    std::map<std::string, std::uint64_t> op_counts;
    /// Failing events per (variant, errno value), across *all* traced
    /// syscalls — chaos faults can fire on untracked variants too.
    std::map<std::pair<std::string, int>, std::uint64_t> errno_counts;
    std::vector<vfs::FaultInjector::FiredStat> fired;
    std::uint64_t fired_total = 0;
    vfs::FsckReport fsck;
};

/// Replays the configured workload once on a fresh file system, with
/// `arm` (possibly empty) installing faults before the run.  Fresh
/// FileSystem/Kernel/IOCov per run keeps runs fully independent: no
/// filter state, fd table, or quota ledger carries over.
template <typename ArmFn>
RunOutcome execute_run(const CampaignConfig& cfg,
                       const TesterProfile& profile,
                       const std::vector<core::SyscallSpec>& registry,
                       ArmFn&& arm) {
    vfs::FileSystem fs(recommended_fs_config());
    Fixtures fx = prepare_environment(fs, cfg.mount);
    core::IOCov iocov(trace::FilterConfig::mount_point(cfg.mount), registry);

    RunOutcome out;
    // Tee: count raw kernel returns (pre-filter, so injected faults on
    // paths outside the mount still count) while feeding IOCov live.
    trace::CallbackSink tee([&](const trace::TraceEvent& ev) {
        if (ev.ret < 0)
            ++out.errno_counts[{ev.syscall, static_cast<int>(-ev.ret)}];
        if (core::base_of_variant(ev.syscall, registry))
            ++out.op_counts[ev.syscall];
        iocov.consume(ev);
    });

    syscall::Kernel kernel(fs, &tee);
    arm(kernel.faults());
    TesterSim sim(profile, {cfg.scale, cfg.seed});
    sim.run(kernel, fx);

    out.fired = kernel.faults().stats();
    out.fired_total = kernel.faults().fired_total();
    // Processes live inside run(), so every anonymous (O_TMPFILE)
    // inode has been released by now: fsck needs no pins, and genuine
    // leaks surface as OrphanInode.
    out.fsck = vfs::fsck(fs);
    out.report = iocov.report();
    return out;
}

/// Property 2: every fired (op, errno) must appear in the trace at
/// least as many times as it fired.  Returns the number of fired stats
/// the trace under-reports.
std::uint64_t count_unsurfaced(const RunOutcome& run) {
    std::uint64_t unsurfaced = 0;
    for (const auto& stat : run.fired) {
        const auto it = run.errno_counts.find(
            {stat.op, static_cast<int>(stat.err)});
        const std::uint64_t surfaced =
            it == run.errno_counts.end() ? 0 : it->second;
        if (surfaced < stat.count) ++unsurfaced;
    }
    return unsurfaced;
}

void absorb_run(CampaignResult& result, const CampaignConfig& cfg,
                CampaignRun run, const RunOutcome& outcome) {
    run.fired = outcome.fired_total;
    run.unsurfaced = count_unsurfaced(outcome);
    run.fsck_violations = outcome.fsck.violations.size();

    result.faults_fired += run.fired;
    if (!run.faithful()) ++result.unfaithful_runs;
    result.fsck_violations += run.fsck_violations;
    for (const auto& v : outcome.fsck.violations) {
        if (result.fsck_details.size() >= 8) break;
        result.fsck_details.push_back(v.to_string());
    }
    result.aggregate.merge(outcome.report);
    (run.probabilistic ? result.chaos_runs : result.sweep_runs) += 1;
    result.runs.push_back(std::move(run));
    (void)cfg;
}

bool is_errno_label(const std::string& label) {
    return label.rfind("OK", 0) != 0;  // "OK", "OK:=0", "OK:2^k", ...
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& config) {
    const TesterProfile profile = profile_for_suite(config.suite);
    const auto& registry = config.extended_registry
                               ? core::extended_syscall_registry()
                               : core::syscall_registry();

    CampaignResult result;

    // ---- fault-free baseline ------------------------------------------
    const RunOutcome baseline =
        execute_run(config, profile, registry, [](vfs::FaultInjector&) {});
    result.baseline = baseline.report;
    result.aggregate = baseline.report;
    result.baseline_fsck_violations = baseline.fsck.violations.size();
    for (const auto& v : baseline.fsck.violations) {
        if (result.fsck_details.size() >= 8) break;
        result.fsck_details.push_back("[baseline] " + v.to_string());
    }

    // ---- systematic sweep ---------------------------------------------
    // Fault-point universe: every tracked variant the baseline actually
    // calls, crossed with every configured errno, at occurrence targets
    // spaced evenly over the variant's baseline call count.  The armed
    // one-shot is inert until its k-th occurrence, so the replay (same
    // seed) is bit-identical to the baseline up to the firing call —
    // which therefore always exists: skip < baseline count.
    std::vector<FaultPoint> plan;
    for (const auto& [op, count] : baseline.op_counts) {
        for (const abi::Err err : config.errors) {
            const std::uint64_t samples =
                std::min<std::uint64_t>(
                    std::max(1u, config.occurrences_per_point), count);
            for (std::uint64_t i = 0; i < samples; ++i)
                plan.push_back(
                    {op, err, static_cast<unsigned>(count * i / samples)});
        }
    }
    result.points_planned = plan.size();

    // Bounded sweep: subsample evenly (not a prefix truncation, which
    // would drop whole ops) down to max_runs points.
    if (config.max_runs != 0 && plan.size() > config.max_runs) {
        std::vector<FaultPoint> bounded;
        bounded.reserve(config.max_runs);
        for (std::size_t j = 0; j < config.max_runs; ++j)
            bounded.push_back(plan[j * plan.size() / config.max_runs]);
        plan = std::move(bounded);
    }

    for (const FaultPoint& point : plan) {
        const RunOutcome outcome = execute_run(
            config, profile, registry, [&](vfs::FaultInjector& faults) {
                faults.arm(point.op, point.err, point.skip);
            });
        absorb_run(result, config, CampaignRun{point, false, 0, 0, 0},
                   outcome);
    }

    // ---- probabilistic chaos runs -------------------------------------
    // Each run arms one seeded "*" fault per errno; the injector's
    // SplitMix64 streams make every run replayable from the config.
    for (unsigned r = 0; r < config.chaos_runs; ++r) {
        const RunOutcome outcome = execute_run(
            config, profile, registry, [&](vfs::FaultInjector& faults) {
                std::uint64_t salt = config.seed;
                for (const abi::Err err : config.errors) {
                    salt = salt * 6364136223846793005ULL +
                           (static_cast<std::uint64_t>(err) << 8 | (r + 1));
                    faults.arm_probabilistic("*", err, config.chaos_permille,
                                             salt);
                }
            });
        absorb_run(result, config,
                   CampaignRun{{"*", config.errors.empty()
                                         ? abi::Err::EIO_
                                         : config.errors.front(),
                                0},
                               true, 0, 0, 0},
                   outcome);
    }

    // ---- coverage delta ------------------------------------------------
    for (const auto& out : result.aggregate.outputs) {
        const core::OutputCoverage* base_out =
            result.baseline.find_output(out.base);
        for (const auto& row : out.hist.rows()) {
            if (row.count == 0 || !is_errno_label(row.label)) continue;
            const std::uint64_t before =
                base_out ? base_out->hist.count(row.label) : 0;
            if (before == 0)
                result.new_output_partitions.push_back(out.base + ":" +
                                                       row.label);
        }
    }
    // Canonical (lexicographic) order: the loop above walks reports in
    // registry order, which is only incidentally stable — sort so the
    // summary is a pure function of the partition set and golden-output
    // tests can lock it down.
    std::sort(result.new_output_partitions.begin(),
              result.new_output_partitions.end());
    return result;
}

std::string CampaignResult::summary() const {
    std::ostringstream os;
    os << "campaign: " << (sweep_runs + chaos_runs) << " injected runs ("
       << sweep_runs << " systematic of " << points_planned << " planned, "
       << chaos_runs << " chaos), " << faults_fired << " faults fired\n";
    os << "faithfulness: " << unfaithful_runs << " unfaithful run(s)\n";
    os << "fsck: " << fsck_violations << " violation(s) across injected runs"
       << ", " << baseline_fsck_violations << " in baseline\n";
    for (const auto& d : fsck_details) os << "  " << d << "\n";
    os << "new errno output partitions: " << new_output_partitions.size()
       << "\n";
    for (const auto& p : new_output_partitions) os << "  + " << p << "\n";
    os << "verdict: " << (clean() ? "CLEAN" : "VIOLATIONS") << "\n";
    return os.str();
}

}  // namespace iocov::testers
