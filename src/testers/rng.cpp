#include "testers/rng.hpp"

namespace iocov::testers {

std::size_t weighted_pick(Rng& rng, const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    if (total <= 0) return 0;
    // 53-bit uniform double in [0, total).
    const double u =
        static_cast<double>(rng.next() >> 11) / 9007199254740992.0 * total;
    double acc = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (u < acc) return i;
    }
    return weights.size() - 1;
}

}  // namespace iocov::testers
