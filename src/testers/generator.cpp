#include "testers/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "abi/fcntl.hpp"
#include "abi/seek.hpp"
#include "abi/xattr.hpp"

namespace iocov::testers {

using namespace iocov::abi;  // NOLINT: flag constants read better unqualified
using syscall::Process;
using syscall::ReadDst;
using syscall::WriteSrc;

vfs::FsConfig recommended_fs_config() {
    vfs::FsConfig cfg;
    cfg.capacity_blocks = (8ULL << 30) / cfg.block_size;  // 8 GiB
    cfg.max_inodes = 1 << 17;
    // Room for a full XATTR_SIZE_MAX_ value plus bookkeeping, so the
    // xattr sweep reaches the paper's Fig. 1 boundary without ENOSPC.
    cfg.inode_xattr_capacity = 70000;
    return cfg;
}

namespace {

bool grants_write(std::uint32_t flags) {
    const auto acc = flags & O_ACCMODE;
    return acc == O_WRONLY || acc == O_RDWR;
}

}  // namespace

struct TesterSim::Ctx {
    syscall::Kernel& kernel;
    const Fixtures& fx;
    Rng rng;
    Process user;  ///< unprivileged workload identity (like fsgqa)
    Process root;  ///< privileged identity for setup-ish calls

    /// Open budget per flag combination (see header).
    std::vector<std::pair<std::uint32_t, std::int64_t>> budget;

    RunStats stats;
    std::uint64_t uniq = 0;

    std::vector<std::string> pool;  ///< pre-created reusable files
    std::string rfile;              ///< sparse read-source file
    std::string wfile;              ///< write-target file
    std::string xfile;              ///< xattr playground file

    Ctx(syscall::Kernel& k, const Fixtures& f, std::uint64_t seed)
        : kernel(k),
          fx(f),
          rng(seed),
          user(k.make_process(1000, vfs::Credentials::user(1000, 1000))),
          root(k.make_process(999, vfs::Credentials::root())) {}

    std::string unique(const char* stem) {
        return fx.scratch + "/" + stem + std::to_string(uniq++);
    }
};

TesterSim::TesterSim(TesterProfile profile, Options options)
    : profile_(std::move(profile)), options_(options) {}

std::uint64_t TesterSim::scaled(std::uint64_t count) const {
    if (count == 0) return 0;
    const double v = static_cast<double>(count) * options_.scale;
    return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                          std::llround(v)));
}

namespace {

/// Spends one open from the budget (if the combo is listed) and issues
/// it, occasionally through the openat variant.
std::int64_t open_spend(TesterSim::Ctx* c, unsigned variant_permille,
                        std::uint32_t flags, const char* path,
                        mode_t_ mode = 0644, Process* proc = nullptr) {
    for (auto& [combo, left] : c->budget) {
        if (combo == flags) {
            --left;
            break;
        }
    }
    Process& p = proc ? *proc : c->user;
    ++c->stats.opens;
    if (c->rng.below(1000) < variant_permille)
        return p.sys_openat(AT_FDCWD, path, flags, mode);
    return p.sys_open(path, flags, mode);
}

std::int64_t budget_left(const TesterSim::Ctx* c, std::uint32_t flags) {
    for (const auto& [combo, left] : c->budget)
        if (combo == flags) return left;
    return 0;
}

/// Picks the combo with the most remaining budget that contains all of
/// `require`, none of `forbid`, and (if `need_write`) a writing access
/// mode.  Falls back to `require` itself if nothing matches.
std::uint32_t pick_combo(TesterSim::Ctx* c, std::uint32_t require,
                         std::uint32_t forbid, bool need_write) {
    std::uint32_t best = 0;
    std::int64_t best_left = std::numeric_limits<std::int64_t>::min();
    bool found = false;
    for (const auto& [combo, left] : c->budget) {
        if ((combo & require) != require) continue;
        if (combo & forbid) continue;
        if (need_write != grants_write(combo)) continue;
        if (!found || left > best_left) {
            best = combo;
            best_left = left;
            found = true;
        }
    }
    if (!found) best = need_write ? (require | O_WRONLY) : require;
    return best;
}

/// Draws a value from a numeric bucket target.
std::uint64_t sample_bucket(Rng& rng, const NumericBucketTarget& b,
                            std::uint64_t align = 1) {
    if (b.zero) return 0;
    if (b.exact) return b.exact_value;
    const std::uint64_t lo = 1ULL << b.exp;
    const std::uint64_t hi = (1ULL << (b.exp + 1)) - 1;
    std::uint64_t v = rng.range(lo, hi);
    if (align > 1) {
        v = v / align * align;
        if (v < lo) v = lo % align == 0 ? lo : (lo / align + 1) * align;
        if (v > hi) v = lo;  // bucket narrower than alignment: take base
    }
    return v;
}

}  // namespace

RunStats TesterSim::run(syscall::Kernel& kernel, const Fixtures& fx) {
    Ctx c(kernel, fx, options_.seed);

    // Budget: every combo at its scaled target.
    for (const auto& combo : profile_.open_combos)
        c.budget.emplace_back(combo.flags,
                              static_cast<std::int64_t>(scaled(combo.count)));

    // Untraced setup (a real tester's fixture scripts run before LTTng
    // starts): reusable pool files, a sparse read source, scratch files.
    auto& fs = kernel.fs();
    const auto user_cred = vfs::Credentials::user(1000, 1000);
    const auto scratch_ino = fs.resolve(fx.scratch, user_cred).value();
    for (int i = 0; i < 16; ++i) {
        const std::string name = "pool" + std::to_string(i);
        auto ino = fs.create_file(scratch_ino, name, 0644, user_cred);
        assert(ino.ok());
        fs.write_pattern(ino.value(), 0, 2048, std::byte{0x11});
        c.pool.push_back(fx.scratch + "/" + name);
    }
    {
        auto ino = fs.create_file(scratch_ino, "rsrc", 0644, user_cred);
        assert(ino.ok());
        // Data, a hole from 4-8 MiB, then data to 17 MiB: gives
        // SEEK_DATA/SEEK_HOLE real structure.
        fs.write_pattern(ino.value(), 0, 4ULL << 20, std::byte{0x22});
        fs.write_pattern(ino.value(), 8ULL << 20, 9ULL << 20,
                         std::byte{0x33});
        c.rfile = fx.scratch + "/rsrc";
    }
    fs.create_file(scratch_ino, "wdst", 0644, user_cred);
    c.wfile = fx.scratch + "/wdst";
    {
        auto ino = fs.create_file(scratch_ino, "xattrs", 0644, user_cred);
        assert(ino.ok());
        std::vector<std::byte> v(64, std::byte{0x44});
        fs.set_xattr(ino.value(), "user.attr0", v, 0, user_cred);
        c.xfile = fx.scratch + "/xattrs";
    }
    fs.make_dir(scratch_ino, "subdir", 0777, user_cred);

    phase_io(c);
    phase_lseek(c);
    phase_truncate(c);
    phase_mkdir(c);
    phase_chmod(c);
    phase_xattr(c);
    phase_chdir(c);
    phase_errors(c);
    phase_remaining_opens(c);

    c.stats.total_syscalls = c.stats.opens + c.stats.writes + c.stats.reads;
    return c.stats;
}

void TesterSim::phase_io(Ctx& c) {
    if (!profile_.write_sizes.empty()) {
        const std::uint32_t combo = pick_combo(
            &c, O_CREAT, O_EXCL | O_DIRECTORY | O_NOFOLLOW, true);
        const bool direct = combo & O_DIRECT;
        const std::int64_t fd = open_spend(&c, profile_.variant_permille,
                                           combo, c.wfile.c_str());
        assert(fd >= 0);
        std::uint64_t persist_tick = 0;
        for (const auto& bucket : profile_.write_sizes) {
            const std::uint64_t n = scaled(bucket.count);
            for (std::uint64_t i = 0; i < n; ++i) {
                const std::uint64_t size =
                    sample_bucket(c.rng, bucket, direct ? 512 : 1);
                const auto fill =
                    static_cast<std::byte>(c.rng.below(256));
                const auto variant = c.rng.below(100);
                std::int64_t r;
                if (size >= (1ULL << 20) || variant < 80) {
                    r = c.user.sys_pwrite64(
                        static_cast<int>(fd),
                        WriteSrc::pattern(size, fill), 0);
                } else if (variant < 95 || size < 2) {
                    r = c.user.sys_write(static_cast<int>(fd),
                                         WriteSrc::pattern(size, fill));
                } else {
                    const std::uint64_t half = size / 2;
                    r = c.user.sys_writev(
                        static_cast<int>(fd),
                        {WriteSrc::pattern(half, fill),
                         WriteSrc::pattern(size - half, fill)});
                }
                (void)r;
                ++c.stats.writes;
                if (profile_.persistence_heavy && (++persist_tick % 8) == 0)
                    c.user.sys_fsync(static_cast<int>(fd));
            }
            // Reset the linear-offset growth from the write/writev
            // variants so the file never balloons past the scratch
            // volume (pwrite64 at pos 0 dominates anyway).
            c.user.sys_lseek(static_cast<int>(fd), 0, SEEK_SET_);
        }
        c.user.sys_close(static_cast<int>(fd));
    }

    if (!profile_.read_sizes.empty()) {
        const std::uint32_t combo =
            pick_combo(&c, 0, O_CREAT | O_DIRECTORY | O_TRUNC, false);
        const std::int64_t fd = open_spend(&c, profile_.variant_permille,
                                           combo, c.rfile.c_str());
        assert(fd >= 0);
        for (const auto& bucket : profile_.read_sizes) {
            const std::uint64_t n = scaled(bucket.count);
            for (std::uint64_t i = 0; i < n; ++i) {
                const std::uint64_t size = sample_bucket(c.rng, bucket);
                const auto variant = c.rng.below(100);
                if (variant < 70) {
                    c.user.sys_pread64(static_cast<int>(fd),
                                       ReadDst::discard(size), 0);
                } else if (variant < 90 || size < 2) {
                    c.user.sys_pread64(
                        static_cast<int>(fd), ReadDst::discard(size),
                        static_cast<std::int64_t>(c.rng.below(1 << 20)));
                } else {
                    const std::uint64_t half = size / 2;
                    c.user.sys_readv(static_cast<int>(fd),
                                     {ReadDst::discard(half),
                                      ReadDst::discard(size - half)});
                }
                ++c.stats.reads;
            }
        }
        // A couple of plain read(2)s so the base variant shows up too.
        for (int i = 0; i < 4 && !profile_.read_sizes.empty(); ++i)
            c.user.sys_read(static_cast<int>(fd), ReadDst::discard(4096));
        c.stats.reads += 4;
        c.user.sys_close(static_cast<int>(fd));
    }
}

void TesterSim::phase_lseek(Ctx& c) {
    if (profile_.lseek_whences.empty()) return;
    const std::uint32_t combo =
        pick_combo(&c, 0, O_CREAT | O_DIRECTORY | O_TRUNC, false);
    const std::int64_t fd = open_spend(&c, profile_.variant_permille, combo,
                                       c.rfile.c_str());
    assert(fd >= 0);
    const std::int64_t size = 17LL << 20;
    for (const auto& target : profile_.lseek_whences) {
        const std::uint64_t n = scaled(target.count);
        for (std::uint64_t i = 0; i < n; ++i) {
            std::int64_t off = 0;
            switch (target.whence) {
                case SEEK_SET_:
                    off = static_cast<std::int64_t>(c.rng.below(1 << 20));
                    break;
                case SEEK_CUR_:
                    // Occasional rewind keeps the cursor inside the file
                    // without flooding SEEK_SET with bookkeeping calls.
                    if (i % 64 == 0)
                        c.user.sys_lseek(static_cast<int>(fd), 0, SEEK_SET_);
                    off = static_cast<std::int64_t>(c.rng.below(8192));
                    break;
                case SEEK_END_:
                    off = -static_cast<std::int64_t>(c.rng.below(4096));
                    break;
                case SEEK_DATA_:
                    off = static_cast<std::int64_t>(
                        c.rng.below(12ULL << 20));
                    break;
                case SEEK_HOLE_:
                    off = static_cast<std::int64_t>(
                        c.rng.below(static_cast<std::uint64_t>(size)));
                    break;
            }
            c.user.sys_lseek(static_cast<int>(fd), off, target.whence);
        }
    }
    c.user.sys_close(static_cast<int>(fd));
}

void TesterSim::phase_truncate(Ctx& c) {
    for (const auto& bucket : profile_.truncate_lengths) {
        const std::uint64_t n = scaled(bucket.count);
        for (std::uint64_t i = 0; i < n; ++i) {
            const auto len = static_cast<std::int64_t>(
                sample_bucket(c.rng, bucket));
            const std::uint32_t combo = pick_combo(
                &c, 0, O_CREAT | O_DIRECTORY | O_TRUNC | O_DIRECT, true);
            // ftruncate needs an fd; only take that path while the open
            // budget can absorb it, so Fig. 2 totals stay on target.
            if (c.rng.below(1000) < profile_.variant_permille &&
                budget_left(&c, combo) > 0) {
                const std::int64_t fd =
                    open_spend(&c, profile_.variant_permille, combo,
                               c.wfile.c_str());
                if (fd >= 0) {
                    c.user.sys_ftruncate(static_cast<int>(fd), len);
                    c.user.sys_close(static_cast<int>(fd));
                }
            } else {
                c.user.sys_truncate(
                    c.pool[c.rng.below(c.pool.size())].c_str(), len);
            }
        }
    }
}

void TesterSim::phase_mkdir(Ctx& c) {
    for (const auto& target : profile_.mkdir_modes) {
        const std::uint64_t n = scaled(target.count);
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::string path = c.unique("mkd");
            if (c.rng.below(1000) < profile_.variant_permille)
                c.user.sys_mkdirat(AT_FDCWD, path.c_str(), target.mode);
            else
                c.user.sys_mkdir(path.c_str(), target.mode);
            c.user.sys_rmdir(path.c_str());  // keep the inode table flat
        }
    }
}

void TesterSim::phase_chmod(Ctx& c) {
    for (const auto& target : profile_.chmod_modes) {
        const std::uint64_t n = scaled(target.count);
        for (std::uint64_t i = 0; i < n; ++i) {
            const auto variant = c.rng.below(1000);
            const std::string& path = c.pool[c.rng.below(c.pool.size())];
            if (variant < profile_.variant_permille / 2) {
                const std::uint32_t combo = pick_combo(
                    &c, 0, O_CREAT | O_DIRECTORY | O_TRUNC, false);
                const std::int64_t fd = open_spend(
                    &c, profile_.variant_permille, combo, path.c_str());
                if (fd >= 0) {
                    c.user.sys_fchmod(static_cast<int>(fd), target.mode);
                    c.user.sys_close(static_cast<int>(fd));
                }
            } else if (variant < profile_.variant_permille) {
                c.user.sys_fchmodat(AT_FDCWD, path.c_str(), target.mode, 0);
            } else {
                c.user.sys_chmod(path.c_str(), target.mode);
            }
        }
    }
    // Restore pool permissions for later phases (only if this profile
    // exercised chmod at all — the restore calls are chmod traffic too).
    if (!profile_.chmod_modes.empty())
        for (const auto& path : c.pool)
            c.user.sys_chmod(path.c_str(), 0644);
}

void TesterSim::phase_xattr(Ctx& c) {
    auto& fs = c.kernel.fs();
    const auto user_cred = vfs::Credentials::user(1000, 1000);
    const vfs::InodeId xino = fs.resolve(c.xfile, user_cred).value();

    auto reset_xattrs = [&] {
        // Untraced cleanup so each traced set sees fresh in-inode space.
        auto names = fs.list_xattr(xino);
        if (names.ok())
            for (const auto& name : names.value())
                fs.remove_xattr(xino, name, user_cred);
        std::vector<std::byte> v(64, std::byte{0x44});
        fs.set_xattr(xino, "user.attr0", v, 0, user_cred);
    };

    for (const auto& bucket : profile_.xattr_set_sizes) {
        const std::uint64_t n = scaled(bucket.count);
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint64_t size = sample_bucket(c.rng, bucket);
            std::vector<std::byte> value(size, std::byte{0x77});
            const auto roll = c.rng.below(100);
            int flags = 0;
            std::string name = "user.a" + std::to_string(c.rng.below(4));
            if (roll < 10) {
                flags = XATTR_CREATE_;
                name = "user.c" + std::to_string(c.uniq++);
            } else if (roll < 20) {
                flags = XATTR_REPLACE_;
                name = "user.attr0";
            }
            if (size >= 8192) reset_xattrs();
            const auto variant = c.rng.below(1000);
            if (variant < profile_.variant_permille / 2) {
                const std::uint32_t combo = pick_combo(
                    &c, 0, O_CREAT | O_DIRECTORY | O_TRUNC, false);
                const std::int64_t fd = open_spend(
                    &c, profile_.variant_permille, combo, c.xfile.c_str());
                if (fd >= 0) {
                    c.user.sys_fsetxattr(static_cast<int>(fd), name.c_str(),
                                         value, flags);
                    c.user.sys_close(static_cast<int>(fd));
                }
            } else if (variant < profile_.variant_permille) {
                c.user.sys_lsetxattr(c.xfile.c_str(), name.c_str(), value,
                                     flags);
            } else {
                c.user.sys_setxattr(c.xfile.c_str(), name.c_str(), value,
                                    flags);
            }
        }
    }
    reset_xattrs();

    for (const auto& bucket : profile_.xattr_get_sizes) {
        const std::uint64_t n = scaled(bucket.count);
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint64_t size = sample_bucket(c.rng, bucket);
            const auto variant = c.rng.below(1000);
            if (variant < profile_.variant_permille / 2) {
                const std::uint32_t combo = pick_combo(
                    &c, 0, O_CREAT | O_DIRECTORY | O_TRUNC, false);
                const std::int64_t fd = open_spend(
                    &c, profile_.variant_permille, combo, c.xfile.c_str());
                if (fd >= 0) {
                    c.user.sys_fgetxattr(static_cast<int>(fd), "user.attr0",
                                         size);
                    c.user.sys_close(static_cast<int>(fd));
                }
            } else if (variant < profile_.variant_permille) {
                c.user.sys_lgetxattr(c.xfile.c_str(), "user.attr0", size);
            } else {
                c.user.sys_getxattr(c.xfile.c_str(), "user.attr0", size);
            }
        }
    }
}

void TesterSim::phase_chdir(Ctx& c) {
    if (profile_.chdir_count == 0) return;
    const std::uint64_t n = scaled(profile_.chdir_count);
    const std::string subdir = c.fx.scratch + "/subdir";
    if (!profile_.chdir_diverse) {
        for (std::uint64_t i = 0; i < n; ++i)
            c.user.sys_chdir(c.fx.scratch.c_str());
        return;
    }
    std::uint64_t issued = 0;
    while (issued < n) {
        c.user.sys_chdir(c.fx.scratch.c_str());       // absolute
        c.user.sys_chdir("subdir");                    // relative
        c.user.sys_chdir("..");                        // dotdot
        c.user.sys_chdir(".");                         // dot
        issued += 4;
        if (c.rng.below(4) == 0) {
            const std::uint32_t combo = pick_combo(&c, O_DIRECTORY, 0, false);
            const std::int64_t fd = open_spend(&c, profile_.variant_permille,
                                               combo, subdir.c_str());
            if (fd >= 0) {
                c.user.sys_fchdir(static_cast<int>(fd));  // via-fd
                c.user.sys_close(static_cast<int>(fd));
            }
            ++issued;
        }
        if (c.rng.below(8) == 0) {
            c.user.sys_chdir((subdir + "/").c_str());  // trailing slash
            ++issued;
        }
    }
    c.user.sys_chdir(c.fx.mount.c_str());
}

void TesterSim::phase_remaining_opens(Ctx& c) {
    for (auto& [flags, left] : c.budget) {
        while (left > 0) {  // open_spend decrements `left`
            std::string path;
            bool unlink_after = false;
            if ((flags & O_TMPFILE) == O_TMPFILE) {
                path = c.fx.scratch;
            } else if (flags & O_DIRECTORY) {
                path = c.rng.chance(1, 2) ? c.fx.scratch
                                          : c.fx.scratch + "/subdir";
            } else if (flags & O_EXCL) {
                path = c.unique("x");
                unlink_after = true;
            } else if (flags & O_NOATIME) {
                // Owner-only: open a file the workload identity owns.
                path = c.pool[c.rng.below(c.pool.size())];
            } else {
                path = c.pool[c.rng.below(c.pool.size())];
            }
            const std::int64_t fd = open_spend(
                &c, profile_.variant_permille, flags, path.c_str());
            if (fd >= 0) {
                if (profile_.persistence_heavy && (flags & O_SYNC) &&
                    c.rng.below(8) == 0)
                    c.user.sys_fsync(static_cast<int>(fd));
                c.user.sys_close(static_cast<int>(fd));
            }
            if (unlink_after) c.user.sys_unlink(path.c_str());
        }
    }
}

void TesterSim::phase_errors(Ctx& c) {
    for (const auto& [base, errs] : profile_.error_targets)
        for (const auto& [err, count] : errs)
            run_error_scenario(c, base, err, scaled(count));
}

void TesterSim::run_error_scenario(Ctx& c, const std::string& base,
                                   abi::Err err, std::uint64_t n) {
    using abi::Err;
    auto& fs = c.kernel.fs();
    const unsigned pm = profile_.variant_permille;
    c.stats.error_scenarios += n;

    auto bad_fd = [&](std::uint64_t i) -> int {
        // Rotate through the fd identifier partitions: -1, stdio,
        // a large never-opened fd, and a plausible-but-closed one.
        switch (i % 4) {
            case 0: return -1;
            case 1: return 1;
            case 2: return 999999;
            default: return 97;
        }
    };

    if (base == "open") {
        const std::string missing = c.fx.scratch + "/enoent_probe";
        // Most scenarios need a combo without flags that would preempt
        // the intended error (O_DIRECTORY turns everything into ENOTDIR
        // on a non-directory target).
        auto plain_combo = [&] {
            // For errors raised on the *inode* (EACCES, device states,
            // fd limits): O_DIRECTORY would preempt them with ENOTDIR.
            return pick_combo(&c, 0,
                              O_CREAT | O_DIRECTORY | O_TMPFILE | O_PATH,
                              false);
        };
        auto lookup_combo = [&] {
            // For errors raised during path resolution (ENOENT,
            // ENOTDIR, ENAMETOOLONG, ELOOP): any non-creating combo
            // fails identically, so spend the largest budget.  Strip
            // O_DIRECTORY from the forbidden O_TMPFILE bits: O_TMPFILE
            // is a composite containing O_DIRECTORY, and plain
            // directory opens are perfectly valid here.
            return pick_combo(
                &c, 0,
                O_CREAT | (O_TMPFILE & ~O_DIRECTORY) | O_PATH, false);
        };
        for (std::uint64_t i = 0; i < n; ++i) {
            switch (err) {
                case Err::ENOENT_:
                    open_spend(&c, pm, lookup_combo(),
                               (missing + std::to_string(i % 7)).c_str());
                    break;
                case Err::EEXIST_:
                    open_spend(&c, pm,
                               pick_combo(&c, O_CREAT | O_EXCL, 0,
                                          c.rng.chance(1, 2)),
                               c.pool[i % c.pool.size()].c_str());
                    break;
                case Err::EISDIR_:
                    open_spend(&c, pm,
                               pick_combo(&c, 0,
                                          O_EXCL | O_DIRECTORY | O_TMPFILE,
                                          true),
                               c.fx.scratch.c_str());
                    break;
                case Err::ENOTDIR_:
                    open_spend(&c, pm, lookup_combo(),
                               (c.pool[0] + "/below_a_file").c_str());
                    break;
                case Err::EACCES_:
                    open_spend(&c, pm, plain_combo(),
                               c.fx.noperm_file.c_str());
                    break;
                case Err::EINVAL_:
                    // Access mode 3 is invalid; the flags word still
                    // decomposes as O_RDWR for coverage, so it spends the
                    // O_RDWR budget.
                    for (auto& [combo, left] : c.budget) {
                        if (combo == O_RDWR) {
                            --left;
                            break;
                        }
                    }
                    ++c.stats.opens;
                    c.user.sys_open(c.pool[0].c_str(), O_ACCMODE);
                    break;
                case Err::ENAMETOOLONG_: {
                    const std::string log_jam =
                        c.fx.scratch + "/" + std::string(300, 'n');
                    open_spend(&c, pm, lookup_combo(),
                               log_jam.c_str());
                    break;
                }
                case Err::ELOOP_:
                    // The loop is detected while following the links,
                    // before any O_DIRECTORY type check; forbid only
                    // O_NOFOLLOW/O_PATH (which would open the link).
                    open_spend(&c, pm,
                               pick_combo(&c, 0,
                                          O_CREAT | O_NOFOLLOW | O_PATH,
                                          false),
                               c.fx.loop_link.c_str());
                    break;
                case Err::EROFS_:
                    fs.set_read_only(true);
                    open_spend(&c, pm,
                               pick_combo(&c, 0, O_CREAT | O_DIRECTORY,
                                          true),
                               c.pool[0].c_str());
                    fs.set_read_only(false);
                    break;
                case Err::EPERM_:
                    // O_NOATIME by a non-owner (fixture owned by root).
                    open_spend(&c, pm, pick_combo(&c, O_NOATIME, 0, false),
                               c.fx.plain_file.c_str());
                    break;
                case Err::ETXTBSY_:
                    open_spend(&c, pm,
                               pick_combo(&c, 0,
                                          O_CREAT | O_EXCL | O_DIRECTORY |
                                              O_TMPFILE | O_TRUNC,
                                          true),
                               c.fx.running_exe.c_str());
                    break;
                case Err::ENXIO_:
                    open_spend(&c, pm, plain_combo(),
                               c.fx.nounit_dev.c_str());
                    break;
                case Err::EBUSY_:
                    open_spend(&c, pm, plain_combo(),
                               c.fx.busy_dev.c_str());
                    break;
                case Err::ENODEV_:
                    open_spend(&c, pm, plain_combo(),
                               c.fx.nodriver_dev.c_str());
                    break;
                case Err::EFAULT_:
                    open_spend(&c, pm, plain_combo(),
                               nullptr);
                    break;
                case Err::EMFILE_: {
                    // Clamp the fd table at its current size: the very
                    // next open fails without thousands of filler fds.
                    auto limits = c.kernel.limits();
                    auto clamped = limits;
                    clamped.max_fds_per_process = static_cast<unsigned>(
                        c.user.open_fd_count());
                    c.kernel.set_limits(clamped);
                    open_spend(&c, pm, plain_combo(),
                               c.pool[0].c_str());
                    c.kernel.set_limits(limits);
                    break;
                }
                default:
                    open_spend(&c, pm, lookup_combo(), missing.c_str());
                    break;
            }
        }
        return;
    }

    if (base == "write" || base == "read") {
        const bool is_write = base == "write";
        // A writable (resp. readable) fd for content-level failures.
        const std::uint32_t combo = pick_combo(
            &c, is_write ? O_CREAT : 0u,
            O_EXCL | O_DIRECTORY | O_TRUNC | O_DIRECT, is_write);
        const std::int64_t fd =
            open_spend(&c, pm, combo,
                       (is_write ? c.wfile : c.rfile).c_str());
        for (std::uint64_t i = 0; i < n; ++i) {
            switch (err) {
                case Err::EBADF_:
                    if (is_write)
                        c.user.sys_write(bad_fd(i),
                                         WriteSrc::pattern(512, std::byte{1}));
                    else
                        c.user.sys_read(bad_fd(i), ReadDst::discard(512));
                    break;
                case Err::EFAULT_:
                    if (is_write)
                        c.user.sys_write(static_cast<int>(fd),
                                         WriteSrc::bad_address(4096));
                    else
                        c.user.sys_read(static_cast<int>(fd),
                                        ReadDst::bad_address(4096));
                    break;
                case Err::EFBIG_:
                    c.user.sys_pwrite64(
                        static_cast<int>(fd),
                        WriteSrc::pattern(8192, std::byte{2}),
                        static_cast<std::int64_t>(
                            fs.config().max_file_size - 100));
                    break;
                case Err::ENOSPC_: {
                    const std::uint64_t cap = fs.config().capacity_blocks;
                    fs.set_capacity_blocks(fs.used_blocks());
                    c.user.sys_pwrite64(
                        static_cast<int>(fd),
                        WriteSrc::pattern(1ULL << 20, std::byte{3}),
                        1ULL << 30);
                    fs.set_capacity_blocks(cap);
                    break;
                }
                case Err::EISDIR_: {
                    const std::uint32_t dcombo =
                        pick_combo(&c, O_DIRECTORY, O_CREAT, false);
                    const std::int64_t dfd = open_spend(
                        &c, pm, dcombo, c.fx.scratch.c_str());
                    if (dfd >= 0) {
                        c.user.sys_read(static_cast<int>(dfd),
                                        ReadDst::discard(512));
                        c.user.sys_close(static_cast<int>(dfd));
                    }
                    break;
                }
                default:
                    break;
            }
        }
        if (fd >= 0) c.user.sys_close(static_cast<int>(fd));
        return;
    }

    if (base == "lseek") {
        const std::uint32_t combo =
            pick_combo(&c, 0, O_CREAT | O_DIRECTORY | O_TRUNC, false);
        const std::int64_t fd =
            open_spend(&c, pm, combo, c.rfile.c_str());
        for (std::uint64_t i = 0; i < n; ++i) {
            switch (err) {
                case Err::EBADF_:
                    c.user.sys_lseek(bad_fd(i), 0, SEEK_SET_);
                    break;
                case Err::EINVAL_:
                    if (i % 2 == 0)
                        c.user.sys_lseek(static_cast<int>(fd), 0, 99);
                    else
                        c.user.sys_lseek(static_cast<int>(fd), -5,
                                         SEEK_SET_);
                    break;
                case Err::ENXIO_:
                    c.user.sys_lseek(static_cast<int>(fd),
                                     (20LL << 20) + 1, SEEK_DATA_);
                    break;
                default:
                    break;
            }
        }
        if (fd >= 0) c.user.sys_close(static_cast<int>(fd));
        return;
    }

    if (base == "truncate") {
        for (std::uint64_t i = 0; i < n; ++i) {
            switch (err) {
                case Err::ENOENT_:
                    c.user.sys_truncate(
                        (c.fx.scratch + "/missing_t").c_str(), 0);
                    break;
                case Err::EISDIR_:
                    c.user.sys_truncate(c.fx.scratch.c_str(), 0);
                    break;
                case Err::EACCES_:
                    c.user.sys_truncate(c.fx.noperm_file.c_str(), 0);
                    break;
                case Err::EINVAL_:
                    c.user.sys_truncate(c.pool[0].c_str(), -1);
                    break;
                case Err::EFBIG_:
                    c.user.sys_truncate(
                        c.pool[0].c_str(),
                        static_cast<std::int64_t>(
                            fs.config().max_file_size + 4096));
                    break;
                default:
                    break;
            }
        }
        return;
    }

    if (base == "mkdir") {
        for (std::uint64_t i = 0; i < n; ++i) {
            switch (err) {
                case Err::EEXIST_:
                    c.user.sys_mkdir(c.fx.scratch.c_str(), 0755);
                    break;
                case Err::ENOENT_:
                    c.user.sys_mkdir(
                        (c.fx.scratch + "/void/child").c_str(), 0755);
                    break;
                case Err::EACCES_:
                    c.user.sys_mkdir(
                        (c.fx.noperm_dir + "/new").c_str(), 0755);
                    break;
                case Err::ENAMETOOLONG_: {
                    const std::string name =
                        c.fx.scratch + "/" + std::string(300, 'm');
                    c.user.sys_mkdir(name.c_str(), 0755);
                    break;
                }
                default:
                    break;
            }
        }
        return;
    }

    if (base == "chmod") {
        for (std::uint64_t i = 0; i < n; ++i) {
            switch (err) {
                case Err::ENOENT_:
                    c.user.sys_chmod(
                        (c.fx.scratch + "/missing_c").c_str(), 0644);
                    break;
                case Err::EPERM_:
                    c.user.sys_chmod(c.fx.plain_file.c_str(), 0600);
                    break;
                default:
                    break;
            }
        }
        return;
    }

    if (base == "close") {
        for (std::uint64_t i = 0; i < n; ++i)
            c.user.sys_close(bad_fd(i));
        return;
    }

    if (base == "chdir") {
        for (std::uint64_t i = 0; i < n; ++i) {
            switch (err) {
                case Err::ENOENT_:
                    c.user.sys_chdir((c.fx.scratch + "/gone").c_str());
                    break;
                case Err::ENOTDIR_:
                    c.user.sys_chdir(c.pool[0].c_str());
                    break;
                case Err::EACCES_:
                    c.user.sys_chdir(c.fx.noperm_dir.c_str());
                    break;
                default:
                    break;
            }
        }
        return;
    }

    if (base == "setxattr") {
        std::vector<std::byte> small(32, std::byte{9});
        for (std::uint64_t i = 0; i < n; ++i) {
            switch (err) {
                case Err::ENODATA_:
                    c.user.sys_setxattr(c.xfile.c_str(), "user.absent",
                                        small, XATTR_REPLACE_);
                    break;
                case Err::EEXIST_:
                    c.user.sys_setxattr(c.xfile.c_str(), "user.attr0",
                                        small, XATTR_CREATE_);
                    break;
                case Err::E2BIG_: {
                    std::vector<std::byte> huge(XATTR_SIZE_MAX_ + 1,
                                                std::byte{9});
                    c.user.sys_setxattr(c.xfile.c_str(), "user.huge", huge,
                                        0);
                    break;
                }
                case Err::ERANGE_: {
                    const std::string name =
                        "user." + std::string(300, 'r');
                    c.user.sys_setxattr(c.xfile.c_str(), name.c_str(),
                                        small, 0);
                    break;
                }
                case Err::EOPNOTSUPP_:
                    c.user.sys_setxattr(c.xfile.c_str(), "bogusns.attr",
                                        small, 0);
                    break;
                case Err::ENOSPC_: {
                    // Fill the in-inode xattr area (untraced), then the
                    // traced set trips the Fig. 1 code region's ENOSPC.
                    const auto user_cred =
                        vfs::Credentials::user(1000, 1000);
                    const auto xino =
                        fs.resolve(c.xfile, user_cred).value();
                    std::vector<std::byte> filler(
                        fs.config().inode_xattr_capacity - 200,
                        std::byte{8});
                    fs.set_xattr(xino, "user.filler", filler, 0, user_cred);
                    c.user.sys_setxattr(c.xfile.c_str(), "user.overflow",
                                        std::vector<std::byte>(
                                            4096, std::byte{7}),
                                        0);
                    fs.remove_xattr(xino, "user.filler", user_cred);
                    break;
                }
                default:
                    break;
            }
        }
        return;
    }

    if (base == "getxattr") {
        for (std::uint64_t i = 0; i < n; ++i) {
            switch (err) {
                case Err::ENODATA_:
                    c.user.sys_getxattr(c.xfile.c_str(), "user.absent",
                                        256);
                    break;
                case Err::ERANGE_:
                    c.user.sys_getxattr(c.xfile.c_str(), "user.attr0", 8);
                    break;
                default:
                    break;
            }
        }
        return;
    }
}

RunStats run_crashmonkey(syscall::Kernel& kernel, const Fixtures& fx,
                         double scale, std::uint64_t seed) {
    TesterSim sim(crashmonkey_profile(), {scale, seed});
    return sim.run(kernel, fx);
}

RunStats run_xfstests(syscall::Kernel& kernel, const Fixtures& fx,
                      double scale, std::uint64_t seed) {
    TesterSim sim(xfstests_profile(), {scale, seed});
    return sim.run(kernel, fx);
}

RunStats run_ltp(syscall::Kernel& kernel, const Fixtures& fx, double scale,
                 std::uint64_t seed) {
    TesterSim sim(ltp_profile(), {scale, seed});
    return sim.run(kernel, fx);
}

}  // namespace iocov::testers
