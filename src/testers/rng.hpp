// Deterministic RNG + weighted choice for workload generation.
//
// SplitMix64: tiny, fast, and identical on every platform (std::
// distributions are not guaranteed reproducible across libstdc++
// versions, and reproducible traces are the point of the simulators).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace iocov::testers {

class Rng {
  public:
    explicit Rng(std::uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform in [0, n); n must be > 0.
    std::uint64_t below(std::uint64_t n) {
        assert(n > 0);
        return next() % n;
    }

    /// Uniform in [lo, hi] inclusive.
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
        assert(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /// True with probability num/den.
    bool chance(std::uint64_t num, std::uint64_t den) {
        return below(den) < num;
    }

  private:
    std::uint64_t state_;
};

/// Index into `weights` chosen proportionally to the weights.
std::size_t weighted_pick(Rng& rng, const std::vector<double>& weights);

}  // namespace iocov::testers
