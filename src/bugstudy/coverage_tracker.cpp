#include "bugstudy/coverage_tracker.hpp"

namespace iocov::bugstudy {

void CoverageTracker::probe(std::string_view site) {
    ++counts_[std::string(site)];
}

std::optional<abi::Err> CoverageTracker::inject(std::string_view site) {
    ++counts_[std::string(site)];  // an injected site was also executed
    auto it = armed_.find(std::string(site));
    if (it == armed_.end()) return std::nullopt;
    if (it->second.remaining == 0) return std::nullopt;
    --it->second.remaining;
    return it->second.err;
}

std::uint64_t CoverageTracker::hits(std::string_view site) const {
    auto it = counts_.find(std::string(site));
    return it == counts_.end() ? 0 : it->second;
}

void CoverageTracker::arm_fault(std::string site, abi::Err err,
                                std::uint64_t times) {
    armed_[std::move(site)] = {err, times};
}

void CoverageTracker::disarm(std::string_view site) {
    armed_.erase(std::string(site));
}

}  // namespace iocov::bugstudy
