// The injected-bug corpus: 70 synthetic bugs modeled on the paper's
// study of 2022 Ext4 and BtrFS bug-fix commits (51 + 19).
//
// Each bug records:
//  * the instrumented code regions it lives in, at three granularities
//    (function / line / branch sites of the VFS's probe instrumentation),
//    so the harness can ask "did the suite cover this code?" the way the
//    paper asked Gcov;
//  * a trigger predicate over trace events: "would this syscall, with
//    these arguments/results, have exposed the bug?".  A suite detects
//    the bug iff some event of its run satisfies the trigger — the
//    paper's notion that most bugs need *specific inputs* (often
//    boundary values) or manifest as *specific outputs* (error paths);
//  * its input-bug / output-bug classification.
//
// Marquee entries reproduce the paper's cited bugs: the Fig. 1
// lsetxattr maximum-size overflow in ext4_xattr_ibody_set, the
// O_LARGEFILE generic_file_open issue, BtrFS's NOWAIT buffered write
// returning ENOSPC, and ext4_get_branch's wrong error code on the exit
// path.  The rest follow the same recurring shapes the study found.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/variant_handler.hpp"
#include "trace/event.hpp"

namespace iocov::bugstudy {

struct Bug {
    std::string id;           ///< e.g. "ext4-22-031"
    std::string fs;           ///< "ext4" or "btrfs"
    std::string description;  ///< what the (modeled) commit fixed

    /// Instrumentation sites at the three coverage granularities.  An
    /// empty site means "not reachable at this granularity" (counts as
    /// uncovered).
    std::string function_site;
    std::string line_site;
    std::string branch_site;

    bool input_bug = false;   ///< needs specific syscall arguments
    bool output_bug = false;  ///< manifests on the exit/return path

    /// Human-readable statement of the trigger condition — the
    /// "triggers for each bug" column of the dataset the paper promises
    /// to release.  Empty for pure concurrency bugs (no syscall-level
    /// trigger).
    std::string trigger_description;

    /// True iff this (variant-normalized) trace event would have
    /// exposed the bug.  The harness canonicalizes each event once and
    /// evaluates all 70 triggers against it.
    std::function<bool(const core::CanonicalEvent&)> trigger;
};

/// The full corpus: 51 ext4 + 19 btrfs bugs.
const std::vector<Bug>& bug_corpus();

/// Renders the corpus as the paper's promised public dataset: one
/// markdown table row per bug (id, fs, coverage sites, classification,
/// trigger, description).
std::string render_bug_dataset();

}  // namespace iocov::bugstudy
