// The Section 2 bug-study harness.
//
// Runs the simulated xfstests suite against the instrumented VFS,
// records code coverage (function/line/branch probe sites) and the full
// syscall trace, then evaluates every bug in the corpus:
//   covered(metric)  — did the suite execute the bug's code region?
//   detected         — did any traced syscall satisfy the trigger?
// and reproduces the paper's headline statistics: covered-but-missed
// rates per coverage metric, the input/output bug classification, and
// the fraction of covered-but-missed bugs that specific inputs would
// expose.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bugstudy/bug.hpp"
#include "bugstudy/coverage_tracker.hpp"

namespace iocov::bugstudy {

struct BugOutcome {
    const Bug* bug = nullptr;
    bool fn_covered = false;
    bool line_covered = false;
    bool branch_covered = false;
    bool detected = false;
};

struct StudyResult {
    std::vector<BugOutcome> outcomes;

    int total = 0;
    int ext4 = 0;
    int btrfs = 0;
    int detected = 0;

    // Covered-but-missed per coverage metric (paper: 53% / 61% / 29%).
    int line_cbm = 0;
    int fn_cbm = 0;
    int branch_cbm = 0;

    // Classification (paper: input 71%, output 59%, either 81%).
    int input_bugs = 0;
    int output_bugs = 0;
    int either_bugs = 0;
    int both_bugs = 0;
    int neither_bugs = 0;

    /// Of the line-covered-but-missed bugs, how many are input bugs
    /// (paper: 24/37 = 65%).
    int cbm_input_triggerable = 0;

    double pct(int k) const {
        return total ? 100.0 * k / total : 0.0;
    }
};

struct StudyOptions {
    double scale = 0.02;   ///< xfstests-sim scale
    std::uint64_t seed = 42;
};

/// Runs the full study pipeline (environment -> instrumented suite run
/// -> per-bug evaluation).
StudyResult run_bug_study(const StudyOptions& options = {});

/// Evaluates the corpus against an existing coverage/trace pair (used
/// by tests and by ablation benches that reuse one suite run).
StudyResult evaluate_corpus(const CoverageTracker& tracker,
                            const std::vector<trace::TraceEvent>& events);

}  // namespace iocov::bugstudy
