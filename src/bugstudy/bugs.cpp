// The 70-bug corpus (51 ext4 + 19 btrfs), modeled on the recurring
// shapes of the paper's 2022 commit study.
#include "bugstudy/bug.hpp"

#include "abi/errno.hpp"
#include "abi/fcntl.hpp"
#include "abi/seek.hpp"
#include "abi/stat_mode.hpp"
#include "abi/xattr.hpp"

namespace iocov::bugstudy {
namespace {

using core::CanonicalEvent;
using Trig = std::function<bool(const CanonicalEvent&)>;

// ---- trigger building blocks ---------------------------------------------

Trig base(const char* b, Trig inner) {
    return [b, inner](const CanonicalEvent& e) {
        return e.base == b && inner(e);
    };
}

Trig uarg_pred(const char* key, std::function<bool(std::uint64_t)> p) {
    return [key, p](const CanonicalEvent& e) {
        auto v = e.event.uint_arg(key);
        return v && p(*v);
    };
}

Trig iarg_pred(const char* key, std::function<bool(std::int64_t)> p) {
    return [key, p](const CanonicalEvent& e) {
        auto v = e.event.int_arg(key);
        return v && p(*v);
    };
}

Trig flags_all(std::uint32_t mask) {
    return uarg_pred("flags", [mask](std::uint64_t f) {
        return (f & mask) == mask;
    });
}

Trig ret_is(abi::Err err) {
    return [err](const CanonicalEvent& e) {
        return e.event.ret == abi::fail(err);
    };
}

Trig ok() {
    return [](const CanonicalEvent& e) { return e.event.ok(); };
}

Trig both(Trig a, Trig b) {
    return [a, b](const CanonicalEvent& e) { return a(e) && b(e); };
}

Trig never() {
    return [](const CanonicalEvent&) { return false; };
}

// ---- site pools -----------------------------------------------------------
//
// "Hit" sites are executed by the simulated xfstests run; "unhit" sites
// exist in the instrumented VFS but no simulated suite reaches them.
// (tests/bugstudy assert this empirically.)

constexpr const char* kHitFns[] = {
    "ext4_file_write_iter", "ext4_da_write_begin", "ext4_file_read_iter",
    "ext4_get_branch",      "ext4_truncate",       "ext4_setattr",
    "ext4_mkdir",           "ext4_create",         "ext4_unlink",
    "ext4_xattr_set",       "ext4_xattr_ibody_set", "ext4_new_inode",
    "vfs_path_lookup",      "vfs_follow_link",     "do_sys_open",
};
constexpr const char* kHitBranches[] = {
    "ext4_xattr_ibody_set:enospc",
    "ext4_xattr_ibody_set:fits",
    "generic_write_checks:efbig",
    "ext4_should_retry_alloc:enospc",
};
constexpr const char* kUnhitFns[] = {
    "ext4_rename",
    "ext4_link",
    "ext4_tmpfile",
};
constexpr const char* kUnhitBranches[] = {
    "ext4_rmdir:notempty",       "vfs_follow_link:nosymlinks",
    "generic_file_open:eoverflow", "dquot_alloc_block:edquot",
    "ext4_new_inode:enospc",
};

const char* hit_fn(std::size_t i) {
    return kHitFns[i % std::size(kHitFns)];
}
const char* hit_branch(std::size_t i) {
    return kHitBranches[i % std::size(kHitBranches)];
}
const char* unhit_fn(std::size_t i) {
    return kUnhitFns[i % std::size(kUnhitFns)];
}
const char* unhit_branch(std::size_t i) {
    return kUnhitBranches[i % std::size(kUnhitBranches)];
}

struct Corpus {
    std::vector<Bug> bugs;
    int seq = 0;

    void add(const char* fs, const char* desc, const char* fn,
             const char* line, const char* branch, bool input, bool output,
             Trig trig) {
        Bug b;
        char id[32];
        std::snprintf(id, sizeof id, "%s-22-%03d", fs, ++seq);
        b.id = id;
        b.fs = fs;
        b.description = desc;
        b.function_site = fn ? fn : "";
        b.line_site = line ? line : "";
        b.branch_site = branch ? branch : "";
        b.input_bug = input;
        b.output_bug = output;
        b.trigger = std::move(trig);
        bugs.push_back(std::move(b));
    }
};

std::vector<Bug> build_corpus() {
    using abi::Err;
    using namespace iocov::abi;  // NOLINT

    Corpus c;

    // =====================================================================
    // Category A — 18 bugs the simulated xfstests run DOES detect: their
    // triggers are inputs/outputs the suite actually exercises.
    // =====================================================================

    // A: both input- and output-related (10).
    c.add("ext4", "O_CREAT|O_EXCL on existing inode corrupts dir index "
                  "before returning EEXIST",
          "ext4_create", "ext4_create", "ext4_xattr_ibody_set:fits", true,
          true,
          base("open", both(flags_all(O_CREAT | O_EXCL),
                            ret_is(Err::EEXIST_))));
    c.add("ext4", "delalloc accounting leak when write hits ENOSPC",
          "ext4_da_write_begin", "ext4_da_write_begin",
          "ext4_should_retry_alloc:enospc", true, true,
          base("write", ret_is(Err::ENOSPC_)));
    c.add("ext4", "truncate past s_maxbytes reports wrong size in EFBIG "
                  "path",
          "ext4_truncate", "ext4_truncate", "generic_write_checks:efbig",
          true, true, base("truncate", ret_is(Err::EFBIG_)));
    c.add("ext4", "symlink-loop lookup leaks path ref before ELOOP",
          "vfs_follow_link", "vfs_follow_link",
          "ext4_xattr_ibody_set:fits", true, true,
          base("open", ret_is(Err::ELOOP_)));
    c.add("ext4", "name-length check off by one on ENAMETOOLONG exit",
          "vfs_path_lookup", "vfs_path_lookup",
          "generic_write_checks:efbig", true, true,
          base("open", ret_is(Err::ENAMETOOLONG_)));
    c.add("ext4", "lseek with negative offset mangles f_pos before EINVAL",
          "ext4_file_read_iter", "ext4_file_read_iter",
          "ext4_xattr_ibody_set:fits", true, true,
          base("lseek", both(iarg_pred("offset",
                                       [](std::int64_t o) { return o < 0; }),
                             ret_is(Err::EINVAL_))));
    c.add("ext4", "XATTR_REPLACE on absent attr unwinds journal handle "
                  "twice (ENODATA path)",
          "ext4_xattr_set", "ext4_xattr_set", "ext4_xattr_ibody_set:fits",
          true, true,
          base("setxattr", both(iarg_pred("flags",
                                          [](std::int64_t f) {
                                              return f == XATTR_REPLACE_;
                                          }),
                                ret_is(Err::ENODATA_))));
    c.add("btrfs", "size-probe getxattr (size=0) returns stale length "
                   "after concurrent shrink",
          "ext4_xattr_set", "ext4_xattr_set", "ext4_xattr_ibody_set:fits",
          true, true,
          base("getxattr", both(uarg_pred("size",
                                          [](std::uint64_t s) {
                                              return s == 0;
                                          }),
                                ok())));
    c.add("btrfs", "mkdir with mode 0 plants wrong ACL on success path",
          "ext4_mkdir", "ext4_mkdir", "ext4_xattr_ibody_set:fits", true,
          true,
          base("mkdir", both(uarg_pred("mode",
                                       [](std::uint64_t m) {
                                           return (m & 0777) == 0;
                                       }),
                             ok())));
    c.add("btrfs", "readahead state corrupted by >=16 MiB reads that "
                   "succeed",
          "ext4_file_read_iter", "ext4_file_read_iter",
          "ext4_should_retry_alloc:enospc", true, true,
          base("read", both(uarg_pred("count",
                                      [](std::uint64_t n) {
                                          return n >= (1ULL << 24);
                                      }),
                            ok())));

    // A: input-only (6).
    c.add("ext4", "zero-length setxattr value dereferences NULL ea_inode",
          "ext4_xattr_ibody_set", "ext4_xattr_ibody_set",
          "ext4_xattr_ibody_set:fits", true, false,
          base("setxattr",
               uarg_pred("size", [](std::uint64_t s) { return s == 0; })));
    c.add("ext4", "zero-byte write spuriously marks inode dirty",
          "ext4_file_write_iter", "ext4_file_write_iter",
          "generic_write_checks:efbig", true, false,
          base("write",
               uarg_pred("count", [](std::uint64_t n) { return n == 0; })));
    c.add("ext4", "O_SYNC open skips journal commit barrier",
          "do_sys_open", "do_sys_open", "ext4_xattr_ibody_set:fits", true,
          false, base("open", flags_all(O_SYNC)));
    c.add("ext4", "SEEK_HOLE misreports hole start inside uninit extent",
          "ext4_file_read_iter", "ext4_file_read_iter",
          "ext4_should_retry_alloc:enospc", true, false,
          base("lseek", iarg_pred("whence", [](std::int64_t w) {
                   return w == SEEK_HOLE_;
               })));
    c.add("btrfs", "truncate to 0 races dealloc against concurrent scrub",
          "ext4_truncate", "ext4_truncate", "generic_write_checks:efbig",
          true, false,
          base("truncate",
               iarg_pred("length", [](std::int64_t l) { return l == 0; })));
    c.add("btrfs", "chmod with setuid bit drops cached capability state",
          "ext4_setattr", "ext4_setattr", "ext4_xattr_ibody_set:fits", true,
          false, base("chmod", uarg_pred("mode", [](std::uint64_t m) {
                          return (m & S_ISUID) != 0;
                      })));

    // A: output-only (2).
    c.add("ext4", "close on bad fd updates fd-table stats before EBADF",
          "vfs_path_lookup", "vfs_path_lookup",
          "ext4_xattr_ibody_set:fits", false, true,
          base("close", ret_is(Err::EBADF_)));
    c.add("ext4", "getxattr short-buffer exit returns ERANGE but leaks "
                  "value prefix",
          "ext4_xattr_set", "ext4_xattr_set", "ext4_xattr_ibody_set:fits",
          false, true, base("getxattr", ret_is(Err::ERANGE_)));

    // =====================================================================
    // Category B — 20 bugs whose function, line, AND branch regions are
    // covered by the suite, yet the triggering input/output never occurs:
    // the paper's "covered but missed" core.  (The Fig. 1 bug leads.)
    // =====================================================================

    struct BTag {
        bool in, out;
    };
    // Tag layout across B (20): 9 both, 5 input-only, 3 output-only,
    // 3 neither.
    const BTag b_tags[20] = {
        {true, true},  {true, true},  {true, true},  {true, true},
        {true, true},  {true, true},  {true, true},  {true, true},
        {true, true},  {true, false}, {true, false}, {true, false},
        {true, false}, {true, false}, {false, true}, {false, true},
        {false, true}, {false, false}, {false, false}, {false, false},
    };

    // B-1: the paper's Fig. 1 bug, verbatim in spirit.
    c.add("ext4", "use-after-free in ext4_xattr_set_entry when lsetxattr "
                  "uses the maximum allowed size (min_offs overflow); "
                  "fixed by EXT4_INODE_HAS_XATTR_SPACE check",
          "ext4_xattr_ibody_set", "ext4_xattr_ibody_set",
          "ext4_xattr_ibody_set:enospc", true, true,
          base("setxattr", uarg_pred("size", [](std::uint64_t s) {
                   return s == XATTR_SIZE_MAX_;
               })));

    const Trig b_trigs[19] = {
        // both
        base("write", both(uarg_pred("count",
                                     [](std::uint64_t n) {
                                         return n >= (1ULL << 30);
                                     }),
                           ok())),
        base("open", both(flags_all(O_TMPFILE | O_RDWR), ok())),
        base("open", ret_is(Err::EOVERFLOW_)),
        base("write", ret_is(Err::EDQUOT_)),
        base("open", ret_is(Err::ENOMEM_)),
        base("truncate", both(iarg_pred("length",
                                        [](std::int64_t l) {
                                            return l >= (1LL << 40);
                                        }),
                              ok())),
        base("read", ret_is(Err::EIO_)),
        base("open", ret_is(Err::EINTR_)),
        // input-only
        base("open", flags_all(O_LARGEFILE)),
        base("open", flags_all(O_PATH)),
        base("read", uarg_pred("count",
                               [](std::uint64_t n) {
                                   return n >= (1ULL << 25);
                               })),
        base("setxattr", iarg_pred("flags",
                                   [](std::int64_t f) {
                                       return f == (XATTR_CREATE_ |
                                                    XATTR_REPLACE_);
                                   })),
        base("chmod", uarg_pred("mode",
                                [](std::uint64_t m) {
                                    return (m & 07777) == 07777;
                                })),
        // output-only
        base("open", ret_is(Err::EAGAIN_)),
        base("write", ret_is(Err::EPIPE_)),
        base("close", ret_is(Err::EINTR_)),
        // neither (concurrency/timing bugs code coverage also misses)
        never(),
        never(),
        never(),
    };
    const char* b_descs[19] = {
        "1 GiB-plus buffered write overflows reserved-extent counter",
        "O_TMPFILE inode escapes orphan list on success",
        "EOVERFLOW exit path leaks file reference on 32-bit opens",
        "quota-exceeded write path double-frees dquot",
        "OOM during open leaves half-built file table entry",
        "terabyte truncate succeeds but leaves stale extent tail",
        "media-error read path returns wrong byte count with EIO",
        "signal during open leaks O_CREAT inode (EINTR path)",
        "O_LARGEFILE handling bypasses generic_file_open check",
        "O_PATH descriptor grants unintended ioctl surface",
        "32 MiB readahead window misaccounts page refs",
        "XATTR_CREATE|XATTR_REPLACE combination bypasses validation",
        "mode 07777 chmod grants sticky+setid combination unsafely",
        "RESOLVE_CACHED retry path (EAGAIN) double-completes io_uring op",
        "fifo writer EPIPE path signals wrong task",
        "close interrupted by signal re-runs file_operations release",
        "race between write and punch_hole corrupts extent tree",
        "journal commit vs truncate race loses ordered data",
        "writeback vs inode eviction race (no input dependency)",
    };
    for (int i = 0; i < 19; ++i) {
        const char* fs = (i % 4 == 3 || i == 16) ? "btrfs" : "ext4";
        c.add(fs, b_descs[i], hit_fn(static_cast<std::size_t>(i)),
              hit_fn(static_cast<std::size_t>(i)),
              hit_branch(static_cast<std::size_t>(i)),
              b_tags[i + 1].in, b_tags[i + 1].out, b_trigs[i]);
    }

    // =====================================================================
    // Category C — 17 bugs in covered functions and lines whose guarding
    // BRANCH never executes (branch coverage correctly flags these; line
    // coverage does not — the paper's 29% vs 53% gap).
    // =====================================================================
    const BTag c_tags[17] = {
        {true, true},  {true, true},  {true, true},  {true, true},
        {true, true},  {true, true},  {true, false}, {true, false},
        {true, false}, {true, false}, {false, true}, {false, true},
        {false, false}, {false, false}, {false, false}, {false, false},
        {false, false},
    };
    const Trig c_trigs[17] = {
        base("open", ret_is(Err::EDQUOT_)),
        base("mkdir", ret_is(Err::EMLINK_)),
        base("open", ret_is(Err::ENFILE_)),
        base("open", both(flags_all(O_NOATIME), ok())),
        base("mkdir", ret_is(Err::ENOSPC_)),
        base("setxattr", ret_is(Err::EDQUOT_)),
        base("open", flags_all(O_NOCTTY)),
        base("open", flags_all(O_ASYNC)),
        base("mkdir", uarg_pred("mode",
                                [](std::uint64_t m) {
                                    return (m & S_ISUID) != 0;
                                })),
        base("lseek", both(iarg_pred("whence",
                                     [](std::int64_t w) {
                                         return w == SEEK_END_;
                                     }),
                           iarg_pred("offset",
                                     [](std::int64_t o) {
                                         return o > (1LL << 32);
                                     }))),
        base("open", ret_is(Err::ENODEV_)),
        base("truncate", ret_is(Err::EIO_)),
        never(),
        never(),
        never(),
        never(),
        never(),
    };
    const char* c_descs[17] = {
        "project-quota exceeded during create mishandled (EDQUOT)",
        "directory at max link count (EMLINK) splits htree wrongly",
        "system file table exhaustion (ENFILE) leaks sb reference",
        "successful O_NOATIME open still updates atime on ext4",
        "inode-exhaustion mkdir unwinds bitmap out of order",
        "xattr block allocation over quota corrupts mb cache",
        "O_NOCTTY on fs file trips tty-check dead branch",
        "O_ASYNC fasync registration on regular file leaks",
        "setuid mkdir inherits unexpected default ACL",
        "SEEK_END beyond 4 GiB wraps 32-bit temporary",
        "ENODEV open exit path misses fops put",
        "EIO during truncate leaves orphan in-memory extent",
        "allocator stress race under parallel creates",
        "log-replay ordering race (mount-time only)",
        "readdir vs rename cursor race",
        "writeback error propagation race",
        "evict vs sync_fs ordering race",
    };
    for (int i = 0; i < 17; ++i) {
        const char* fs = (i % 4 == 2 || i == 15) ? "btrfs" : "ext4";
        c.add(fs, c_descs[i], hit_fn(static_cast<std::size_t>(i + 3)),
              hit_fn(static_cast<std::size_t>(i + 3)),
              unhit_branch(static_cast<std::size_t>(i)), c_tags[i].in,
              c_tags[i].out, c_trigs[i]);
    }

    // =====================================================================
    // Category D — 6 bugs where only the enclosing FUNCTION is covered
    // (the buggy lines themselves never run).
    // =====================================================================
    const BTag d_tags[6] = {
        {true, true}, {true, true}, {true, true},
        {true, true}, {true, false}, {false, false},
    };
    const Trig d_trigs[6] = {
        base("open",
             both(flags_all(O_DIRECT | O_APPEND), ok())),
        base("write", ret_is(Err::ESPIPE_)),
        base("getxattr",
             [](const CanonicalEvent& e) {
                 auto n = e.event.str_arg("name");
                 return n && n->rfind("trusted.", 0) == 0;
             }),
        base("open", ret_is(Err::EXDEV_)),
        base("open", flags_all(O_DIRECTORY | O_TMPFILE)),
        never(),
    };
    const char* d_descs[6] = {
        "O_DIRECT|O_APPEND combination writes at stale EOF",
        "pwrite on fifo returns ESPIPE after partial reservation",
        "trusted.* getxattr skips capability check in fast path",
        "RESOLVE_NO_XDEV crossing (EXDEV) leaks mount reference",
        "O_TMPFILE|O_DIRECTORY validation order wrong",
        "background defrag vs inline-data race",
    };
    for (int i = 0; i < 6; ++i) {
        const char* fs = i >= 4 ? "btrfs" : "ext4";
        c.add(fs, d_descs[i], hit_fn(static_cast<std::size_t>(i + 7)),
              unhit_branch(static_cast<std::size_t>(i + 2)),
              unhit_branch(static_cast<std::size_t>(i + 2)), d_tags[i].in,
              d_tags[i].out, d_trigs[i]);
    }

    // =====================================================================
    // Category E — 9 bugs in entirely uncovered code (rename/link/
    // tmpfile paths the simulated suites never enter).
    // =====================================================================
    const BTag e_tags[9] = {
        {true, true},  {true, true},  {true, true},  {true, true},
        {true, true},  {false, false}, {false, false}, {false, false},
        {false, false},
    };
    const Trig e_trigs[9] = {
        base("open", both(flags_all(O_TMPFILE), ret_is(Err::ENOSPC_))),
        base("open", ret_is(Err::E2BIG_)),
        base("chdir", ret_is(Err::ELOOP_)),
        base("truncate", ret_is(Err::ETXTBSY_)),
        base("chmod", ret_is(Err::EOPNOTSUPP_)),
        never(),
        never(),
        never(),
        never(),
    };
    const char* e_descs[9] = {
        "O_TMPFILE under ENOSPC leaves orphan chain broken",
        "openat2 with oversized open_how (E2BIG) leaks copied struct",
        "chdir through deep symlink chain miscounts nesting (ELOOP)",
        "truncate of running executable (ETXTBSY) half-applies",
        "fchmodat AT_SYMLINK_NOFOLLOW (EOPNOTSUPP) corrupts error slot",
        "cross-directory rename drops fsync dependency",
        "hard link to inline-data inode corrupts ref count",
        "rename overwrite loses victim's orphan record on crash",
        "RENAME_EXCHANGE vs quota transfer race",
    };
    for (int i = 0; i < 9; ++i) {
        const char* fs = i >= 7 ? "btrfs" : "ext4";
        c.add(fs, e_descs[i], unhit_fn(static_cast<std::size_t>(i)),
              unhit_fn(static_cast<std::size_t>(i)),
              unhit_branch(static_cast<std::size_t>(i)), e_tags[i].in,
              e_tags[i].out, e_trigs[i]);
    }

    // The "triggers for each bug" column of the released dataset, in
    // corpus order.  Empty = no syscall-level trigger (pure race).
    static constexpr const char* kTriggerDescs[70] = {
        // A: detected by the simulated xfstests run.
        "open(O_CREAT|O_EXCL) on an existing path returning EEXIST",
        "write(2) failing with ENOSPC",
        "truncate(2) failing with EFBIG",
        "open(2) failing with ELOOP on a symlink loop",
        "open(2) failing with ENAMETOOLONG",
        "lseek(2) with a negative offset returning EINVAL",
        "setxattr(2) with XATTR_REPLACE returning ENODATA",
        "getxattr(2) size probe (size = 0) succeeding",
        "mkdir(2) with mode 0000 succeeding",
        "read(2) of at least 16 MiB succeeding",
        "setxattr(2) with a zero-length value",
        "write(2) with count 0",
        "open(2) with O_SYNC",
        "lseek(2) with SEEK_HOLE",
        "truncate(2) to length 0",
        "chmod(2) setting S_ISUID",
        "close(2) returning EBADF",
        "getxattr(2) returning ERANGE",
        // B: function+line+branch covered, trigger never generated.
        "lsetxattr(2) with the maximum allowed size (XATTR_SIZE_MAX)",
        "write(2) of at least 1 GiB succeeding",
        "open(O_TMPFILE|O_RDWR) succeeding",
        "open(2) returning EOVERFLOW (large file, 32-bit caller)",
        "write(2) returning EDQUOT",
        "open(2) returning ENOMEM",
        "truncate(2) beyond 1 TiB succeeding",
        "read(2) returning EIO",
        "open(2) returning EINTR",
        "open(2) with O_LARGEFILE",
        "open(2) with O_PATH",
        "read(2) of at least 32 MiB",
        "setxattr(2) with XATTR_CREATE|XATTR_REPLACE",
        "chmod(2) with mode 07777",
        "open(2) returning EAGAIN (openat2 RESOLVE_CACHED)",
        "write(2) returning EPIPE",
        "close(2) returning EINTR",
        "", "", "",
        // C: function+line covered, guarding branch never executed.
        "open(2) returning EDQUOT",
        "mkdir(2) returning EMLINK",
        "open(2) returning ENFILE",
        "open(2) with O_NOATIME succeeding",
        "mkdir(2) returning ENOSPC",
        "setxattr(2) returning EDQUOT",
        "open(2) with O_NOCTTY",
        "open(2) with O_ASYNC",
        "mkdir(2) with S_ISUID",
        "lseek(SEEK_END) with an offset beyond 4 GiB",
        "open(2) returning ENODEV",
        "truncate(2) returning EIO",
        "", "", "", "", "",
        // D: only the enclosing function covered.
        "open(O_DIRECT|O_APPEND) succeeding",
        "write(2) returning ESPIPE",
        "getxattr(2) on a trusted.* attribute name",
        "open(2) returning EXDEV (openat2 RESOLVE_NO_XDEV)",
        "open(2) with O_DIRECTORY|O_TMPFILE",
        "",
        // E: entirely uncovered code paths.
        "open(O_TMPFILE) returning ENOSPC",
        "openat2(2) with an oversized open_how returning E2BIG",
        "chdir(2) returning ELOOP",
        "truncate(2) returning ETXTBSY",
        "fchmodat(AT_SYMLINK_NOFOLLOW) returning EOPNOTSUPP",
        "", "", "", "",
    };
    for (std::size_t i = 0; i < c.bugs.size() && i < 70; ++i)
        c.bugs[i].trigger_description = kTriggerDescs[i];

    return c.bugs;
}

}  // namespace

const std::vector<Bug>& bug_corpus() {
    static const std::vector<Bug> kCorpus = build_corpus();
    return kCorpus;
}

std::string render_bug_dataset() {
    std::string out =
        "| id | fs | class | function site | line site | branch site | "
        "trigger | fix summary |\n"
        "|---|---|---|---|---|---|---|---|\n";
    for (const Bug& b : bug_corpus()) {
        const char* cls = b.input_bug && b.output_bug ? "input+output"
                          : b.input_bug              ? "input"
                          : b.output_bug             ? "output"
                                                     : "neither";
        out += "| " + b.id + " | " + b.fs + " | " + cls + " | " +
               b.function_site + " | " + b.line_site + " | " +
               b.branch_site + " | " +
               (b.trigger_description.empty() ? "(race; no syscall-level "
                                                "trigger)"
                                              : b.trigger_description) +
               " | " + b.description + " |\n";
    }
    return out;
}

}  // namespace iocov::bugstudy
