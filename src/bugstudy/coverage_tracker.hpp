// Code-coverage tracker: the Gcov stand-in for the bug study.
//
// Implements the VFS instrumentation hooks: every probe() hit is counted
// per site, giving "did the suite execute this code region" at function,
// line, and branch granularity (sites are named "fn", "fn:line-ish",
// "fn:branch").  It can also arm active faults at sites, which the
// differential-testing example uses to plant live bugs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "vfs/hooks.hpp"

namespace iocov::bugstudy {

class CoverageTracker final : public vfs::VfsHooks {
  public:
    void probe(std::string_view site) override;
    std::optional<abi::Err> inject(std::string_view site) override;

    /// Number of times `site` executed.
    std::uint64_t hits(std::string_view site) const;
    bool covered(std::string_view site) const { return hits(site) > 0; }

    /// All sites with nonzero hits.
    const std::map<std::string, std::uint64_t>& sites() const {
        return counts_;
    }

    std::size_t distinct_sites() const { return counts_.size(); }
    void reset() { counts_.clear(); }

    /// Arms a live fault: the next `times` executions of `site` fail
    /// with `err` (coverage is still recorded).
    void arm_fault(std::string site, abi::Err err, std::uint64_t times = ~0ULL);
    void disarm(std::string_view site);

  private:
    std::map<std::string, std::uint64_t> counts_;
    struct Armed {
        abi::Err err;
        std::uint64_t remaining;
    };
    std::map<std::string, Armed> armed_;
};

}  // namespace iocov::bugstudy
