#include "bugstudy/study.hpp"

#include "core/variant_handler.hpp"
#include "syscall/kernel.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "trace/sink.hpp"

namespace iocov::bugstudy {

StudyResult evaluate_corpus(const CoverageTracker& tracker,
                            const std::vector<trace::TraceEvent>& events) {
    StudyResult r;

    // Canonicalize every event once; evaluate all triggers against the
    // canonical stream.
    std::vector<core::CanonicalEvent> canon;
    canon.reserve(events.size());
    for (const auto& ev : events)
        if (auto ce = core::canonicalize(ev)) canon.push_back(std::move(*ce));

    for (const Bug& bug : bug_corpus()) {
        BugOutcome o;
        o.bug = &bug;
        o.fn_covered =
            !bug.function_site.empty() && tracker.covered(bug.function_site);
        o.line_covered =
            !bug.line_site.empty() && tracker.covered(bug.line_site);
        o.branch_covered =
            !bug.branch_site.empty() && tracker.covered(bug.branch_site);
        for (const auto& ce : canon) {
            if (bug.trigger && bug.trigger(ce)) {
                o.detected = true;
                break;
            }
        }

        ++r.total;
        if (bug.fs == "ext4") ++r.ext4;
        else ++r.btrfs;
        if (o.detected) ++r.detected;
        if (!o.detected) {
            if (o.line_covered) ++r.line_cbm;
            if (o.fn_covered) ++r.fn_cbm;
            if (o.branch_covered) ++r.branch_cbm;
            if (o.line_covered && bug.input_bug) ++r.cbm_input_triggerable;
        }
        if (bug.input_bug) ++r.input_bugs;
        if (bug.output_bug) ++r.output_bugs;
        if (bug.input_bug || bug.output_bug) ++r.either_bugs;
        if (bug.input_bug && bug.output_bug) ++r.both_bugs;
        if (!bug.input_bug && !bug.output_bug) ++r.neither_bugs;

        r.outcomes.push_back(o);
    }
    return r;
}

StudyResult run_bug_study(const StudyOptions& options) {
    vfs::FileSystem fs(testers::recommended_fs_config());
    auto fx = testers::prepare_environment(fs, "/mnt/test");

    // Attach instrumentation only for the suite run itself, the way the
    // paper resets Gcov counters before running xfstests.
    CoverageTracker tracker;
    fs.set_hooks(&tracker);

    trace::TraceBuffer buffer;
    syscall::Kernel kernel(fs, &buffer);
    testers::run_xfstests(kernel, fx, options.scale, options.seed);

    fs.set_hooks(nullptr);
    return evaluate_corpus(tracker, buffer.events());
}

}  // namespace iocov::bugstudy
