// Ordered frequency histogram over named partitions.
//
// Coverage in IOCov is fundamentally "how many times did each partition
// of an input or output space get exercised".  PartitionHistogram is the
// shared representation: a stable-ordered map from partition label to
// count, with merge/compare/ratio helpers used by the coverage reports
// and the TCD metric.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace iocov::stats {

/// One (partition label, frequency) row.
struct PartitionCount {
    std::string label;
    std::uint64_t count = 0;

    friend bool operator==(const PartitionCount&, const PartitionCount&) = default;
};

/// Frequency histogram keyed by partition label.
///
/// Labels keep their insertion order unless the histogram was built from
/// a declared partition list (see with_partitions), in which case the
/// declared order is preserved and undeclared labels append at the end.
/// Lookup is linear-probe over a small vector: partition spaces here are
/// tens of entries (flags, log2 buckets, errno values), so a flat vector
/// beats a node-based map and keeps deterministic iteration for reports.
class PartitionHistogram {
  public:
    PartitionHistogram() = default;

    /// Pre-declares the partition labels (all at count zero) so that
    /// untested partitions appear explicitly in reports.
    static PartitionHistogram with_partitions(std::vector<std::string> labels);

    /// Adds `n` observations of `label`, creating the partition if new.
    void add(std::string_view label, std::uint64_t n = 1);

    /// Count for `label`; zero if the partition was never declared/seen.
    std::uint64_t count(std::string_view label) const;

    /// True if the label exists (even at count zero).
    bool has_partition(std::string_view label) const;

    /// All rows in report order.
    const std::vector<PartitionCount>& rows() const { return rows_; }

    /// Labels whose count is zero — the "untested partitions" the paper
    /// highlights for both CrashMonkey and xfstests.
    std::vector<std::string> untested() const;

    /// Labels with nonzero count.
    std::vector<std::string> tested() const;

    std::uint64_t total() const;
    std::size_t partition_count() const { return rows_.size(); }
    bool empty() const { return rows_.empty(); }

    /// Fraction of declared partitions with nonzero count, in [0,1].
    /// This is the headline "input coverage" / "output coverage" number.
    double coverage_fraction() const;

    /// Adds every row of `other` into this histogram (union of labels).
    void merge(const PartitionHistogram& other);

    /// Row with the maximum count (nullopt when empty).
    std::optional<PartitionCount> max_row() const;

    friend bool operator==(const PartitionHistogram&, const PartitionHistogram&) = default;

  private:
    std::vector<PartitionCount> rows_;
};

}  // namespace iocov::stats
