// Ordered frequency histogram over named partitions.
//
// Coverage in IOCov is fundamentally "how many times did each partition
// of an input or output space get exercised".  PartitionHistogram is the
// shared representation: a stable-ordered map from partition label to
// count, with merge/compare/ratio helpers used by the coverage reports
// and the TCD metric.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace iocov::stats {

/// One (partition label, frequency) row.
struct PartitionCount {
    std::string label;
    std::uint64_t count = 0;

    friend bool operator==(const PartitionCount&, const PartitionCount&) = default;
};

/// Frequency histogram keyed by partition label.
///
/// Declared labels (with_partitions / declare) keep their declaration
/// order; labels first seen via add() slot into a sorted tail after the
/// declared block.  Row order is therefore a canonical function of the
/// label set alone — analyzing a trace serially, shard-by-shard, or in
/// any merge order yields bit-identical histograms, which is what lets
/// the parallel pipeline assert report equality against the serial one.
/// Lookup is linear-probe over a small vector: partition spaces here are
/// tens of entries (flags, log2 buckets, errno values), so a flat vector
/// beats a node-based map and keeps deterministic iteration for reports.
class PartitionHistogram {
  public:
    PartitionHistogram() = default;

    /// Pre-declares the partition labels (all at count zero) so that
    /// untested partitions appear explicitly in reports.
    static PartitionHistogram with_partitions(std::vector<std::string> labels);

    /// Declares one label (count zero) at the end of the declared block,
    /// preserving call order.  Used by report loading to reproduce a
    /// saved row order exactly.  No-op if the label already exists.
    void declare(std::string label);

    /// Adds `n` observations of `label`.  A new label is created in its
    /// canonical (sorted) position after the declared block; n == 0
    /// still creates it.
    void add(std::string_view label, std::uint64_t n = 1);

    /// Count for `label`; zero if the partition was never declared/seen.
    std::uint64_t count(std::string_view label) const;

    /// True if the label exists (even at count zero).
    bool has_partition(std::string_view label) const;

    /// All rows in report order.
    const std::vector<PartitionCount>& rows() const { return rows_; }

    /// Size of the declared block (rows_[0..declared_count()) keep
    /// declaration order; the rest is the sorted dynamic tail).  The
    /// boundary is serialization state: restoring it exactly is what
    /// lets a snapshot-loaded histogram keep inserting future dynamic
    /// labels at the same positions the original would have.
    std::size_t declared_count() const { return declared_; }

    /// Rebuilds a histogram from serialized rows + declared boundary —
    /// the exact inverse of (rows(), declared_count()).  Throws
    /// std::invalid_argument unless `declared <= rows.size()`, the tail
    /// after the declared block is strictly label-sorted, and no label
    /// repeats — the invariants add()/declare() maintain, checked here
    /// so corrupt serialized bytes cannot forge an unmergeable state.
    static PartitionHistogram from_rows(std::vector<PartitionCount> rows,
                                        std::size_t declared);

    /// Labels whose count is zero — the "untested partitions" the paper
    /// highlights for both CrashMonkey and xfstests.
    std::vector<std::string> untested() const;

    /// Labels with nonzero count.
    std::vector<std::string> tested() const;

    std::uint64_t total() const;
    std::size_t partition_count() const { return rows_.size(); }
    bool empty() const { return rows_.empty(); }

    /// Fraction of declared partitions with nonzero count, in [0,1].
    /// This is the headline "input coverage" / "output coverage" number.
    double coverage_fraction() const;

    /// Adds every row of `other` into this histogram (union of labels).
    void merge(const PartitionHistogram& other);

    /// Row with the maximum count (nullopt when empty).
    std::optional<PartitionCount> max_row() const;

    /// Equality is over the rows (labels, order, counts); how many of
    /// them were declared vs dynamically added is presentation state.
    friend bool operator==(const PartitionHistogram& a,
                           const PartitionHistogram& b) {
        return a.rows_ == b.rows_;
    }

  private:
    std::vector<PartitionCount> rows_;
    /// rows_[0..declared_) is the declared block; the rest is the sorted
    /// dynamic tail.
    std::size_t declared_ = 0;
};

}  // namespace iocov::stats
