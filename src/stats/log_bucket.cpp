#include "stats/log_bucket.hpp"

#include <array>
#include <bit>
#include <charconv>
#include <cstdio>
#include <limits>

namespace iocov::stats {

LogBucket log_bucket_of(std::int64_t value) {
    if (value < 0) return {LogBucket::Kind::Negative, 0};
    if (value == 0) return {LogBucket::Kind::Zero, 0};
    const auto uv = static_cast<std::uint64_t>(value);
    const unsigned exp = 63u - static_cast<unsigned>(std::countl_zero(uv));
    return {LogBucket::Kind::Pow2, exp};
}

std::int64_t bucket_lower_bound(const LogBucket& b) {
    switch (b.kind) {
        case LogBucket::Kind::Negative:
            return std::numeric_limits<std::int64_t>::min();
        case LogBucket::Kind::Zero:
            return 0;
        case LogBucket::Kind::Pow2:
            // 1 << 63 is signed overflow; no int64 value lives in that
            // bucket anyway, so saturate (parse rejects exp >= 63 too).
            if (b.exponent >= 63)
                return std::numeric_limits<std::int64_t>::max();
            return std::int64_t{1} << b.exponent;
    }
    return 0;
}

std::int64_t bucket_upper_bound(const LogBucket& b) {
    switch (b.kind) {
        case LogBucket::Kind::Negative:
            return -1;
        case LogBucket::Kind::Zero:
            return 0;
        case LogBucket::Kind::Pow2:
            if (b.exponent >= 62) return std::numeric_limits<std::int64_t>::max();
            return (std::int64_t{1} << (b.exponent + 1)) - 1;
    }
    return 0;
}

std::string bucket_label(const LogBucket& b) {
    switch (b.kind) {
        case LogBucket::Kind::Negative:
            return "<0";
        case LogBucket::Kind::Zero:
            return "=0";
        case LogBucket::Kind::Pow2:
            return "2^" + std::to_string(b.exponent);
    }
    return "?";
}

std::string bucket_size_label(const LogBucket& b) {
    switch (b.kind) {
        case LogBucket::Kind::Negative:
            return "<0";
        case LogBucket::Kind::Zero:
            return "0B";
        case LogBucket::Kind::Pow2:
            return human_size(std::uint64_t{1} << b.exponent);
    }
    return "?";
}

std::string human_size(std::uint64_t bytes) {
    static constexpr std::array<const char*, 7> kUnits = {
        "B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB"};
    std::size_t unit = 0;
    std::uint64_t scale = 1;
    while (bytes / scale >= 1024 && unit + 1 < kUnits.size()) {
        scale <<= 10;
        ++unit;
    }
    char buf[64];
    if (bytes % scale == 0) {
        std::snprintf(buf, sizeof buf, "%llu%s",
                      static_cast<unsigned long long>(bytes / scale),
                      kUnits[unit]);
    } else {
        // Fraction from the full byte count, not just the last division's
        // remainder: 1,520,500 B is 1.45 MiB, not 1.4-something from the
        // KiB-level leftovers alone.
        std::snprintf(buf, sizeof buf, "%.1f%s",
                      static_cast<double>(bytes) / static_cast<double>(scale),
                      kUnits[unit]);
    }
    return buf;
}

std::optional<LogBucket> parse_bucket_label(const std::string& label) {
    if (label == "<0") return LogBucket{LogBucket::Kind::Negative, 0};
    if (label == "=0") return LogBucket{LogBucket::Kind::Zero, 0};
    if (label.size() > 2 && label[0] == '2' && label[1] == '^') {
        unsigned exp = 0;
        const char* first = label.data() + 2;
        const char* last = label.data() + label.size();
        auto [ptr, ec] = std::from_chars(first, last, exp);
        // exp 63 is rejected: no positive int64 reaches it, and the
        // bucket's lower bound would not be representable.
        if (ec == std::errc{} && ptr == last && exp < 63)
            return LogBucket{LogBucket::Kind::Pow2, exp};
    }
    return std::nullopt;
}

}  // namespace iocov::stats
