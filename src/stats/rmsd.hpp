// Root Mean Square Deviation helpers.
//
// The paper's Test Coverage Deviation (TCD) metric is an RMSD computed in
// log10 space between observed partition frequencies and a target array.
// The generic numeric kernels live here; the TCD policy (log transform,
// zero handling, target construction) lives in core/tcd.hpp.
#pragma once

#include <span>

namespace iocov::stats {

/// RMSD between two equal-length series: sqrt(mean((a[i]-b[i])^2)).
/// Returns 0.0 for empty input; throws std::invalid_argument on a
/// length mismatch (a real check, not an assert — a short series must
/// fail loudly in release builds too, not read out of bounds).
double rmsd(std::span<const double> a, std::span<const double> b);

/// log10 that tolerates zero counts: log10(max(x, floor)).
/// IOCov uses floor = 1 so an untested partition (count 0) contributes
/// log10(1) = 0, i.e. the full log-distance to the target.
double safe_log10(double x, double floor = 1.0);

/// Arithmetic mean; 0.0 for empty input.
double mean(std::span<const double> xs);

/// Population standard deviation; 0.0 for fewer than 2 samples.
double stddev(std::span<const double> xs);

}  // namespace iocov::stats
