#include "stats/histogram.hpp"

#include <algorithm>
#include <stdexcept>

namespace iocov::stats {

PartitionHistogram PartitionHistogram::with_partitions(
    std::vector<std::string> labels) {
    PartitionHistogram h;
    h.rows_.reserve(labels.size());
    for (auto& l : labels) {
        if (!h.has_partition(l)) h.rows_.push_back({std::move(l), 0});
    }
    h.declared_ = h.rows_.size();
    return h;
}

PartitionHistogram PartitionHistogram::from_rows(
    std::vector<PartitionCount> rows, std::size_t declared) {
    if (declared > rows.size())
        throw std::invalid_argument(
            "PartitionHistogram::from_rows: declared block exceeds rows");
    for (std::size_t i = declared + 1; i < rows.size(); ++i)
        if (!(rows[i - 1].label < rows[i].label))
            throw std::invalid_argument(
                "PartitionHistogram::from_rows: dynamic tail not sorted");
    // Spaces here are tens of labels, so the quadratic duplicate check
    // is cheaper than building a set (and allocation-free).
    for (std::size_t i = 0; i < rows.size(); ++i)
        for (std::size_t j = i + 1; j < rows.size(); ++j)
            if (rows[i].label == rows[j].label)
                throw std::invalid_argument(
                    "PartitionHistogram::from_rows: duplicate label");
    PartitionHistogram h;
    h.rows_ = std::move(rows);
    h.declared_ = declared;
    return h;
}

void PartitionHistogram::declare(std::string label) {
    if (has_partition(label)) return;
    rows_.insert(rows_.begin() + static_cast<std::ptrdiff_t>(declared_),
                 {std::move(label), 0});
    ++declared_;
}

void PartitionHistogram::add(std::string_view label, std::uint64_t n) {
    for (auto& row : rows_) {
        if (row.label == label) {
            row.count += n;
            return;
        }
    }
    // New dynamic label: keep the tail after the declared block sorted so
    // the row order never depends on event or shard-merge order.
    const auto tail = rows_.begin() + static_cast<std::ptrdiff_t>(declared_);
    const auto pos = std::lower_bound(
        tail, rows_.end(), label,
        [](const PartitionCount& row, std::string_view l) {
            return row.label < l;
        });
    rows_.insert(pos, {std::string(label), n});
}

std::uint64_t PartitionHistogram::count(std::string_view label) const {
    for (const auto& row : rows_)
        if (row.label == label) return row.count;
    return 0;
}

bool PartitionHistogram::has_partition(std::string_view label) const {
    return std::any_of(rows_.begin(), rows_.end(),
                       [&](const auto& r) { return r.label == label; });
}

std::vector<std::string> PartitionHistogram::untested() const {
    std::vector<std::string> out;
    for (const auto& row : rows_)
        if (row.count == 0) out.push_back(row.label);
    return out;
}

std::vector<std::string> PartitionHistogram::tested() const {
    std::vector<std::string> out;
    for (const auto& row : rows_)
        if (row.count != 0) out.push_back(row.label);
    return out;
}

std::uint64_t PartitionHistogram::total() const {
    std::uint64_t sum = 0;
    for (const auto& row : rows_) sum += row.count;
    return sum;
}

double PartitionHistogram::coverage_fraction() const {
    if (rows_.empty()) return 0.0;
    const auto tested_n = static_cast<double>(rows_.size() - untested().size());
    return tested_n / static_cast<double>(rows_.size());
}

void PartitionHistogram::merge(const PartitionHistogram& other) {
    for (const auto& row : other.rows_) {
        // add() with n==0 still creates the partition, preserving the
        // union of declared (possibly untested) labels; labels new to
        // this histogram land in the canonical sorted tail, so merge is
        // commutative over row order as well as counts.
        add(row.label, row.count);
    }
}

std::optional<PartitionCount> PartitionHistogram::max_row() const {
    if (rows_.empty()) return std::nullopt;
    return *std::max_element(
        rows_.begin(), rows_.end(),
        [](const auto& a, const auto& b) { return a.count < b.count; });
}

}  // namespace iocov::stats
