#include "stats/rmsd.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace iocov::stats {

double rmsd(std::span<const double> a, std::span<const double> b) {
    if (a.size() != b.size())
        throw std::invalid_argument(
            "rmsd: series length mismatch (" + std::to_string(a.size()) +
            " vs " + std::to_string(b.size()) + ")");
    if (a.empty()) return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        sum += d * d;
    }
    return std::sqrt(sum / static_cast<double>(a.size()));
}

double safe_log10(double x, double floor) {
    return std::log10(x < floor ? floor : x);
}

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double sum = 0.0;
    for (double x : xs) sum += x;
    return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double sum = 0.0;
    for (double x : xs) sum += (x - m) * (x - m);
    return std::sqrt(sum / static_cast<double>(xs.size()));
}

}  // namespace iocov::stats
