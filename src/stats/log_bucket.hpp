// Log2 bucketing of numeric syscall arguments and return values.
//
// The paper partitions numeric input spaces (e.g. write sizes) by powers
// of two: bucket k holds all values v with 2^k <= v < 2^(k+1).  Zero is a
// dedicated boundary partition ("Equal to 0" in Fig. 3) because it is the
// minimum size accepted by write(2) yet easily neglected by tests.
// Negative values (which appear in output spaces as -errno) get their own
// bucket so the partitioner can route them to error handling.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace iocov::stats {

/// Identifies one power-of-two partition of a numeric space.
///
/// Buckets are ordered: Negative < Zero < Pow2(0) < Pow2(1) < ...
struct LogBucket {
    enum class Kind : std::uint8_t { Negative, Zero, Pow2 };

    Kind kind = Kind::Zero;
    /// Exponent k for Kind::Pow2: the bucket covers [2^k, 2^(k+1)).
    /// Unused (0) for Negative and Zero.
    unsigned exponent = 0;

    friend bool operator==(const LogBucket&, const LogBucket&) = default;
    friend auto operator<=>(const LogBucket&, const LogBucket&) = default;
};

/// Maps a value to its log2 bucket. 0 -> Zero, v<0 -> Negative,
/// otherwise Pow2(floor(log2(v))).
LogBucket log_bucket_of(std::int64_t value);

/// Inclusive lower bound of the bucket (0 for Zero; min int64 for Negative).
std::int64_t bucket_lower_bound(const LogBucket& b);

/// Inclusive upper bound of the bucket (0 for Zero; -1 for Negative;
/// 2^(k+1)-1 for Pow2(k), saturating at int64 max).
std::int64_t bucket_upper_bound(const LogBucket& b);

/// Human label: "<0", "=0", or "2^k".
std::string bucket_label(const LogBucket& b);

/// Human-readable size label for the bucket's lower bound: "1B", "4KiB",
/// "256MiB", ... (the x2-axis of Fig. 3). Zero -> "0B", Negative -> "<0".
std::string bucket_size_label(const LogBucket& b);

/// Formats a byte count with binary-prefix units (e.g. 258 MiB prints as
/// "258MiB", 1536 as "1.5KiB"). Used in annotations such as the Fig. 3
/// maximum-write-size marker.
std::string human_size(std::uint64_t bytes);

/// Parses labels produced by bucket_label back into buckets (round-trip
/// support for serialized coverage reports). Returns nullopt on garbage.
std::optional<LogBucket> parse_bucket_label(const std::string& label);

}  // namespace iocov::stats
