#include "abi/fcntl.hpp"

namespace iocov::abi {

const std::vector<OpenFlagInfo>& open_flag_table() {
    static const std::vector<OpenFlagInfo> kTable = {
        {"O_RDONLY", O_RDONLY, true},
        {"O_WRONLY", O_WRONLY, true},
        {"O_RDWR", O_RDWR, true},
        {"O_CREAT", O_CREAT, false},
        {"O_EXCL", O_EXCL, false},
        {"O_NOCTTY", O_NOCTTY, false},
        {"O_TRUNC", O_TRUNC, false},
        {"O_APPEND", O_APPEND, false},
        {"O_NONBLOCK", O_NONBLOCK, false},
        {"O_DSYNC", O_DSYNC, false},
        {"O_ASYNC", O_ASYNC, false},
        {"O_DIRECT", O_DIRECT, false},
        {"O_LARGEFILE", O_LARGEFILE, false},
        {"O_DIRECTORY", O_DIRECTORY, false},
        {"O_NOFOLLOW", O_NOFOLLOW, false},
        {"O_NOATIME", O_NOATIME, false},
        {"O_CLOEXEC", O_CLOEXEC, false},
        {"O_SYNC", O_SYNC, false},
        {"O_PATH", O_PATH, false},
        {"O_TMPFILE", O_TMPFILE, false},
    };
    return kTable;
}

std::size_t decompose_open_flags(std::uint32_t flags, std::string_view* out,
                                 std::size_t cap) {
    std::size_t n = 0;
    auto emit = [&](std::string_view name) {
        if (n < cap) out[n++] = name;
    };
    // Access mode: exactly one of O_RDONLY / O_WRONLY / O_RDWR.  The
    // kernel treats mode 3 as invalid; we report it as O_RDWR for
    // coverage purposes (the syscall layer rejects it with EINVAL).
    switch (flags & O_ACCMODE) {
        case O_WRONLY: emit("O_WRONLY"); break;
        case O_RDONLY: emit("O_RDONLY"); break;
        default: emit("O_RDWR"); break;
    }
    std::uint32_t rest = flags & ~O_ACCMODE;
    // Composite flags first so O_SYNC absorbs O_DSYNC and O_TMPFILE
    // absorbs O_DIRECTORY, matching how the kernel distinguishes them.
    if ((rest & O_SYNC) == O_SYNC) {
        emit("O_SYNC");
        rest &= ~static_cast<std::uint32_t>(O_SYNC);
    }
    if ((rest & O_TMPFILE) == O_TMPFILE) {
        emit("O_TMPFILE");
        rest &= ~static_cast<std::uint32_t>(O_TMPFILE);
    }
    for (const auto& info : open_flag_table()) {
        if (info.access_mode || info.bits == O_SYNC || info.bits == O_TMPFILE)
            continue;
        if ((rest & info.bits) == info.bits) {
            emit(info.name);
            rest &= ~info.bits;
        }
    }
    return n;
}

std::vector<std::string> decompose_open_flags(std::uint32_t flags) {
    std::string_view names[kMaxOpenFlagLabels];
    const std::size_t n =
        decompose_open_flags(flags, names, kMaxOpenFlagLabels);
    return std::vector<std::string>(names, names + n);
}

unsigned open_flag_cardinality(std::uint32_t flags) {
    return static_cast<unsigned>(decompose_open_flags(flags).size());
}

std::string open_flags_to_string(std::uint32_t flags) {
    std::string out;
    for (const auto& name : decompose_open_flags(flags)) {
        if (!out.empty()) out += '|';
        out += name;
    }
    return out;
}

}  // namespace iocov::abi
