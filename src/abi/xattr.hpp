// Extended-attribute constants (setxattr/getxattr family).
#pragma once

#include <cstdint>

namespace iocov::abi {

// setxattr(2) flags (a tiny bitmap argument: 0, CREATE, or REPLACE).
inline constexpr int XATTR_CREATE_ = 0x1;
inline constexpr int XATTR_REPLACE_ = 0x2;

// Linux VFS limits.
inline constexpr std::size_t XATTR_NAME_MAX_ = 255;
inline constexpr std::size_t XATTR_SIZE_MAX_ = 65536;
inline constexpr std::size_t XATTR_LIST_MAX_ = 65536;

}  // namespace iocov::abi
