// File mode bits: type field and permission bits (Linux numbering).
#pragma once

#include <cstdint>
#include <string>

// The host's <sys/stat.h> defines these names as macros; our constants
// are the library's own self-contained ABI.  Pull the system header in
// now (its include guard makes any later include a no-op) and drop the
// macros, so no other header can re-introduce them behind our back.
#include <sys/stat.h>  // IWYU pragma: keep
#undef S_IFMT
#undef S_IFSOCK
#undef S_IFLNK
#undef S_IFREG
#undef S_IFBLK
#undef S_IFDIR
#undef S_IFCHR
#undef S_IFIFO
#undef S_ISUID
#undef S_ISGID
#undef S_ISVTX
#undef S_IRWXU
#undef S_IRUSR
#undef S_IWUSR
#undef S_IXUSR
#undef S_IRWXG
#undef S_IRGRP
#undef S_IWGRP
#undef S_IXGRP
#undef S_IRWXO
#undef S_IROTH
#undef S_IWOTH
#undef S_IXOTH

namespace iocov::abi {

using mode_t_ = std::uint32_t;

// File-type field (S_IFMT).
inline constexpr mode_t_ S_IFMT = 0170000;
inline constexpr mode_t_ S_IFSOCK = 0140000;
inline constexpr mode_t_ S_IFLNK = 0120000;
inline constexpr mode_t_ S_IFREG = 0100000;
inline constexpr mode_t_ S_IFBLK = 0060000;
inline constexpr mode_t_ S_IFDIR = 0040000;
inline constexpr mode_t_ S_IFCHR = 0020000;
inline constexpr mode_t_ S_IFIFO = 0010000;

constexpr bool is_reg(mode_t_ m) { return (m & S_IFMT) == S_IFREG; }
constexpr bool is_dir(mode_t_ m) { return (m & S_IFMT) == S_IFDIR; }
constexpr bool is_lnk(mode_t_ m) { return (m & S_IFMT) == S_IFLNK; }

// Special bits.
inline constexpr mode_t_ S_ISUID = 04000;
inline constexpr mode_t_ S_ISGID = 02000;
inline constexpr mode_t_ S_ISVTX = 01000;

// Permission bits.
inline constexpr mode_t_ S_IRWXU = 00700;
inline constexpr mode_t_ S_IRUSR = 00400;
inline constexpr mode_t_ S_IWUSR = 00200;
inline constexpr mode_t_ S_IXUSR = 00100;
inline constexpr mode_t_ S_IRWXG = 00070;
inline constexpr mode_t_ S_IRGRP = 00040;
inline constexpr mode_t_ S_IWGRP = 00020;
inline constexpr mode_t_ S_IXGRP = 00010;
inline constexpr mode_t_ S_IRWXO = 00007;
inline constexpr mode_t_ S_IROTH = 00004;
inline constexpr mode_t_ S_IWOTH = 00002;
inline constexpr mode_t_ S_IXOTH = 00001;

/// All bits chmod(2) accepts (permissions + suid/sgid/sticky).
inline constexpr mode_t_ MODE_PERM_MASK = 07777;

/// Renders the low 12 bits in octal ("0644", "04755").
std::string mode_to_octal(mode_t_ mode);

}  // namespace iocov::abi
