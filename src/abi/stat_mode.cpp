#include "abi/stat_mode.hpp"

#include <cstdio>

namespace iocov::abi {

std::string mode_to_octal(mode_t_ mode) {
    char buf[8];
    std::snprintf(buf, sizeof buf, "%04o", mode & MODE_PERM_MASK);
    return buf;
}

}  // namespace iocov::abi
