// lseek(2) whence values — the paper's canonical "categorical" argument.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace iocov::abi {

inline constexpr int SEEK_SET_ = 0;
inline constexpr int SEEK_CUR_ = 1;
inline constexpr int SEEK_END_ = 2;
inline constexpr int SEEK_DATA_ = 3;
inline constexpr int SEEK_HOLE_ = 4;

/// All valid whence values, in numeric order (the categorical partition
/// space for lseek's third argument).
const std::vector<int>& seek_whence_values();

/// "SEEK_SET" etc.; nullopt for invalid whence.
std::optional<std::string> seek_whence_name(int whence);

}  // namespace iocov::abi
