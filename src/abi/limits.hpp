// Path/name and I/O size limits (Linux values).
#pragma once

#include <cstdint>

namespace iocov::abi {

inline constexpr std::size_t NAME_MAX_ = 255;
inline constexpr std::size_t PATH_MAX_ = 4096;
inline constexpr std::size_t SYMLOOP_MAX_ = 40;
inline constexpr int IOV_MAX_ = 1024;

/// The kernel truncates any single read/write to this many bytes
/// (MAX_RW_COUNT = INT_MAX & PAGE_MASK).
inline constexpr std::uint64_t MAX_RW_COUNT =
    0x7fffffffULL & ~0xfffULL;

}  // namespace iocov::abi
