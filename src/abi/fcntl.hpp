// open(2) flags, AT_* constants, and openat2(2) RESOLVE_* flags
// (Linux x86-64 numbering, octal as in the kernel headers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

// Drop the host <fcntl.h> macros: these constants are the library's own
// self-contained ABI definitions.  Include the system header first so
// its include guard prevents any later re-introduction of the macros.
#include <fcntl.h>  // IWYU pragma: keep
#undef O_RDONLY
#undef O_WRONLY
#undef O_RDWR
#undef O_ACCMODE
#undef O_CREAT
#undef O_EXCL
#undef O_NOCTTY
#undef O_TRUNC
#undef O_APPEND
#undef O_NONBLOCK
#undef O_DSYNC
#undef O_ASYNC
#undef O_DIRECT
#undef O_LARGEFILE
#undef O_DIRECTORY
#undef O_NOFOLLOW
#undef O_NOATIME
#undef O_CLOEXEC
#undef O_SYNC
#undef O_PATH
#undef O_TMPFILE
#undef AT_FDCWD
#undef AT_SYMLINK_NOFOLLOW
#undef AT_SYMLINK_FOLLOW
#undef AT_EMPTY_PATH

namespace iocov::abi {

/// Open flags. O_RDONLY/O_WRONLY/O_RDWR form the 2-bit access mode; all
/// other flags OR in.  Values match Linux/x86-64 so traces look native.
enum OpenFlag : std::uint32_t {
    O_RDONLY = 00000000,
    O_WRONLY = 00000001,
    O_RDWR = 00000002,
    O_ACCMODE = 00000003,
    O_CREAT = 00000100,
    O_EXCL = 00000200,
    O_NOCTTY = 00000400,
    O_TRUNC = 00001000,
    O_APPEND = 00002000,
    O_NONBLOCK = 00004000,
    O_DSYNC = 00010000,
    O_ASYNC = 00020000,
    O_DIRECT = 00040000,
    O_LARGEFILE = 00100000,
    O_DIRECTORY = 00200000,
    O_NOFOLLOW = 00400000,
    O_NOATIME = 01000000,
    O_CLOEXEC = 02000000,
    // __O_SYNC | O_DSYNC, as in the kernel.
    O_SYNC = 04000000 | O_DSYNC,
    O_PATH = 010000000,
    // __O_TMPFILE | O_DIRECTORY.
    O_TMPFILE = 020000000 | O_DIRECTORY,
};

/// One row of the open-flag partition space: name + bit pattern.
struct OpenFlagInfo {
    const char* name;
    std::uint32_t bits;
    /// True for the access-mode "flags" (O_RDONLY/O_WRONLY/O_RDWR) which
    /// are a 2-bit field, not independent bits.
    bool access_mode;
};

/// All open-flag partitions in the order of the paper's Fig. 2 x-axis
/// (22 entries: 3 access modes + 19 OR-able flags).
const std::vector<OpenFlagInfo>& open_flag_table();

/// Decomposes a flags word into the flag names it contains.  The access
/// mode contributes exactly one name; composite flags (O_SYNC, O_TMPFILE)
/// absorb their contained bits so O_SYNC does not also report O_DSYNC.
std::vector<std::string> decompose_open_flags(std::uint32_t flags);

/// Upper bound on the labels one flags word can decompose into (one
/// access mode + every OR-able flag, rounded up for headroom).
inline constexpr std::size_t kMaxOpenFlagLabels = 24;

/// Allocation-free decomposition: writes up to `cap` flag names (all
/// static storage) into `out`, returning the count.  Same names and
/// order as the vector overload; cap >= kMaxOpenFlagLabels never
/// truncates.  This is the analyzer's per-event path.
std::size_t decompose_open_flags(std::uint32_t flags, std::string_view* out,
                                 std::size_t cap);

/// Number of distinct flags in the word (the paper's Table 1 statistic:
/// "how many flags were combined in open", where a lone O_RDONLY counts
/// as one flag).
unsigned open_flag_cardinality(std::uint32_t flags);

/// Renders flags as "O_WRONLY|O_CREAT|O_TRUNC" (access mode first).
std::string open_flags_to_string(std::uint32_t flags);

// Directory-fd sentinel and lookup-control flags for the *at() variants.
inline constexpr int AT_FDCWD = -100;
inline constexpr std::uint32_t AT_SYMLINK_NOFOLLOW = 0x100;
inline constexpr std::uint32_t AT_SYMLINK_FOLLOW = 0x400;
inline constexpr std::uint32_t AT_EMPTY_PATH = 0x1000;

// openat2(2) resolve flags.
inline constexpr std::uint64_t RESOLVE_NO_XDEV = 0x01;
inline constexpr std::uint64_t RESOLVE_NO_MAGICLINKS = 0x02;
inline constexpr std::uint64_t RESOLVE_NO_SYMLINKS = 0x04;
inline constexpr std::uint64_t RESOLVE_BENEATH = 0x08;
inline constexpr std::uint64_t RESOLVE_IN_ROOT = 0x10;
inline constexpr std::uint64_t RESOLVE_CACHED = 0x20;
inline constexpr std::uint64_t RESOLVE_VALID_MASK = 0x3f;

/// openat2(2) argument block (struct open_how).
struct OpenHow {
    std::uint64_t flags = 0;
    std::uint64_t mode = 0;
    std::uint64_t resolve = 0;
};

}  // namespace iocov::abi
