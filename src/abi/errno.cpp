#include "abi/errno.hpp"

#include <array>
#include <utility>

namespace iocov::abi {
namespace {

constexpr std::array<std::pair<Err, const char*>, 37> kNames = {{
    {Err::Ok, "OK"},
    {Err::EPERM_, "EPERM"},
    {Err::ENOENT_, "ENOENT"},
    {Err::EINTR_, "EINTR"},
    {Err::EIO_, "EIO"},
    {Err::ENXIO_, "ENXIO"},
    {Err::E2BIG_, "E2BIG"},
    {Err::EBADF_, "EBADF"},
    {Err::EAGAIN_, "EAGAIN"},
    {Err::ENOMEM_, "ENOMEM"},
    {Err::EACCES_, "EACCES"},
    {Err::EFAULT_, "EFAULT"},
    {Err::EBUSY_, "EBUSY"},
    {Err::EEXIST_, "EEXIST"},
    {Err::EXDEV_, "EXDEV"},
    {Err::ENODEV_, "ENODEV"},
    {Err::ENOTDIR_, "ENOTDIR"},
    {Err::EISDIR_, "EISDIR"},
    {Err::EINVAL_, "EINVAL"},
    {Err::ENFILE_, "ENFILE"},
    {Err::EMFILE_, "EMFILE"},
    {Err::ETXTBSY_, "ETXTBSY"},
    {Err::EFBIG_, "EFBIG"},
    {Err::ENOSPC_, "ENOSPC"},
    {Err::ESPIPE_, "ESPIPE"},
    {Err::EPIPE_, "EPIPE"},
    {Err::EROFS_, "EROFS"},
    {Err::EMLINK_, "EMLINK"},
    {Err::ERANGE_, "ERANGE"},
    {Err::ENAMETOOLONG_, "ENAMETOOLONG"},
    {Err::ENOSYS_, "ENOSYS"},
    {Err::ENOTEMPTY_, "ENOTEMPTY"},
    {Err::ELOOP_, "ELOOP"},
    {Err::ENODATA_, "ENODATA"},
    {Err::EOVERFLOW_, "EOVERFLOW"},
    {Err::EOPNOTSUPP_, "EOPNOTSUPP"},
    {Err::EDQUOT_, "EDQUOT"},
}};

}  // namespace

std::string err_name(Err e) {
    for (const auto& [err, name] : kNames)
        if (err == e) return name;
    return "E?" + std::to_string(static_cast<int>(e));
}

std::string err_name(int errno_value) {
    return err_name(static_cast<Err>(errno_value));
}

std::optional<Err> err_from_name(std::string_view name) {
    for (const auto& [err, n] : kNames)
        if (name == n) return err;
    return std::nullopt;
}

const std::vector<Err>& open_manpage_errors() {
    // Reverse-alphabetical, matching the order of Fig. 4's x-axis.
    static const std::vector<Err> kErrors = {
        Err::EXDEV_,    Err::ETXTBSY_,      Err::EROFS_,   Err::EPERM_,
        Err::EOVERFLOW_, Err::ENXIO_,       Err::ENOTDIR_, Err::ENOSPC_,
        Err::ENOMEM_,   Err::ENOENT_,       Err::ENODEV_,  Err::ENFILE_,
        Err::ENAMETOOLONG_, Err::EMFILE_,   Err::ELOOP_,   Err::EISDIR_,
        Err::EINVAL_,   Err::EINTR_,        Err::EFBIG_,   Err::EFAULT_,
        Err::EEXIST_,   Err::EDQUOT_,       Err::EBUSY_,   Err::EBADF_,
        Err::EAGAIN_,   Err::EACCES_,       Err::E2BIG_,
    };
    return kErrors;
}

const std::vector<Err>& all_errors() {
    static const std::vector<Err> kAll = [] {
        std::vector<Err> v;
        for (const auto& [err, name] : kNames)
            if (err != Err::Ok) v.push_back(err);
        return v;
    }();
    return kAll;
}

}  // namespace iocov::abi
