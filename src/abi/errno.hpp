// Errno values and names (Linux x86-64 numbering).
//
// The whole library is self-contained: we define our own errno table
// instead of relying on <cerrno> so that traces, coverage reports, and
// tests are identical on any host.  Values match Linux so that a trace
// from the simulated syscall layer reads like an LTTng trace of the real
// kernel.  The set covers every code on the open(2) manual page (the
// x-axis of the paper's Fig. 4) plus the codes our other 26 syscalls can
// return.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace iocov::abi {

enum class Err : int {
    // Success sentinel (never encoded in a return value; ret >= 0 is OK).
    Ok = 0,
    EPERM_ = 1,
    ENOENT_ = 2,
    EINTR_ = 4,
    EIO_ = 5,
    ENXIO_ = 6,
    E2BIG_ = 7,
    EBADF_ = 9,
    EAGAIN_ = 11,
    ENOMEM_ = 12,
    EACCES_ = 13,
    EFAULT_ = 14,
    EBUSY_ = 16,
    EEXIST_ = 17,
    EXDEV_ = 18,
    ENODEV_ = 19,
    ENOTDIR_ = 20,
    EISDIR_ = 21,
    EINVAL_ = 22,
    ENFILE_ = 23,
    EMFILE_ = 24,
    ETXTBSY_ = 26,
    EFBIG_ = 27,
    ENOSPC_ = 28,
    ESPIPE_ = 29,
    EPIPE_ = 32,
    EROFS_ = 30,
    EMLINK_ = 31,
    ERANGE_ = 34,
    ENAMETOOLONG_ = 36,
    ENOSYS_ = 38,
    ENOTEMPTY_ = 39,
    ELOOP_ = 40,
    ENODATA_ = 61,
    EOVERFLOW_ = 75,
    EOPNOTSUPP_ = 95,
    EDQUOT_ = 122,
};

/// Canonical name ("ENOENT") for an errno value; "E?<n>" for unknown.
std::string err_name(Err e);
std::string err_name(int errno_value);

/// Reverse lookup: "ENOENT" -> Err::ENOENT_. Accepts only canonical names.
std::optional<Err> err_from_name(std::string_view name);

/// Encodes a failing syscall return: -static_cast<int>(e).
constexpr std::int64_t fail(Err e) { return -static_cast<std::int64_t>(e); }

/// True if a raw syscall return indicates success.
constexpr bool is_ok(std::int64_t ret) { return ret >= 0; }

/// Extracts the errno from a failing return (precondition: ret < 0).
constexpr Err err_of(std::int64_t ret) { return static_cast<Err>(-ret); }

/// The error codes documented for open(2)/openat(2)/creat(2)/openat2(2),
/// in reverse-alphabetical order — exactly the x-axis of the paper's
/// Fig. 4 (27 codes following the "OK" column).
const std::vector<Err>& open_manpage_errors();

/// Every errno this library can produce, ascending by value.
const std::vector<Err>& all_errors();

}  // namespace iocov::abi
