#include "abi/seek.hpp"

namespace iocov::abi {

const std::vector<int>& seek_whence_values() {
    static const std::vector<int> kValues = {
        SEEK_SET_, SEEK_CUR_, SEEK_END_, SEEK_DATA_, SEEK_HOLE_};
    return kValues;
}

std::optional<std::string> seek_whence_name(int whence) {
    switch (whence) {
        case SEEK_SET_: return "SEEK_SET";
        case SEEK_CUR_: return "SEEK_CUR";
        case SEEK_END_: return "SEEK_END";
        case SEEK_DATA_: return "SEEK_DATA";
        case SEEK_HOLE_: return "SEEK_HOLE";
        default: return std::nullopt;
    }
}

}  // namespace iocov::abi
