// IOCT — the compact binary trace format.
//
// Text traces (text_format.hpp) are the compatibility format; IOCT is
// the throughput format.  Parsing a text line costs a per-event burst
// of small allocations (syscall name, arg names, unescaped strings) and
// dominates the analysis pipeline now that the analyzer itself runs at
// millions of events per second.  IOCT removes that cost structurally:
// every string (syscall names, arg names, pathnames, xattr keys) is
// interned once into a string table, and an event record is a handful
// of varints referencing it — decodable into a reusable scratch
// TraceEvent with no per-event allocation after warm-up.
//
// File layout (all integers little-endian; full spec in DESIGN.md §6):
//
//   header   16 bytes: "IOCT" magic, version, flags, reserved
//   records  a sequence of length-prefixed records:
//              u32 LE payload length, then payload = tag byte + body
//       0x01 STR     string-table entry; ids are implicit (0, 1, 2, ...
//                    in order of appearance), always defined before use
//       0x02 EVT     one TraceEvent: varint seq/pid/tid/name-id,
//                    zigzag ret, varint argc, then per arg a name-id,
//                    a type byte, and a varint/zigzag/string-id value
//       0x03 FOOTER  per-pid record counts (shard pre-sizing) + total;
//                    written last by BinarySink::finish()
//
// Because string definitions precede their first use and the footer is
// optional on read, a torn file (crashed tracer, truncated copy) still
// yields every intact prefix record; the reader drops the torn tail and
// reports it via `dropped`, mirroring parse_stream's semantics for
// malformed text lines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "host/io.hpp"

#include "trace/diagnostics.hpp"
#include "trace/event.hpp"
#include "trace/sink.hpp"

namespace iocov::trace {

// ---- format constants ------------------------------------------------------

inline constexpr char kIoctMagic[4] = {'I', 'O', 'C', 'T'};
inline constexpr std::uint8_t kIoctVersion = 1;
inline constexpr std::size_t kIoctHeaderSize = 16;

enum class IoctTag : std::uint8_t {
    Str = 0x01,     ///< string-table entry (implicit sequential id)
    Event = 0x02,   ///< one trace event
    Footer = 0x03,  ///< per-pid record counts; must be the last record
};

/// True if `data` begins with an IOCT header (magic + known version).
/// The 4-byte magic alone is what `iocov analyze` sniffs to autodetect
/// the format; version is checked so future majors are not misread.
bool is_ioct(std::string_view data);

/// Serializes the 16-byte header.
std::string ioct_header();

// ---- encoding --------------------------------------------------------------

/// Streaming IOCT encoder over an in-memory buffer.  Interns strings on
/// first use (emitting STR records inline) and appends EVT records;
/// `finish()` appends the footer.  BinarySink adapts this to a sink
/// with buffered ostream writes; tests and `iocov convert` use it
/// directly via encode_trace().
class BinaryWriter {
  public:
    BinaryWriter();

    /// Appends one event record (plus STR records for any new strings).
    void write_event(const TraceEvent& event);

    /// Appends the footer (per-pid event counts + total event count).
    /// Call exactly once, after the last event.
    void finish();

    /// The encoded bytes so far (header included from construction).
    const std::string& buffer() const { return buffer_; }
    std::string take_buffer() { return std::move(buffer_); }

    /// Clears the buffer (e.g. after flushing it to an ostream) without
    /// resetting the string table — subsequent records keep referencing
    /// previously emitted STR entries.
    void drain_buffer() { buffer_.clear(); }

    std::uint64_t events_written() const { return total_events_; }

  private:
    /// Transparent hash so intern() can probe with a string_view
    /// without materializing a std::string per lookup.
    struct StringHash {
        using is_transparent = void;
        std::size_t operator()(std::string_view s) const {
            return std::hash<std::string_view>{}(s);
        }
    };

    std::uint32_t intern(std::string_view s);

    std::string buffer_;
    std::unordered_map<std::string, std::uint32_t, StringHash,
                       std::equal_to<>>
        string_ids_;
    /// pid -> event-record count, for the footer's shard-pre-sizing
    /// index (sorted into the footer so identical traces encode
    /// identically).
    std::unordered_map<std::uint32_t, std::uint64_t> pid_counts_;
    std::uint64_t total_events_ = 0;
    bool finished_ = false;
};

/// One-shot convenience: encodes a whole trace (header + records +
/// footer) into a byte string.
std::string encode_trace(const std::vector<TraceEvent>& events);

/// TraceSink writing IOCT to an ostream with buffered writes (records
/// are accumulated and flushed in ~64 KiB slabs, not per event).  Call
/// finish() — or let the destructor — to flush and append the footer.
class BinarySink final : public TraceSink {
  public:
    explicit BinarySink(std::ostream& os);
    ~BinarySink() override;

    void emit(const TraceEvent& event) override;

    /// Flushes buffered records and writes the footer; idempotent.
    void finish();

  private:
    void flush_buffer();

    std::ostream& os_;
    BinaryWriter writer_;
    bool finished_ = false;
};

// ---- decoding --------------------------------------------------------------

/// Footer contents, when the file has one (a torn file may not).
struct IoctFooter {
    std::vector<std::pair<std::uint32_t, std::uint64_t>> pid_events;
    std::uint64_t total_events = 0;
};

/// Byte range of one EVT payload inside a scanned buffer, plus the pid
/// pre-decoded for sharding.  The offsets alias the scanned data.
struct EventRef {
    std::uint64_t offset = 0;  ///< payload start (after length prefix)
    std::uint32_t length = 0;  ///< payload length (tag byte included)
    std::uint32_t pid = 0;
};

/// Structural scan of a whole IOCT buffer: builds the string table
/// (views aliasing `data`), locates every EVT payload, and pre-decodes
/// each event's pid — everything the parallel pipeline needs to cut the
/// file into record-aligned shards without materializing any event.
/// Undecodable records (bad tag, torn tail, truncated varints) are
/// counted into `dropped` and skipped, like parse_stream's torn lines;
/// each drop is also recorded into `diags` with its byte offset and a
/// stable reason.
struct IoctScan {
    std::vector<std::string_view> strings;
    std::vector<EventRef> events;
    std::optional<IoctFooter> footer;
    std::size_t dropped = 0;
    bool header_ok = false;
    ParseDiagnostics diags;
};

IoctScan scan_ioct(std::string_view data);

/// Decodes one EVT payload (tag byte included) into `out`, resolving
/// string ids against `strings`.  Reuses `out`'s capacity — the decode
/// hot path allocates only when a string outgrows what the scratch
/// event already holds.  Returns false (leaving `out` unspecified) on
/// any malformed byte.  `name_id`, when non-null, receives the syscall
/// name's string-table id, letting callers pre-bind names (one
/// SyscallTable lookup per table entry instead of per event).  On
/// failure, `*reason` (when non-null) names the malformed field as a
/// static string — no allocation on the reject path.
bool decode_event(std::string_view payload,
                  const std::vector<std::string_view>& strings,
                  TraceEvent& out, std::uint32_t* name_id = nullptr,
                  const char** reason = nullptr);

/// One-shot convenience mirroring parse_stream(): decodes every intact
/// event record, counting undecodable ones into *dropped and recording
/// each into `diags` (when non-null) with its byte offset.
std::vector<TraceEvent> decode_trace(std::string_view data,
                                     std::size_t* dropped = nullptr,
                                     ParseDiagnostics* diags = nullptr);

// ---- batched decoding ------------------------------------------------------
//
// The per-event decode_event() path pays a virtual-free but still
// per-field-branchy cost per record.  The batched path decodes a span
// of records into a structure-of-arrays scratch (EventBatch) in one
// tight loop — tag and bounds checks hoisted, varints read via 8-byte
// SWAR/PEXT loads where the CPU allows — and defers all string
// materialization to EventScratch, which recycles heap capacity so the
// steady-state decode -> analyze loop performs zero allocations.

/// Arg-value type byte inside an EVT record (wire values).
enum class ArgType : std::uint8_t {
    Int = 0,   ///< zigzag varint
    Uint = 1,  ///< plain varint
    Str = 2,   ///< string-table id
};

/// One decoded argument: `raw` is the already-unzigzagged i64 bit
/// pattern (Int), the plain value (Uint), or a string-table id (Str).
struct BatchArg {
    std::uint64_t raw = 0;
    std::uint32_t name_id = 0;
    ArgType type = ArgType::Int;
};

/// One decoded event; args live at [arg_begin, arg_begin + arg_count)
/// in the owning EventBatch's `args`.
struct BatchRow {
    std::uint64_t seq = 0;
    std::int64_t ret = 0;
    std::size_t arg_begin = 0;
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    std::uint32_t name_id = 0;
    std::uint32_t arg_count = 0;
};

/// Reusable SoA scratch for decode_batch(); clear() keeps capacity so a
/// chunked decode loop allocates only while the high-water mark grows.
struct EventBatch {
    std::vector<BatchRow> rows;
    std::vector<BatchArg> args;

    void clear() {
        rows.clear();
        args.clear();
    }
};

/// Instruction-set variants of the batched decoder.  All are
/// bit-identical in accepted inputs, outputs, and diagnostics; Swar
/// (8-byte SWAR loads, any little-endian 64-bit target) and Bmi2
/// (x86-64 PEXT, selected by a runtime CPU check) are fast paths over
/// Scalar, the byte-at-a-time reference.
enum class DecodeIsa { Scalar, Swar, Bmi2 };

const char* decode_isa_name(DecodeIsa isa);
bool decode_isa_available(DecodeIsa isa);

/// The fastest ISA available on this machine — what decode_batch uses.
DecodeIsa active_decode_isa();

/// Batched decode of EVT payloads located by scan_ioct(): appends one
/// BatchRow per intact record to `out`, leaving every string as a
/// table id — no per-event materialization at all.  Undecodable refs
/// are counted into *dropped and recorded into `diags` with byte
/// offset and reason, matching decode_event()'s reason strings and
/// scan order exactly.  Returns the number of rows appended.  Callers
/// chunk large ref spans (and clear() the batch between chunks) to
/// bound scratch memory.
std::size_t decode_batch(std::string_view data,
                         const std::vector<std::string_view>& strings,
                         const EventRef* refs, std::size_t n,
                         EventBatch& out, std::size_t* dropped = nullptr,
                         ParseDiagnostics* diags = nullptr);

/// decode_batch pinned to one ISA (equivalence tests); an unavailable
/// ISA silently falls back to Scalar.
std::size_t decode_batch_with(DecodeIsa isa, std::string_view data,
                              const std::vector<std::string_view>& strings,
                              const EventRef* refs, std::size_t n,
                              EventBatch& out, std::size_t* dropped = nullptr,
                              ParseDiagnostics* diags = nullptr);

/// Materializes EventBatch rows into a reusable TraceEvent with
/// steady-state-zero allocation: arg-slot strings keep their heap
/// capacity across rows, and capacity displaced when a slot changes
/// type or the arg count shrinks is parked in a spare pool instead of
/// freed.  After warm-up (the high-water mark of arg counts and string
/// lengths) materialize() performs no heap allocation — asserted by
/// tests/test_batch_decode.cpp via the exec allocation-counting hook.
class EventScratch {
  public:
    /// Rebuilds the scratch event from `batch.rows[row]`.  The returned
    /// reference is valid until the next materialize() call.
    const TraceEvent& materialize(const EventBatch& batch, std::size_t row,
                                  const std::vector<std::string_view>& strings);

  private:
    void park(std::string& s);

    TraceEvent event_;
    std::vector<std::string> spare_;  ///< recycled heap capacities
};

// ---- file mapping ----------------------------------------------------------

/// Read-only view of a file, preferring mmap (zero-copy: the decoder's
/// string table aliases the page cache) with a plain read() fallback
/// for file systems that cannot map.  Move-only; unmaps on destruction.
///
/// The read() fallback goes through the host retry policy: EINTR and
/// EAGAIN are retried (bounded, with backoff) instead of aborting the
/// whole load, and every step consults host::FaultHook so self-fault
/// sweeps can exercise the tool's own read-error handling.  A file
/// that shrinks mid-read (read() hits EOF before the fstat'd size) is
/// NOT an error — the truncated view is returned with shrank() set, so
/// callers can tell "file shrank under us" (a torn-tail-tolerant
/// decode may still salvage a prefix) from "read error" (open returns
/// nullopt with the structured host::IoError).
class MappedFile {
  public:
    enum class Mode {
        Auto,      ///< mmap, falling back to read() on failure
        ReadCopy,  ///< force the read() path (benchmarks, odd fs)
    };

    /// Opens and maps `path`; nullopt if the file cannot be opened or
    /// read (with *err, when non-null, naming the failed phase —
    /// open/stat/read — and its errno).
    static std::optional<MappedFile> open(const std::string& path,
                                          Mode mode = Mode::Auto,
                                          host::IoError* err = nullptr);

    MappedFile(MappedFile&& other) noexcept;
    MappedFile& operator=(MappedFile&& other) noexcept;
    MappedFile(const MappedFile&) = delete;
    MappedFile& operator=(const MappedFile&) = delete;
    ~MappedFile();

    std::string_view data() const {
        return mapped_ ? std::string_view(static_cast<const char*>(mapped_),
                                          size_)
                       : std::string_view(copy_);
    }
    bool mmapped() const { return mapped_ != nullptr; }

    /// True when the read() fallback observed the file shrinking while
    /// it was being loaded: the view holds the bytes that still
    /// existed, which is shorter than the size fstat reported.
    bool shrank() const { return shrank_; }

  private:
    MappedFile() = default;

    void* mapped_ = nullptr;  ///< non-null when backed by mmap
    std::size_t size_ = 0;
    std::string copy_;        ///< read() fallback storage
    bool shrank_ = false;     ///< file shrank during the read() load
};

}  // namespace iocov::trace
