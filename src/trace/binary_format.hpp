// IOCT — the compact binary trace format.
//
// Text traces (text_format.hpp) are the compatibility format; IOCT is
// the throughput format.  Parsing a text line costs a per-event burst
// of small allocations (syscall name, arg names, unescaped strings) and
// dominates the analysis pipeline now that the analyzer itself runs at
// millions of events per second.  IOCT removes that cost structurally:
// every string (syscall names, arg names, pathnames, xattr keys) is
// interned once into a string table, and an event record is a handful
// of varints referencing it — decodable into a reusable scratch
// TraceEvent with no per-event allocation after warm-up.
//
// File layout (all integers little-endian; full spec in DESIGN.md §6):
//
//   header   16 bytes: "IOCT" magic, version, flags, reserved
//   records  a sequence of length-prefixed records:
//              u32 LE payload length, then payload = tag byte + body
//       0x01 STR     string-table entry; ids are implicit (0, 1, 2, ...
//                    in order of appearance), always defined before use
//       0x02 EVT     one TraceEvent: varint seq/pid/tid/name-id,
//                    zigzag ret, varint argc, then per arg a name-id,
//                    a type byte, and a varint/zigzag/string-id value
//       0x03 FOOTER  per-pid record counts (shard pre-sizing) + total;
//                    written last by BinarySink::finish()
//
// Because string definitions precede their first use and the footer is
// optional on read, a torn file (crashed tracer, truncated copy) still
// yields every intact prefix record; the reader drops the torn tail and
// reports it via `dropped`, mirroring parse_stream's semantics for
// malformed text lines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "trace/diagnostics.hpp"
#include "trace/event.hpp"
#include "trace/sink.hpp"

namespace iocov::trace {

// ---- format constants ------------------------------------------------------

inline constexpr char kIoctMagic[4] = {'I', 'O', 'C', 'T'};
inline constexpr std::uint8_t kIoctVersion = 1;
inline constexpr std::size_t kIoctHeaderSize = 16;

enum class IoctTag : std::uint8_t {
    Str = 0x01,     ///< string-table entry (implicit sequential id)
    Event = 0x02,   ///< one trace event
    Footer = 0x03,  ///< per-pid record counts; must be the last record
};

/// True if `data` begins with an IOCT header (magic + known version).
/// The 4-byte magic alone is what `iocov analyze` sniffs to autodetect
/// the format; version is checked so future majors are not misread.
bool is_ioct(std::string_view data);

/// Serializes the 16-byte header.
std::string ioct_header();

// ---- encoding --------------------------------------------------------------

/// Streaming IOCT encoder over an in-memory buffer.  Interns strings on
/// first use (emitting STR records inline) and appends EVT records;
/// `finish()` appends the footer.  BinarySink adapts this to a sink
/// with buffered ostream writes; tests and `iocov convert` use it
/// directly via encode_trace().
class BinaryWriter {
  public:
    BinaryWriter();

    /// Appends one event record (plus STR records for any new strings).
    void write_event(const TraceEvent& event);

    /// Appends the footer (per-pid event counts + total event count).
    /// Call exactly once, after the last event.
    void finish();

    /// The encoded bytes so far (header included from construction).
    const std::string& buffer() const { return buffer_; }
    std::string take_buffer() { return std::move(buffer_); }

    /// Clears the buffer (e.g. after flushing it to an ostream) without
    /// resetting the string table — subsequent records keep referencing
    /// previously emitted STR entries.
    void drain_buffer() { buffer_.clear(); }

    std::uint64_t events_written() const { return total_events_; }

  private:
    /// Transparent hash so intern() can probe with a string_view
    /// without materializing a std::string per lookup.
    struct StringHash {
        using is_transparent = void;
        std::size_t operator()(std::string_view s) const {
            return std::hash<std::string_view>{}(s);
        }
    };

    std::uint32_t intern(std::string_view s);

    std::string buffer_;
    std::unordered_map<std::string, std::uint32_t, StringHash,
                       std::equal_to<>>
        string_ids_;
    /// pid -> event-record count, for the footer's shard-pre-sizing
    /// index (sorted into the footer so identical traces encode
    /// identically).
    std::unordered_map<std::uint32_t, std::uint64_t> pid_counts_;
    std::uint64_t total_events_ = 0;
    bool finished_ = false;
};

/// One-shot convenience: encodes a whole trace (header + records +
/// footer) into a byte string.
std::string encode_trace(const std::vector<TraceEvent>& events);

/// TraceSink writing IOCT to an ostream with buffered writes (records
/// are accumulated and flushed in ~64 KiB slabs, not per event).  Call
/// finish() — or let the destructor — to flush and append the footer.
class BinarySink final : public TraceSink {
  public:
    explicit BinarySink(std::ostream& os);
    ~BinarySink() override;

    void emit(const TraceEvent& event) override;

    /// Flushes buffered records and writes the footer; idempotent.
    void finish();

  private:
    void flush_buffer();

    std::ostream& os_;
    BinaryWriter writer_;
    bool finished_ = false;
};

// ---- decoding --------------------------------------------------------------

/// Footer contents, when the file has one (a torn file may not).
struct IoctFooter {
    std::vector<std::pair<std::uint32_t, std::uint64_t>> pid_events;
    std::uint64_t total_events = 0;
};

/// Byte range of one EVT payload inside a scanned buffer, plus the pid
/// pre-decoded for sharding.  The offsets alias the scanned data.
struct EventRef {
    std::uint64_t offset = 0;  ///< payload start (after length prefix)
    std::uint32_t length = 0;  ///< payload length (tag byte included)
    std::uint32_t pid = 0;
};

/// Structural scan of a whole IOCT buffer: builds the string table
/// (views aliasing `data`), locates every EVT payload, and pre-decodes
/// each event's pid — everything the parallel pipeline needs to cut the
/// file into record-aligned shards without materializing any event.
/// Undecodable records (bad tag, torn tail, truncated varints) are
/// counted into `dropped` and skipped, like parse_stream's torn lines;
/// each drop is also recorded into `diags` with its byte offset and a
/// stable reason.
struct IoctScan {
    std::vector<std::string_view> strings;
    std::vector<EventRef> events;
    std::optional<IoctFooter> footer;
    std::size_t dropped = 0;
    bool header_ok = false;
    ParseDiagnostics diags;
};

IoctScan scan_ioct(std::string_view data);

/// Decodes one EVT payload (tag byte included) into `out`, resolving
/// string ids against `strings`.  Reuses `out`'s capacity — the decode
/// hot path allocates only when a string outgrows what the scratch
/// event already holds.  Returns false (leaving `out` unspecified) on
/// any malformed byte.  `name_id`, when non-null, receives the syscall
/// name's string-table id, letting callers pre-bind names (one
/// SyscallTable lookup per table entry instead of per event).  On
/// failure, `*reason` (when non-null) names the malformed field as a
/// static string — no allocation on the reject path.
bool decode_event(std::string_view payload,
                  const std::vector<std::string_view>& strings,
                  TraceEvent& out, std::uint32_t* name_id = nullptr,
                  const char** reason = nullptr);

/// One-shot convenience mirroring parse_stream(): decodes every intact
/// event record, counting undecodable ones into *dropped and recording
/// each into `diags` (when non-null) with its byte offset.
std::vector<TraceEvent> decode_trace(std::string_view data,
                                     std::size_t* dropped = nullptr,
                                     ParseDiagnostics* diags = nullptr);

// ---- file mapping ----------------------------------------------------------

/// Read-only view of a file, preferring mmap (zero-copy: the decoder's
/// string table aliases the page cache) with a plain read() fallback
/// for file systems that cannot map.  Move-only; unmaps on destruction.
class MappedFile {
  public:
    enum class Mode {
        Auto,      ///< mmap, falling back to read() on failure
        ReadCopy,  ///< force the read() path (benchmarks, odd fs)
    };

    /// Opens and maps `path`; nullopt if the file cannot be opened.
    static std::optional<MappedFile> open(const std::string& path,
                                          Mode mode = Mode::Auto);

    MappedFile(MappedFile&& other) noexcept;
    MappedFile& operator=(MappedFile&& other) noexcept;
    MappedFile(const MappedFile&) = delete;
    MappedFile& operator=(const MappedFile&) = delete;
    ~MappedFile();

    std::string_view data() const {
        return mapped_ ? std::string_view(static_cast<const char*>(mapped_),
                                          size_)
                       : std::string_view(copy_);
    }
    bool mmapped() const { return mapped_ != nullptr; }

  private:
    MappedFile() = default;

    void* mapped_ = nullptr;  ///< non-null when backed by mmap
    std::size_t size_ = 0;
    std::string copy_;        ///< read() fallback storage
};

}  // namespace iocov::trace
