// BMI2 (PEXT) instantiation of the batched varint decoder.
//
// This lives in its own translation unit compiled with -mbmi2 (see
// CMakeLists.txt) instead of using per-function target("bmi2")
// attributes: GCC will not inline a target-attributed callee into a
// plain caller, which would put a call instruction inside the
// innermost varint loop and erase the point of the exercise.  The TU
// is only ever entered through decode_batch_with() after a runtime
// __builtin_cpu_supports("bmi2") check, so the -mbmi2 code here cannot
// execute on a CPU without the instruction.
#include "trace/binary_format.hpp"

#if defined(IOCOV_HAVE_BMI2_TU)

#include <immintrin.h>

#include "trace/detail/varint_decode.hpp"

namespace iocov::trace::detail {
namespace {

struct Bmi2VarintReader {
    static bool read(const unsigned char*& p, const unsigned char* rec_end,
                     const unsigned char* buf_end, std::uint64_t& out) {
        // Same single-byte fast path as SwarVarintReader: the common
        // 7-bit varint skips the wide load entirely.
        if (p != rec_end && !(*p & 0x80)) {
            out = *p++;
            return true;
        }
        if (buf_end - p >= 8) {
            std::uint64_t chunk;
            std::memcpy(&chunk, p, 8);
            const std::uint64_t stop = ~chunk & 0x8080808080808080ULL;
            if (stop != 0) {
                const unsigned len =
                    (static_cast<unsigned>(std::countr_zero(stop)) >> 3) + 1;
                if (rec_end - p < static_cast<std::ptrdiff_t>(len))
                    return false;
                const std::uint64_t masked =
                    (chunk << (64 - 8 * len)) >> (64 - 8 * len);
                // PEXT gathers the 7 payload bits of each byte in one
                // instruction — the whole SWAR fold collapses.
                out = _pext_u64(masked, 0x7f7f7f7f7f7f7f7fULL);
                p += len;
                return true;
            }
        }
        return ScalarVarintReader::read(p, rec_end, buf_end, out);
    }
};

}  // namespace

std::size_t decode_refs_bmi2(std::string_view data, std::size_t string_count,
                             const EventRef* refs, std::size_t n,
                             EventBatch& out, std::size_t* dropped,
                             ParseDiagnostics* diags) {
    return decode_refs<Bmi2VarintReader>(data, string_count, refs, n, out,
                                         dropped, diags);
}

}  // namespace iocov::trace::detail

#endif  // IOCOV_HAVE_BMI2_TU
