#include "trace/binary_format.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstring>

#include "host/fault.hpp"
#include "trace/detail/varint_decode.hpp"

namespace iocov::trace {
namespace {

// Arg-value type bytes inside an EVT record (wire values of ArgType).
constexpr std::uint8_t kTypeInt = static_cast<std::uint8_t>(ArgType::Int);
constexpr std::uint8_t kTypeUint = static_cast<std::uint8_t>(ArgType::Uint);
constexpr std::uint8_t kTypeStr = static_cast<std::uint8_t>(ArgType::Str);

using detail::kMaxArgs;

constexpr std::size_t kSinkFlushBytes = 64 * 1024;

// --- varints (LEB128; zigzag for signed) ------------------------------------

void put_varint(std::string& out, std::uint64_t v) {
    while (v >= 0x80) {
        out.push_back(static_cast<char>(v | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

std::uint64_t zigzag(std::int64_t v) {
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) { return detail::unzigzag64(v); }

void put_u32le(std::string& out, std::uint32_t v) {
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
}

/// Bounds-checked forward reader over a payload.
struct ByteCursor {
    const unsigned char* p;
    const unsigned char* end;

    explicit ByteCursor(std::string_view s)
        : p(reinterpret_cast<const unsigned char*>(s.data())),
          end(p + s.size()) {}

    bool done() const { return p == end; }

    bool read_u8(std::uint8_t& out) {
        if (p == end) return false;
        out = *p++;
        return true;
    }

    bool read_varint(std::uint64_t& out) {
        // One definition of the varint grammar: the batched decoders
        // share this exact routine as their scalar reference/fallback.
        return detail::ScalarVarintReader::read(p, end, end, out);
    }
};

std::uint32_t read_u32le(const char* p) {
    const auto* u = reinterpret_cast<const unsigned char*>(p);
    return static_cast<std::uint32_t>(u[0]) |
           static_cast<std::uint32_t>(u[1]) << 8 |
           static_cast<std::uint32_t>(u[2]) << 16 |
           static_cast<std::uint32_t>(u[3]) << 24;
}

}  // namespace

bool is_ioct(std::string_view data) {
    return data.size() > 4 &&
           std::memcmp(data.data(), kIoctMagic, sizeof kIoctMagic) == 0 &&
           static_cast<std::uint8_t>(data[4]) == kIoctVersion;
}

std::string ioct_header() {
    std::string h(kIoctHeaderSize, '\0');
    std::memcpy(h.data(), kIoctMagic, sizeof kIoctMagic);
    h[4] = static_cast<char>(kIoctVersion);
    return h;
}

// ---- BinaryWriter ----------------------------------------------------------

BinaryWriter::BinaryWriter() : buffer_(ioct_header()) {}

std::uint32_t BinaryWriter::intern(std::string_view s) {
    auto it = string_ids_.find(s);
    if (it != string_ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(string_ids_.size());
    string_ids_.emplace(std::string(s), id);
    put_u32le(buffer_, static_cast<std::uint32_t>(1 + s.size()));
    buffer_.push_back(static_cast<char>(IoctTag::Str));
    buffer_.append(s);
    return id;
}

void BinaryWriter::write_event(const TraceEvent& event) {
    // Intern first: STR records must precede the EVT referencing them.
    const std::uint32_t name_id = intern(event.syscall);

    std::string payload;
    payload.push_back(static_cast<char>(IoctTag::Event));
    put_varint(payload, event.seq);
    put_varint(payload, event.pid);
    put_varint(payload, event.tid);
    put_varint(payload, name_id);
    put_varint(payload, zigzag(event.ret));
    put_varint(payload, event.args.size());
    for (const auto& arg : event.args) {
        put_varint(payload, intern(arg.name));
        if (const auto* i = std::get_if<std::int64_t>(&arg.value)) {
            payload.push_back(static_cast<char>(kTypeInt));
            put_varint(payload, zigzag(*i));
        } else if (const auto* u = std::get_if<std::uint64_t>(&arg.value)) {
            payload.push_back(static_cast<char>(kTypeUint));
            put_varint(payload, *u);
        } else {
            payload.push_back(static_cast<char>(kTypeStr));
            put_varint(payload,
                       intern(std::get<std::string>(arg.value)));
        }
    }
    put_u32le(buffer_, static_cast<std::uint32_t>(payload.size()));
    buffer_.append(payload);

    ++total_events_;
    ++pid_counts_[event.pid];
}

void BinaryWriter::finish() {
    if (finished_) return;
    finished_ = true;
    // Deterministic footer: identical traces encode identically.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> counts(
        pid_counts_.begin(), pid_counts_.end());
    std::sort(counts.begin(), counts.end());
    std::string payload;
    payload.push_back(static_cast<char>(IoctTag::Footer));
    put_varint(payload, counts.size());
    for (const auto& [pid, count] : counts) {
        put_varint(payload, pid);
        put_varint(payload, count);
    }
    put_varint(payload, total_events_);
    put_u32le(buffer_, static_cast<std::uint32_t>(payload.size()));
    buffer_.append(payload);
}

std::string encode_trace(const std::vector<TraceEvent>& events) {
    BinaryWriter w;
    for (const auto& ev : events) w.write_event(ev);
    w.finish();
    return w.take_buffer();
}

// ---- BinarySink ------------------------------------------------------------

BinarySink::BinarySink(std::ostream& os) : os_(os) {}

BinarySink::~BinarySink() { finish(); }

void BinarySink::emit(const TraceEvent& event) {
    writer_.write_event(event);
    if (writer_.buffer().size() >= kSinkFlushBytes) flush_buffer();
}

void BinarySink::finish() {
    if (finished_) return;
    finished_ = true;
    writer_.finish();
    flush_buffer();
    os_.flush();
}

void BinarySink::flush_buffer() {
    const auto& buf = writer_.buffer();
    os_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    writer_.drain_buffer();
}

// ---- decoding --------------------------------------------------------------

IoctScan scan_ioct(std::string_view data) {
    IoctScan scan;
    if (!is_ioct(data) || data.size() < kIoctHeaderSize) {
        if (!data.empty())
            scan.diags.record(0, 0, "not an IOCT file (bad magic/version)");
        return scan;
    }
    scan.header_ok = true;
    // ~20 bytes/record in practice; one up-front reserve beats a dozen
    // doubling copies on a multi-megabyte trace (over-estimate is freed
    // with the scan).
    scan.events.reserve(data.size() / 20 + 1);

    auto drop = [&scan](std::size_t offset, const char* reason) {
        ++scan.dropped;
        scan.diags.record(0, offset, reason);
    };

    // The event-header sniff below only needs seq/pid; the SWAR reader
    // is bit-identical to the scalar one, so use it whenever the target
    // is little-endian.  buf_end bounds the raw wide load (it may peek
    // past the record, never past the buffer).
    const auto* const scan_buf_end =
        reinterpret_cast<const unsigned char*>(data.data()) + data.size();
    auto read_header_varint = [scan_buf_end](const unsigned char*& p,
                                             const unsigned char* rec_end,
                                             std::uint64_t& out) {
        if constexpr (std::endian::native == std::endian::little)
            return detail::SwarVarintReader::read(p, rec_end, scan_buf_end,
                                                  out);
        else
            return detail::ScalarVarintReader::read(p, rec_end, scan_buf_end,
                                                    out);
    };

    std::size_t pos = kIoctHeaderSize;
    while (pos < data.size()) {
        const std::size_t record_start = pos;
        if (data.size() - pos < 4) {
            drop(record_start, "torn record length prefix");
            break;
        }
        const std::uint32_t len = read_u32le(data.data() + pos);
        pos += 4;
        if (len == 0 || len > data.size() - pos) {
            drop(record_start,
                 len == 0 ? "zero-length record"
                          : "record length exceeds remaining bytes");
            break;
        }
        const std::string_view payload = data.substr(pos, len);
        pos += len;
        switch (static_cast<IoctTag>(payload[0])) {
            case IoctTag::Str:
                scan.strings.push_back(payload.substr(1));
                break;
            case IoctTag::Event: {
                const auto* p = reinterpret_cast<const unsigned char*>(
                                    payload.data()) +
                                1;
                const auto* const rec_end =
                    reinterpret_cast<const unsigned char*>(payload.data()) +
                    payload.size();
                std::uint64_t seq = 0, pid = 0;
                if (!read_header_varint(p, rec_end, seq) ||
                    !read_header_varint(p, rec_end, pid) ||
                    pid > UINT32_MAX) {
                    drop(record_start, "truncated event header");
                    break;
                }
                scan.events.push_back(
                    {static_cast<std::uint64_t>(payload.data() -
                                                data.data()),
                     len, static_cast<std::uint32_t>(pid)});
                break;
            }
            case IoctTag::Footer: {
                ByteCursor c(payload.substr(1));
                IoctFooter footer;
                std::uint64_t n = 0;
                bool ok = c.read_varint(n) && n <= UINT32_MAX;
                for (std::uint64_t i = 0; ok && i < n; ++i) {
                    std::uint64_t pid = 0, count = 0;
                    ok = c.read_varint(pid) && pid <= UINT32_MAX &&
                         c.read_varint(count);
                    if (ok)
                        footer.pid_events.emplace_back(
                            static_cast<std::uint32_t>(pid), count);
                }
                ok = ok && c.read_varint(footer.total_events) && c.done();
                if (ok)
                    scan.footer = std::move(footer);
                else
                    drop(record_start, "malformed footer");
                break;
            }
            default:
                // Unknown tag; the length prefix lets us resync.
                drop(record_start, "unknown record tag");
                break;
        }
    }
    return scan;
}

bool decode_event(std::string_view payload,
                  const std::vector<std::string_view>& strings,
                  TraceEvent& out, std::uint32_t* name_id_out,
                  const char** reason) {
    auto fail = [&](const char* r) {
        if (reason) *reason = r;
        return false;
    };
    if (payload.empty() ||
        static_cast<IoctTag>(payload[0]) != IoctTag::Event)
        return fail("not an event record");
    ByteCursor c(payload.substr(1));

    std::uint64_t seq = 0, pid = 0, tid = 0, name_id = 0, ret = 0, argc = 0;
    if (!c.read_varint(seq) || !c.read_varint(pid) || pid > UINT32_MAX ||
        !c.read_varint(tid) || tid > UINT32_MAX)
        return fail("truncated event header");
    if (!c.read_varint(name_id) || name_id >= strings.size())
        return fail("syscall name id out of range");
    if (!c.read_varint(ret))
        return fail("truncated return value");
    if (!c.read_varint(argc) || argc > kMaxArgs)
        return fail("argument count out of range");

    out.seq = seq;
    out.pid = static_cast<std::uint32_t>(pid);
    out.tid = static_cast<std::uint32_t>(tid);
    out.syscall.assign(strings[name_id]);
    out.ret = unzigzag(ret);
    if (name_id_out) *name_id_out = static_cast<std::uint32_t>(name_id);

    out.args.resize(argc);
    for (auto& arg : out.args) {
        std::uint64_t arg_name = 0, v = 0;
        std::uint8_t type = 0;
        if (!c.read_varint(arg_name) || arg_name >= strings.size() ||
            !c.read_u8(type) || !c.read_varint(v))
            return fail("truncated or out-of-range argument");
        arg.name.assign(strings[arg_name]);
        switch (type) {
            case kTypeInt:
                arg.value = unzigzag(v);
                break;
            case kTypeUint:
                arg.value = v;
                break;
            case kTypeStr: {
                if (v >= strings.size())
                    return fail("argument string id out of range");
                // Reuse the scratch string's capacity when possible
                // (the variant may currently hold a number).
                if (auto* s = std::get_if<std::string>(&arg.value))
                    s->assign(strings[v]);
                else
                    arg.value.emplace<std::string>(strings[v]);
                break;
            }
            default:
                return fail("unknown argument type byte");
        }
    }
    if (!c.done()) return fail("trailing bytes after last argument");
    return true;
}

std::vector<TraceEvent> decode_trace(std::string_view data,
                                     std::size_t* dropped,
                                     ParseDiagnostics* diags) {
    const auto scan = scan_ioct(data);
    std::vector<TraceEvent> out;
    out.reserve(scan.events.size());
    std::size_t bad = scan.dropped;
    ParseDiagnostics decode_diags;
    for (const auto& ref : scan.events) {
        TraceEvent ev;
        const char* reason = "corrupt event record";
        if (decode_event(data.substr(ref.offset, ref.length), scan.strings,
                         ev, nullptr, &reason)) {
            out.push_back(std::move(ev));
        } else {
            ++bad;
            decode_diags.record(0, ref.offset, reason);
        }
    }
    if (diags) {
        // Merge (rather than record in place) so scan- and decode-stage
        // diagnostics interleave in offset order.
        diags->merge(scan.diags);
        diags->merge(decode_diags);
    }
    if (dropped) *dropped = bad;
    return out;
}

// ---- batched decoding ------------------------------------------------------

const char* decode_isa_name(DecodeIsa isa) {
    switch (isa) {
        case DecodeIsa::Scalar: return "scalar";
        case DecodeIsa::Swar: return "swar";
        case DecodeIsa::Bmi2: return "bmi2";
    }
    return "unknown";
}

bool decode_isa_available(DecodeIsa isa) {
    switch (isa) {
        case DecodeIsa::Scalar:
            return true;
        case DecodeIsa::Swar:
            // The 8-byte load + mask trick assumes little-endian byte
            // order; big-endian targets get the scalar path.
            return std::endian::native == std::endian::little;
        case DecodeIsa::Bmi2:
#if defined(IOCOV_HAVE_BMI2_TU)
            return __builtin_cpu_supports("bmi2") != 0;
#else
            return false;
#endif
    }
    return false;
}

DecodeIsa active_decode_isa() {
    static const DecodeIsa kActive = [] {
        if (decode_isa_available(DecodeIsa::Bmi2)) return DecodeIsa::Bmi2;
        if (decode_isa_available(DecodeIsa::Swar)) return DecodeIsa::Swar;
        return DecodeIsa::Scalar;
    }();
    return kActive;
}

std::size_t decode_batch_with(DecodeIsa isa, std::string_view data,
                              const std::vector<std::string_view>& strings,
                              const EventRef* refs, std::size_t n,
                              EventBatch& out, std::size_t* dropped,
                              ParseDiagnostics* diags) {
    if (!decode_isa_available(isa)) isa = DecodeIsa::Scalar;
    switch (isa) {
        case DecodeIsa::Swar:
            return detail::decode_refs<detail::SwarVarintReader>(
                data, strings.size(), refs, n, out, dropped, diags);
        case DecodeIsa::Bmi2:
#if defined(IOCOV_HAVE_BMI2_TU)
            return detail::decode_refs_bmi2(data, strings.size(), refs, n,
                                            out, dropped, diags);
#else
            break;
#endif
        case DecodeIsa::Scalar:
            break;
    }
    return detail::decode_refs<detail::ScalarVarintReader>(
        data, strings.size(), refs, n, out, dropped, diags);
}

std::size_t decode_batch(std::string_view data,
                         const std::vector<std::string_view>& strings,
                         const EventRef* refs, std::size_t n, EventBatch& out,
                         std::size_t* dropped, ParseDiagnostics* diags) {
    return decode_batch_with(active_decode_isa(), data, strings, refs, n,
                             out, dropped, diags);
}

// ---- EventScratch ----------------------------------------------------------

void EventScratch::park(std::string& s) {
    // Only heap capacity is worth recycling; SSO strings cost nothing
    // to recreate.  The pool is bounded — past that, freeing is fine
    // because a workload cycling that many distinct string slots is
    // re-growing anyway.
    static const std::size_t kSsoCapacity = std::string().capacity();
    if (s.capacity() > kSsoCapacity && spare_.size() < 64)
        spare_.push_back(std::move(s));
}

const TraceEvent& EventScratch::materialize(
    const EventBatch& batch, std::size_t row,
    const std::vector<std::string_view>& strings) {
    const BatchRow& r = batch.rows[row];
    event_.seq = r.seq;
    event_.pid = r.pid;
    event_.tid = r.tid;
    event_.ret = r.ret;
    event_.syscall.assign(strings[r.name_id]);

    if (event_.args.size() > r.arg_count) {
        // Shrinking destroys slots; salvage their heap capacity first.
        for (std::size_t i = r.arg_count; i < event_.args.size(); ++i) {
            park(event_.args[i].name);
            if (auto* s = std::get_if<std::string>(&event_.args[i].value))
                park(*s);
        }
        event_.args.resize(r.arg_count);
    } else if (event_.args.size() < r.arg_count) {
        event_.args.resize(r.arg_count);
    }

    for (std::size_t i = 0; i < r.arg_count; ++i) {
        const BatchArg& ba = batch.args[r.arg_begin + i];
        Arg& arg = event_.args[i];
        arg.name.assign(strings[ba.name_id]);
        switch (ba.type) {
            case ArgType::Int:
                if (auto* s = std::get_if<std::string>(&arg.value))
                    park(*s);
                arg.value.emplace<std::int64_t>(
                    static_cast<std::int64_t>(ba.raw));
                break;
            case ArgType::Uint:
                if (auto* s = std::get_if<std::string>(&arg.value))
                    park(*s);
                arg.value.emplace<std::uint64_t>(ba.raw);
                break;
            case ArgType::Str: {
                const std::string_view sv =
                    strings[static_cast<std::size_t>(ba.raw)];
                if (auto* s = std::get_if<std::string>(&arg.value)) {
                    s->assign(sv);
                } else if (!spare_.empty()) {
                    std::string recycled = std::move(spare_.back());
                    spare_.pop_back();
                    recycled.assign(sv);
                    arg.value.emplace<std::string>(std::move(recycled));
                } else {
                    arg.value.emplace<std::string>(sv);
                }
                break;
            }
        }
    }
    return event_;
}

// ---- MappedFile ------------------------------------------------------------

std::optional<MappedFile> MappedFile::open(const std::string& path,
                                           Mode mode,
                                           host::IoError* err) {
    const auto policy = host::RetryPolicy::standard();
    const auto fail = [&](host::IoPhase phase, int fd,
                          unsigned retries) -> std::optional<MappedFile> {
        if (err) *err = {phase, errno, path, retries};
        if (fd >= 0) ::close(fd);
        return std::nullopt;
    };

    // open() with bounded EINTR retry (+ self-fault consultation).
    int fd = -1;
    unsigned retries = 0;
    for (;;) {
        int injected = 0;
        if (host::FaultHook::active())
            injected =
                host::FaultHook::consult(host::IoPhase::Open).inject_errno;
        fd = injected ? (errno = injected, -1)
                      : ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
        if (fd >= 0) break;
        if (!host::transient_errno(errno) || retries >= policy.max_retries)
            return fail(host::IoPhase::Open, -1, retries);
        ++retries;
    }
    {
        // fstat() with the same bounded transient retry: an EINTR here
        // would otherwise hard-fail the whole load one syscall in.
        struct stat st{};
        retries = 0;
        for (;;) {
            int injected = 0;
            if (host::FaultHook::active())
                injected = host::FaultHook::consult(host::IoPhase::Stat)
                               .inject_errno;
            const bool bad = injected ? (errno = injected, true)
                                      : ::fstat(fd, &st) != 0;
            if (!bad && st.st_size < 0) {
                errno = EINVAL;  // nonsense size: not retryable
                return fail(host::IoPhase::Stat, fd, retries);
            }
            if (!bad) break;
            if (!host::transient_errno(errno) ||
                retries >= policy.max_retries)
                return fail(host::IoPhase::Stat, fd, retries);
            ++retries;
        }

        const auto size = static_cast<std::size_t>(st.st_size);
        MappedFile mf;
        if (mode == Mode::Auto && size > 0) {
            void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
            if (p != MAP_FAILED) {
                mf.mapped_ = p;
                mf.size_ = size;
                ::close(fd);
                return mf;
            }
        }
        // read() fallback (and the ReadCopy benchmark mode).  EINTR /
        // EAGAIN are transient: retry them (bounded, with the standard
        // policy) instead of abandoning a multi-GB load at the last
        // page.  A true EOF before the fstat'd size means the file
        // shrank under us — keep what still existed and say so via
        // shrank(), distinct from a read *error* which fails the open.
        mf.copy_.resize(size);
        std::size_t got = 0;
        retries = 0;
        while (got < size) {
            std::size_t want = size - got;
            int injected_read = 0;
            bool forced_eof = false;
            if (host::FaultHook::active()) {
                const auto a =
                    host::FaultHook::consult(host::IoPhase::Read);
                injected_read = a.inject_errno;
                forced_eof = a.eof;
                want = std::min(want, a.clamp_bytes);
            }
            const ssize_t n =
                forced_eof ? 0
                : injected_read
                    ? (errno = injected_read, ssize_t{-1})
                    : ::read(fd, mf.copy_.data() + got, want);
            if (n < 0) {
                if (host::transient_errno(errno) &&
                    retries < policy.max_retries) {
                    ++retries;
                    continue;
                }
                return fail(host::IoPhase::Read, fd, retries);
            }
            if (n == 0) {
                mf.shrank_ = true;
                break;  // shrank mid-read; keep what we have
            }
            got += static_cast<std::size_t>(n);
        }
        mf.copy_.resize(got);
        ::close(fd);
        return mf;
    }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : mapped_(other.mapped_),
      size_(other.size_),
      copy_(std::move(other.copy_)),
      shrank_(other.shrank_) {
    other.mapped_ = nullptr;
    other.size_ = 0;
    other.shrank_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
    if (this != &other) {
        if (mapped_) ::munmap(mapped_, size_);
        mapped_ = other.mapped_;
        size_ = other.size_;
        copy_ = std::move(other.copy_);
        shrank_ = other.shrank_;
        other.mapped_ = nullptr;
        other.size_ = 0;
        other.shrank_ = false;
    }
    return *this;
}

MappedFile::~MappedFile() {
    if (mapped_) ::munmap(mapped_, size_);
}

}  // namespace iocov::trace
