#include "trace/sink.hpp"

#include "trace/text_format.hpp"

namespace iocov::trace {

void TextSink::emit(const TraceEvent& event) {
    os_ << format_event(event) << '\n';
}

}  // namespace iocov::trace
