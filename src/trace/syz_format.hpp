// Syzkaller program parser — the paper's future-work fuzzer front end.
//
// Syzkaller logs syscalls as declarative program lines rather than a
// kernel trace:
//
//     r0 = openat(0xffffffffffffff9c, &(0x7f0000000000)='./file0\x00',
//                 0x42, 0x1ff)
//     write(r0, &(0x7f0000000040), 0x1000)
//     close(r0)
//
// This parser turns such programs into TraceEvents so the IOCov
// analyzer can measure a fuzzer's *input* coverage.  Syzkaller programs
// carry no return values (they describe what to execute, not what
// happened), so parsed events are marked input-only: the analyzer
// counts their argument partitions but not output partitions.
//
// Supported subset (enough for the fs-syscall corpus):
//   * resource results:      r3 = open(...)
//   * resource references:   read(r3, ...)     -> a synthetic fd number
//   * numeric constants:     0x42, 42, AUTO (-> 0)
//   * pointer-to-data args:  &(0x7f0000000000)='lit\x00'  -> the string
//   *                        &(0x7f0000000000)=... (blob) -> elided
//   * nil pointers:          0x0 in a pointer position     -> <fault>
//   * trailing comments and blank lines
#pragma once

#include <istream>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/event.hpp"

namespace iocov::trace {

struct SyzParseStats {
    std::size_t lines = 0;
    std::size_t parsed = 0;
    std::size_t skipped = 0;  ///< blank/comment/unsupported lines
};

/// Parses one syzkaller program line.  Returns nullopt for lines that
/// are not syscall invocations (blank, comments) or are malformed.
/// `resources` maps resource names (r0, r1, ...) to synthetic fd
/// numbers and is updated when the line assigns a result.
std::optional<TraceEvent> parse_syz_line(
    std::string_view line, std::vector<std::string>* resources);

/// Parses a whole syzkaller program/log. Events are numbered in
/// sequence; pid defaults to 1 (syz programs are single-threaded unless
/// annotated, and annotations are out of scope).
std::vector<TraceEvent> parse_syz_program(std::istream& in,
                                          SyzParseStats* stats = nullptr);

/// True if this event came from a syz program (its `ret` is a
/// placeholder, not an observed result).  Encoded as ret ==
/// kSyzNoReturn; the analyzer checks this to skip output coverage.
inline constexpr std::int64_t kSyzNoReturn =
    std::numeric_limits<std::int64_t>::min();
inline bool is_input_only(const TraceEvent& ev) {
    return ev.ret == kSyzNoReturn;
}

}  // namespace iocov::trace
