// Structured parse diagnostics for trace ingestion.
//
// Both trace decoders (text lines, IOCT records) tolerate corruption by
// skipping what they cannot parse.  A bare drop counter says *that*
// input was lost but not *where* or *why* — useless when a 10 GiB
// trace produces "dropped: 3".  ParseDiagnostics records every drop
// with its position and a stable reason string, retaining the first K
// verbatim (a corrupt region usually repeats one failure mode; the
// first few entries identify it) while still counting the rest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace iocov::trace {

/// One skipped piece of input.
struct ParseDiagnostic {
    /// 1-based line number for text input; 0 for binary records.
    std::uint64_t line = 0;
    /// Byte offset of the offending line/record from the start of the
    /// input.
    std::uint64_t offset = 0;
    /// Stable, human-readable failure reason ("bad sequence number",
    /// "unknown record tag", ...).
    std::string reason;
    /// Leading bytes of the offending input (empty for binary records).
    std::string excerpt;
};

/// Bounded accumulator: counts every drop, retains the first
/// `max_retained` diagnostics in input order.
class ParseDiagnostics {
  public:
    static constexpr std::size_t kDefaultMaxRetained = 16;
    /// Excerpts are clipped to this many bytes.
    static constexpr std::size_t kExcerptBytes = 48;

    explicit ParseDiagnostics(std::size_t max_retained = kDefaultMaxRetained)
        : max_retained_(max_retained) {}

    void record(std::uint64_t line, std::uint64_t offset,
                std::string_view reason, std::string_view excerpt = {});

    /// Folds another accumulator in (parallel shards each keep their
    /// own).  Entries are re-sorted by (line, offset) and re-truncated,
    /// so merging per-shard diagnostics yields exactly the entries the
    /// serial pass would have retained: each shard covers a disjoint
    /// input range and retains at least `max_retained` of its own, so
    /// every candidate for the global first K survives until the merge.
    void merge(const ParseDiagnostics& other);

    /// Total drops recorded, including those beyond the retention cap.
    std::uint64_t total() const { return total_; }

    /// Counts `n` additional drops without retaining entries.  Used
    /// when folding a per-file accumulator whose overflow beyond its
    /// own retention cap has no entries left to re-record.
    void count_only(std::uint64_t n) { total_ += n; }

    /// First-K retained diagnostics, in input order.
    const std::vector<ParseDiagnostic>& entries() const { return entries_; }

    std::size_t max_retained() const { return max_retained_; }

    void clear() {
        entries_.clear();
        total_ = 0;
    }

    /// Multi-line summary: one line per retained entry plus an
    /// "... and N more" tail when drops exceeded the retention cap.
    std::string to_string() const;

  private:
    std::size_t max_retained_;
    std::vector<ParseDiagnostic> entries_;
    std::uint64_t total_ = 0;
};

}  // namespace iocov::trace
