#include "trace/filter.hpp"

#include <algorithm>

namespace iocov::trace {
namespace {

constexpr std::int64_t kAtFdCwd = -100;

bool is_open_family(const std::string& name) {
    return name == "open" || name == "openat" || name == "creat" ||
           name == "openat2";
}

bool returns_watchable_fd(const TraceEvent& ev) {
    return is_open_family(ev.syscall) && ev.ok();
}

}  // namespace

FilterConfig FilterConfig::mount_point(const std::string& mount) {
    FilterConfig cfg;
    // Match the mount point itself and anything beneath it.  The mount
    // string is escaped naively (sufficient for conventional mount paths).
    std::string escaped;
    for (char ch : mount) {
        if (std::string("\\^$.|?*+()[]{}").find(ch) != std::string::npos)
            escaped += '\\';
        escaped += ch;
    }
    cfg.include.push_back("^" + escaped + "(/.*)?$");
    return cfg;
}

FilterConfig FilterConfig::mount_point_prefix(const std::string& mount) {
    FilterConfig cfg;
    cfg.include_prefixes.push_back(mount);
    return cfg;
}

TraceFilter::TraceFilter(const FilterConfig& config)
    : prefixes_(config.include_prefixes) {
    for (const auto& pat : config.include)
        include_.emplace_back(pat, std::regex::extended);
    for (const auto& pat : config.exclude)
        exclude_.emplace_back(pat, std::regex::extended);
}

bool TraceFilter::path_in_scope(const std::string& path) const {
    auto matches_any = [&](const std::vector<std::regex>& pats) {
        return std::any_of(pats.begin(), pats.end(), [&](const std::regex& re) {
            return std::regex_match(path, re);
        });
    };
    bool included = false;
    for (const auto& prefix : prefixes_) {
        if (path.size() >= prefix.size() &&
            path.compare(0, prefix.size(), prefix) == 0 &&
            (path.size() == prefix.size() || path[prefix.size()] == '/')) {
            included = true;
            break;
        }
    }
    if (!included && !matches_any(include_)) return false;
    return !matches_any(exclude_);
}

bool TraceFilter::admit(const TraceEvent& event) {
    const auto pid = event.pid;
    auto& watched = watched_[pid];

    // Pointer into the event, not a str_arg() copy: admit() sits on the
    // ingest hot path and must not allocate per event.
    const std::string* path = nullptr;
    if (const Arg* a = event.find_arg("pathname"))
        path = std::get_if<std::string>(&a->value);

    // Resolve whether a (dfd, pathname) pair is in scope.
    auto lookup_in_scope = [&](const std::string* p,
                               std::optional<std::int64_t> dfd) {
        if (p && !p->empty() && p->front() == '/')
            return path_in_scope(*p);
        // Relative path: scope comes from the directory it resolves
        // against — a watched dfd, or the pid's cwd for AT_FDCWD.
        if (dfd && *dfd != kAtFdCwd) return watched.contains(*dfd);
        auto it = cwd_in_scope_.find(pid);
        return it != cwd_in_scope_.end() && it->second;
    };

    bool in_scope = false;
    if (path) {
        in_scope = lookup_in_scope(path, event.int_arg("dfd"));
    } else if (auto fd = event.int_arg("fd")) {
        in_scope = watched.contains(*fd);
    }

    // State updates, in trace order.
    if (event.syscall == "chdir" && event.ok()) {
        if (path) cwd_in_scope_[pid] = lookup_in_scope(path, std::nullopt);
    } else if (event.syscall == "fchdir" && event.ok()) {
        if (auto fd = event.int_arg("fd"))
            cwd_in_scope_[pid] = watched.contains(*fd);
    } else if (returns_watchable_fd(event)) {
        if (in_scope) watched.insert(event.ret);
    } else if (event.syscall == "close" && event.ok()) {
        if (auto fd = event.int_arg("fd")) watched.erase(*fd);
    }

    return in_scope;
}

std::vector<TraceEvent> TraceFilter::filter(
    const std::vector<TraceEvent>& events) {
    reset();
    std::vector<TraceEvent> kept;
    kept.reserve(events.size());
    for (const auto& ev : events)
        if (admit(ev)) kept.push_back(ev);
    return kept;
}

void TraceFilter::reset() {
    watched_.clear();
    cwd_in_scope_.clear();
}

std::size_t TraceFilter::watched_fd_count() const {
    std::size_t n = 0;
    for (const auto& [pid, fds] : watched_) n += fds.size();
    return n;
}

}  // namespace iocov::trace
