#include "trace/text_format.hpp"

#include <charconv>
#include <cstdio>

namespace iocov::trace {
namespace {

// --- tiny recursive-descent helpers over a string_view cursor ---------

struct Cursor {
    std::string_view rest;

    bool consume(std::string_view token) {
        if (rest.substr(0, token.size()) != token) return false;
        rest.remove_prefix(token.size());
        return true;
    }

    void skip_spaces() {
        while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    }

    /// Consumes characters until one of `stops` or end; returns them.
    std::string_view take_until(std::string_view stops) {
        std::size_t i = 0;
        while (i < rest.size() && stops.find(rest[i]) == std::string_view::npos)
            ++i;
        auto out = rest.substr(0, i);
        rest.remove_prefix(i);
        return out;
    }
};

template <typename T>
std::optional<T> parse_number(std::string_view s, int base = 10) {
    T value{};
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value, base);
    // Both failure modes drop the line: result_out_of_range for fields
    // that overflow T (an over-long number in a torn trace must never
    // wrap into a plausible value), invalid_argument / trailing bytes
    // for non-numeric garbage.
    if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
    return value;
}

std::optional<ArgValue> parse_value(Cursor& c, const char** reason) {
    auto fail = [&](const char* r) -> std::nullopt_t {
        if (reason) *reason = r;
        return std::nullopt;
    };
    if (c.rest.empty()) return fail("missing argument value");
    if (c.rest.front() == '"') {
        c.rest.remove_prefix(1);
        std::string raw;
        while (!c.rest.empty() && c.rest.front() != '"') {
            if (c.rest.front() == '\\') {
                if (c.rest.size() < 2)
                    return fail("truncated escape sequence");
                raw += c.rest.substr(0, 2);
                c.rest.remove_prefix(2);
            } else {
                raw += c.rest.front();
                c.rest.remove_prefix(1);
            }
        }
        if (!c.consume("\"")) return fail("unterminated string value");
        auto unescaped = unescape_string(raw);
        if (!unescaped) return fail("invalid escape sequence");
        return ArgValue{std::move(*unescaped)};
    }
    auto token = c.take_until(", =");
    if (token.starts_with("0x")) {
        auto u = parse_number<std::uint64_t>(token.substr(2), 16);
        if (!u) return fail("bad hex argument value");
        return ArgValue{*u};
    }
    auto i = parse_number<std::int64_t>(token);
    if (!i) return fail("bad numeric argument value");
    return ArgValue{*i};
}

}  // namespace

std::string escape_string(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += ch;
        }
    }
    return out;
}

std::optional<std::string> unescape_string(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\') {
            out += s[i];
            continue;
        }
        if (++i == s.size()) return std::nullopt;
        switch (s[i]) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            default: return std::nullopt;
        }
    }
    return out;
}

std::string format_event(const TraceEvent& event) {
    char head[96];
    std::snprintf(head, sizeof head, "[%09llu] pid=%u tid=%u %s:",
                  static_cast<unsigned long long>(event.seq), event.pid,
                  event.tid, event.syscall.c_str());
    std::string out = head;
    bool first = true;
    for (const auto& arg : event.args) {
        out += first ? " " : ", ";
        first = false;
        out += arg.name;
        out += '=';
        if (const auto* i = std::get_if<std::int64_t>(&arg.value)) {
            out += std::to_string(*i);
        } else if (const auto* u = std::get_if<std::uint64_t>(&arg.value)) {
            char buf[24];
            std::snprintf(buf, sizeof buf, "0x%llx",
                          static_cast<unsigned long long>(*u));
            out += buf;
        } else {
            out += '"';
            out += escape_string(std::get<std::string>(arg.value));
            out += '"';
        }
    }
    out += " = ";
    out += std::to_string(event.ret);
    return out;
}

std::optional<TraceEvent> parse_event(std::string_view line,
                                      const char** reason) {
    Cursor c{line};
    TraceEvent ev;
    auto fail = [&](const char* r) -> std::nullopt_t {
        if (reason) *reason = r;
        return std::nullopt;
    };

    if (!c.consume("[")) return fail("missing '[seq]' header");
    auto seq = parse_number<std::uint64_t>(c.take_until("]"));
    if (!seq || !c.consume("]")) return fail("bad sequence number");
    ev.seq = *seq;

    c.skip_spaces();
    if (!c.consume("pid=")) return fail("missing pid field");
    auto pid = parse_number<std::uint32_t>(c.take_until(" "));
    if (!pid) return fail("bad pid");
    ev.pid = *pid;

    c.skip_spaces();
    if (!c.consume("tid=")) return fail("missing tid field");
    auto tid = parse_number<std::uint32_t>(c.take_until(" "));
    if (!tid) return fail("bad tid");
    ev.tid = *tid;

    c.skip_spaces();
    auto name = c.take_until(":");
    if (name.empty() || !c.consume(":")) return fail("missing syscall name");
    ev.syscall = std::string(name);

    // Arguments until the " = ret" tail.
    for (;;) {
        c.skip_spaces();
        if (c.rest.starts_with("= ")) break;  // no more args
        auto arg_name = c.take_until("=");
        if (arg_name.empty() || !c.consume("="))
            return fail("missing argument name");
        auto value = parse_value(c, reason);
        if (!value) return std::nullopt;  // parse_value set the reason
        ev.args.push_back({std::string(arg_name), std::move(*value)});
        c.skip_spaces();
        if (c.consume(",")) continue;
        if (c.rest.starts_with("= ")) break;
        return fail("malformed argument separator");
    }
    if (!c.consume("= ")) return fail("missing '= ret' tail");
    auto ret = parse_number<std::int64_t>(c.take_until(" "));
    if (!ret) return fail("bad return value");
    ev.ret = *ret;
    c.skip_spaces();
    if (!c.rest.empty()) return fail("trailing bytes after return value");
    return ev;
}

std::vector<std::string_view> split_line_chunks(std::string_view text,
                                                std::size_t n_chunks) {
    std::vector<std::string_view> chunks;
    if (text.empty() || n_chunks == 0) return chunks;
    chunks.reserve(n_chunks);
    const std::size_t target = text.size() / n_chunks + 1;
    std::size_t begin = 0;
    while (begin < text.size() && chunks.size() + 1 < n_chunks) {
        std::size_t end = begin + target;
        if (end >= text.size()) break;
        // Extend to the end of the current line.
        end = text.find('\n', end);
        if (end == std::string_view::npos) break;
        chunks.push_back(text.substr(begin, end + 1 - begin));
        begin = end + 1;
    }
    if (begin < text.size()) chunks.push_back(text.substr(begin));
    return chunks;
}

std::vector<TraceEvent> parse_chunk(std::string_view chunk,
                                    std::size_t* dropped,
                                    ParseDiagnostics* diags,
                                    std::uint64_t first_line,
                                    std::uint64_t base_offset) {
    std::vector<TraceEvent> out;
    if (dropped) *dropped = 0;
    // Lines average ~80 bytes in this format; reserve a conservative
    // estimate to avoid repeated growth during the parallel parse.
    out.reserve(chunk.size() / 96 + 1);
    std::uint64_t line_no = first_line;
    std::uint64_t offset = base_offset;
    while (!chunk.empty()) {
        std::size_t eol = chunk.find('\n');
        std::string_view line = chunk.substr(0, eol);
        const std::size_t consumed =
            eol == std::string_view::npos ? chunk.size() : eol + 1;
        chunk.remove_prefix(consumed);
        const std::uint64_t line_offset = offset;
        offset += consumed;
        const std::uint64_t this_line = line_no++;
        if (line.empty() || line[0] == '#') continue;
        const char* reason = "malformed line";
        if (auto ev = parse_event(line, &reason)) {
            out.push_back(std::move(*ev));
        } else {
            if (dropped) ++*dropped;
            if (diags) diags->record(this_line, line_offset, reason, line);
        }
    }
    return out;
}

std::vector<TraceEvent> parse_stream(std::istream& in, std::size_t* dropped,
                                     ParseDiagnostics* diags) {
    std::vector<TraceEvent> out;
    if (dropped) *dropped = 0;
    std::string line;
    std::uint64_t line_no = 0;
    std::uint64_t offset = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::uint64_t line_offset = offset;
        offset += line.size() + 1;  // getline consumed the '\n'
        if (line.empty() || line[0] == '#') continue;
        const char* reason = "malformed line";
        if (auto ev = parse_event(line, &reason)) {
            out.push_back(std::move(*ev));
        } else {
            if (dropped) ++*dropped;
            if (diags) diags->record(line_no, line_offset, reason, line);
        }
    }
    return out;
}

}  // namespace iocov::trace
