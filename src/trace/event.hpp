// Syscall trace events — the substrate replacing LTTng.
//
// The simulated syscall layer emits one TraceEvent per call; the IOCov
// analyzer consumes a stream of them.  An event carries the syscall
// *variant* name ("openat", not "open"), typed arguments, and the raw
// kernel-convention return value (>= 0 success, -errno failure).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace iocov::trace {

/// A traced argument value.  Signed for fds/offsets/whence, unsigned for
/// flags/modes/sizes, string for pathnames and xattr names.
using ArgValue = std::variant<std::int64_t, std::uint64_t, std::string>;

struct Arg {
    std::string name;
    ArgValue value;

    friend bool operator==(const Arg&, const Arg&) = default;
};

/// One traced system call.
struct TraceEvent {
    std::uint64_t seq = 0;  ///< Monotonic sequence number within a buffer.
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    std::string syscall;    ///< Variant name as invoked (e.g. "pwrite64").
    std::vector<Arg> args;  ///< In prototype order.
    std::int64_t ret = 0;   ///< >= 0 success; < 0 is -errno.

    bool ok() const { return ret >= 0; }

    /// Argument lookup by name; nullopt if the syscall has no such arg.
    const Arg* find_arg(std::string_view name) const;

    /// Typed accessors; nullopt when missing or of a different type
    /// (signed/unsigned are interconvertible for convenience).
    std::optional<std::int64_t> int_arg(std::string_view name) const;
    std::optional<std::uint64_t> uint_arg(std::string_view name) const;
    std::optional<std::string> str_arg(std::string_view name) const;

    friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

}  // namespace iocov::trace
