#include "trace/syz_format.hpp"

#include <charconv>
#include <cstdlib>

namespace iocov::trace {
namespace {

// ---- per-syscall argument signatures ---------------------------------------
//
// Prefixes: "i:" signed int arg, "u:" unsigned arg, "s:" string arg
// (pointer to pathname/name), "-" skipped (data buffers), "o:" an
// open_how struct (expands to flags/mode/resolve).

struct SyzSig {
    const char* name;
    std::vector<const char*> args;
};

const std::vector<SyzSig>& signatures() {
    static const std::vector<SyzSig> kSigs = {
        {"open", {"s:pathname", "u:flags", "u:mode"}},
        {"openat", {"i:dfd", "s:pathname", "u:flags", "u:mode"}},
        {"creat", {"s:pathname", "u:mode"}},
        {"openat2", {"i:dfd", "s:pathname", "o:how", "u:usize"}},
        {"read", {"i:fd", "-", "u:count"}},
        {"pread64", {"i:fd", "-", "u:count", "i:pos"}},
        {"readv", {"i:fd", "-", "u:vlen"}},
        {"write", {"i:fd", "-", "u:count"}},
        {"pwrite64", {"i:fd", "-", "u:count", "i:pos"}},
        {"writev", {"i:fd", "-", "u:vlen"}},
        {"lseek", {"i:fd", "i:offset", "i:whence"}},
        {"truncate", {"s:pathname", "i:length"}},
        {"ftruncate", {"i:fd", "i:length"}},
        {"mkdir", {"s:pathname", "u:mode"}},
        {"mkdirat", {"i:dfd", "s:pathname", "u:mode"}},
        {"chmod", {"s:pathname", "u:mode"}},
        {"fchmod", {"i:fd", "u:mode"}},
        {"fchmodat", {"i:dfd", "s:pathname", "u:mode", "u:flags"}},
        {"close", {"i:fd"}},
        {"chdir", {"s:pathname"}},
        {"fchdir", {"i:fd"}},
        {"setxattr", {"s:pathname", "s:name", "-", "u:size", "i:flags"}},
        {"lsetxattr", {"s:pathname", "s:name", "-", "u:size", "i:flags"}},
        {"fsetxattr", {"i:fd", "s:name", "-", "u:size", "i:flags"}},
        {"getxattr", {"s:pathname", "s:name", "-", "u:size"}},
        {"lgetxattr", {"s:pathname", "s:name", "-", "u:size"}},
        {"fgetxattr", {"i:fd", "s:name", "-", "u:size"}},
        // Untracked-but-parsed extras keep the trace realistic.
        {"unlink", {"s:pathname"}},
        {"rmdir", {"s:pathname"}},
        {"rename", {"s:oldpath", "s:newpath"}},
        {"symlink", {"s:target", "s:linkpath"}},
        {"link", {"s:oldpath", "s:newpath"}},
        {"listxattr", {"s:pathname", "-", "u:size"}},
        {"removexattr", {"s:pathname", "s:name"}},
        {"fsync", {"i:fd"}},
        {"fdatasync", {"i:fd"}},
        {"sync", {}},
    };
    return kSigs;
}

const SyzSig* find_sig(std::string_view name) {
    for (const auto& sig : signatures())
        if (name == sig.name) return &sig;
    return nullptr;
}

// ---- raw token splitting ----------------------------------------------------

/// Splits an argument list on top-level commas, respecting (), {}, [],
/// and single-quoted strings.
std::vector<std::string_view> split_args(std::string_view s) {
    std::vector<std::string_view> out;
    int depth = 0;
    bool in_str = false;
    std::size_t start = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char ch = s[i];
        if (in_str) {
            if (ch == '\\') ++i;
            else if (ch == '\'') in_str = false;
            continue;
        }
        switch (ch) {
            case '\'': in_str = true; break;
            case '(': case '{': case '[': ++depth; break;
            case ')': case '}': case ']': --depth; break;
            case ',':
                if (depth == 0) {
                    out.push_back(s.substr(start, i - start));
                    start = i + 1;
                }
                break;
            default: break;
        }
    }
    if (start < s.size() || !out.empty() || !s.empty())
        out.push_back(s.substr(start));
    // Trim whitespace.
    for (auto& tok : out) {
        while (!tok.empty() && (tok.front() == ' ' || tok.front() == '\t'))
            tok.remove_prefix(1);
        while (!tok.empty() && (tok.back() == ' ' || tok.back() == '\t'))
            tok.remove_suffix(1);
    }
    if (out.size() == 1 && out[0].empty()) out.clear();
    return out;
}

std::optional<std::uint64_t> parse_syz_number(std::string_view tok) {
    if (tok == "AUTO") return 0;
    std::uint64_t v = 0;
    if (tok.starts_with("0x") || tok.starts_with("0X")) {
        auto [p, ec] = std::from_chars(tok.data() + 2,
                                       tok.data() + tok.size(), v, 16);
        if (ec != std::errc{} || p != tok.data() + tok.size())
            return std::nullopt;
        return v;
    }
    auto [p, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), v, 10);
    if (ec != std::errc{} || p != tok.data() + tok.size())
        return std::nullopt;
    return v;
}

/// Decodes a syz single-quoted string literal ('./file0\x00').
std::optional<std::string> parse_syz_string(std::string_view tok) {
    if (tok.size() < 2 || tok.front() != '\'' || tok.back() != '\'')
        return std::nullopt;
    tok = tok.substr(1, tok.size() - 2);
    std::string out;
    for (std::size_t i = 0; i < tok.size(); ++i) {
        if (tok[i] != '\\') {
            out += tok[i];
            continue;
        }
        if (i + 1 >= tok.size()) return std::nullopt;
        if (tok[i + 1] == 'x' && i + 3 < tok.size()) {
            const char hex[3] = {tok[i + 2], tok[i + 3], 0};
            out += static_cast<char>(std::strtoul(hex, nullptr, 16));
            i += 3;
        } else {
            out += tok[i + 1];
            ++i;
        }
    }
    // Pathnames are NUL-terminated in syz programs; strip the padding.
    while (!out.empty() && out.back() == '\0') out.pop_back();
    return out;
}

/// Resolves a resource reference (r0, r1, ...) to a synthetic fd.
std::optional<std::int64_t> parse_resource(
    std::string_view tok, const std::vector<std::string>& resources) {
    if (tok.size() < 2 || tok.front() != 'r') return std::nullopt;
    for (std::size_t i = 0; i < resources.size(); ++i)
        if (resources[i] == tok) return static_cast<std::int64_t>(3 + i);
    // Unknown resource: syz would have declared it; map deterministically
    // off its number anyway.
    std::uint64_t n = 0;
    auto [p, ec] =
        std::from_chars(tok.data() + 1, tok.data() + tok.size(), n, 10);
    if (ec != std::errc{} || p != tok.data() + tok.size())
        return std::nullopt;
    return static_cast<std::int64_t>(3 + n);
}

/// Extracts the pointee expression of a pointer argument:
/// &(0x7f0000000000)='lit' -> 'lit'; &(0x7f...) -> "" (blob).
/// Returns nullopt if the token is not a pointer expression.
std::optional<std::string_view> pointee_of(std::string_view tok) {
    if (!tok.starts_with("&")) return std::nullopt;
    const auto close = tok.find(')');
    if (close == std::string_view::npos) return std::nullopt;
    auto rest = tok.substr(close + 1);
    if (rest.starts_with("=")) return rest.substr(1);
    return std::string_view{};  // pointer to unannotated data
}

/// Parses a numeric token that may be a plain number or a resource ref.
std::optional<std::int64_t> parse_int_token(
    std::string_view tok, const std::vector<std::string>& resources) {
    if (auto r = parse_resource(tok, resources)) return r;
    if (auto n = parse_syz_number(tok))
        return static_cast<std::int64_t>(*n);  // two's complement wrap
    return std::nullopt;
}

}  // namespace

std::optional<TraceEvent> parse_syz_line(
    std::string_view line, std::vector<std::string>* resources) {
    // Strip comments and whitespace.
    if (const auto hash = line.find('#'); hash != std::string_view::npos)
        line = line.substr(0, hash);
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
        line.remove_prefix(1);
    while (!line.empty() &&
           (line.back() == ' ' || line.back() == '\t' ||
            line.back() == '\r'))
        line.remove_suffix(1);
    if (line.empty()) return std::nullopt;

    // Optional "rN = " result binding.
    std::string result_name;
    if (line.front() == 'r') {
        const auto eq = line.find(" = ");
        const auto paren = line.find('(');
        if (eq != std::string_view::npos && eq < paren) {
            result_name = std::string(line.substr(0, eq));
            line.remove_prefix(eq + 3);
        }
    }

    const auto open_paren = line.find('(');
    if (open_paren == std::string_view::npos || line.back() != ')')
        return std::nullopt;
    const auto name = line.substr(0, open_paren);
    const SyzSig* sig = find_sig(name);
    if (!sig) return std::nullopt;

    const auto arg_text =
        line.substr(open_paren + 1, line.size() - open_paren - 2);
    const auto tokens = split_args(arg_text);

    TraceEvent ev;
    ev.syscall = std::string(name);
    ev.pid = 1;
    ev.tid = 1;
    ev.ret = kSyzNoReturn;

    for (std::size_t i = 0; i < sig->args.size() && i < tokens.size();
         ++i) {
        const std::string_view spec = sig->args[i];
        const std::string_view tok = tokens[i];
        if (spec == "-") continue;
        const auto kind = spec.substr(0, 2);
        const std::string key(spec.substr(2));
        if (kind == "i:") {
            if (auto v = parse_int_token(tok, *resources))
                ev.args.push_back({key, ArgValue{*v}});
        } else if (kind == "u:") {
            if (auto v = parse_syz_number(tok))
                ev.args.push_back({key, ArgValue{*v}});
        } else if (kind == "s:") {
            const auto pointee = pointee_of(tok);
            if (!pointee) {
                // A literal 0x0 in a pointer position is a faulting
                // address, like the real fuzzers generate.
                if (parse_syz_number(tok) == std::uint64_t{0})
                    ev.args.push_back(
                        {key, ArgValue{std::string("<fault>")}});
                continue;
            }
            if (auto str = parse_syz_string(*pointee))
                ev.args.push_back({key, ArgValue{std::move(*str)}});
        } else if (kind == "o:") {
            // open_how struct literal: {flags, mode, resolve}.
            const auto pointee = pointee_of(tok);
            if (pointee && pointee->size() > 2 &&
                pointee->front() == '{' && pointee->back() == '}') {
                const auto fields = split_args(
                    pointee->substr(1, pointee->size() - 2));
                const char* names[3] = {"flags", "mode", "resolve"};
                for (std::size_t f = 0; f < fields.size() && f < 3; ++f)
                    if (auto v = parse_syz_number(fields[f]))
                        ev.args.push_back({names[f], ArgValue{*v}});
            }
        }
    }

    if (!result_name.empty()) resources->push_back(std::move(result_name));
    return ev;
}

std::vector<TraceEvent> parse_syz_program(std::istream& in,
                                          SyzParseStats* stats) {
    std::vector<TraceEvent> out;
    std::vector<std::string> resources;
    SyzParseStats local;
    std::string line;
    std::uint64_t seq = 0;
    while (std::getline(in, line)) {
        ++local.lines;
        if (auto ev = parse_syz_line(line, &resources)) {
            ev->seq = seq++;
            out.push_back(std::move(*ev));
            ++local.parsed;
        } else {
            ++local.skipped;
        }
    }
    if (stats) *stats = local;
    return out;
}

}  // namespace iocov::trace
