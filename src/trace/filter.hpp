// Trace filter: keeps only syscalls aimed at the file system under test.
//
// A tracer records *every* syscall a tester makes, including ones against
// the build tree, /proc, temporary files, etc.  Like the real IOCov, we
// filter by mount-point regular expressions before analysis.  Path-less
// syscalls (read/write/close/... on a file descriptor) cannot be matched
// textually, so the filter is stateful: it watches fds returned by admitted
// open-family calls and admits subsequent fd-based calls on those fds.
// This mirrors how one reconstructs fd provenance from an LTTng trace.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <regex>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace iocov::trace {

/// Filter configuration. `include` patterns select in-scope paths (e.g.
/// "^/mnt/test(/.*)?$"); `exclude` patterns veto paths even when an
/// include matched (useful to drop a tester's scratch subdirectory).
struct FilterConfig {
    std::vector<std::string> include;
    std::vector<std::string> exclude;
    /// Literal mount-point prefixes matched without regex machinery —
    /// the fast path for the overwhelmingly common "everything under
    /// /mnt/test" configuration (~4x cheaper per event than std::regex;
    /// see perf_analyzer's BM_FilterThroughputPrefix).
    std::vector<std::string> include_prefixes;

    /// The paper's xfstests setup: everything under /mnt/test.
    /// Uses a regex so `exclude` patterns compose naturally.
    static FilterConfig mount_point(const std::string& mount);

    /// Same scope via the literal-prefix fast path.
    static FilterConfig mount_point_prefix(const std::string& mount);
};

class TraceFilter {
  public:
    explicit TraceFilter(const FilterConfig& config);

    /// Decides whether `event` targets the file system under test,
    /// updating fd-watch state as a side effect.  Events must be fed in
    /// trace order (fd admission depends on the preceding opens).
    bool admit(const TraceEvent& event);

    /// Convenience: runs admit() over a whole trace, returning the kept
    /// events. Resets state first so a filter can be reused.
    std::vector<TraceEvent> filter(const std::vector<TraceEvent>& events);

    /// Forgets all watched fds (e.g. between test-suite runs).
    void reset();

    /// Number of fds currently being watched across all pids.
    std::size_t watched_fd_count() const;

  private:
    /// Sorted-vector fd set.  A process keeps a handful of fds open, so
    /// binary search beats a node-based std::set and — the point for
    /// the ingest hot path — insert/erase reuse the vector's capacity
    /// instead of allocating a node per open (steady-state admit()
    /// performs zero heap allocations; tests/test_batch_decode.cpp
    /// asserts it through the exec allocation hook).
    class FdSet {
      public:
        bool contains(std::int64_t fd) const {
            return std::binary_search(fds_.begin(), fds_.end(), fd);
        }
        void insert(std::int64_t fd) {
            auto it = std::lower_bound(fds_.begin(), fds_.end(), fd);
            if (it == fds_.end() || *it != fd) fds_.insert(it, fd);
        }
        void erase(std::int64_t fd) {
            auto it = std::lower_bound(fds_.begin(), fds_.end(), fd);
            if (it != fds_.end() && *it == fd) fds_.erase(it);
        }
        std::size_t size() const { return fds_.size(); }

      private:
        std::vector<std::int64_t> fds_;
    };

    bool path_in_scope(const std::string& path) const;

    std::vector<std::regex> include_;
    std::vector<std::regex> exclude_;
    std::vector<std::string> prefixes_;
    /// pid -> set of fds opened within the mount point.
    std::map<std::uint32_t, FdSet> watched_;
    /// pid -> whether its cwd is inside the mount point (tracked via
    /// chdir/fchdir so relative paths resolve correctly).
    std::map<std::uint32_t, bool> cwd_in_scope_;
};

}  // namespace iocov::trace
