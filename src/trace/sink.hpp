// Trace sinks: where emitted syscall events go.
//
// The syscall layer is sink-agnostic (like the kernel's tracepoints);
// tests and the analyzer use TraceBuffer, the text pipeline streams
// through TextSink, and NullSink measures tracing overhead.
#pragma once

#include <cstdint>
#include <functional>
#include <iterator>
#include <ostream>
#include <vector>

#include "trace/event.hpp"

namespace iocov::trace {

/// Destination for emitted trace events.
class TraceSink {
  public:
    virtual ~TraceSink() = default;
    virtual void emit(const TraceEvent& event) = 0;
};

/// Discards events (baseline for overhead benchmarks).
class NullSink final : public TraceSink {
  public:
    void emit(const TraceEvent&) override {}
};

/// Buffers events in memory; the standard analyzer input.
class TraceBuffer final : public TraceSink {
  public:
    /// Delegates to the move overload so the two emit paths cannot
    /// diverge: every event lands via exactly one push.
    void emit(const TraceEvent& event) override { emit(TraceEvent(event)); }

    /// Move-emit for callers that are done with the event (a TraceEvent
    /// carries a syscall name, pathname strings, and an arg vector —
    /// copying all of that per event is the single biggest cost of
    /// buffering a trace).
    void emit(TraceEvent&& event) { events_.push_back(std::move(event)); }

    /// Pre-sizes the buffer ahead of a bulk append of ~n events.
    void reserve(std::size_t n) { events_.reserve(events_.size() + n); }

    /// Appends a whole batch by move (the batch is consumed).
    void append(std::vector<TraceEvent>&& batch) {
        events_.insert(events_.end(),
                       std::make_move_iterator(batch.begin()),
                       std::make_move_iterator(batch.end()));
        batch.clear();
    }

    const std::vector<TraceEvent>& events() const { return events_; }

    /// Moves the buffered events out, leaving the buffer empty; use when
    /// the buffer is discarded afterwards to skip a full trace copy.
    std::vector<TraceEvent> take_events() {
        auto out = std::move(events_);
        events_.clear();
        return out;
    }

    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }
    void clear() { events_.clear(); }

  private:
    std::vector<TraceEvent> events_;
};

/// Forwards each event to a callback (used to chain filter -> analyzer
/// without materializing an intermediate buffer).
class CallbackSink final : public TraceSink {
  public:
    explicit CallbackSink(std::function<void(const TraceEvent&)> fn)
        : fn_(std::move(fn)) {}
    void emit(const TraceEvent& event) override { fn_(event); }

  private:
    std::function<void(const TraceEvent&)> fn_;
};

/// Serializes each event as one text line (LTTng-like format; see
/// text_format.hpp) to an ostream.
class TextSink final : public TraceSink {
  public:
    explicit TextSink(std::ostream& os) : os_(os) {}
    void emit(const TraceEvent& event) override;

  private:
    std::ostream& os_;
};

/// Duplicates events to two sinks (e.g. buffer + text log).
class TeeSink final : public TraceSink {
  public:
    TeeSink(TraceSink& a, TraceSink& b) : a_(a), b_(b) {}
    void emit(const TraceEvent& event) override {
        a_.emit(event);
        b_.emit(event);
    }

  private:
    TraceSink& a_;
    TraceSink& b_;
};

}  // namespace iocov::trace
