#include "trace/event.hpp"

namespace iocov::trace {

const Arg* TraceEvent::find_arg(std::string_view name) const {
    for (const auto& a : args)
        if (a.name == name) return &a;
    return nullptr;
}

std::optional<std::int64_t> TraceEvent::int_arg(std::string_view name) const {
    const Arg* a = find_arg(name);
    if (!a) return std::nullopt;
    if (const auto* i = std::get_if<std::int64_t>(&a->value)) return *i;
    if (const auto* u = std::get_if<std::uint64_t>(&a->value))
        return static_cast<std::int64_t>(*u);
    return std::nullopt;
}

std::optional<std::uint64_t> TraceEvent::uint_arg(std::string_view name) const {
    const Arg* a = find_arg(name);
    if (!a) return std::nullopt;
    if (const auto* u = std::get_if<std::uint64_t>(&a->value)) return *u;
    if (const auto* i = std::get_if<std::int64_t>(&a->value))
        return static_cast<std::uint64_t>(*i);
    return std::nullopt;
}

std::optional<std::string> TraceEvent::str_arg(std::string_view name) const {
    const Arg* a = find_arg(name);
    if (!a) return std::nullopt;
    if (const auto* s = std::get_if<std::string>(&a->value)) return *s;
    return std::nullopt;
}

}  // namespace iocov::trace
