#include "trace/diagnostics.hpp"

#include <algorithm>

namespace iocov::trace {

void ParseDiagnostics::record(std::uint64_t line, std::uint64_t offset,
                              std::string_view reason,
                              std::string_view excerpt) {
    ++total_;
    if (entries_.size() >= max_retained_) return;
    ParseDiagnostic d;
    d.line = line;
    d.offset = offset;
    d.reason = std::string(reason);
    d.excerpt = std::string(excerpt.substr(0, kExcerptBytes));
    entries_.push_back(std::move(d));
}

void ParseDiagnostics::merge(const ParseDiagnostics& other) {
    total_ += other.total_;
    entries_.insert(entries_.end(), other.entries_.begin(),
                    other.entries_.end());
    std::stable_sort(entries_.begin(), entries_.end(),
                     [](const ParseDiagnostic& a, const ParseDiagnostic& b) {
                         if (a.line != b.line) return a.line < b.line;
                         return a.offset < b.offset;
                     });
    if (entries_.size() > max_retained_) entries_.resize(max_retained_);
}

std::string ParseDiagnostics::to_string() const {
    if (total_ == 0) return "no parse diagnostics";
    std::string out = std::to_string(total_) + " input(s) dropped\n";
    for (const auto& d : entries_) {
        out += "  ";
        if (d.line) out += "line " + std::to_string(d.line) + ", ";
        out += "offset " + std::to_string(d.offset) + ": " + d.reason;
        if (!d.excerpt.empty()) out += "  |" + d.excerpt + "|";
        out += "\n";
    }
    if (total_ > entries_.size())
        out += "  ... and " + std::to_string(total_ - entries_.size()) +
               " more\n";
    return out;
}

}  // namespace iocov::trace
