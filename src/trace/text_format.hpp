// Text serialization of trace events (LTTng-style line format).
//
// One event per line:
//
//   [000000017] pid=1201 tid=1201 openat: dfd=-100,
//       pathname="/mnt/test/f0", flags=0x241, mode=0x1a4 = 3
//
// Unsigned args print as hex with 0x, signed as decimal, strings quoted
// with backslash escapes.  The parser accepts exactly what format_event
// produces, enabling the trace-file -> analyzer pipeline of the real
// IOCov tool and round-trip tests.
#pragma once

#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/diagnostics.hpp"
#include "trace/event.hpp"

namespace iocov::trace {

/// Renders one event as a single line (no trailing newline).
std::string format_event(const TraceEvent& event);

/// Parses a line produced by format_event. Returns nullopt on malformed
/// input (never throws; trace files may be truncated mid-line).  On
/// failure, `*reason` (when non-null) names the first malformed field
/// as a static string — no allocation on the reject path.
std::optional<TraceEvent> parse_event(std::string_view line,
                                      const char** reason = nullptr);

/// Parses an entire stream, skipping blank lines and '#' comments.
/// Malformed lines are counted into *dropped (if non-null) and skipped,
/// mirroring how the real analyzer tolerates torn LTTng buffers; each
/// is also recorded into `diags` (when non-null) with its line number,
/// byte offset, and parse_event's reason.
std::vector<TraceEvent> parse_stream(std::istream& in,
                                     std::size_t* dropped = nullptr,
                                     ParseDiagnostics* diags = nullptr);

/// Splits `text` into at most `n_chunks` byte ranges cut at line
/// boundaries (a line never straddles two chunks), sized as evenly as
/// the line structure allows.  The views alias `text`; concatenating
/// them in order reproduces it.  Building block of the parallel parse.
std::vector<std::string_view> split_line_chunks(std::string_view text,
                                                std::size_t n_chunks);

/// parse_stream over one in-memory chunk: same blank/'#'/malformed-line
/// handling, no istream.  Each parallel worker runs this on its chunk.
/// `first_line`/`base_offset` position the chunk within the whole
/// input so diagnostics carry file-absolute line numbers and offsets.
std::vector<TraceEvent> parse_chunk(std::string_view chunk,
                                    std::size_t* dropped = nullptr,
                                    ParseDiagnostics* diags = nullptr,
                                    std::uint64_t first_line = 1,
                                    std::uint64_t base_offset = 0);

/// Escapes a string for quoting inside a trace line.
std::string escape_string(std::string_view s);

/// Reverses escape_string; nullopt on invalid escape sequences.
std::optional<std::string> unescape_string(std::string_view s);

}  // namespace iocov::trace
