// Shared core of the batched IOCT event decoder.
//
// The per-record decode loop is a template over a *varint reader
// policy* so one definition of the field order, bounds checks, and
// failure-reason strings serves every instruction-set variant:
//
//   ScalarVarintReader  byte-at-a-time LEB128, the reference semantics
//   SwarVarintReader    8-byte SWAR load + bit compaction (any
//                       little-endian 64-bit target)
//   (pext, bmi2 TU)     binary_format_bmi2.cpp instantiates the same
//                       core with a PEXT-based reader; it lives in its
//                       own translation unit compiled with -mbmi2
//                       because GCC refuses to inline target("bmi2")
//                       functions into plain callers
//
// Every reader must be bit-identical to the scalar one — same accepted
// inputs, same values, same rejects — so fast paths fall back to scalar
// near buffer boundaries and for >8-byte varints rather than duplicate
// the truncation and 10th-byte rules.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

#include "trace/binary_format.hpp"
#include "trace/diagnostics.hpp"

namespace iocov::trace::detail {

// A writer-produced event never exceeds a handful of args; anything
// past this in a file is corruption, not a trace.
inline constexpr std::uint64_t kMaxArgs = 64;

inline std::int64_t unzigzag64(std::uint64_t v) {
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// Reader contract: advance `p` past one varint and set `out`, or return
// false with `p` unspecified (decode aborts the record).  `rec_end`
// bounds the *record* (truncation semantics); `buf_end` bounds the
// whole mapped buffer (raw-load memory safety) — a wide load may peek
// past the record into the next one, but never past the buffer.

struct ScalarVarintReader {
    static bool read(const unsigned char*& p, const unsigned char* rec_end,
                     const unsigned char* /*buf_end*/, std::uint64_t& out) {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            if (p == rec_end) return false;
            const unsigned char byte = *p++;
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80)) {
                // The 10th byte may only carry the top bit of a u64.
                if (shift == 63 && (byte & 0x7e)) return false;
                out = v;
                return true;
            }
        }
        return false;  // unterminated varint
    }
};

struct SwarVarintReader {
    static bool read(const unsigned char*& p, const unsigned char* rec_end,
                     const unsigned char* buf_end, std::uint64_t& out) {
        // Single-byte fast path: most trace varints (pids, fds, string
        // ids, arg counts) fit in 7 bits, and the wide path's load +
        // fold is pure overhead for them.  p != rec_end implies
        // p < buf_end, so the byte load is in bounds.
        if (p != rec_end && !(*p & 0x80)) {
            out = *p++;
            return true;
        }
        if (buf_end - p >= 8) {
            std::uint64_t chunk;
            std::memcpy(&chunk, p, 8);
            // A clear top bit marks the last byte of a varint; stop has
            // 0x80 at the position of the first such byte.
            const std::uint64_t stop = ~chunk & 0x8080808080808080ULL;
            if (stop != 0) {
                const unsigned len =
                    (static_cast<unsigned>(std::countr_zero(stop)) >> 3) + 1;
                if (rec_end - p < static_cast<std::ptrdiff_t>(len))
                    return false;  // terminator lies beyond the record
                // Keep the low `len` bytes, strip continuation bits,
                // then fold the 7-bit groups together.
                std::uint64_t x = (chunk << (64 - 8 * len)) >> (64 - 8 * len);
                x &= 0x7f7f7f7f7f7f7f7fULL;
                x = (x & 0x007f007f007f007fULL) |
                    ((x & 0x7f007f007f007f00ULL) >> 1);
                x = (x & 0x00003fff00003fffULL) |
                    ((x & 0x3fff00003fff0000ULL) >> 2);
                x = (x & 0x000000000fffffffULL) |
                    ((x & 0x0fffffff00000000ULL) >> 4);
                out = x;
                p += len;
                return true;
            }
            // 9- and 10-byte varints: scalar enforces the final-byte rules.
        }
        return ScalarVarintReader::read(p, rec_end, buf_end, out);
    }
};

/// Decodes one EVT payload into `out` (SoA append).  Returns nullptr on
/// success; on failure appends nothing (partially appended args are
/// rolled back) and returns the exact static reason string
/// decode_event() produces for the same payload.
template <class Reader>
inline const char* decode_ref(const unsigned char* base,
                              const unsigned char* buf_end,
                              const EventRef& ref, std::size_t string_count,
                              EventBatch& out) {
    if (ref.length == 0) return "not an event record";
    const unsigned char* p = base + ref.offset;
    const unsigned char* const rec_end = p + ref.length;
    if (static_cast<IoctTag>(*p) != IoctTag::Event)
        return "not an event record";
    ++p;

    std::uint64_t seq = 0, pid = 0, tid = 0, name_id = 0, ret = 0, argc = 0;
    if (!Reader::read(p, rec_end, buf_end, seq) ||
        !Reader::read(p, rec_end, buf_end, pid) || pid > UINT32_MAX ||
        !Reader::read(p, rec_end, buf_end, tid) || tid > UINT32_MAX)
        return "truncated event header";
    if (!Reader::read(p, rec_end, buf_end, name_id) ||
        name_id >= string_count)
        return "syscall name id out of range";
    if (!Reader::read(p, rec_end, buf_end, ret))
        return "truncated return value";
    if (!Reader::read(p, rec_end, buf_end, argc) || argc > kMaxArgs)
        return "argument count out of range";

    const std::size_t arg_begin = out.args.size();
    auto fail = [&](const char* r) {
        out.args.resize(arg_begin);
        return r;
    };
    for (std::uint64_t i = 0; i < argc; ++i) {
        std::uint64_t arg_name = 0, v = 0;
        if (!Reader::read(p, rec_end, buf_end, arg_name) ||
            arg_name >= string_count || p == rec_end)
            return fail("truncated or out-of-range argument");
        const std::uint8_t type = *p++;
        if (!Reader::read(p, rec_end, buf_end, v))
            return fail("truncated or out-of-range argument");
        std::uint64_t raw = v;
        switch (static_cast<ArgType>(type)) {
            case ArgType::Int:
                raw = static_cast<std::uint64_t>(unzigzag64(v));
                break;
            case ArgType::Uint:
                break;
            case ArgType::Str:
                if (v >= string_count)
                    return fail("argument string id out of range");
                break;
            default:
                return fail("unknown argument type byte");
        }
        out.args.push_back({raw, static_cast<std::uint32_t>(arg_name),
                            static_cast<ArgType>(type)});
    }
    if (p != rec_end) return fail("trailing bytes after last argument");

    out.rows.push_back({seq, unzigzag64(ret), arg_begin,
                        static_cast<std::uint32_t>(pid),
                        static_cast<std::uint32_t>(tid),
                        static_cast<std::uint32_t>(name_id),
                        static_cast<std::uint32_t>(argc)});
    return nullptr;
}

/// Decode loop over a span of scan-produced refs.  Appends intact rows
/// to `out`, counts failures into *dropped and records them into
/// `diags` keyed by byte offset — the same bookkeeping decode_trace()
/// keeps, in the same order.  Returns rows appended.
template <class Reader>
inline std::size_t decode_refs(std::string_view data,
                               std::size_t string_count,
                               const EventRef* refs, std::size_t n,
                               EventBatch& out, std::size_t* dropped,
                               ParseDiagnostics* diags) {
    const auto* base = reinterpret_cast<const unsigned char*>(data.data());
    const unsigned char* const buf_end = base + data.size();
    out.rows.reserve(out.rows.size() + n);
    std::size_t decoded = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const EventRef& ref = refs[i];
        // scan_ioct never emits an out-of-bounds ref; guard anyway so a
        // hand-built ref cannot walk off the buffer.
        if (ref.offset > data.size() ||
            ref.length > data.size() - ref.offset) {
            if (dropped) ++*dropped;
            if (diags) diags->record(0, ref.offset, "not an event record");
            continue;
        }
        const char* reason =
            decode_ref<Reader>(base, buf_end, ref, string_count, out);
        if (reason == nullptr) {
            ++decoded;
        } else {
            if (dropped) ++*dropped;
            if (diags) diags->record(0, ref.offset, reason);
        }
    }
    return decoded;
}

#if defined(IOCOV_HAVE_BMI2_TU)
// Implemented in binary_format_bmi2.cpp (compiled with -mbmi2); call
// only when __builtin_cpu_supports("bmi2").
std::size_t decode_refs_bmi2(std::string_view data, std::size_t string_count,
                             const EventRef* refs, std::size_t n,
                             EventBatch& out, std::size_t* dropped,
                             ParseDiagnostics* diags);
#endif

}  // namespace iocov::trace::detail
