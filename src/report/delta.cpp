#include "report/delta.hpp"

#include "core/tcd.hpp"
#include "report/table.hpp"
#include "stats/rmsd.hpp"

namespace iocov::report {
namespace {

std::size_t tested_count(const stats::PartitionHistogram& hist) {
    return hist.tested().size();
}

SpaceDelta make_delta(std::string space,
                      const stats::PartitionHistogram* before,
                      const stats::PartitionHistogram& after, double target) {
    SpaceDelta d;
    d.space = std::move(space);
    d.declared = after.partition_count();
    d.tested_after = tested_count(after);
    d.tcd_after = core::tcd_uniform(after, target);
    if (before) {
        d.tested_before = tested_count(*before);
        d.tcd_before = core::tcd_uniform(*before, target);
    } else {
        // Absent space = fully untested: every partition sits the full
        // log-distance from the target.
        d.tested_before = 0;
        d.tcd_before = stats::safe_log10(target);
    }
    return d;
}

}  // namespace

std::vector<SpaceDelta> coverage_deltas(const core::CoverageReport& before,
                                        const core::CoverageReport& after,
                                        double target) {
    std::vector<SpaceDelta> out;
    for (const core::ArgCoverage& in : after.inputs) {
        const core::ArgCoverage* b = before.find_input(in.base, in.key);
        out.push_back(make_delta(in.base + "." + in.key,
                                 b ? &b->hist : nullptr, in.hist, target));
    }
    for (const core::OutputCoverage& o : after.outputs) {
        const core::OutputCoverage* b = before.find_output(o.base);
        out.push_back(make_delta(o.base + " (out)", b ? &b->hist : nullptr,
                                 o.hist, target));
    }
    return out;
}

std::string render_coverage_delta(const std::vector<SpaceDelta>& deltas) {
    std::vector<std::vector<std::string>> rows;
    std::size_t declared = 0, before = 0, after = 0;
    for (const SpaceDelta& d : deltas) {
        declared += d.declared;
        before += d.tested_before;
        after += d.tested_after;
        rows.push_back({d.space, std::to_string(d.declared),
                        std::to_string(d.tested_before),
                        std::to_string(d.tested_after),
                        "+" + std::to_string(d.closed()),
                        fixed(d.tcd_before, 3), fixed(d.tcd_after, 3)});
    }
    rows.push_back({"TOTAL", std::to_string(declared),
                    std::to_string(before), std::to_string(after),
                    "+" + std::to_string(after - before), "", ""});
    return render_table({"space", "parts", "tested<", "tested>", "closed",
                         "tcd<", "tcd>"},
                        rows);
}

}  // namespace iocov::report
