#include "report/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace iocov::report {
namespace {

bool looks_numeric(const std::string& s) {
    if (s.empty()) return false;
    for (char ch : s)
        if (!(std::isdigit(static_cast<unsigned char>(ch)) || ch == '.' ||
              ch == ',' || ch == '-' || ch == '%'))
            return false;
    return true;
}

std::string log_bar(std::uint64_t count, std::uint64_t max_count,
                    std::size_t width) {
    if (count == 0 || max_count == 0) return "";
    const double lmax = std::log10(static_cast<double>(max_count) + 1.0);
    const double lval = std::log10(static_cast<double>(count) + 1.0);
    auto n = static_cast<std::size_t>(
        std::lround(lval / lmax * static_cast<double>(width)));
    n = std::max<std::size_t>(n, 1);
    return std::string(n, '#');
}

}  // namespace

std::string with_thousands(std::uint64_t n) {
    std::string raw = std::to_string(n);
    std::string out;
    int pos = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (pos && pos % 3 == 0) out += ',';
        out += *it;
        ++pos;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string fixed(double v, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    return buf;
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
    std::vector<std::size_t> widths(header.size());
    for (std::size_t i = 0; i < header.size(); ++i)
        widths[i] = header[i].size();
    for (const auto& row : rows)
        for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());

    auto render_row = [&](const std::vector<std::string>& row) {
        std::string out;
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string& cell = i < row.size() ? row[i] : "";
            const auto pad = widths[i] - cell.size();
            if (looks_numeric(cell)) {
                out += std::string(pad, ' ') + cell;
            } else {
                out += cell + std::string(pad, ' ');
            }
            if (i + 1 < widths.size()) out += "  ";
        }
        // Trim trailing spaces.
        while (!out.empty() && out.back() == ' ') out.pop_back();
        return out + "\n";
    };

    std::string out = render_row(header);
    std::size_t rule = 0;
    for (std::size_t i = 0; i < widths.size(); ++i)
        rule += widths[i] + (i + 1 < widths.size() ? 2 : 0);
    out += std::string(rule, '-') + "\n";
    for (const auto& row : rows) out += render_row(row);
    return out;
}

std::string render_histogram(const stats::PartitionHistogram& hist,
                             std::size_t bar_width) {
    std::uint64_t max_count = 0;
    for (const auto& row : hist.rows())
        max_count = std::max(max_count, row.count);
    std::vector<std::vector<std::string>> rows;
    for (const auto& row : hist.rows())
        rows.push_back({row.label, with_thousands(row.count),
                        log_bar(row.count, max_count, bar_width)});
    return render_table({"partition", "count", "log scale"}, rows);
}

std::string render_comparison(const std::string& name_a,
                              const stats::PartitionHistogram& a,
                              const std::string& name_b,
                              const stats::PartitionHistogram& b,
                              std::size_t bar_width) {
    std::vector<std::string> labels;
    for (const auto& row : a.rows()) labels.push_back(row.label);
    for (const auto& row : b.rows())
        if (!a.has_partition(row.label)) labels.push_back(row.label);

    std::uint64_t max_count = 1;
    for (const auto& label : labels)
        max_count = std::max({max_count, a.count(label), b.count(label)});

    std::vector<std::vector<std::string>> rows;
    for (const auto& label : labels) {
        rows.push_back({label, with_thousands(a.count(label)),
                        log_bar(a.count(label), max_count, bar_width),
                        with_thousands(b.count(label)),
                        log_bar(b.count(label), max_count, bar_width)});
    }
    return render_table(
        {"partition", name_a, name_a + " (log)", name_b, name_b + " (log)"},
        rows);
}

}  // namespace iocov::report
