// Before/after coverage deltas: the guide loop's headline artifact.
//
// Compares two CoverageReports space by space (every tracked input
// argument and output space) and renders the change in tested-partition
// counts and per-space TCD as a fixed-width table — the "what did the
// synthesized workload buy" view the paper's Section 5 argues coverage
// tools owe their users.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/coverage.hpp"

namespace iocov::report {

/// One input-argument or output space's before/after movement.
struct SpaceDelta {
    std::string space;  ///< "open.flags" for inputs, "write (out)" for outputs
    std::size_t declared = 0;
    std::size_t tested_before = 0;
    std::size_t tested_after = 0;
    double tcd_before = 0.0;
    double tcd_after = 0.0;

    std::size_t closed() const { return tested_after - tested_before; }
};

/// Deltas for every space of `after`, in report order, with per-space
/// TCD computed against a uniform `target`.  `before` spaces are
/// matched by (base, arg); a space absent from `before` counts as fully
/// untested there.
std::vector<SpaceDelta> coverage_deltas(const core::CoverageReport& before,
                                        const core::CoverageReport& after,
                                        double target);

/// Renders the deltas plus a totals row.
std::string render_coverage_delta(const std::vector<SpaceDelta>& deltas);

}  // namespace iocov::report
