// Minimal fixed-width ASCII table/figure rendering for the bench
// harnesses that regenerate the paper's tables and figures on stdout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/histogram.hpp"

namespace iocov::report {

/// Renders rows as a fixed-width table with a header rule.  Column
/// widths adapt to content; numeric-looking cells right-align.
std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows);

/// Renders one histogram as "label  count  bar" rows, with a log-scale
/// bar (matching the paper's log10 y-axes).
std::string render_histogram(const stats::PartitionHistogram& hist,
                             std::size_t bar_width = 40);

/// Side-by-side comparison of two suites over the union of partitions
/// (the shape of the paper's Figures 2-4): label, count A, count B,
/// log-bars.  Partition order follows `a`, with `b`-only labels after.
std::string render_comparison(const std::string& name_a,
                              const stats::PartitionHistogram& a,
                              const std::string& name_b,
                              const stats::PartitionHistogram& b,
                              std::size_t bar_width = 24);

/// Human formatting helpers.
std::string with_thousands(std::uint64_t n);
std::string fixed(double v, int decimals);

}  // namespace iocov::report
