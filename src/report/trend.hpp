// Coverage trends over a fleet of snapshots.
//
// `iocov merge` answers "what did the fleet cover in total"; trend
// answers "how is coverage moving".  Given the snapshots of a drop-box
// directory, trend_json() groups them into slices — time windows over
// the capture timestamp, or one slice per label — merges each slice
// (same associative fold as `iocov merge`), runs the TCD/gap analysis
// per slice, and emits one deterministic JSON document: slices in
// sorted key order, per-space TCD plus gap counts per slice.  The
// output is byte-identical across reruns and thread counts, so it can
// be diffed and golden-tested like every other IOCov report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/snapshot.hpp"

namespace iocov::report {

struct TrendOptions {
    /// Width of a time bucket in seconds; snapshots land in the bucket
    /// floor(timestamp / window).  Ignored when `by_label` is set.
    /// 0 means one slice spanning everything.
    std::uint64_t window_seconds = 0;
    /// Slice per snapshot label instead of per time window (snapshots
    /// with an empty label group under "(unlabeled)").
    bool by_label = false;
    /// Uniform per-partition target for the TCD computation.
    double target = 10.0;
};

/// Groups `snapshots` into slices per `options`, merges each slice in
/// name order, and renders the per-slice TCD/gap series as JSON:
///
///   { "slices": [ { "key": ..., "snapshots": N, "events_seen": ...,
///       "aggregate_tcd": ..., "input_gaps": N, "output_gaps": N,
///       "spaces": [ {"space", "tcd", "untested", "declared"}, ... ] },
///     ... ] }
///
/// Slice keys sort ascending (numeric for windows, lexicographic for
/// labels); spaces keep report order.  Deterministic: byte-identical
/// output for the same snapshot set at any `n_threads`.
std::string trend_json(const std::vector<core::NamedSnapshot>& snapshots,
                       const TrendOptions& options, unsigned n_threads = 1);

}  // namespace iocov::report
