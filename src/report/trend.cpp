#include "report/trend.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/gap.hpp"

namespace iocov::report {
namespace {

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
                break;
        }
    }
    return out;
}

std::string fixed4(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4f", v);
    return buf;
}

}  // namespace

std::string trend_json(const std::vector<core::NamedSnapshot>& snapshots,
                       const TrendOptions& options, unsigned n_threads) {
    // Slice keys: (sort key, display key).  std::map keeps them sorted;
    // windows get a zero-padded numeric sort key so lexicographic order
    // equals numeric order.
    struct Slice {
        std::string display;
        std::vector<core::NamedSnapshot> members;  // name order preserved
    };
    std::map<std::string, Slice> slices;
    for (const auto& ns : snapshots) {
        std::string sort_key, display;
        if (options.by_label) {
            display = ns.snapshot.label.empty() ? "(unlabeled)"
                                                : ns.snapshot.label;
            sort_key = display;
        } else if (options.window_seconds == 0) {
            sort_key = display = "all";
        } else {
            const std::uint64_t bucket =
                ns.snapshot.timestamp / options.window_seconds;
            char buf[32];
            std::snprintf(buf, sizeof buf, "%020llu",
                          static_cast<unsigned long long>(bucket));
            sort_key = buf;
            display = std::to_string(bucket * options.window_seconds);
        }
        auto& slice = slices[sort_key];
        slice.display = std::move(display);
        slice.members.push_back(ns);
    }

    std::string json = "{\n  \"slices\": [\n";
    std::size_t slice_idx = 0;
    for (auto& [sort_key, slice] : slices) {
        // Members inherit the directory's name order, so the per-slice
        // fold is the same deterministic reduction `iocov merge` runs.
        const std::size_t n = slice.members.size();
        const core::IOCovSnapshot merged =
            core::merge_snapshots(std::move(slice.members), n_threads);
        const core::GapReport gaps =
            core::extract_gaps(merged.report, options.target);

        json += "    {\n";
        json += "      \"key\": \"" + json_escape(slice.display) + "\",\n";
        json += "      \"snapshots\": " + std::to_string(n) + ",\n";
        json += "      \"events_seen\": " +
                std::to_string(merged.report.events_seen) + ",\n";
        json += "      \"events_tracked\": " +
                std::to_string(merged.report.events_tracked) + ",\n";
        json += "      \"aggregate_tcd\": " + fixed4(gaps.aggregate_tcd) +
                ",\n";
        json += "      \"input_gaps\": " +
                std::to_string(gaps.input_gaps.size()) + ",\n";
        json += "      \"output_gaps\": " +
                std::to_string(gaps.output_gaps.size()) + ",\n";
        json += "      \"spaces\": [\n";
        for (std::size_t i = 0; i < gaps.spaces.size(); ++i) {
            const auto& sp = gaps.spaces[i];
            json += "        {\"space\": \"" + json_escape(sp.base) +
                    (sp.arg.empty() ? "" : "." + json_escape(sp.arg)) +
                    "\", \"tcd\": " + fixed4(sp.tcd) +
                    ", \"untested\": " + std::to_string(sp.untested) +
                    ", \"declared\": " + std::to_string(sp.declared) + "}" +
                    (i + 1 < gaps.spaces.size() ? ",\n" : "\n");
        }
        json += "      ]\n";
        json += "    }";
        json += (++slice_idx < slices.size()) ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    return json;
}

}  // namespace iocov::report
