// Sparse file contents as an extent map.
//
// Test workloads write anywhere from 0 bytes to hundreds of MiB (the
// paper's Fig. 3 spans write sizes up to 258 MiB).  Storing file bytes
// densely would make large-write workloads quadratic in memory, so file
// contents are an ordered map of extents.  An extent either materializes
// real bytes (small writes, content verified by tests) or records a fill
// pattern (large synthetic writes — one byte value repeated), which is
// how the workload generators produce giant writes in O(1) space.
// Unmapped ranges inside the file size are holes and read as zeros,
// which also gives lseek(2) SEEK_DATA/SEEK_HOLE real semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

namespace iocov::vfs {

class FileData {
  public:
    /// Current file size in bytes (holes included).
    std::uint64_t size() const { return size_; }

    /// Truncates or extends to `new_size`.  Shrinking discards extents
    /// beyond the new end; growing creates a hole.
    void set_size(std::uint64_t new_size);

    /// Writes real bytes at `off`, growing the file if needed.
    void write(std::uint64_t off, std::span<const std::byte> bytes);

    /// Writes `len` copies of `value` at `off` without materializing a
    /// buffer; grows the file if needed.
    void write_pattern(std::uint64_t off, std::uint64_t len, std::byte value);

    /// Reads into `out` starting at `off`.  Returns the number of bytes
    /// read (short at EOF); holes read as zeros.
    std::uint64_t read(std::uint64_t off, std::span<std::byte> out) const;

    /// Byte at `off`; nullopt past EOF.  (Convenience for tests.)
    std::optional<std::byte> at(std::uint64_t off) const;

    /// Bytes backed by extents (i.e. "allocated" space; holes are free).
    std::uint64_t allocated_bytes() const;

    /// Allocated space rounded up to whole blocks — the unit the
    /// FileSystem charges against capacity and quota.
    std::uint64_t allocated_blocks(std::uint64_t block_size) const;

    /// Blocks a write of [off, off+len) would newly allocate: the blocks
    /// in that range not yet touched by any extent.  Lets the FileSystem
    /// reserve space (ENOSPC/EDQUOT) *before* mutating, like a real
    /// block allocator, so failed writes need no rollback.
    std::uint64_t new_blocks_for(std::uint64_t off, std::uint64_t len,
                                 std::uint64_t block_size) const;

    /// First offset >= `off` that lies in an extent (SEEK_DATA);
    /// nullopt when no data exists at or after `off`.
    std::optional<std::uint64_t> next_data(std::uint64_t off) const;

    /// First offset >= `off` that lies in a hole; the implicit hole at
    /// EOF counts, so this returns size() when the tail is fully mapped.
    /// Precondition: off <= size().
    std::uint64_t next_hole(std::uint64_t off) const;

    /// Number of extents (exposed for fragmentation assertions in tests).
    std::size_t extent_count() const { return extents_.size(); }

    /// Full-content comparison (reads both sides; pattern vs materialized
    /// extents with equal bytes compare equal).
    bool content_equals(const FileData& other) const;

  private:
    struct Extent {
        std::uint64_t len = 0;
        /// Materialized bytes; empty means `pattern` repeated `len` times.
        std::vector<std::byte> bytes;
        std::byte pattern{0};

        bool materialized() const { return !bytes.empty(); }
        std::byte byte_at(std::uint64_t i) const {
            return materialized() ? bytes[i] : pattern;
        }
    };

    /// Removes all extent coverage of [off, off+len), splitting extents
    /// that straddle the boundary.
    void punch(std::uint64_t off, std::uint64_t len);

    /// Extents keyed by starting offset; non-overlapping, non-empty.
    std::map<std::uint64_t, Extent> extents_;
    std::uint64_t size_ = 0;
};

}  // namespace iocov::vfs
