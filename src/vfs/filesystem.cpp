#include "vfs/filesystem.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

#include "abi/limits.hpp"
#include "abi/xattr.hpp"
#include "vfs/path.hpp"

namespace iocov::vfs {

using abi::Err;

namespace {

/// Per-xattr metadata overhead inside the inode, mirroring ext4's
/// struct ext4_xattr_entry (4 x u32) rounded up.
constexpr std::uint32_t kXattrEntryOverhead = 16;

}  // namespace

FileSystem::FileSystem(FsConfig config) : config_(config) {
    Inode root;
    root.id = kRootInode;
    root.mode = abi::S_IFDIR | 0755;
    root.nlink = 2;
    root.parent = kRootInode;
    root.xattr_space = config_.inode_xattr_capacity;
    inodes_.emplace(kRootInode, std::move(root));
    next_ino_ = kRootInode + 1;
}

// ---- inode lifecycle ----------------------------------------------------

Result<InodeId> FileSystem::alloc_inode(abi::mode_t_ mode,
                                        const Credentials& cred) {
    hook_probe("ext4_new_inode");
    if (inodes_.size() >= config_.max_inodes) {
        hook_probe("ext4_new_inode:enospc");
        return Err::ENOSPC_;
    }
    Inode node;
    node.id = next_ino_++;
    node.mode = mode;
    node.uid = cred.uid;
    node.gid = cred.gid;
    node.xattr_space = config_.inode_xattr_capacity;
    node.times = {clock_, clock_, clock_};
    const InodeId id = node.id;
    inodes_.emplace(id, std::move(node));
    return id;
}

void FileSystem::free_inode(InodeId ino) {
    auto it = inodes_.find(ino);
    if (it == inodes_.end()) return;
    const std::uint64_t blocks =
        it->second.data.allocated_blocks(config_.block_size);
    if (blocks) {
        used_blocks_ -= std::min(used_blocks_, blocks);
        auto q = quota_used_.find(it->second.uid);
        if (q != quota_used_.end()) q->second -= std::min(q->second, blocks);
    }
    inodes_.erase(it);
}

const Inode* FileSystem::find(InodeId ino) const {
    auto it = inodes_.find(ino);
    return it == inodes_.end() ? nullptr : &it->second;
}

Inode* FileSystem::find_mutable(InodeId ino) {
    auto it = inodes_.find(ino);
    return it == inodes_.end() ? nullptr : &it->second;
}

// ---- permissions ---------------------------------------------------------

Status FileSystem::access_check(InodeId ino, unsigned mask,
                                const Credentials& cred) const {
    const Inode* node = find(ino);
    if (!node) return Err::ENOENT_;
    if (cred.is_superuser()) {
        // Root bypasses rw checks; x requires at least one x bit, as in
        // the kernel's generic_permission().
        if ((mask & 1u) && !node->is_dir() &&
            (node->mode & (abi::S_IXUSR | abi::S_IXGRP | abi::S_IXOTH)) == 0)
            return Err::EACCES_;
        return {};
    }
    abi::mode_t_ bits;
    if (cred.uid == node->uid) bits = (node->mode >> 6) & 7;
    else if (cred.gid == node->gid) bits = (node->mode >> 3) & 7;
    else bits = node->mode & 7;
    if ((mask & bits) != mask) return Err::EACCES_;
    return {};
}

// ---- path walking ---------------------------------------------------------

Result<InodeId> FileSystem::resolve(std::string_view path,
                                    const Credentials& cred,
                                    const ResolveOpts& opts) {
    hook_probe("vfs_path_lookup");
    if (path.empty()) return Err::ENOENT_;
    if (path.size() >= abi::PATH_MAX_) return Err::ENAMETOOLONG_;

    if (is_absolute(path) && opts.beneath) return Err::EXDEV_;

    InodeId cur = is_absolute(path) ? kRootInode : opts.base;
    const Inode* base = find(cur);
    if (!base) return Err::ENOENT_;
    if (!base->is_dir() && !split_path(path).empty()) return Err::ENOTDIR_;

    std::deque<std::string> comps;
    for (auto& c : split_path(path)) comps.push_back(std::move(c));
    const bool trailing = has_trailing_slash(path) || path == "/";

    unsigned symlink_hops = 0;
    // Depth below `base` for RESOLVE_BENEATH: ".." at depth 0 escapes.
    long depth = 0;

    while (!comps.empty()) {
        const std::string name = std::move(comps.front());
        comps.pop_front();

        Inode* dir = find_mutable(cur);
        assert(dir);
        if (!dir->is_dir()) return Err::ENOTDIR_;
        IOCOV_TRY_STATUS(access_check(cur, 1 /*x*/, cred));

        if (name == ".") continue;
        if (name == "..") {
            if (opts.beneath && depth == 0) return Err::EXDEV_;
            --depth;
            cur = dir->parent;
            continue;
        }
        if (name.size() > abi::NAME_MAX_) return Err::ENAMETOOLONG_;

        auto entry = dir->dirents.find(name);
        if (entry == dir->dirents.end()) return Err::ENOENT_;
        InodeId child_id = entry->second;
        Inode* child = find_mutable(child_id);
        assert(child);

        if (opts.no_xdev && child->mountpoint) return Err::EXDEV_;

        if (child->is_lnk()) {
            const bool is_final = comps.empty();
            if (opts.no_symlinks) {
                hook_probe("vfs_follow_link:nosymlinks");
                return Err::ELOOP_;
            }
            if (is_final && !opts.follow_final && !trailing) {
                return child_id;  // O_NOFOLLOW-style: the link itself
            }
            hook_probe("vfs_follow_link");
            if (++symlink_hops > abi::SYMLOOP_MAX_) return Err::ELOOP_;
            const std::string& target = child->symlink_target;
            if (target.empty()) return Err::ENOENT_;
            if (is_absolute(target)) {
                if (opts.beneath) return Err::EXDEV_;
                cur = kRootInode;
                depth = 0;
            }
            auto tcomps = split_path(target);
            for (auto rit = tcomps.rbegin(); rit != tcomps.rend(); ++rit)
                comps.push_front(std::move(*rit));
            continue;
        }

        ++depth;
        cur = child_id;
    }

    const Inode* final_node = find(cur);
    if (!final_node) return Err::ENOENT_;
    if (trailing && !final_node->is_dir()) return Err::ENOTDIR_;
    return cur;
}

Result<ParentAndName> FileSystem::resolve_parent(std::string_view path,
                                                 const Credentials& cred,
                                                 const ResolveOpts& opts) {
    if (path.empty()) return Err::ENOENT_;
    if (path.size() >= abi::PATH_MAX_) return Err::ENAMETOOLONG_;

    auto comps = split_path(path);
    ParentAndName out;
    out.trailing_slash = has_trailing_slash(path);

    if (comps.empty()) {
        // Path is "/" (or equivalent): final component is the root.
        out.parent = kRootInode;
        out.name.clear();
        return out;
    }

    out.name = comps.back();
    comps.pop_back();

    if (comps.empty()) {
        out.parent = is_absolute(path) ? kRootInode : opts.base;
        const Inode* p = find(out.parent);
        if (!p) return Err::ENOENT_;
        if (!p->is_dir()) return Err::ENOTDIR_;
        return out;
    }

    // Re-join the directory part and resolve it (always following
    // intermediate symlinks).
    std::string dir_part;
    if (is_absolute(path)) dir_part = "/";
    for (std::size_t i = 0; i < comps.size(); ++i) {
        if (i) dir_part += '/';
        dir_part += comps[i];
    }
    ResolveOpts dir_opts = opts;
    dir_opts.follow_final = true;
    IOCOV_TRY(parent, resolve(dir_part, cred, dir_opts));
    const Inode* p = find(parent);
    if (!p->is_dir()) return Err::ENOTDIR_;
    out.parent = parent;
    return out;
}

// ---- creation -------------------------------------------------------------

Status FileSystem::can_create(InodeId parent, std::string_view name,
                              const Credentials& cred) const {
    const Inode* dir = find(parent);
    if (!dir) return Err::ENOENT_;
    if (!dir->is_dir()) return Err::ENOTDIR_;
    if (name.empty() || name == "." || name == "..") return Err::EEXIST_;
    if (name.size() > abi::NAME_MAX_) return Err::ENAMETOOLONG_;
    if (dir->dirents.count(std::string(name))) return Err::EEXIST_;
    if (config_.read_only) return Err::EROFS_;
    // Creating an entry needs write+search permission on the directory.
    return access_check(parent, 3 /*wx*/, cred);
}

Result<InodeId> FileSystem::create_file(InodeId parent, std::string_view name,
                                        abi::mode_t_ perm,
                                        const Credentials& cred) {
    hook_probe("ext4_create");
    if (auto e = hook_inject("ext4_create")) return *e;
    IOCOV_TRY_STATUS(can_create(parent, name, cred));
    IOCOV_TRY(ino, alloc_inode(abi::S_IFREG | (perm & abi::MODE_PERM_MASK),
                               cred));
    Inode* node = find_mutable(ino);
    node->nlink = 1;
    Inode* dir = find_mutable(parent);
    dir->dirents.emplace(std::string(name), ino);
    dir->times.mtime = dir->times.ctime = tick();
    if (logging_effects()) {
        Effect e;
        e.op = EffectOp::Create;
        e.ino = ino;
        e.parent = parent;
        e.name = std::string(name);
        e.mode = node->mode;
        e.uid = node->uid;
        e.gid = node->gid;
        emit_effect(std::move(e));
    }
    return ino;
}

Result<InodeId> FileSystem::make_dir(InodeId parent, std::string_view name,
                                     abi::mode_t_ perm,
                                     const Credentials& cred) {
    hook_probe("ext4_mkdir");
    if (auto e = hook_inject("ext4_mkdir")) return *e;
    IOCOV_TRY_STATUS(can_create(parent, name, cred));
    Inode* dir = find_mutable(parent);
    if (dir->nlink >= config_.max_links) return Err::EMLINK_;
    IOCOV_TRY(ino, alloc_inode(abi::S_IFDIR | (perm & abi::MODE_PERM_MASK),
                               cred));
    Inode* node = find_mutable(ino);
    node->nlink = 2;  // "." plus the parent entry
    node->parent = parent;
    dir = find_mutable(parent);  // map may have rehashed on insert
    dir->dirents.emplace(std::string(name), ino);
    ++dir->nlink;  // the child's ".."
    dir->times.mtime = dir->times.ctime = tick();
    if (logging_effects()) {
        Effect e;
        e.op = EffectOp::Create;
        e.ino = ino;
        e.parent = parent;
        e.name = std::string(name);
        e.mode = node->mode;
        e.uid = node->uid;
        e.gid = node->gid;
        e.is_dir = true;
        emit_effect(std::move(e));
    }
    return ino;
}

Result<InodeId> FileSystem::make_symlink(InodeId parent, std::string_view name,
                                         std::string_view target,
                                         const Credentials& cred) {
    hook_probe("ext4_symlink");
    IOCOV_TRY_STATUS(can_create(parent, name, cred));
    if (target.empty() || target.size() >= abi::PATH_MAX_)
        return target.empty() ? Err::ENOENT_ : Err::ENAMETOOLONG_;
    IOCOV_TRY(ino, alloc_inode(abi::S_IFLNK | 0777, cred));
    Inode* node = find_mutable(ino);
    node->nlink = 1;
    node->symlink_target = std::string(target);
    Inode* dir = find_mutable(parent);
    dir->dirents.emplace(std::string(name), ino);
    dir->times.mtime = dir->times.ctime = tick();
    if (logging_effects()) {
        Effect e;
        e.op = EffectOp::Create;
        e.ino = ino;
        e.parent = parent;
        e.name = std::string(name);
        e.name2 = std::string(target);
        e.mode = node->mode;
        e.uid = node->uid;
        e.gid = node->gid;
        emit_effect(std::move(e));
    }
    return ino;
}

Result<InodeId> FileSystem::make_special(InodeId parent, std::string_view name,
                                         abi::mode_t_ mode, DeviceState device,
                                         const Credentials& cred) {
    IOCOV_TRY_STATUS(can_create(parent, name, cred));
    IOCOV_TRY(ino, alloc_inode(mode, cred));
    Inode* node = find_mutable(ino);
    node->nlink = 1;
    node->device = device;
    Inode* dir = find_mutable(parent);
    dir->dirents.emplace(std::string(name), ino);
    dir->times.mtime = dir->times.ctime = tick();
    if (logging_effects()) {
        Effect e;
        e.op = EffectOp::Create;
        e.ino = ino;
        e.parent = parent;
        e.name = std::string(name);
        e.mode = node->mode;
        e.uid = node->uid;
        e.gid = node->gid;
        e.device = static_cast<std::uint8_t>(device);
        emit_effect(std::move(e));
    }
    return ino;
}

Result<InodeId> FileSystem::create_anonymous(InodeId dir, abi::mode_t_ perm,
                                             const Credentials& cred) {
    hook_probe("ext4_tmpfile");
    const Inode* d = find(dir);
    if (!d) return Err::ENOENT_;
    if (!d->is_dir()) return Err::ENOTDIR_;
    if (config_.read_only) return Err::EROFS_;
    IOCOV_TRY_STATUS(access_check(dir, 3 /*wx*/, cred));
    IOCOV_TRY(ino, alloc_inode(abi::S_IFREG | (perm & abi::MODE_PERM_MASK),
                               cred));
    Inode* node = find_mutable(ino);
    node->nlink = 1;  // pinned by the open fd, not a dirent
    if (logging_effects()) {
        Effect e;
        e.op = EffectOp::CreateAnonymous;
        e.ino = ino;
        e.parent = dir;
        e.mode = node->mode;
        e.uid = node->uid;
        e.gid = node->gid;
        emit_effect(std::move(e));
    }
    return ino;
}

void FileSystem::release_anonymous(InodeId ino) {
    Inode* node = find_mutable(ino);
    if (node && node->nlink == 1) {
        free_inode(ino);
        if (logging_effects()) {
            Effect e;
            e.op = EffectOp::ReleaseAnonymous;
            e.ino = ino;
            emit_effect(std::move(e));
        }
    }
}

Status FileSystem::link(InodeId target, InodeId parent, std::string_view name,
                        const Credentials& cred) {
    hook_probe("ext4_link");
    Inode* node = find_mutable(target);
    if (!node) return Err::ENOENT_;
    if (node->is_dir()) return Err::EPERM_;
    if (node->nlink >= config_.max_links) return Err::EMLINK_;
    IOCOV_TRY_STATUS(can_create(parent, name, cred));
    Inode* dir = find_mutable(parent);
    dir->dirents.emplace(std::string(name), target);
    ++node->nlink;
    node->times.ctime = dir->times.mtime = dir->times.ctime = tick();
    if (logging_effects()) {
        Effect e;
        e.op = EffectOp::Link;
        e.ino = target;
        e.parent = parent;
        e.name = std::string(name);
        emit_effect(std::move(e));
    }
    return {};
}

// ---- removal --------------------------------------------------------------

void FileSystem::unlink_inode(Inode& inode) {
    assert(inode.nlink > 0);
    if (--inode.nlink == 0) free_inode(inode.id);
}

Status FileSystem::unlink(InodeId parent, std::string_view name,
                          const Credentials& cred) {
    hook_probe("ext4_unlink");
    Inode* dir = find_mutable(parent);
    if (!dir) return Err::ENOENT_;
    if (!dir->is_dir()) return Err::ENOTDIR_;
    auto it = dir->dirents.find(std::string(name));
    if (it == dir->dirents.end()) return Err::ENOENT_;
    Inode* node = find_mutable(it->second);
    assert(node);
    if (node->is_dir()) return Err::EISDIR_;
    if (config_.read_only) return Err::EROFS_;
    IOCOV_TRY_STATUS(access_check(parent, 3 /*wx*/, cred));
    // Sticky directory: only the entry's owner, the directory's owner,
    // or root may remove.
    if ((dir->mode & abi::S_ISVTX) && !cred.is_superuser() &&
        cred.uid != node->uid && cred.uid != dir->uid)
        return Err::EPERM_;
    const InodeId victim_id = node->id;
    // `name` may alias the dirent key we are about to erase (callers
    // legitimately pass views into dir->dirents) — copy it first.
    std::string name_copy(name);
    dir->dirents.erase(it);
    dir->times.mtime = dir->times.ctime = tick();
    unlink_inode(*node);
    if (logging_effects()) {
        Effect e;
        e.op = EffectOp::Unlink;
        e.ino = victim_id;
        e.parent = parent;
        e.name = std::move(name_copy);
        emit_effect(std::move(e));
    }
    return {};
}

Status FileSystem::remove_dir(InodeId parent, std::string_view name,
                              const Credentials& cred) {
    hook_probe("ext4_rmdir");
    Inode* dir = find_mutable(parent);
    if (!dir) return Err::ENOENT_;
    if (!dir->is_dir()) return Err::ENOTDIR_;
    if (name == ".") return Err::EINVAL_;
    if (name == "..") return Err::ENOTEMPTY_;
    auto it = dir->dirents.find(std::string(name));
    if (it == dir->dirents.end()) return Err::ENOENT_;
    Inode* node = find_mutable(it->second);
    assert(node);
    if (!node->is_dir()) return Err::ENOTDIR_;
    if (node->mountpoint) return Err::EBUSY_;
    if (!node->dirents.empty()) {
        hook_probe("ext4_rmdir:notempty");
        return Err::ENOTEMPTY_;
    }
    if (config_.read_only) return Err::EROFS_;
    IOCOV_TRY_STATUS(access_check(parent, 3 /*wx*/, cred));
    if ((dir->mode & abi::S_ISVTX) && !cred.is_superuser() &&
        cred.uid != node->uid && cred.uid != dir->uid)
        return Err::EPERM_;
    const InodeId victim_id = node->id;
    // `name` may alias the dirent key we are about to erase — copy it.
    std::string name_copy(name);
    dir->dirents.erase(it);
    --dir->nlink;  // child's ".." went away
    dir->times.mtime = dir->times.ctime = tick();
    node->nlink = 0;
    free_inode(victim_id);
    if (logging_effects()) {
        Effect e;
        e.op = EffectOp::Rmdir;
        e.ino = victim_id;
        e.parent = parent;
        e.name = std::move(name_copy);
        emit_effect(std::move(e));
    }
    return {};
}

Status FileSystem::rename(InodeId old_parent, std::string_view old_name,
                          InodeId new_parent, std::string_view new_name,
                          const Credentials& cred) {
    hook_probe("ext4_rename");
    Inode* odir = find_mutable(old_parent);
    Inode* ndir = find_mutable(new_parent);
    if (!odir || !ndir) return Err::ENOENT_;
    if (!odir->is_dir() || !ndir->is_dir()) return Err::ENOTDIR_;
    auto oit = odir->dirents.find(std::string(old_name));
    if (oit == odir->dirents.end()) return Err::ENOENT_;
    const InodeId moving_id = oit->second;
    Inode* moving = find_mutable(moving_id);
    assert(moving);

    if (config_.read_only) return Err::EROFS_;
    IOCOV_TRY_STATUS(access_check(old_parent, 3, cred));
    IOCOV_TRY_STATUS(access_check(new_parent, 3, cred));
    if (new_name.empty() || new_name == "." || new_name == "..")
        return Err::EINVAL_;
    if (new_name.size() > abi::NAME_MAX_) return Err::ENAMETOOLONG_;

    // Either view may alias a dirent key erased below — copy both now.
    std::string old_name_copy(old_name);
    std::string new_name_copy(new_name);

    // A directory must not be moved into its own subtree.
    if (moving->is_dir()) {
        for (InodeId cur = new_parent;;) {
            if (cur == moving_id) return Err::EINVAL_;
            if (cur == kRootInode) break;
            cur = find(cur)->parent;
        }
    }

    InodeId replaced_id = kInvalidInode;
    auto nit = ndir->dirents.find(std::string(new_name));
    if (nit != ndir->dirents.end()) {
        if (nit->second == moving_id) return {};  // same file: no-op
        Inode* victim = find_mutable(nit->second);
        assert(victim);
        replaced_id = nit->second;
        if (moving->is_dir()) {
            if (!victim->is_dir()) return Err::ENOTDIR_;
            if (!victim->dirents.empty()) return Err::ENOTEMPTY_;
            ndir->dirents.erase(nit);
            --ndir->nlink;
            victim->nlink = 0;
            free_inode(victim->id);
        } else {
            if (victim->is_dir()) return Err::EISDIR_;
            ndir->dirents.erase(nit);
            unlink_inode(*victim);
        }
        ndir = find_mutable(new_parent);
        odir = find_mutable(old_parent);
        moving = find_mutable(moving_id);
    }

    odir->dirents.erase(old_name_copy);
    ndir->dirents.emplace(new_name_copy, moving_id);
    if (moving->is_dir() && old_parent != new_parent) {
        --odir->nlink;
        ++ndir->nlink;
        moving->parent = new_parent;
    }
    odir->times.mtime = odir->times.ctime = tick();
    ndir->times.mtime = ndir->times.ctime = tick();
    moving->times.ctime = clock_;
    if (logging_effects()) {
        Effect e;
        e.op = EffectOp::Rename;
        e.ino = moving_id;
        e.parent = old_parent;
        e.name = std::move(old_name_copy);
        e.parent2 = new_parent;
        e.name2 = std::move(new_name_copy);
        e.replaced = replaced_id;
        e.is_dir = moving->is_dir();
        emit_effect(std::move(e));
    }
    return {};
}

// ---- regular-file I/O ------------------------------------------------------

Result<std::uint64_t> FileSystem::read(InodeId ino, std::uint64_t off,
                                       std::span<std::byte> out) {
    hook_probe("ext4_file_read_iter");
    if (auto e = hook_inject("ext4_file_read_iter")) return *e;
    Inode* node = find_mutable(ino);
    if (!node) return Err::EBADF_;
    hook_probe("ext4_get_branch");
    if (auto e = hook_inject("ext4_get_branch")) return *e;
    const std::uint64_t n = node->data.read(off, out);
    node->times.atime = tick();
    return n;
}

Status FileSystem::charge_blocks(std::uint32_t uid, std::int64_t delta) {
    if (delta > 0) {
        const auto d = static_cast<std::uint64_t>(delta);
        if (used_blocks_ + d > config_.capacity_blocks) {
            hook_probe("ext4_should_retry_alloc:enospc");
            return Err::ENOSPC_;
        }
        if (config_.quota_blocks_per_uid > 0 && uid != 0) {
            auto& used = quota_used_[uid];
            if (used + d > config_.quota_blocks_per_uid) {
                hook_probe("dquot_alloc_block:edquot");
                return Err::EDQUOT_;
            }
            used += d;
        }
        used_blocks_ += d;
    } else if (delta < 0) {
        const auto d = static_cast<std::uint64_t>(-delta);
        used_blocks_ -= std::min(used_blocks_, d);
        if (config_.quota_blocks_per_uid > 0 && uid != 0) {
            auto it = quota_used_.find(uid);
            if (it != quota_used_.end()) it->second -= std::min(it->second, d);
        }
    }
    return {};
}

Result<std::uint64_t> FileSystem::write(InodeId ino, std::uint64_t off,
                                        std::span<const std::byte> bytes) {
    hook_probe("ext4_file_write_iter");
    if (auto e = hook_inject("ext4_file_write_iter")) return *e;
    Inode* node = find_mutable(ino);
    if (!node) return Err::EBADF_;
    if (config_.read_only) return Err::EROFS_;
    if (bytes.empty()) return std::uint64_t{0};
    if (off > config_.max_file_size ||
        off + bytes.size() > config_.max_file_size) {
        hook_probe("generic_write_checks:efbig");
        return Err::EFBIG_;
    }
    hook_probe("ext4_da_write_begin");
    const std::uint64_t new_blocks =
        node->data.new_blocks_for(off, bytes.size(), config_.block_size);
    IOCOV_TRY_STATUS(
        charge_blocks(node->uid, static_cast<std::int64_t>(new_blocks)));
    node->data.write(off, bytes);
    node->times.mtime = node->times.ctime = tick();
    if (logging_effects()) {
        Effect e;
        e.op = EffectOp::Write;
        e.ino = ino;
        e.off = off;
        e.bytes.assign(bytes.begin(), bytes.end());
        emit_effect(std::move(e));
    }
    return static_cast<std::uint64_t>(bytes.size());
}

Result<std::uint64_t> FileSystem::write_pattern(InodeId ino, std::uint64_t off,
                                                std::uint64_t len,
                                                std::byte fill) {
    hook_probe("ext4_file_write_iter");
    if (auto e = hook_inject("ext4_file_write_iter")) return *e;
    Inode* node = find_mutable(ino);
    if (!node) return Err::EBADF_;
    if (config_.read_only) return Err::EROFS_;
    if (len == 0) return std::uint64_t{0};
    if (off > config_.max_file_size || off + len > config_.max_file_size) {
        hook_probe("generic_write_checks:efbig");
        return Err::EFBIG_;
    }
    hook_probe("ext4_da_write_begin");
    const std::uint64_t new_blocks =
        node->data.new_blocks_for(off, len, config_.block_size);
    IOCOV_TRY_STATUS(
        charge_blocks(node->uid, static_cast<std::int64_t>(new_blocks)));
    node->data.write_pattern(off, len, fill);
    node->times.mtime = node->times.ctime = tick();
    if (logging_effects()) {
        Effect e;
        e.op = EffectOp::Write;
        e.ino = ino;
        e.off = off;
        e.len = len;
        e.fill = fill;
        emit_effect(std::move(e));
    }
    return len;
}

Status FileSystem::truncate(InodeId ino, std::uint64_t new_size) {
    hook_probe("ext4_truncate");
    if (auto e = hook_inject("ext4_truncate")) return *e;
    Inode* node = find_mutable(ino);
    if (!node) return Err::EBADF_;
    if (config_.read_only) return Err::EROFS_;
    if (new_size > config_.max_file_size) {
        hook_probe("generic_write_checks:efbig");
        return Err::EFBIG_;
    }
    const std::uint64_t before =
        node->data.allocated_blocks(config_.block_size);
    node->data.set_size(new_size);
    const std::uint64_t after = node->data.allocated_blocks(config_.block_size);
    // Shrinking only releases blocks (growth extends the EOF hole), so
    // this charge can never fail.
    charge_blocks(node->uid,
                  static_cast<std::int64_t>(after) -
                      static_cast<std::int64_t>(before));
    node->times.mtime = node->times.ctime = tick();
    if (logging_effects()) {
        Effect e;
        e.op = EffectOp::Truncate;
        e.ino = ino;
        e.size = new_size;
        emit_effect(std::move(e));
    }
    return {};
}

// ---- persistence barriers ---------------------------------------------------

void FileSystem::sync_inode(InodeId ino, BarrierKind kind) {
    hook_probe("ext4_sync_file");
    if (logging_effects()) {
        Effect e;
        e.op = EffectOp::Barrier;
        e.barrier = kind;
        e.ino = ino;
        emit_effect(std::move(e));
    }
}

void FileSystem::sync_all(BarrierKind kind) {
    hook_probe("sync_filesystem");
    if (logging_effects()) {
        Effect e;
        e.op = EffectOp::Barrier;
        e.barrier = kind;
        emit_effect(std::move(e));
    }
}

// ---- metadata ---------------------------------------------------------------

Result<Stat> FileSystem::stat(InodeId ino) const {
    const Inode* node = find(ino);
    if (!node) return Err::ENOENT_;
    Stat st;
    st.ino = node->id;
    st.mode = node->mode;
    st.uid = node->uid;
    st.gid = node->gid;
    st.nlink = node->nlink;
    st.size = node->is_lnk() ? node->symlink_target.size()
                             : node->data.size();
    st.blocks = node->data.allocated_blocks(config_.block_size) *
                (config_.block_size / 512);
    st.times = node->times;
    return st;
}

Status FileSystem::chmod(InodeId ino, abi::mode_t_ mode,
                         const Credentials& cred) {
    hook_probe("ext4_setattr");
    if (auto e = hook_inject("ext4_setattr")) return *e;
    Inode* node = find_mutable(ino);
    if (!node) return Err::ENOENT_;
    if (config_.read_only) return Err::EROFS_;
    if (!cred.is_superuser() && cred.uid != node->uid) return Err::EPERM_;
    abi::mode_t_ perm = mode & abi::MODE_PERM_MASK;
    // Non-members lose the setgid bit (kernel's setattr_copy()).
    if (!cred.is_superuser() && cred.gid != node->gid)
        perm &= ~abi::S_ISGID;
    node->mode = (node->mode & abi::S_IFMT) | perm;
    node->times.ctime = tick();
    if (logging_effects()) {
        Effect e;
        e.op = EffectOp::SetMode;
        e.ino = ino;
        e.mode = node->mode;
        emit_effect(std::move(e));
    }
    return {};
}

Status FileSystem::chown(InodeId ino, std::uint32_t uid, std::uint32_t gid,
                         const Credentials& cred) {
    Inode* node = find_mutable(ino);
    if (!node) return Err::ENOENT_;
    if (config_.read_only) return Err::EROFS_;
    const bool change_uid = uid != node->uid;
    const bool change_gid = gid != node->gid;
    if (!cred.is_superuser()) {
        if (change_uid) return Err::EPERM_;
        if (change_gid && (cred.uid != node->uid || gid != cred.gid))
            return Err::EPERM_;
    }
    // Ownership change moves the inode's charged blocks to the new
    // owner's quota (the kernel's dquot_transfer); uid 0 is never
    // charged.  chown does not fail with EDQUOT here — the blocks are
    // already allocated, only the ledger entry moves.
    if (change_uid && config_.quota_blocks_per_uid > 0) {
        const std::uint64_t blocks =
            node->data.allocated_blocks(config_.block_size);
        if (blocks) {
            if (node->uid != 0) {
                auto q = quota_used_.find(node->uid);
                if (q != quota_used_.end())
                    q->second -= std::min(q->second, blocks);
            }
            if (uid != 0) quota_used_[uid] += blocks;
        }
    }
    node->uid = uid;
    node->gid = gid;
    // Clear set-id bits on ownership change, as the kernel does.
    if (change_uid || change_gid)
        node->mode &= ~(abi::S_ISUID | abi::S_ISGID);
    node->times.ctime = tick();
    if (logging_effects()) {
        Effect e;
        e.op = EffectOp::SetOwner;
        e.ino = ino;
        e.uid = node->uid;
        e.gid = node->gid;
        emit_effect(std::move(e));
    }
    return {};
}

// ---- extended attributes ------------------------------------------------------

Status FileSystem::set_xattr(InodeId ino, std::string_view name,
                             std::span<const std::byte> value, int flags,
                             const Credentials& cred) {
    hook_probe("ext4_xattr_set");
    Inode* node = find_mutable(ino);
    if (!node) return Err::ENOENT_;
    if (config_.read_only) return Err::EROFS_;
    if (!cred.is_superuser() && cred.uid != node->uid) return Err::EPERM_;

    const std::string key(name);
    auto it = node->xattrs.find(key);
    const bool exists = it != node->xattrs.end();
    if ((flags & abi::XATTR_CREATE_) && exists) return Err::EEXIST_;
    if ((flags & abi::XATTR_REPLACE_) && !exists) return Err::ENODATA_;

    // In-inode space accounting — the code region of the paper's Fig. 1
    // bug (ext4_xattr_ibody_set / EXT4_INODE_HAS_XATTR_SPACE).
    hook_probe("ext4_xattr_ibody_set");
    if (auto e = hook_inject("ext4_xattr_ibody_set")) return *e;
    std::uint64_t used = 0;
    for (const auto& [k, v] : node->xattrs) {
        if (exists && k == key) continue;  // being replaced
        used += k.size() + v.size() + kXattrEntryOverhead;
    }
    const std::uint64_t need =
        key.size() + value.size() + kXattrEntryOverhead;
    if (used + need > node->xattr_space) {
        hook_probe("ext4_xattr_ibody_set:enospc");
        return Err::ENOSPC_;
    }
    hook_probe("ext4_xattr_ibody_set:fits");

    node->xattrs[key].assign(value.begin(), value.end());
    node->times.ctime = tick();
    if (logging_effects()) {
        Effect e;
        e.op = EffectOp::SetXattr;
        e.ino = ino;
        e.name = key;
        e.bytes.assign(value.begin(), value.end());
        emit_effect(std::move(e));
    }
    return {};
}

Result<std::vector<std::byte>> FileSystem::get_xattr(
    InodeId ino, std::string_view name) const {
    const Inode* node = find(ino);
    if (!node) return Err::ENOENT_;
    auto it = node->xattrs.find(std::string(name));
    if (it == node->xattrs.end()) return Err::ENODATA_;
    return it->second;
}

Result<std::vector<std::string>> FileSystem::list_xattr(InodeId ino) const {
    const Inode* node = find(ino);
    if (!node) return Err::ENOENT_;
    std::vector<std::string> names;
    names.reserve(node->xattrs.size());
    for (const auto& [k, v] : node->xattrs) names.push_back(k);
    return names;
}

Status FileSystem::remove_xattr(InodeId ino, std::string_view name,
                                const Credentials& cred) {
    Inode* node = find_mutable(ino);
    if (!node) return Err::ENOENT_;
    if (config_.read_only) return Err::EROFS_;
    if (!cred.is_superuser() && cred.uid != node->uid) return Err::EPERM_;
    auto it = node->xattrs.find(std::string(name));
    if (it == node->xattrs.end()) return Err::ENODATA_;
    node->xattrs.erase(it);
    node->times.ctime = tick();
    if (logging_effects()) {
        Effect e;
        e.op = EffectOp::RemoveXattr;
        e.ino = ino;
        e.name = std::string(name);
        emit_effect(std::move(e));
    }
    return {};
}

// ---- accounting ----------------------------------------------------------------

FsUsage FileSystem::usage() const {
    return {config_.capacity_blocks, used_blocks_, config_.max_inodes,
            inodes_.size()};
}

}  // namespace iocov::vfs
