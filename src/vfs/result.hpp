// Result<T>: value-or-errno return type for every VFS operation.
//
// The kernel convention (negative return encodes errno) survives at the
// syscall boundary; inside the VFS we want type safety, so operations
// return Result<T> and the syscall layer flattens it to int64.  This is
// a minimal std::expected stand-in (the toolchain here is C++20).
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "abi/errno.hpp"

namespace iocov::vfs {

template <typename T>
class Result {
  public:
    Result(T value) : v_(std::move(value)) {}          // NOLINT(implicit)
    Result(abi::Err error) : v_(error) {               // NOLINT(implicit)
        assert(error != abi::Err::Ok && "use a value for success");
    }

    bool ok() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return ok(); }

    const T& value() const& {
        assert(ok());
        return std::get<T>(v_);
    }
    T& value() & {
        assert(ok());
        return std::get<T>(v_);
    }
    T&& value() && {
        assert(ok());
        return std::get<T>(std::move(v_));
    }

    abi::Err error() const {
        assert(!ok());
        return std::get<abi::Err>(v_);
    }

    /// Error code if failed, Err::Ok if succeeded (for logging).
    abi::Err status() const { return ok() ? abi::Err::Ok : error(); }

  private:
    std::variant<T, abi::Err> v_;
};

/// Result<void> equivalent.
class Status {
  public:
    Status() = default;                                 // success
    Status(abi::Err error) : err_(error) {}             // NOLINT(implicit)

    bool ok() const { return err_ == abi::Err::Ok; }
    explicit operator bool() const { return ok(); }
    abi::Err error() const {
        assert(!ok());
        return err_;
    }
    abi::Err status() const { return err_; }

  private:
    abi::Err err_ = abi::Err::Ok;
};

/// Propagation helper: evaluates expr; on error returns it from the
/// enclosing function; on success binds the value.
#define IOCOV_TRY(var, expr)                      \
    auto var##_res = (expr);                      \
    if (!var##_res.ok()) return var##_res.error(); \
    auto& var = var##_res.value()

#define IOCOV_TRY_STATUS(expr)                      \
    do {                                            \
        auto try_status_ = (expr);                  \
        if (!try_status_.ok()) return try_status_.error(); \
    } while (0)

}  // namespace iocov::vfs
