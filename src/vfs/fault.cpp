#include "vfs/fault.hpp"

#include <algorithm>

namespace iocov::vfs {

namespace {

/// SplitMix64 step (same generator as testers::Rng, inlined here so the
/// VFS layer stays dependency-free).  Identical on every platform —
/// probabilistic faults must replay exactly under the campaign's seed.
std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

bool matches(const std::string& armed_op, std::string_view op) {
    return armed_op == "*" || armed_op == op;
}

}  // namespace

void FaultInjector::arm(std::string op, abi::Err err, unsigned skip) {
    one_shots_.push_back({std::move(op), err, skip});
}

void FaultInjector::arm_periodic(std::string op, abi::Err err,
                                 unsigned period) {
    if (period == 0) period = 1;
    periodics_.push_back({std::move(op), err, period, 0});
}

void FaultInjector::arm_probabilistic(std::string op, abi::Err err,
                                      unsigned permille,
                                      std::uint64_t seed) {
    if (permille > 1000) permille = 1000;
    probabilistics_.push_back({std::move(op), err, permille, seed});
}

std::optional<abi::Err> FaultInjector::check(std::string_view op) {
    // One-shots form a queue per call: only the frontmost matching
    // entry is consulted, so a single call never decrements the skip of
    // several queued entries at once (arming "*" twice with skip=1 must
    // fire on the 2nd and 3rd calls, not twice on the 2nd).
    for (auto it = one_shots_.begin(); it != one_shots_.end(); ++it) {
        if (!matches(it->op, op)) continue;
        if (it->skip > 0) {
            --it->skip;
            break;  // this call is consumed as a skip; queue intact
        }
        const abi::Err err = it->err;
        one_shots_.erase(it);
        record_fired(op, err);
        return err;
    }
    for (auto& p : periodics_) {
        if (!matches(p.op, op)) continue;
        if (++p.count % p.period == 0) {
            record_fired(op, p.err);
            return p.err;
        }
    }
    for (auto& p : probabilistics_) {
        if (!matches(p.op, op)) continue;
        if (p.permille > 0 && splitmix64(p.rng_state) % 1000 < p.permille) {
            record_fired(op, p.err);
            return p.err;
        }
    }
    return std::nullopt;
}

bool FaultInjector::disarm(std::string_view op, abi::Err err) {
    for (auto it = one_shots_.begin(); it != one_shots_.end(); ++it) {
        if (it->op == op && it->err == err) {
            one_shots_.erase(it);
            return true;
        }
    }
    return false;
}

void FaultInjector::clear() {
    one_shots_.clear();
    periodics_.clear();
    probabilistics_.clear();
}

void FaultInjector::record_fired(std::string_view op, abi::Err err) {
    ++fired_total_;
    auto it = std::lower_bound(
        fired_.begin(), fired_.end(), std::make_pair(op, err),
        [](const FiredStat& a, const std::pair<std::string_view, abi::Err>& b) {
            if (a.op != b.first) return a.op < b.first;
            return static_cast<int>(a.err) < static_cast<int>(b.second);
        });
    if (it != fired_.end() && it->op == op && it->err == err) {
        ++it->count;
        return;
    }
    fired_.insert(it, {std::string(op), err, 1});
}

std::vector<FaultInjector::FiredStat> FaultInjector::stats() const {
    return fired_;
}

std::uint64_t FaultInjector::fired(std::string_view op, abi::Err err) const {
    for (const auto& s : fired_)
        if (s.op == op && s.err == err) return s.count;
    return 0;
}

void FaultInjector::clear_stats() {
    fired_.clear();
    fired_total_ = 0;
}

// ---- ScopedFault -----------------------------------------------------------

ScopedFault::ScopedFault(FaultInjector& injector, std::string op,
                         abi::Err err, unsigned skip)
    : injector_(injector),
      op_(std::move(op)),
      err_(err),
      fired_before_(injector.fired(op_, err)) {
    injector_.arm(op_, err_, skip);
}

ScopedFault::~ScopedFault() {
    if (!fired()) injector_.disarm(op_, err_);
}

bool ScopedFault::fired() const {
    return injector_.fired(op_, err_) > fired_before_;
}

}  // namespace iocov::vfs
