#include "vfs/fault.hpp"

namespace iocov::vfs {

void FaultInjector::arm(std::string op, abi::Err err, unsigned skip) {
    one_shots_.push_back({std::move(op), err, skip});
}

void FaultInjector::arm_periodic(std::string op, abi::Err err,
                                 unsigned period) {
    if (period == 0) period = 1;
    periodics_.push_back({std::move(op), err, period, 0});
}

std::optional<abi::Err> FaultInjector::check(std::string_view op) {
    for (auto it = one_shots_.begin(); it != one_shots_.end(); ++it) {
        if (it->op != "*" && it->op != op) continue;
        if (it->skip > 0) {
            --it->skip;
            continue;
        }
        const abi::Err err = it->err;
        one_shots_.erase(it);
        return err;
    }
    for (auto& p : periodics_) {
        if (p.op != "*" && p.op != op) continue;
        if (++p.count % p.period == 0) return p.err;
    }
    return std::nullopt;
}

void FaultInjector::clear() {
    one_shots_.clear();
    periodics_.clear();
}

}  // namespace iocov::vfs
