// Deterministic fault injection for hard-to-reach error paths.
//
// Some errno values cannot arise from argument validation alone — ENOMEM
// needs memory pressure, EIO a bad disk, EINTR a signal.  The paper
// notes these are the hardest outputs to cover.  FaultInjector lets a
// test or workload arm "the Nth next call to syscall X fails with E".
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "abi/errno.hpp"

namespace iocov::vfs {

class FaultInjector {
  public:
    /// Arms a one-shot fault: after `skip` matching calls pass through,
    /// the next call whose operation name equals `op` (or any call, for
    /// op == "*") fails with `err`.
    void arm(std::string op, abi::Err err, unsigned skip = 0);

    /// Arms a recurring fault: every `period`-th matching call fails.
    void arm_periodic(std::string op, abi::Err err, unsigned period);

    /// Consults the injector; returns the errno to fail with, if any.
    std::optional<abi::Err> check(std::string_view op);

    void clear();
    bool empty() const { return one_shots_.empty() && periodics_.empty(); }

  private:
    struct OneShot {
        std::string op;
        abi::Err err;
        unsigned skip;
    };
    struct Periodic {
        std::string op;
        abi::Err err;
        unsigned period;
        unsigned count = 0;
    };
    std::deque<OneShot> one_shots_;
    std::deque<Periodic> periodics_;
};

}  // namespace iocov::vfs
