// Deterministic fault injection for hard-to-reach error paths.
//
// Some errno values cannot arise from argument validation alone — ENOMEM
// needs memory pressure, EIO a bad disk, EINTR a signal.  The paper
// notes these are the hardest outputs to cover.  FaultInjector lets a
// test or workload arm "the Nth next call to syscall X fails with E",
// a recurring "every Nth call" fault, or a seeded probabilistic fault
// ("each matching call fails with probability p"), and records which
// faults actually fired so campaigns can verify injection coverage.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "abi/errno.hpp"

namespace iocov::vfs {

class FaultInjector {
  public:
    /// Arms a one-shot fault: after `skip` matching calls pass through,
    /// the next call whose operation name equals `op` (or any call, for
    /// op == "*") fails with `err`.  Armed one-shots form a queue: a
    /// call is counted against (and can fire) only the frontmost
    /// matching entry, so arming the same op twice yields two distinct
    /// consecutive faults, not two counters racing on the same call.
    void arm(std::string op, abi::Err err, unsigned skip = 0);

    /// Arms a recurring fault: every `period`-th matching call fails.
    void arm_periodic(std::string op, abi::Err err, unsigned period);

    /// Arms a probabilistic fault: each matching call fails with
    /// probability `permille`/1000, driven by a private SplitMix64
    /// stream seeded with `seed` — the same seed over the same call
    /// sequence fires the same faults (reproducible chaos runs).
    void arm_probabilistic(std::string op, abi::Err err, unsigned permille,
                           std::uint64_t seed);

    /// Consults the injector; returns the errno to fail with, if any.
    std::optional<abi::Err> check(std::string_view op);

    /// Removes the first armed one-shot matching (op, err) exactly.
    /// Returns false if none was armed (it already fired or never was).
    bool disarm(std::string_view op, abi::Err err);

    void clear();
    bool empty() const {
        return one_shots_.empty() && periodics_.empty() &&
               probabilistics_.empty();
    }

    // ---- fired-fault statistics -------------------------------------

    /// One (op, errno) row of fired-fault counts.
    struct FiredStat {
        std::string op;
        abi::Err err;
        std::uint64_t count = 0;
    };

    /// Every fault fired since construction (or clear_stats), sorted by
    /// (op, errno value) so identical runs report identically.
    std::vector<FiredStat> stats() const;

    /// Fired count for one (op, errno) pair.
    std::uint64_t fired(std::string_view op, abi::Err err) const;

    std::uint64_t fired_total() const { return fired_total_; }
    void clear_stats();

  private:
    struct OneShot {
        std::string op;
        abi::Err err;
        unsigned skip;
    };
    struct Periodic {
        std::string op;
        abi::Err err;
        unsigned period;
        unsigned count = 0;
    };
    struct Probabilistic {
        std::string op;
        abi::Err err;
        unsigned permille;
        std::uint64_t rng_state;
    };

    void record_fired(std::string_view op, abi::Err err);

    std::deque<OneShot> one_shots_;
    std::deque<Periodic> periodics_;
    std::deque<Probabilistic> probabilistics_;
    /// Sorted by (op, errno value); linear scan — campaigns arm a
    /// handful of faults, not thousands.
    std::vector<FiredStat> fired_;
    std::uint64_t fired_total_ = 0;
};

/// RAII guard arming a one-shot fault for a lexical scope.  Disarms the
/// fault on destruction if it has not fired, so a test that returns
/// early cannot leak an armed fault into later, unrelated calls.
class ScopedFault {
  public:
    ScopedFault(FaultInjector& injector, std::string op, abi::Err err,
                unsigned skip = 0);
    ~ScopedFault();

    ScopedFault(const ScopedFault&) = delete;
    ScopedFault& operator=(const ScopedFault&) = delete;

    /// True once the armed fault has fired (it is no longer queued).
    bool fired() const;

  private:
    FaultInjector& injector_;
    std::string op_;
    abi::Err err_;
    std::uint64_t fired_before_;
};

}  // namespace iocov::vfs
