// Pathname decomposition helpers (pure string logic; resolution against
// the namespace lives in FileSystem).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace iocov::vfs {

/// Splits a pathname into components, dropping empty segments from
/// duplicate slashes.  "." and ".." are kept (resolution handles them).
/// "/" yields an empty vector; "a//b/./.." yields {"a","b",".",".."}.
std::vector<std::string> split_path(std::string_view path);

/// True if the path begins with '/'.
bool is_absolute(std::string_view path);

/// True if the path ends with '/' (forces directory semantics on the
/// final component, as the kernel's trailing-slash handling does).
bool has_trailing_slash(std::string_view path);

/// Joins components under a root ("/" + a/b/c). For diagnostics only.
std::string join_path(const std::vector<std::string>& components);

}  // namespace iocov::vfs
