// Persistence-effect records: the VFS's write-ahead log of durable state.
//
// Crash-consistency testing (B3 / CrashMonkey style) needs to know, for
// every successful mutation, exactly what would have to reach the disk
// for that mutation to survive a crash.  The FileSystem emits one Effect
// per successful mutator call — dirent changes, data extents, metadata
// updates — plus Barrier records at every persistence point (fsync,
// fdatasync, sync, syncfs, O_SYNC writes).  A crash replayer can then
// rebuild the file system from any log prefix, and reorder or tear the
// un-barriered tail, without re-deriving semantics from syscall traces.
//
// Effects are *redo* records: they carry the post-operation result
// (resulting mode/owner/bytes), not the caller's request, so replaying
// them with superuser credentials reproduces the state without running
// the permission paths again.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "vfs/inode.hpp"
#include "vfs/types.hpp"

namespace iocov::vfs {

/// What kind of durable mutation an Effect records.
enum class EffectOp : std::uint8_t {
    Create,           ///< new inode linked at (parent, name)
    CreateAnonymous,  ///< O_TMPFILE inode; no dirent references it
    ReleaseAnonymous, ///< last fd on an anonymous inode closed; inode freed
    Link,             ///< extra dirent (parent, name) -> existing ino
    Unlink,           ///< dirent (parent, name) removed
    Rmdir,            ///< empty directory (parent, name) removed and freed
    Rename,           ///< (parent, name) moved to (parent2, name2)
    Write,            ///< bytes or a fill pattern written at [off, off+len)
    Truncate,         ///< file size set to `size`
    SetMode,          ///< resulting mode bits (type | perms)
    SetOwner,         ///< resulting uid/gid
    SetXattr,         ///< xattr `name` set to `bytes`
    RemoveXattr,      ///< xattr `name` removed
    Barrier,          ///< persistence point; see BarrierKind + scope
};

/// Which primitive created a persistence barrier.  Scoped kinds (Fsync,
/// Fdatasync, OSync) persist one file's data; global kinds (Sync,
/// Syncfs) persist every file's.  Under this VFS's ordered-journal
/// model, *every* barrier commits all metadata logged so far.
enum class BarrierKind : std::uint8_t {
    Fsync,
    Fdatasync,
    Sync,
    Syncfs,
    OSync,  ///< implicit barrier after a successful O_SYNC/O_DSYNC write
};

/// True for barriers whose data scope is the whole file system rather
/// than the single inode in Effect::ino.
bool barrier_is_global(BarrierKind kind);

struct Effect {
    EffectOp op = EffectOp::Barrier;
    BarrierKind barrier = BarrierKind::Fsync;

    /// Primary inode the effect applies to (the created/linked/written
    /// inode; kInvalidInode for global barriers).
    InodeId ino = kInvalidInode;
    /// Dirent parent (Create/Link/Unlink/Rmdir, rename source).
    InodeId parent = kInvalidInode;
    /// Rename destination parent.
    InodeId parent2 = kInvalidInode;
    /// Inode a rename displaced (kInvalidInode if none).
    InodeId replaced = kInvalidInode;

    /// Resulting mode (type | perm) for Create/SetMode.
    abi::mode_t_ mode = 0;
    std::uint32_t uid = 0;
    std::uint32_t gid = 0;

    std::uint64_t off = 0;
    std::uint64_t len = 0;   ///< pattern-write length (bytes empty)
    std::uint64_t size = 0;  ///< Truncate target size
    std::byte fill{0};       ///< pattern-write fill byte

    /// Dirent name, or xattr name for SetXattr/RemoveXattr.
    std::string name;
    /// Rename destination name, or symlink target for Create.
    std::string name2;
    /// Write payload or xattr value.
    std::vector<std::byte> bytes;

    /// Created inode is a directory (Create only).
    bool is_dir = false;
    /// DeviceState for special-node creation, as a raw byte.
    std::uint8_t device = 0;

    /// One-line rendering for logs and test failure messages.
    std::string to_string() const;
};

const char* effect_op_name(EffectOp op);
const char* barrier_kind_name(BarrierKind kind);

/// Observer the FileSystem notifies after every successful mutation.
/// Implementations must not call back into the emitting FileSystem.
class EffectObserver {
  public:
    virtual ~EffectObserver() = default;
    virtual void on_effect(const Effect& effect) = 0;
};

}  // namespace iocov::vfs
