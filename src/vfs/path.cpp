#include "vfs/path.hpp"

namespace iocov::vfs {

std::vector<std::string> split_path(std::string_view path) {
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < path.size()) {
        while (i < path.size() && path[i] == '/') ++i;
        std::size_t j = i;
        while (j < path.size() && path[j] != '/') ++j;
        if (j > i) out.emplace_back(path.substr(i, j - i));
        i = j;
    }
    return out;
}

bool is_absolute(std::string_view path) {
    return !path.empty() && path.front() == '/';
}

bool has_trailing_slash(std::string_view path) {
    return path.size() > 1 && path.back() == '/';
}

std::string join_path(const std::vector<std::string>& components) {
    if (components.empty()) return "/";
    std::string out;
    for (const auto& c : components) {
        out += '/';
        out += c;
    }
    return out;
}

}  // namespace iocov::vfs
