#include "vfs/effect.hpp"

#include <sstream>

namespace iocov::vfs {

bool barrier_is_global(BarrierKind kind) {
    return kind == BarrierKind::Sync || kind == BarrierKind::Syncfs;
}

const char* effect_op_name(EffectOp op) {
    switch (op) {
        case EffectOp::Create: return "create";
        case EffectOp::CreateAnonymous: return "create_anon";
        case EffectOp::ReleaseAnonymous: return "release_anon";
        case EffectOp::Link: return "link";
        case EffectOp::Unlink: return "unlink";
        case EffectOp::Rmdir: return "rmdir";
        case EffectOp::Rename: return "rename";
        case EffectOp::Write: return "write";
        case EffectOp::Truncate: return "truncate";
        case EffectOp::SetMode: return "setmode";
        case EffectOp::SetOwner: return "setowner";
        case EffectOp::SetXattr: return "setxattr";
        case EffectOp::RemoveXattr: return "removexattr";
        case EffectOp::Barrier: return "barrier";
    }
    return "?";
}

const char* barrier_kind_name(BarrierKind kind) {
    switch (kind) {
        case BarrierKind::Fsync: return "fsync";
        case BarrierKind::Fdatasync: return "fdatasync";
        case BarrierKind::Sync: return "sync";
        case BarrierKind::Syncfs: return "syncfs";
        case BarrierKind::OSync: return "osync";
    }
    return "?";
}

std::string Effect::to_string() const {
    std::ostringstream os;
    os << effect_op_name(op);
    switch (op) {
        case EffectOp::Barrier:
            os << '[' << barrier_kind_name(barrier) << ']';
            if (ino != kInvalidInode) os << " ino=" << ino;
            else os << " global";
            return os.str();
        case EffectOp::Create:
            os << ' ' << parent << '/' << name << " -> ino " << ino
               << " mode=" << std::oct << mode << std::dec;
            if (!name2.empty()) os << " target=" << name2;
            break;
        case EffectOp::CreateAnonymous:
        case EffectOp::ReleaseAnonymous:
            os << " ino=" << ino;
            break;
        case EffectOp::Link:
        case EffectOp::Unlink:
        case EffectOp::Rmdir:
            os << ' ' << parent << '/' << name << " ino=" << ino;
            break;
        case EffectOp::Rename:
            os << ' ' << parent << '/' << name << " -> " << parent2 << '/'
               << name2 << " ino=" << ino;
            if (replaced != kInvalidInode) os << " replaced=" << replaced;
            break;
        case EffectOp::Write:
            os << " ino=" << ino << " off=" << off << " len="
               << (bytes.empty() ? len : bytes.size());
            if (bytes.empty()) os << " fill=" << static_cast<unsigned>(fill);
            break;
        case EffectOp::Truncate:
            os << " ino=" << ino << " size=" << size;
            break;
        case EffectOp::SetMode:
            os << " ino=" << ino << " mode=" << std::oct << mode << std::dec;
            break;
        case EffectOp::SetOwner:
            os << " ino=" << ino << " uid=" << uid << " gid=" << gid;
            break;
        case EffectOp::SetXattr:
        case EffectOp::RemoveXattr:
            os << " ino=" << ino << " name=" << name;
            break;
    }
    return os.str();
}

}  // namespace iocov::vfs
