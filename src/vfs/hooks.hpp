// Instrumentation hooks: the Gcov/bug-injection seam.
//
// The paper's bug study instruments kernel file-system code with Gcov
// and asks, per bug-fix commit, "did the suite execute the buggy region,
// and did it trigger the bug?".  Our analog: the VFS calls probe() at
// named sites (function entries, interesting branches), and inject()
// at sites where an armed synthetic bug may override the outcome.
// The bugstudy module implements this interface; production use leaves
// it null (zero overhead beyond a pointer test).
#pragma once

#include <optional>
#include <string_view>

#include "abi/errno.hpp"

namespace iocov::vfs {

class VfsHooks {
  public:
    virtual ~VfsHooks() = default;

    /// Coverage probe: the named code site executed.
    virtual void probe(std::string_view site) = 0;

    /// Fault/bug injection: return an errno to force this site to fail,
    /// or nullopt to proceed normally.
    virtual std::optional<abi::Err> inject(std::string_view site) = 0;
};

}  // namespace iocov::vfs
