// Common VFS value types: identifiers, credentials, stat, configuration.
#pragma once

#include <cstdint>

#include "abi/stat_mode.hpp"

namespace iocov::vfs {

/// Inode number. 0 is invalid; the root directory is always inode 1.
using InodeId = std::uint64_t;
inline constexpr InodeId kInvalidInode = 0;
inline constexpr InodeId kRootInode = 1;

/// Caller identity for permission checks. uid 0 is the superuser.
struct Credentials {
    std::uint32_t uid = 0;
    std::uint32_t gid = 0;

    bool is_superuser() const { return uid == 0; }

    static Credentials root() { return {0, 0}; }
    static Credentials user(std::uint32_t uid, std::uint32_t gid) {
        return {uid, gid};
    }
};

/// Logical timestamps (ticks of the file system's operation clock; real
/// wall-clock time would make traces nondeterministic).
struct Timestamps {
    std::uint64_t atime = 0;
    std::uint64_t mtime = 0;
    std::uint64_t ctime = 0;
};

/// stat(2)-like metadata snapshot.
struct Stat {
    InodeId ino = kInvalidInode;
    abi::mode_t_ mode = 0;
    std::uint32_t uid = 0;
    std::uint32_t gid = 0;
    std::uint32_t nlink = 0;
    std::uint64_t size = 0;
    std::uint64_t blocks = 0;  ///< allocated 512-byte units, as stat(2)
    Timestamps times;
};

/// Mount-time configuration. Defaults model a small but realistic ext4
/// volume so capacity/quota error paths are reachable in tests.
struct FsConfig {
    std::uint64_t block_size = 4096;
    /// Data capacity in blocks (default 4 GiB worth).
    std::uint64_t capacity_blocks = (4ULL << 30) / 4096;
    std::uint64_t max_inodes = 1 << 16;
    /// Per-file size limit (ext4's 16 TiB default, scaled to test size).
    std::uint64_t max_file_size = 16ULL << 40;
    /// Maximum hard links per inode (ext4: 65000).
    std::uint32_t max_links = 65000;
    /// Per-uid block quota; 0 disables quotas.
    std::uint64_t quota_blocks_per_uid = 0;
    /// Mounted read-only (every mutation fails with EROFS).
    bool read_only = false;
    /// Bytes of in-inode space available for xattrs (models ext4's
    /// i_extra_isize region from the paper's Fig. 1 bug).
    std::uint32_t inode_xattr_capacity = 256;
};

/// statfs(2)-like usage snapshot.
struct FsUsage {
    std::uint64_t total_blocks = 0;
    std::uint64_t used_blocks = 0;
    std::uint64_t total_inodes = 0;
    std::uint64_t used_inodes = 0;
};

}  // namespace iocov::vfs
