#include "vfs/fsck.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace iocov::vfs {

namespace {

std::string n(std::uint64_t v) { return std::to_string(v); }

}  // namespace

const char* fsck_code_name(FsckCode code) {
    switch (code) {
        case FsckCode::DanglingDirent: return "dangling-dirent";
        case FsckCode::LinkCountMismatch: return "link-count-mismatch";
        case FsckCode::ZeroLinkInode: return "zero-link-inode";
        case FsckCode::OrphanInode: return "orphan-inode";
        case FsckCode::MultipleDirParents: return "multiple-dir-parents";
        case FsckCode::BadDotDot: return "bad-dotdot";
        case FsckCode::DirectoryCycle: return "directory-cycle";
        case FsckCode::DataOnNonFile: return "data-on-non-file";
        case FsckCode::AllocationBeyondEof: return "allocation-beyond-eof";
        case FsckCode::BlockSumMismatch: return "block-sum-mismatch";
        case FsckCode::QuotaSumMismatch: return "quota-sum-mismatch";
        case FsckCode::StaleFdInode: return "stale-fd-inode";
    }
    return "unknown";
}

std::size_t FsckReport::count(FsckCode code) const {
    return static_cast<std::size_t>(
        std::count_if(violations.begin(), violations.end(),
                      [&](const FsckViolation& v) { return v.code == code; }));
}

std::string FsckViolation::to_string() const {
    std::string out = "[";
    out += fsck_code_name(code);
    out += "]";
    if (ino != kInvalidInode) out += " inode " + n(ino);
    out += ": " + detail;
    return out;
}

std::string FsckReport::to_string() const {
    if (clean())
        return "fsck: clean (" + n(inodes_checked) + " inodes, " +
               n(dirents_checked) + " dirents)";
    std::string out = "fsck: " + n(violations.size()) + " violation(s)\n";
    for (const auto& v : violations) out += "  " + v.to_string() + "\n";
    return out;
}

FsckReport fsck(const FileSystem& fs, const FsckOptions& opts) {
    FsckReport rep;
    const auto& table = fs.inodes();
    const auto& cfg = fs.config();

    auto add = [&](FsckCode code, InodeId ino, std::string detail) {
        rep.violations.push_back({code, ino, std::move(detail)});
    };

    // Pass 1: count how many dirents reference each inode.
    std::map<InodeId, std::uint64_t> refs;
    for (const auto& [id, node] : table) {
        if (!node.is_dir()) continue;
        for (const auto& [name, child] : node.dirents) {
            ++rep.dirents_checked;
            if (!table.count(child)) {
                add(FsckCode::DanglingDirent, id,
                    "entry '" + name + "' names missing inode " + n(child));
                continue;
            }
            ++refs[child];
        }
    }

    const std::set<InodeId> pinned(opts.pinned_inodes.begin(),
                                   opts.pinned_inodes.end());
    for (InodeId ino : pinned) {
        if (!table.count(ino))
            add(FsckCode::StaleFdInode, ino,
                "an open fd references an inode absent from the table");
    }

    // Pass 2: per-inode invariants + accounting sums.
    std::uint64_t total_blocks = 0;
    std::map<std::uint32_t, std::uint64_t> uid_blocks;

    for (const auto& [id, node] : table) {
        ++rep.inodes_checked;
        const auto rit = refs.find(id);
        const std::uint64_t r = rit == refs.end() ? 0 : rit->second;

        if (node.nlink == 0)
            add(FsckCode::ZeroLinkInode, id, "nlink 0 but inode not freed");

        if (node.is_dir()) {
            if (id == kRootInode) {
                if (r != 0)
                    add(FsckCode::MultipleDirParents, id,
                        "root referenced by " + n(r) + " dirent(s)");
            } else if (r == 0) {
                add(FsckCode::OrphanInode, id,
                    "directory has no parent dirent");
            } else if (r > 1) {
                add(FsckCode::MultipleDirParents, id,
                    "directory referenced by " + n(r) + " dirents");
            }

            // ".." correctness: the parent pointer must name a live
            // directory that actually holds an entry for this inode.
            const Inode* parent = fs.find(node.parent);
            if (id == kRootInode) {
                if (node.parent != kRootInode)
                    add(FsckCode::BadDotDot, id,
                        "root '..' must be the root, is " + n(node.parent));
            } else if (!parent) {
                add(FsckCode::BadDotDot, id,
                    "parent inode " + n(node.parent) + " does not exist");
            } else if (!parent->is_dir()) {
                add(FsckCode::BadDotDot, id,
                    "parent inode " + n(node.parent) + " is not a directory");
            } else {
                const bool referenced = std::any_of(
                    parent->dirents.begin(), parent->dirents.end(),
                    [&](const auto& e) { return e.second == id; });
                if (!referenced)
                    add(FsckCode::BadDotDot, id,
                        "parent inode " + n(node.parent) +
                            " has no entry for this directory");
            }

            // nlink = "." + parent entry (or root's own "..") + one ".."
            // per live subdirectory.
            std::uint64_t subdirs = 0;
            for (const auto& [name, child] : node.dirents) {
                const Inode* c = fs.find(child);
                if (c && c->is_dir()) ++subdirs;
            }
            const std::uint64_t expect = 2 + subdirs;
            if (node.nlink != expect)
                add(FsckCode::LinkCountMismatch, id,
                    "nlink " + n(node.nlink) + ", expected " + n(expect) +
                        " (2 + " + n(subdirs) + " subdirs)");

            // Acyclicity: the parent chain must reach the root.  A chain
            // broken by a dead or non-directory parent is BadDotDot (above),
            // not a cycle.
            InodeId cur = id;
            bool reached = false, broken = false;
            for (std::uint64_t hops = 0; hops <= table.size() + 1; ++hops) {
                if (cur == kRootInode) {
                    reached = true;
                    break;
                }
                const Inode* c = fs.find(cur);
                if (!c || !c->is_dir()) {
                    broken = true;
                    break;
                }
                cur = c->parent;
            }
            if (!reached && !broken)
                add(FsckCode::DirectoryCycle, id,
                    "parent chain never reaches the root");
        } else {
            if (r == 0) {
                if (pinned.count(id)) {
                    // O_TMPFILE: pinned by the fd, nlink held at 1.
                    if (node.nlink != 1)
                        add(FsckCode::LinkCountMismatch, id,
                            "anonymous inode nlink " + n(node.nlink) +
                                ", expected 1");
                } else {
                    add(FsckCode::OrphanInode, id,
                        "no dirent references the inode and no fd pins it");
                }
            } else if (node.nlink != r) {
                add(FsckCode::LinkCountMismatch, id,
                    "nlink " + n(node.nlink) + ", but " + n(r) +
                        " dirent reference(s)");
            }
        }

        // File size vs. block accounting.
        if (node.is_reg()) {
            const std::uint64_t size = node.data.size();
            if (node.data.allocated_bytes() > size ||
                node.data.next_data(size).has_value())
                add(FsckCode::AllocationBeyondEof, id,
                    "extents mapped at or past size " + n(size));
        } else if (node.data.size() != 0) {
            add(FsckCode::DataOnNonFile, id,
                "non-regular inode carries " + n(node.data.size()) +
                    " bytes of file data");
        }

        const std::uint64_t blocks = node.data.allocated_blocks(cfg.block_size);
        total_blocks += blocks;
        if (node.uid != 0) uid_blocks[node.uid] += blocks;
    }

    if (total_blocks != fs.used_blocks())
        add(FsckCode::BlockSumMismatch, kInvalidInode,
            "used_blocks " + n(fs.used_blocks()) +
                ", sum of per-inode allocations " + n(total_blocks));

    // Quota ledger: per-uid sums must match exactly (missing entry == 0).
    if (cfg.quota_blocks_per_uid > 0) {
        std::set<std::uint32_t> uids;
        for (const auto& [uid, blocks] : uid_blocks) uids.insert(uid);
        for (const auto& [uid, blocks] : fs.quota_snapshot()) uids.insert(uid);
        for (std::uint32_t uid : uids) {
            const auto ait = uid_blocks.find(uid);
            const std::uint64_t actual =
                ait == uid_blocks.end() ? 0 : ait->second;
            const auto& ledger_map = fs.quota_snapshot();
            const auto lit = ledger_map.find(uid);
            const std::uint64_t ledger = lit == ledger_map.end() ? 0 : lit->second;
            if (actual != ledger)
                add(FsckCode::QuotaSumMismatch, kInvalidInode,
                    "uid " + n(uid) + ": ledger " + n(ledger) +
                        " blocks, per-inode sum " + n(actual));
        }
    } else {
        for (const auto& [uid, blocks] : fs.quota_snapshot()) {
            if (blocks)
                add(FsckCode::QuotaSumMismatch, kInvalidInode,
                    "quotas disabled but uid " + n(uid) + " has " +
                        n(blocks) + " blocks charged");
        }
    }

    return rep;
}

}  // namespace iocov::vfs
