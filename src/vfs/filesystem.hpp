// The in-memory file system under test.
//
// This is the substrate standing in for Ext4: an inode-based namespace
// with hard links, symlinks, permissions, sparse regular files, extended
// attributes, capacity and quota accounting, and deliberately complete
// POSIX error behaviour.  IOCov observes only the syscall boundary, so a
// VFS that validates arguments and produces errno values the way the
// kernel does exercises the same input/output space the paper measures.
//
// Division of labour with the syscall layer (src/syscall): this class is
// inode-granular (resolve paths, operate on inodes); file descriptors,
// open-flag semantics, offsets, and per-process state live above it.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "abi/errno.hpp"
#include "abi/stat_mode.hpp"
#include "vfs/effect.hpp"
#include "vfs/fault.hpp"
#include "vfs/hooks.hpp"
#include "vfs/inode.hpp"
#include "vfs/result.hpp"
#include "vfs/types.hpp"

namespace iocov::vfs {

/// Path-resolution behaviour, covering both classic lookup flags and
/// openat2(2) RESOLVE_* restrictions.
struct ResolveOpts {
    /// Directory the walk starts from for relative paths.
    InodeId base = kRootInode;
    /// Follow a symlink in the final component (false = O_NOFOLLOW /
    /// lstat semantics: a final symlink resolves to the link itself).
    bool follow_final = true;
    /// RESOLVE_NO_SYMLINKS: any symlink anywhere fails with ELOOP.
    bool no_symlinks = false;
    /// RESOLVE_NO_XDEV: crossing an inode marked as a mountpoint fails
    /// with EXDEV.
    bool no_xdev = false;
    /// RESOLVE_BENEATH: absolute paths and ".." escaping `base` fail
    /// with EXDEV.
    bool beneath = false;
};

/// Result of resolving all but the final component.
struct ParentAndName {
    InodeId parent = kInvalidInode;
    std::string name;
    /// The original path had a trailing slash (final entry must be a
    /// directory; creation of regular files must fail with EISDIR).
    bool trailing_slash = false;
};

class FileSystem {
  public:
    explicit FileSystem(FsConfig config = {});

    FileSystem(const FileSystem&) = delete;
    FileSystem& operator=(const FileSystem&) = delete;

    // ---- instrumentation --------------------------------------------

    /// Installs coverage/bug hooks (bugstudy module); nullptr disables.
    void set_hooks(VfsHooks* hooks) { hooks_ = hooks; }

    /// Fault injector for environmental errors (EIO, ENOMEM, ...).
    FaultInjector& faults() { return faults_; }

    /// Installs a persistence-effect observer (crash testing); nullptr
    /// disables.  Every successful mutation emits one Effect; barriers
    /// are emitted by sync_inode()/sync_all().
    void set_effect_observer(EffectObserver* observer) {
        effects_ = observer;
    }

    /// Passthrough instrumentation for the syscall layer, which probes
    /// open-path sites (e.g. "ext4_create") through the same hooks.
    void probe_site(std::string_view site) { hook_probe(site); }
    std::optional<abi::Err> inject_site(std::string_view site) {
        return hook_inject(site);
    }

    // ---- namespace operations ---------------------------------------

    /// Resolves `path` to an inode. Errors: ENOENT, ENOTDIR, EACCES
    /// (missing search permission), ELOOP, ENAMETOOLONG, EXDEV.
    Result<InodeId> resolve(std::string_view path, const Credentials& cred,
                            const ResolveOpts& opts = {});

    /// Resolves the parent directory of `path`'s final component.
    /// The final component itself may or may not exist.
    Result<ParentAndName> resolve_parent(std::string_view path,
                                         const Credentials& cred,
                                         const ResolveOpts& opts = {});

    /// Creates a regular file entry. Errors: EEXIST, EACCES, ENOSPC
    /// (inode exhaustion), EDQUOT, EROFS, ENOTDIR, ENAMETOOLONG.
    Result<InodeId> create_file(InodeId parent, std::string_view name,
                                abi::mode_t_ perm, const Credentials& cred);

    /// Creates a directory. Same errors as create_file plus EMLINK.
    Result<InodeId> make_dir(InodeId parent, std::string_view name,
                             abi::mode_t_ perm, const Credentials& cred);

    /// Creates a symlink with the given target string.
    Result<InodeId> make_symlink(InodeId parent, std::string_view name,
                                 std::string_view target,
                                 const Credentials& cred);

    /// Creates a special node (device/fifo) — test-setup helper to make
    /// device error paths (ENXIO/ENODEV/EBUSY) reachable via open(2).
    Result<InodeId> make_special(InodeId parent, std::string_view name,
                                 abi::mode_t_ mode, DeviceState device,
                                 const Credentials& cred);

    /// Creates an unnamed regular file (O_TMPFILE): the inode exists but
    /// no directory references it.  `dir` is the directory named in the
    /// open call, used for the write-permission check.  The caller must
    /// release_anonymous() when the last fd closes.
    Result<InodeId> create_anonymous(InodeId dir, abi::mode_t_ perm,
                                     const Credentials& cred);

    /// Frees an inode created by create_anonymous.
    void release_anonymous(InodeId ino);

    /// Adds a hard link to an existing inode. Errors: EEXIST, EMLINK,
    /// EPERM (directories), EACCES, EROFS.
    Status link(InodeId target, InodeId parent, std::string_view name,
                const Credentials& cred);

    /// Removes a non-directory entry. Errors: ENOENT, EISDIR, EACCES,
    /// EROFS, EPERM (sticky directory).
    Status unlink(InodeId parent, std::string_view name,
                  const Credentials& cred);

    /// Removes an empty directory. Errors: ENOTEMPTY, ENOTDIR, EBUSY
    /// (mountpoint), plus unlink's.
    Status remove_dir(InodeId parent, std::string_view name,
                      const Credentials& cred);

    /// Renames old_parent/old_name to new_parent/new_name (same-mount
    /// only; replaces an existing target per POSIX rules).
    Status rename(InodeId old_parent, std::string_view old_name,
                  InodeId new_parent, std::string_view new_name,
                  const Credentials& cred);

    // ---- regular-file I/O (permissions were checked at open time) ----

    /// Reads up to out.size() bytes at `off`. Short reads at EOF; 0 at
    /// or past EOF. Errors: EISDIR is handled at open; EIO via faults.
    Result<std::uint64_t> read(InodeId ino, std::uint64_t off,
                               std::span<std::byte> out);

    /// Writes materialized bytes. Errors: EFBIG, ENOSPC, EDQUOT, EROFS.
    Result<std::uint64_t> write(InodeId ino, std::uint64_t off,
                                std::span<const std::byte> bytes);

    /// Writes `len` copies of `fill` (O(1) space; used for large writes).
    Result<std::uint64_t> write_pattern(InodeId ino, std::uint64_t off,
                                        std::uint64_t len, std::byte fill);

    /// Sets file size. Shrink frees blocks; growth creates a hole.
    /// Errors: EFBIG, EROFS; EINVAL/EACCES belong to the syscall layer.
    Status truncate(InodeId ino, std::uint64_t new_size);

    // ---- persistence barriers ---------------------------------------

    /// fsync/fdatasync/O_SYNC barrier scoped to one inode: emits a
    /// Barrier effect marking everything logged so far as durable (all
    /// metadata, plus this inode's data).  The in-memory state is
    /// always "durable", so this only feeds the effect log.
    void sync_inode(InodeId ino, BarrierKind kind);

    /// sync(2)/syncfs(2) barrier over the whole file system.
    void sync_all(BarrierKind kind = BarrierKind::Sync);

    // ---- metadata ----------------------------------------------------

    Result<Stat> stat(InodeId ino) const;

    /// chmod(2) core: only owner or superuser; clears sgid for
    /// non-members per POSIX. Errors: EPERM, EROFS.
    Status chmod(InodeId ino, abi::mode_t_ mode, const Credentials& cred);

    Status chown(InodeId ino, std::uint32_t uid, std::uint32_t gid,
                 const Credentials& cred);

    /// access(2)-style permission check. `mask`: 4=r, 2=w, 1=x.
    Status access_check(InodeId ino, unsigned mask,
                        const Credentials& cred) const;

    // ---- extended attributes ----------------------------------------

    /// Errors: EEXIST (XATTR_CREATE_), ENODATA (XATTR_REPLACE_), ENOSPC
    /// (in-inode space exhausted), E2BIG handled by syscall layer,
    /// EPERM (not owner), EROFS.
    Status set_xattr(InodeId ino, std::string_view name,
                     std::span<const std::byte> value, int flags,
                     const Credentials& cred);

    /// Returns the value. Errors: ENODATA. (ERANGE is a syscall-layer
    /// concern — it depends on the caller's buffer size.)
    Result<std::vector<std::byte>> get_xattr(InodeId ino,
                                             std::string_view name) const;

    Result<std::vector<std::string>> list_xattr(InodeId ino) const;
    Status remove_xattr(InodeId ino, std::string_view name,
                        const Credentials& cred);

    // ---- accounting / mount state -----------------------------------

    FsUsage usage() const;
    const FsConfig& config() const { return config_; }
    void set_read_only(bool ro) { config_.read_only = ro; }

    /// Shrinks/grows the device at runtime — how tests and workload
    /// generators drive the allocator into ENOSPC without filling a
    /// full-size volume block by block.
    void set_capacity_blocks(std::uint64_t blocks) {
        config_.capacity_blocks = blocks;
    }
    std::uint64_t used_blocks() const { return used_blocks_; }

    // ---- introspection (tests, bug study, diff testing) --------------

    const Inode* find(InodeId ino) const;
    Inode* find_mutable(InodeId ino);
    std::uint64_t inode_count() const { return inodes_.size(); }

    /// Whole inode table, for invariant checkers (fsck) that must walk
    /// every inode, not just the reachable namespace.
    const std::map<InodeId, Inode>& inodes() const { return inodes_; }

    /// Per-uid quota charges (uid -> blocks).  Empty when quotas are
    /// disabled; fsck cross-checks the sums against per-inode usage.
    const std::map<std::uint32_t, std::uint64_t>& quota_snapshot() const {
        return quota_used_;
    }

    /// Logical clock (bumped once per mutating operation).
    std::uint64_t now() const { return clock_; }

  private:
    Result<InodeId> walk(std::span<const std::string> components,
                         bool follow_final, const Credentials& cred,
                         const ResolveOpts& opts, unsigned depth);

    Result<InodeId> alloc_inode(abi::mode_t_ mode, const Credentials& cred);
    void free_inode(InodeId ino);

    /// Entry-name validation shared by all creators: ENAMETOOLONG,
    /// EACCES (parent write perm), EROFS, ENOTDIR, EEXIST.
    Status can_create(InodeId parent, std::string_view name,
                      const Credentials& cred) const;

    /// Charges `delta` blocks against capacity and the owner's quota
    /// (negative delta releases). Fails with ENOSPC/EDQUOT.
    Status charge_blocks(std::uint32_t uid, std::int64_t delta);

    /// Drops one link; frees the inode when nlink reaches 0.
    void unlink_inode(Inode& inode);

    std::uint64_t tick() { return ++clock_; }

    bool logging_effects() const { return effects_ != nullptr; }
    void emit_effect(Effect&& effect) {
        if (effects_) effects_->on_effect(effect);
    }

    void hook_probe(std::string_view site) {
        if (hooks_) hooks_->probe(site);
    }
    std::optional<abi::Err> hook_inject(std::string_view site) {
        if (hooks_) return hooks_->inject(site);
        return std::nullopt;
    }

    FsConfig config_;
    std::map<InodeId, Inode> inodes_;
    InodeId next_ino_ = kRootInode;
    std::uint64_t used_blocks_ = 0;
    std::map<std::uint32_t, std::uint64_t> quota_used_;  // uid -> blocks
    std::uint64_t clock_ = 0;
    VfsHooks* hooks_ = nullptr;
    EffectObserver* effects_ = nullptr;
    FaultInjector faults_;
};

}  // namespace iocov::vfs
