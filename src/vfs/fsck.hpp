// In-memory VFS invariant checker ("fsck").
//
// Fault campaigns perturb the file system mid-operation; a run only
// counts as survived if the metadata afterwards is still internally
// consistent.  This checker walks the whole inode table — not just the
// reachable namespace — and cross-checks every piece of redundant
// bookkeeping the FileSystem maintains: link counts vs. actual dirent
// references, directory-graph shape (single parent, acyclic, correct
// ".."), file size vs. extent allocation, the global block counter and
// per-uid quota ledger, and fd-table pins.  Violations are collected
// into a structured report rather than asserted, so a campaign can
// attribute corruption to the exact fault that caused it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vfs/filesystem.hpp"
#include "vfs/types.hpp"

namespace iocov::vfs {

/// Invariant classes fsck checks.  Each violation carries one of these
/// so tests and campaigns can filter by failure kind.
enum class FsckCode {
    DanglingDirent,    ///< a dirent names an inode not in the table
    LinkCountMismatch, ///< nlink != computed dirent/"."/".." references
    ZeroLinkInode,     ///< inode with nlink == 0 still in the table
    OrphanInode,       ///< no dirent references it and no fd pins it
    MultipleDirParents,///< a directory referenced by more than one dirent
    BadDotDot,         ///< dir's parent pointer wrong, dead, or not a dir
    DirectoryCycle,    ///< parent chain never reaches the root
    DataOnNonFile,     ///< non-regular inode carries file bytes
    AllocationBeyondEof, ///< extents mapped at or past the file size
    BlockSumMismatch,  ///< sum of per-inode blocks != used_blocks()
    QuotaSumMismatch,  ///< per-uid block sums != the quota ledger
    StaleFdInode,      ///< an fd pins an inode id absent from the table
};

/// Human-readable name of a violation code (stable, for reports).
const char* fsck_code_name(FsckCode code);

struct FsckViolation {
    FsckCode code;
    /// Inode the violation is anchored to (kInvalidInode for global
    /// accounting mismatches).
    InodeId ino = kInvalidInode;
    /// One-line diagnosis with the expected-vs-actual numbers.
    std::string detail;

    /// "[code] inode N: detail" (inode omitted for global mismatches).
    std::string to_string() const;
};

struct FsckReport {
    std::vector<FsckViolation> violations;
    std::uint64_t inodes_checked = 0;
    std::uint64_t dirents_checked = 0;

    bool clean() const { return violations.empty(); }

    /// Violations of one code (test convenience).
    std::size_t count(FsckCode code) const;

    /// Multi-line summary: one line per violation, or "clean".
    std::string to_string() const;
};

struct FsckOptions {
    /// Inodes pinned by open file descriptions (Process::fd_inodes()
    /// across every live process).  A pinned inode with no dirent
    /// references is an O_TMPFILE file, not an orphan; a pin naming a
    /// dead inode is itself a violation.
    std::vector<InodeId> pinned_inodes;
};

/// Runs every invariant check over `fs`.  Read-only; never throws or
/// asserts on corruption — corruption is the return value.
FsckReport fsck(const FileSystem& fs, const FsckOptions& opts = {});

}  // namespace iocov::vfs
