#include "vfs/file_data.hpp"

#include <algorithm>
#include <cassert>

namespace iocov::vfs {

void FileData::set_size(std::uint64_t new_size) {
    if (new_size < size_) punch(new_size, size_ - new_size);
    size_ = new_size;
}

void FileData::punch(std::uint64_t off, std::uint64_t len) {
    if (len == 0) return;
    const std::uint64_t end = off + len;

    // Find the first extent that could overlap: the one before `off`
    // may straddle it.
    auto it = extents_.lower_bound(off);
    if (it != extents_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second.len > off) it = prev;
    }

    while (it != extents_.end() && it->first < end) {
        const std::uint64_t es = it->first;
        Extent ex = std::move(it->second);
        const std::uint64_t ee = es + ex.len;
        it = extents_.erase(it);

        if (es < off) {
            // Keep the head [es, off).
            Extent head;
            head.len = off - es;
            head.pattern = ex.pattern;
            if (ex.materialized())
                head.bytes.assign(ex.bytes.begin(),
                                  ex.bytes.begin() +
                                      static_cast<std::ptrdiff_t>(head.len));
            extents_.emplace(es, std::move(head));
        }
        if (ee > end) {
            // Keep the tail [end, ee).
            Extent tail;
            tail.len = ee - end;
            tail.pattern = ex.pattern;
            if (ex.materialized())
                tail.bytes.assign(
                    ex.bytes.begin() + static_cast<std::ptrdiff_t>(end - es),
                    ex.bytes.end());
            it = extents_.emplace(end, std::move(tail)).first;
            ++it;
        }
    }
}

void FileData::write(std::uint64_t off, std::span<const std::byte> bytes) {
    if (bytes.empty()) return;
    punch(off, bytes.size());
    Extent ex;
    ex.len = bytes.size();
    ex.bytes.assign(bytes.begin(), bytes.end());
    extents_.emplace(off, std::move(ex));
    size_ = std::max(size_, off + bytes.size());
}

void FileData::write_pattern(std::uint64_t off, std::uint64_t len,
                             std::byte value) {
    if (len == 0) return;
    punch(off, len);
    Extent ex;
    ex.len = len;
    ex.pattern = value;
    extents_.emplace(off, std::move(ex));
    size_ = std::max(size_, off + len);
}

std::uint64_t FileData::read(std::uint64_t off, std::span<std::byte> out) const {
    if (off >= size_) return 0;
    const std::uint64_t n = std::min<std::uint64_t>(out.size(), size_ - off);
    std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(n),
              std::byte{0});

    auto it = extents_.lower_bound(off);
    if (it != extents_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second.len > off) it = prev;
    }
    const std::uint64_t end = off + n;
    for (; it != extents_.end() && it->first < end; ++it) {
        const std::uint64_t es = std::max(it->first, off);
        const std::uint64_t ee = std::min(it->first + it->second.len, end);
        for (std::uint64_t pos = es; pos < ee; ++pos)
            out[pos - off] = it->second.byte_at(pos - it->first);
    }
    return n;
}

std::optional<std::byte> FileData::at(std::uint64_t off) const {
    if (off >= size_) return std::nullopt;
    std::byte b;
    read(off, {&b, 1});
    return b;
}

std::uint64_t FileData::allocated_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& [off, ex] : extents_) sum += ex.len;
    return sum;
}

std::uint64_t FileData::allocated_blocks(std::uint64_t block_size) const {
    assert(block_size > 0);
    // Count distinct blocks touched by extents (adjacent extents in the
    // same block must not be double-charged).
    std::uint64_t blocks = 0;
    std::uint64_t last_block = ~std::uint64_t{0};
    for (const auto& [off, ex] : extents_) {
        std::uint64_t first = off / block_size;
        const std::uint64_t last = (off + ex.len - 1) / block_size;
        if (first == last_block) ++first;
        if (first > last) continue;
        blocks += last - first + 1;
        last_block = last;
    }
    return blocks;
}

std::uint64_t FileData::new_blocks_for(std::uint64_t off, std::uint64_t len,
                                       std::uint64_t block_size) const {
    assert(block_size > 0);
    if (len == 0) return 0;
    const std::uint64_t first_block = off / block_size;
    const std::uint64_t last_block = (off + len - 1) / block_size;
    const std::uint64_t total = last_block - first_block + 1;

    // Count blocks in [first_block, last_block] already touched by an
    // extent.  Search over the block-aligned byte range so an extent
    // sharing only a boundary block is still seen.
    const std::uint64_t search_lo = first_block * block_size;
    const std::uint64_t search_hi = (last_block + 1) * block_size;

    auto it = extents_.lower_bound(search_lo);
    if (it != extents_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second.len > search_lo) it = prev;
    }
    std::uint64_t touched = 0;
    std::uint64_t next_uncounted = first_block;  // extents are sorted
    for (; it != extents_.end() && it->first < search_hi; ++it) {
        std::uint64_t eb = std::max(it->first / block_size, next_uncounted);
        const std::uint64_t le =
            std::min((it->first + it->second.len - 1) / block_size, last_block);
        if (eb > le) continue;
        touched += le - eb + 1;
        next_uncounted = le + 1;
    }
    return total - touched;
}

std::optional<std::uint64_t> FileData::next_data(std::uint64_t off) const {
    auto it = extents_.lower_bound(off);
    if (it != extents_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second.len > off) return off;
    }
    if (it == extents_.end() || it->first >= size_) return std::nullopt;
    return it->first;
}

std::uint64_t FileData::next_hole(std::uint64_t off) const {
    assert(off <= size_);
    std::uint64_t pos = off;
    for (;;) {
        auto it = extents_.lower_bound(pos);
        if (it != extents_.begin()) {
            auto prev = std::prev(it);
            if (prev->first + prev->second.len > pos) it = prev;
        }
        if (it == extents_.end() || it->first > pos)
            return pos;  // in a hole (possibly the EOF hole)
        pos = it->first + it->second.len;
        if (pos >= size_) return size_;
    }
}

bool FileData::content_equals(const FileData& other) const {
    if (size_ != other.size_) return false;
    constexpr std::uint64_t kChunk = 64 * 1024;
    std::vector<std::byte> a(kChunk), b(kChunk);
    for (std::uint64_t off = 0; off < size_; off += kChunk) {
        const std::uint64_t na = read(off, a);
        const std::uint64_t nb = other.read(off, b);
        if (na != nb) return false;
        if (!std::equal(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(na),
                        b.begin()))
            return false;
    }
    return true;
}

}  // namespace iocov::vfs
