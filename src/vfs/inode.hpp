// Inode and inode-table types for the in-memory file system.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "abi/stat_mode.hpp"
#include "vfs/file_data.hpp"
#include "vfs/types.hpp"

namespace iocov::vfs {

/// Device-node behaviour markers. Real device semantics are out of
/// scope; these flags exist to make the corresponding open(2) error
/// paths reachable (ENXIO, ENODEV, EBUSY).
enum class DeviceState : std::uint8_t {
    None,      ///< not a device
    Ok,        ///< device with a driver; opens succeed
    NoDriver,  ///< ENODEV on open
    NoUnit,    ///< ENXIO on open
    Busy,      ///< EBUSY on open (e.g. a mounted block device)
};

struct Inode {
    InodeId id = kInvalidInode;
    abi::mode_t_ mode = 0;  ///< type | permission bits
    std::uint32_t uid = 0;
    std::uint32_t gid = 0;
    std::uint32_t nlink = 0;
    Timestamps times;

    /// Regular-file contents (unused for other types).
    FileData data;

    /// Directory entries: name -> child inode ("." / ".." implicit).
    std::map<std::string, InodeId> dirents;

    /// Parent directory (directories only; enables ".." resolution).
    InodeId parent = kInvalidInode;

    /// Symlink target (symlinks only).
    std::string symlink_target;

    /// Extended attributes.
    std::map<std::string, std::vector<std::byte>> xattrs;

    /// Bytes of in-inode xattr space remaining (models ext4's
    /// i_extra_isize accounting; see the Fig. 1 bug in the paper).
    std::uint32_t xattr_space = 0;

    // Error-path enablers (see DeviceState).
    DeviceState device = DeviceState::None;
    /// Inode is a running executable: open for write -> ETXTBSY.
    bool executing = false;
    /// Inode is a mount-point boundary: openat2(RESOLVE_NO_XDEV) -> EXDEV.
    bool mountpoint = false;
    /// Named fifo with no reader: open(O_WRONLY|O_NONBLOCK) -> ENXIO.
    bool fifo_has_reader = false;

    bool is_reg() const { return abi::is_reg(mode); }
    bool is_dir() const { return abi::is_dir(mode); }
    bool is_lnk() const { return abi::is_lnk(mode); }
    bool is_fifo() const { return (mode & abi::S_IFMT) == abi::S_IFIFO; }
    bool is_device() const {
        const auto t = mode & abi::S_IFMT;
        return t == abi::S_IFBLK || t == abi::S_IFCHR;
    }
    abi::mode_t_ perms() const { return mode & abi::MODE_PERM_MASK; }
};

}  // namespace iocov::vfs
