#include "exec/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>

namespace iocov::exec {

unsigned ThreadPool::default_thread_count() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned n_threads) {
    if (n_threads == 0) n_threads = 1;
    workers_.reserve(n_threads);
    for (unsigned i = 0; i < n_threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(job));
    }
    work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stop_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --active_;
            if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
        }
    }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    struct Latch {
        std::mutex mu;
        std::condition_variable cv;
        std::size_t remaining;
        std::exception_ptr first_error;
    };
    // Shared, not stack-referenced: submit() callers may outlive scopes
    // in odd shutdown paths, and shared_ptr keeps the contract simple.
    auto latch = std::make_shared<Latch>();
    latch->remaining = n;

    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([latch, &fn, i] {
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(latch->mu);
                if (!latch->first_error)
                    latch->first_error = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(latch->mu);
            if (--latch->remaining == 0) latch->cv.notify_all();
        });
    }
    std::unique_lock<std::mutex> lock(latch->mu);
    latch->cv.wait(lock, [&] { return latch->remaining == 0; });
    if (latch->first_error) std::rethrow_exception(latch->first_error);
}

void parallel_for_stealing(ThreadPool& pool,
                           const std::vector<std::uint64_t>& weights,
                           const std::function<void(std::size_t)>& fn) {
    const std::size_t n = weights.size();
    if (n == 0) return;

    struct Shared {
        std::mutex mu;
        std::vector<std::deque<std::size_t>> lane_items;
        std::vector<std::uint64_t> lane_load;  // queued (unstarted) weight
        std::vector<std::uint64_t> item_weight;
        std::exception_ptr first_error;
    };
    auto shared = std::make_shared<Shared>();
    const std::size_t lanes =
        std::min<std::size_t>(pool.size() ? pool.size() : 1, n);
    shared->lane_items.resize(lanes);
    shared->lane_load.assign(lanes, 0);
    shared->item_weight.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        shared->item_weight[i] = weights[i] ? weights[i] : 1;

    // LPT deal: heaviest item first onto the lightest lane.  Stable
    // (ties keep index order) so the schedule is deterministic.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return shared->item_weight[a] >
                                shared->item_weight[b];
                     });
    for (const std::size_t item : order) {
        std::size_t lane = 0;
        for (std::size_t l = 1; l < lanes; ++l)
            if (shared->lane_load[l] < shared->lane_load[lane]) lane = l;
        shared->lane_items[lane].push_back(item);
        shared->lane_load[lane] += shared->item_weight[item];
    }

    auto run_lane = [shared, &fn](std::size_t lane) {
        for (;;) {
            std::size_t item;
            {
                std::lock_guard<std::mutex> lock(shared->mu);
                auto& own = shared->lane_items[lane];
                if (!own.empty()) {
                    item = own.front();
                    own.pop_front();
                    shared->lane_load[lane] -= shared->item_weight[item];
                } else {
                    // Steal from the back of the most-loaded lane.
                    std::size_t victim = lane;
                    for (std::size_t l = 0; l < shared->lane_items.size();
                         ++l) {
                        if (shared->lane_items[l].empty()) continue;
                        if (victim == lane ||
                            shared->lane_load[l] > shared->lane_load[victim])
                            victim = l;
                    }
                    if (victim == lane) return;  // everything claimed
                    auto& q = shared->lane_items[victim];
                    item = q.back();
                    q.pop_back();
                    shared->lane_load[victim] -= shared->item_weight[item];
                }
            }
            try {
                fn(item);
            } catch (...) {
                std::lock_guard<std::mutex> lock(shared->mu);
                if (!shared->first_error)
                    shared->first_error = std::current_exception();
            }
        }
    };
    parallel_for(pool, lanes, run_lane);
    if (shared->first_error) std::rethrow_exception(shared->first_error);
}

}  // namespace iocov::exec
