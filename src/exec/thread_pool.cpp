#include "exec/thread_pool.hpp"

#include <exception>
#include <utility>

namespace iocov::exec {

unsigned ThreadPool::default_thread_count() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned n_threads) {
    if (n_threads == 0) n_threads = 1;
    workers_.reserve(n_threads);
    for (unsigned i = 0; i < n_threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(job));
    }
    work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stop_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --active_;
            if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
        }
    }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    struct Latch {
        std::mutex mu;
        std::condition_variable cv;
        std::size_t remaining;
        std::exception_ptr first_error;
    };
    // Shared, not stack-referenced: submit() callers may outlive scopes
    // in odd shutdown paths, and shared_ptr keeps the contract simple.
    auto latch = std::make_shared<Latch>();
    latch->remaining = n;

    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([latch, &fn, i] {
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(latch->mu);
                if (!latch->first_error)
                    latch->first_error = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(latch->mu);
            if (--latch->remaining == 0) latch->cv.notify_all();
        });
    }
    std::unique_lock<std::mutex> lock(latch->mu);
    latch->cv.wait(lock, [&] { return latch->remaining == 0; });
    if (latch->first_error) std::rethrow_exception(latch->first_error);
}

}  // namespace iocov::exec
