// Allocation-counting hook for zero-malloc assertions.
//
// The ingest hot path (batched IOCT decode -> filter -> analyzer) is
// designed to perform no heap allocation in steady state.  "Designed
// to" rots; this hook makes it testable.  When active, the global
// operator new/delete are replaced with counting wrappers and each
// thread keeps a running allocation count, so a test (or `iocov
// analyze --stats`) can snapshot the counter around a loop and assert
// the delta is zero.
//
// The replacement is compiled out under ASan/TSan/MSan — sanitizers
// interpose the allocator themselves — in which case
// has_allocation_counting() is false and thread_allocation_count()
// stays at zero; callers must gate their assertions on it.
#pragma once

#include <cstdint>

namespace iocov::exec {

/// True when the counting operator new/delete replacement is compiled
/// in (i.e. not a sanitizer build).
bool has_allocation_counting();

/// Number of heap allocations made by the calling thread since it
/// started (0 when counting is unavailable).  Snapshot before/after a
/// region and subtract.
std::uint64_t thread_allocation_count();

}  // namespace iocov::exec
