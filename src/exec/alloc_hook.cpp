#include "exec/alloc_hook.hpp"

#include <cstdlib>
#include <new>

// Sanitizers interpose malloc themselves; replacing operator new under
// them breaks their bookkeeping, so the hook compiles away.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define IOCOV_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define IOCOV_ALLOC_HOOK 0
#else
#define IOCOV_ALLOC_HOOK 1
#endif
#else
#define IOCOV_ALLOC_HOOK 1
#endif

namespace iocov::exec {
namespace {

// Plain integer (not a class type) so reading it never allocates and
// thread start-up needs no dynamic initialization.
thread_local std::uint64_t t_alloc_count = 0;

}  // namespace

bool has_allocation_counting() { return IOCOV_ALLOC_HOOK != 0; }

std::uint64_t thread_allocation_count() { return t_alloc_count; }

}  // namespace iocov::exec

#if IOCOV_ALLOC_HOOK

namespace {

void* counted_alloc(std::size_t size) {
    ++iocov::exec::t_alloc_count;
    for (;;) {
        if (void* p = std::malloc(size ? size : 1)) return p;
        std::new_handler handler = std::get_new_handler();
        if (!handler) throw std::bad_alloc();
        handler();
    }
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    ++iocov::exec::t_alloc_count;
    return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    ++iocov::exec::t_alloc_count;
    return std::malloc(size ? size : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
    std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
    std::free(p);
}

#endif  // IOCOV_ALLOC_HOOK
