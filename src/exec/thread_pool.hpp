// Minimal fixed-size thread pool used by the parallel analysis pipeline.
//
// Deliberately small: a FIFO of std::function jobs, N worker threads,
// and a wait_idle() barrier.  Pools are cheap enough to create per
// parallel operation (thread spawn is microseconds next to parsing a
// multi-megabyte trace), which keeps thread ownership obvious and
// avoids global executor state.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace iocov::exec {

class ThreadPool {
  public:
    /// Spawns `n_threads` workers (at least one).
    explicit ThreadPool(unsigned n_threads = default_thread_count());
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues a job; runs on some worker in FIFO order.
    void submit(std::function<void()> job);

    /// Blocks until the queue is empty and no job is running.
    void wait_idle();

    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /// hardware_concurrency(), floored at 1 (the standard allows 0).
    static unsigned default_thread_count();

  private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable work_cv_;   // workers wait for jobs / stop
    std::condition_variable idle_cv_;   // wait_idle waits for quiescence
    std::size_t active_ = 0;            // jobs currently executing
    bool stop_ = false;
};

/// Runs fn(0), ..., fn(n-1) on the pool and blocks until all complete.
/// If any invocation throws, the first exception is rethrown here after
/// the remaining iterations finish (no job is cancelled mid-flight).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Weighted work-stealing variant for unevenly sized items (e.g. trace
/// files scheduled by byte count).  Items are dealt longest-processing-
/// time-first onto one deque per worker lane; each lane drains its own
/// deque from the front and, when empty, steals from the back of the
/// most-loaded lane, so one huge file cannot serialize the tail of the
/// run.  Every item is attempted exactly once; the first exception is
/// rethrown after all items finish.  Items are coarse (whole files), so
/// a single mutex over the deques is plenty — this is scheduling
/// policy, not a lock-free queue exercise.
void parallel_for_stealing(ThreadPool& pool,
                           const std::vector<std::uint64_t>& weights,
                           const std::function<void(std::size_t)>& fn);

}  // namespace iocov::exec
