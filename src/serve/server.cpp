#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <sstream>
#include <utility>

#include "core/checkpoint.hpp"
#include "core/report_io.hpp"
#include "core/tcd.hpp"
#include "core/untested.hpp"
#include "host/fault.hpp"
#include "host/parse.hpp"
#include "trace/binary_format.hpp"

namespace iocov::serve {
namespace {

// Signal handlers may only poke an fd; the loop turns the eventfd tick
// into a graceful shutdown.  One daemon per process is the serve
// model, so a single slot suffices.
volatile int g_signal_wake_fd = -1;

void on_signal(int) {
    const int fd = g_signal_wake_fd;
    if (fd < 0) return;
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof one);
}

/// accept4 with FaultHook consultation; injected errnos behave exactly
/// like real ones (EAGAIN ends the drain, anything else is diagnosed).
int accept_checked(int listen_fd) {
    if (host::FaultHook::active()) {
        const auto a = host::FaultHook::consult(host::IoPhase::Accept);
        if (a.inject_errno) {
            errno = a.inject_errno;
            return -1;
        }
    }
    return ::accept4(listen_fd, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
}

ssize_t recv_checked(int fd, char* buf, std::size_t cap) {
    if (host::FaultHook::active()) {
        const auto a = host::FaultHook::consult(host::IoPhase::SockRead);
        if (a.inject_errno) {
            errno = a.inject_errno;
            return -1;
        }
        if (a.eof) return 0;
    }
    return ::recv(fd, buf, cap, 0);
}

ssize_t send_checked(int fd, const char* buf, std::size_t len) {
    if (host::FaultHook::active()) {
        const auto a = host::FaultHook::consult(host::IoPhase::SockWrite);
        if (a.inject_errno) {
            errno = a.inject_errno;
            return -1;
        }
        if (a.shorten && len > 1) len = std::max<std::size_t>(1, len / 2);
        len = std::min(len, a.clamp_bytes);
    }
    // MSG_NOSIGNAL belt-and-braces next to the process-wide
    // ignore_sigpipe(): a disconnecting client must never kill the
    // daemon.
    return ::send(fd, buf, len, MSG_NOSIGNAL);
}

std::string format_gaps(const core::CoverageReport& report) {
    std::string out;
    char line[512];
    for (const auto& gap : core::find_untested(report)) {
        std::snprintf(line, sizeof line, "%-8s %-10s %-18s %s\n",
                      gap.kind == core::UntestedPartition::Kind::Input
                          ? "input"
                          : "output",
                      gap.base.c_str(), gap.partition.c_str(),
                      gap.suggestion.c_str());
        out += line;
    }
    return out;
}

}  // namespace

Server::Server(core::LiveCoverage& live, ServeOptions opts)
    : live_(live), opts_(std::move(opts)) {}

Server::~Server() {
    for (auto& [fd, conn] : conns_) ::close(fd);
    conns_.clear();
    if (unix_fd_ >= 0) ::close(unix_fd_);
    if (tcp_fd_ >= 0) ::close(tcp_fd_);
    if (event_fd_ >= 0) {
        if (g_signal_wake_fd == event_fd_) g_signal_wake_fd = -1;
        ::close(event_fd_);
    }
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (!opts_.unix_path.empty()) ::unlink(opts_.unix_path.c_str());
}

host::IoStatus Server::start() {
    host::ignore_sigpipe();
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0)
        return host::IoError{host::IoPhase::Open, errno, "epoll"};
    event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (event_fd_ < 0)
        return host::IoError{host::IoPhase::Open, errno, "eventfd"};
    if (!epoll_add(event_fd_, false))
        return host::IoError{host::IoPhase::Open, errno, "eventfd"};

    if (!opts_.unix_path.empty())
        if (auto err = listen_unix()) return err;
    if (opts_.tcp_port >= 0)
        if (auto err = listen_tcp()) return err;
    if (unix_fd_ < 0 && tcp_fd_ < 0)
        return host::IoError{host::IoPhase::Open, EINVAL, "no listener"};

    if (opts_.resume && !opts_.checkpoint_path.empty())
        if (auto err = restore_from_checkpoint()) return err;

    if (opts_.install_signal_handlers) {
        g_signal_wake_fd = event_fd_;
        struct sigaction sa{};
        sa.sa_handler = on_signal;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);
    }
    return std::nullopt;
}

host::IoStatus Server::listen_unix() {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.unix_path.size() >= sizeof addr.sun_path)
        return host::IoError{host::IoPhase::Open, ENAMETOOLONG,
                             opts_.unix_path};
    std::memcpy(addr.sun_path, opts_.unix_path.c_str(),
                opts_.unix_path.size() + 1);
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
    if (unix_fd_ < 0)
        return host::IoError{host::IoPhase::Open, errno, opts_.unix_path};
    // A stale socket file from a killed daemon would fail the bind;
    // replacing it is the restart contract (the kill-loop gate leans
    // on this).
    ::unlink(opts_.unix_path.c_str());
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
            0 ||
        ::listen(unix_fd_, SOMAXCONN) < 0)
        return host::IoError{host::IoPhase::Open, errno, opts_.unix_path};
    if (!epoll_add(unix_fd_, false))
        return host::IoError{host::IoPhase::Open, errno, opts_.unix_path};
    return std::nullopt;
}

host::IoStatus Server::listen_tcp() {
    const std::string label =
        "127.0.0.1:" + std::to_string(opts_.tcp_port);
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                       0);
    if (tcp_fd_ < 0) return host::IoError{host::IoPhase::Open, errno, label};
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
            0 ||
        ::listen(tcp_fd_, SOMAXCONN) < 0)
        return host::IoError{host::IoPhase::Open, errno, label};
    socklen_t len = sizeof addr;
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
        0)
        bound_tcp_port_ = ntohs(addr.sin_port);
    if (!epoll_add(tcp_fd_, false))
        return host::IoError{host::IoPhase::Open, errno, label};
    return std::nullopt;
}

host::IoStatus Server::restore_from_checkpoint() {
    if (::access(opts_.checkpoint_path.c_str(), F_OK) != 0)
        return std::nullopt;  // no manifest: fresh start
    core::SnapshotError err;
    auto cp = core::load_checkpoint_file(opts_.checkpoint_path, &err);
    if (!cp) {
        std::fprintf(stderr, "iocov: %s: %s\n",
                     opts_.checkpoint_path.c_str(),
                     err.to_string().c_str());
        return host::IoError{host::IoPhase::Open, EINVAL,
                             opts_.checkpoint_path};
    }
    if (cp->mode != core::CheckpointMode::Serve) {
        std::fprintf(stderr,
                     "iocov: %s: checkpoint was not written by "
                     "`iocov serve`\n",
                     opts_.checkpoint_path.c_str());
        return host::IoError{host::IoPhase::Open, EINVAL,
                             opts_.checkpoint_path};
    }
    core::IOCovSnapshot state;
    if (!cp->blocks.empty()) state = std::move(cp->blocks.front().snapshot);
    live_.restore(state, std::move(cp->consumed));
    stats_.pushes_accepted = live_.epoch();
    stats_.pushes_rejected = cp->rejected;
    stats_.shard_bytes = cp->bytes;
    diags_ = cp->diags;
    return std::nullopt;
}

// Registration is level-triggered on purpose: the handlers already
// drain to EAGAIN (the edge-triggered discipline), and with LT a
// readiness notification that races registration — a client that
// connects between listen() and epoll_ctl(ADD), say — is re-reported
// on the next epoll_wait instead of being lost forever.  EPOLLOUT is
// only armed while a connection has unflushed output, so LT cannot
// busy-loop.
bool Server::epoll_add(int fd, bool out_too) {
    epoll_event ev{};
    ev.events = EPOLLIN | (out_too ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
}

void Server::request_stop() {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(event_fd_, &one, sizeof one);
}

void Server::run() {
    epoll_event events[64];
    while (!stopping_) {
        const int n = ::epoll_wait(epoll_fd_, events,
                                   static_cast<int>(std::size(events)), -1);
        if (n < 0) {
            if (errno == EINTR) continue;
            diags_.record(0, 0, std::string("epoll_wait: ") +
                                    std::strerror(errno));
            break;
        }
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == event_fd_) {
                std::uint64_t drained = 0;
                [[maybe_unused]] const ssize_t r =
                    ::read(event_fd_, &drained, sizeof drained);
                stopping_ = true;
                continue;
            }
            if (fd == unix_fd_ || fd == tcp_fd_) {
                accept_ready(fd);
                continue;
            }
            // A fd dropped earlier in this batch may still have a
            // queued event; ignore strangers.
            if (!conns_.count(fd)) continue;
            if (events[i].events & (EPOLLHUP | EPOLLERR)) {
                // Half-close still delivers EPOLLIN with the final
                // bytes first; read them before judging.
                conn_readable(fd);
                continue;
            }
            if (events[i].events & EPOLLIN) conn_readable(fd);
            if (conns_.count(fd) && (events[i].events & EPOLLOUT))
                conn_writable(fd);
        }
    }
    finalize();
}

void Server::accept_ready(int listen_fd) {
    // Drain the whole accept backlog every time the listener reports.
    for (;;) {
        const int fd = accept_checked(listen_fd);
        if (fd < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
                || errno == EWOULDBLOCK
#endif
            )
                return;
            // EMFILE, ECONNABORTED, injected errnos...: diagnose and
            // keep serving — a full fd table must not kill the daemon.
            ++stats_.sock_errors;
            diags_.record(0, 0,
                          std::string("accept: ") + std::strerror(errno));
            return;
        }
        ++stats_.connections;
        if (!epoll_add(fd, false)) {
            ++stats_.sock_errors;
            diags_.record(0, 0, std::string("epoll add: ") +
                                    std::strerror(errno));
            ::close(fd);
            continue;
        }
        conns_.emplace(fd, Conn{});
    }
}

void Server::conn_readable(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Conn& conn = it->second;
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = recv_checked(fd, buf, sizeof buf);
        if (n > 0) {
            conn.decoder.feed({buf, static_cast<std::size_t>(n)});
            continue;
        }
        if (n < 0) {
            if (errno == EAGAIN
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
                || errno == EWOULDBLOCK
#endif
            )
                break;
            if (errno == EINTR) continue;
            ++stats_.sock_errors;
            diags_.record(0, 0, std::string("sock-read: ") +
                                    std::strerror(errno));
            drop_conn(fd);
            return;
        }
        // EOF.  Bytes still buffered mean the peer died mid-frame —
        // the connection-level analogue of an IOCT torn tail.
        if (conn.decoder.pending() > 0) {
            ++stats_.torn_frames;
            diags_.record(0, conn.decoder.pending(),
                          "torn frame: connection closed with " +
                              std::to_string(conn.decoder.pending()) +
                              " byte(s) buffered");
        }
        drop_conn(fd);
        return;
    }
    // Process every complete frame that arrived.
    for (;;) {
        Frame frame;
        std::string reason;
        const auto st = conn.decoder.next(frame, &reason);
        if (st == FrameDecoder::Status::NeedMore) break;
        if (st == FrameDecoder::Status::Corrupt) {
            ++stats_.torn_frames;
            diags_.record(0, 0, "corrupt frame: " + reason);
            respond(fd, encode_err("corrupt frame: " + reason));
            drop_conn(fd);
            return;
        }
        handle_frame(fd, std::move(frame));
        if (!conns_.count(fd)) return;  // dropped while handling
    }
}

void Server::handle_frame(int fd, Frame frame) {
    ++stats_.frames;
    switch (frame.tag) {
        case MsgTag::Push: {
            std::string name;
            std::string_view shard;
            if (!decode_push(frame.body, name, shard) || name.empty()) {
                ++stats_.pushes_rejected;
                diags_.record(0, 0, "malformed push frame");
                respond(fd, encode_err("malformed push frame"));
                return;
            }
            if (!trace::is_ioct(shard)) {
                ++stats_.pushes_rejected;
                diags_.record(0, 0, name + ": not an IOCT trace");
                respond(fd,
                        encode_err(name + ": not an IOCT trace (bad "
                                          "magic/version)"));
                return;
            }
            const auto r = live_.push(name, shard, opts_.threads);
            if (r.accepted) {
                ++stats_.pushes_accepted;
                stats_.shard_bytes += shard.size();
                respond(fd, encode_ok(r.epoch,
                                      "accepted " + name + " (" +
                                          std::to_string(r.events) +
                                          " events, " +
                                          std::to_string(r.dropped) +
                                          " torn records)"));
                after_accepted_push();
            } else {
                ++stats_.pushes_duplicate;
                respond(fd,
                        encode_ok(r.epoch, "duplicate " + name +
                                               " (already consumed)"));
            }
            return;
        }
        case MsgTag::Query: {
            ++stats_.queries;
            std::uint64_t epoch = 0;
            bool ok = true;
            std::string payload = handle_query(frame.body, epoch, ok);
            respond(fd, ok ? encode_ok(epoch, payload)
                           : encode_err(payload));
            return;
        }
        case MsgTag::Stop:
            respond(fd, encode_ok(live_.epoch(), "stopping"));
            stopping_ = true;
            return;
        case MsgTag::Ok:
        case MsgTag::Err:
            // Response tags from a client are a protocol violation.
            diags_.record(0, 0, "unexpected response-tag frame");
            drop_conn(fd);
            return;
    }
}

std::string Server::handle_query(std::string_view text,
                                 std::uint64_t& epoch, bool& ok) {
    // One consistent state answers the whole query: grab the published
    // snapshot once; pushes that land while rendering cannot tear it.
    const auto published = live_.read();
    epoch = published->epoch;
    ok = true;
    if (text == "ping") return "pong";
    if (text == "report") {
        std::ostringstream out;
        core::save_report(out, published->state.report);
        return out.str();
    }
    if (text == "gaps") return format_gaps(published->state.report);
    if (text == "status") {
        std::ostringstream out;
        out << "epoch " << published->epoch << "\n"
            << "events_seen " << published->state.report.events_seen << "\n"
            << "events_tracked " << published->state.report.events_tracked
            << "\n"
            << "pushes_accepted " << stats_.pushes_accepted << "\n"
            << "pushes_duplicate " << stats_.pushes_duplicate << "\n"
            << "pushes_rejected " << stats_.pushes_rejected << "\n"
            << "shard_bytes " << stats_.shard_bytes << "\n"
            << "queries " << stats_.queries << "\n"
            << "torn_frames " << stats_.torn_frames << "\n"
            << "sock_errors " << stats_.sock_errors << "\n"
            << "deltas " << stats_.deltas << "\n"
            << "checkpoints " << stats_.checkpoints << "\n";
        return out.str();
    }
    if (text.rfind("tcd ", 0) == 0) {
        // "tcd BASE.KEY TARGET"
        std::string_view rest = text.substr(4);
        const auto space = rest.find(' ');
        if (space == std::string_view::npos) {
            ok = false;
            return "malformed tcd query (want: tcd BASE.KEY TARGET)";
        }
        const std::string_view arg = rest.substr(0, space);
        double target = 0;
        if (!host::parse_f64(rest.substr(space + 1), target) ||
            target <= 0) {
            ok = false;
            return "malformed tcd target (want a positive number)";
        }
        const auto dot = arg.find('.');
        if (dot == std::string_view::npos) {
            ok = false;
            return "malformed tcd space (want BASE.KEY)";
        }
        const auto* in = published->state.report.find_input(
            std::string(arg.substr(0, dot)),
            std::string(arg.substr(dot + 1)));
        if (!in) {
            ok = false;
            return "no input space " + std::string(arg);
        }
        char line[160];
        std::snprintf(line, sizeof line, "TCD(%.*s, target=%g) = %.4f\n",
                      static_cast<int>(arg.size()), arg.data(), target,
                      core::tcd_uniform(in->hist, target));
        return line;
    }
    ok = false;
    return "unknown query '" + std::string(text) +
           "' (want: report | gaps | tcd BASE.KEY TARGET | status | ping)";
}

void Server::respond(int fd, std::string frame_bytes) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    it->second.out += frame_bytes;
    conn_writable(fd);
}

void Server::conn_writable(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Conn& conn = it->second;
    bool want_out = false;
    while (conn.out_off < conn.out.size()) {
        const ssize_t n = send_checked(fd, conn.out.data() + conn.out_off,
                                       conn.out.size() - conn.out_off);
        if (n > 0) {
            conn.out_off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
                      || errno == EWOULDBLOCK
#endif
                      )) {
            want_out = true;
            break;
        }
        if (n < 0 && errno == EINTR) continue;
        // EPIPE/ECONNRESET (or injected): the client went away; with
        // SIGPIPE ignored this is a clean structured drop, never a
        // daemon death.
        ++stats_.sock_errors;
        diags_.record(0, 0,
                      std::string("sock-write: ") + std::strerror(errno));
        drop_conn(fd);
        return;
    }
    if (conn.out_off >= conn.out.size()) {
        conn.out.clear();
        conn.out_off = 0;
    }
    epoll_event ev{};
    ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void Server::drop_conn(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns_.erase(it);
}

void Server::after_accepted_push() {
    ++pushes_since_delta_;
    ++pushes_since_checkpoint_;
    if (!opts_.delta_dir.empty() && opts_.delta_every > 0 &&
        pushes_since_delta_ >= opts_.delta_every)
        emit_delta();
    if (!opts_.checkpoint_path.empty() &&
        pushes_since_checkpoint_ >= opts_.checkpoint_every) {
        pushes_since_checkpoint_ = 0;
        write_checkpoint();
    }
}

void Server::emit_delta() {
    pushes_since_delta_ = 0;
    std::uint64_t pushes = 0;
    auto delta = live_.take_delta(&pushes);
    if (pushes == 0) return;
    delta.label = opts_.delta_label;
    delta.timestamp = static_cast<std::uint64_t>(::time(nullptr));
    char name[64];
    std::snprintf(name, sizeof name, "/delta-%012" PRIu64 ".iocs",
                  live_.epoch());
    const std::string path = opts_.delta_dir + name;
    core::SnapshotError err;
    if (!core::save_snapshot_file(path, delta, &err)) {
        diags_.record(0, 0, path + ": " + err.to_string());
        return;
    }
    ++stats_.deltas;
}

void Server::write_checkpoint() {
    core::Checkpoint cp;
    cp.mode = core::CheckpointMode::Serve;
    cp.consumed = live_.consumed();
    cp.rejected = stats_.pushes_rejected;
    cp.bytes = stats_.shard_bytes;
    cp.diags = diags_;
    cp.blocks.push_back({static_cast<std::uint64_t>(cp.consumed.size()),
                         live_.read()->state});
    core::SnapshotError err;
    if (!core::save_checkpoint_file(opts_.checkpoint_path, cp, &err)) {
        diags_.record(0, 0,
                      opts_.checkpoint_path + ": " + err.to_string());
        return;
    }
    ++stats_.checkpoints;
}

void Server::finalize() {
    if (!opts_.delta_dir.empty()) emit_delta();
    // Unlike merge/analyze, the manifest is NOT removed on a graceful
    // stop: the daemon's state dies with the process, and the manifest
    // is what lets the next `iocov serve --resume` continue the fleet's
    // coverage where this run left it.
    if (!opts_.checkpoint_path.empty()) write_checkpoint();
}

}  // namespace iocov::serve
