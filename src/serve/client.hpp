// Blocking client side of the serve protocol: connect (with a bounded
// retry window, so a producer started in parallel with the daemon
// does not race its bind), send one framed request, read one framed
// response.  Socket I/O goes through host::write_fd/read_fd, so
// client-side failures carry the same structured IoError taxonomy —
// and the same FaultHook phases — as the daemon's.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "host/io.hpp"
#include "serve/protocol.hpp"

namespace iocov::serve {

/// Where the daemon listens.  `unix_path` wins when both are set.
struct Endpoint {
    std::string unix_path;
    int tcp_port = -1;  ///< on 127.0.0.1
};

/// One parsed response frame.
struct Reply {
    bool ok = false;           ///< OK vs ERR tag
    std::uint64_t epoch = 0;   ///< consistent-state tag (OK only)
    std::string text;          ///< payload (OK) or reason (ERR)
};

class Client {
  public:
    /// Connects, retrying connection-refused/not-found every 20ms for
    /// up to `deadline_ms` (a daemon that is still binding).  nullopt
    /// with *err filled on failure.
    static std::optional<Client> connect(const Endpoint& ep,
                                         int deadline_ms,
                                         host::IoError* err = nullptr);

    Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Client& operator=(Client&& other) noexcept;
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;
    ~Client();

    /// PUSH name+shard; QUERY text; STOP.  Each is one round trip;
    /// nullopt with *err filled on a transport failure (a server ERR
    /// response is a Reply with ok == false, not a transport failure).
    std::optional<Reply> push(std::string_view name, std::string_view shard,
                              host::IoError* err = nullptr);
    std::optional<Reply> query(std::string_view text,
                               host::IoError* err = nullptr);
    std::optional<Reply> stop(host::IoError* err = nullptr);

  private:
    explicit Client(int fd) : fd_(fd) {}
    std::optional<Reply> roundtrip(std::string frame_bytes,
                                   host::IoError* err);

    int fd_ = -1;
};

}  // namespace iocov::serve
