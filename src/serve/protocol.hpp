// The iocov serve wire protocol: length-prefixed frames over a
// stream socket, reusing the IOCT framing idiom (u32 LE payload
// length, payload = tag byte + body, varint integer fields) so the
// daemon's decode surface is the one the torn-tail corpus already
// exercises.
//
// Frame layout (all integers little-endian):
//
//   u32 LE  payload length (tag + body; 0 and > kMaxFramePayload are
//           structural corruption, not traffic)
//   u8      tag
//   ...     body
//
// Requests (client -> daemon):
//   0x01 PUSH   varint shard-name length, shard name, then the raw
//               IOCT shard bytes (the rest of the body)
//   0x02 QUERY  body is the query text ("report", "gaps",
//               "tcd BASE.KEY TARGET", "status", "ping")
//   0x03 STOP   empty body; asks the daemon to finalize and exit
//
// Responses (daemon -> client):
//   0x81 OK     varint epoch (consistent-state tag), then the payload
//               text (report bytes, gap lines, ...)
//   0x82 ERR    human-readable reason
//
// A FrameDecoder accumulates whatever byte slices the socket delivers
// and yields complete frames; a connection that closes with bytes
// still buffered is a *torn frame* — diagnosed with a stable reason
// string, never fed half-parsed into the pipeline (the same contract
// the IOCT scan gives torn tails).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace iocov::serve {

/// Upper bound on one frame's payload.  A pushed shard rides in one
/// frame, so this is also the max shard size the daemon accepts.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 30;

enum class MsgTag : std::uint8_t {
    Push = 0x01,
    Query = 0x02,
    Stop = 0x03,
    Ok = 0x81,
    Err = 0x82,
};

/// True for tags a peer may legitimately send (either direction).
bool known_tag(std::uint8_t tag);

struct Frame {
    MsgTag tag = MsgTag::Err;
    std::string body;  ///< payload minus the tag byte
};

// ---- encode ----------------------------------------------------------------

/// One complete frame: length prefix + tag + body.
std::string encode_frame(MsgTag tag, std::string_view body);

std::string encode_push(std::string_view name, std::string_view shard);
std::string encode_query(std::string_view text);
std::string encode_stop();
std::string encode_ok(std::uint64_t epoch, std::string_view text);
std::string encode_err(std::string_view reason);

// ---- decode ----------------------------------------------------------------

/// Splits a PUSH body into the shard name and the shard bytes (a view
/// into `body` — keep it alive).  False on a malformed body.
bool decode_push(std::string_view body, std::string& name,
                 std::string_view& shard);

/// Splits an OK body into the epoch and the payload text (a view into
/// `body`).  False on a malformed body.
bool decode_ok(std::string_view body, std::uint64_t& epoch,
               std::string_view& text);

/// Incremental frame reassembly over arbitrary byte slices.
class FrameDecoder {
  public:
    enum class Status : std::uint8_t {
        Frame,     ///< `out` holds one complete frame
        NeedMore,  ///< no complete frame buffered yet
        Corrupt,   ///< structural damage; the connection must drop
    };

    /// Appends bytes as they arrive from the socket.
    void feed(std::string_view bytes);

    /// Extracts the next complete frame.  On Corrupt, `reason` (when
    /// non-null) gets a stable diagnostic; the decoder is poisoned and
    /// keeps returning Corrupt.
    Status next(Frame& out, std::string* reason = nullptr);

    /// Bytes buffered but not yet consumed by a complete frame — at
    /// connection close, nonzero pending means a torn frame.
    std::size_t pending() const { return buf_.size() - off_; }

  private:
    std::string buf_;
    std::size_t off_ = 0;
    bool corrupt_ = false;
    std::string corrupt_reason_;
};

}  // namespace iocov::serve
