#include "serve/protocol.hpp"

#include <cstring>

#include "trace/detail/varint_decode.hpp"

namespace iocov::serve {
namespace {

void put_u32le(std::string& out, std::uint32_t v) {
    const char bytes[4] = {
        static_cast<char>(v & 0xff),
        static_cast<char>((v >> 8) & 0xff),
        static_cast<char>((v >> 16) & 0xff),
        static_cast<char>((v >> 24) & 0xff),
    };
    out.append(bytes, 4);
}

std::uint32_t get_u32le(const char* p) {
    const auto* u = reinterpret_cast<const unsigned char*>(p);
    return static_cast<std::uint32_t>(u[0]) |
           static_cast<std::uint32_t>(u[1]) << 8 |
           static_cast<std::uint32_t>(u[2]) << 16 |
           static_cast<std::uint32_t>(u[3]) << 24;
}

void put_varint(std::string& out, std::uint64_t v) {
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

bool read_varint(std::string_view& body, std::uint64_t& out) {
    const auto* p = reinterpret_cast<const unsigned char*>(body.data());
    const auto* end = p + body.size();
    if (!trace::detail::ScalarVarintReader::read(p, end, end, out))
        return false;
    body.remove_prefix(
        static_cast<std::size_t>(reinterpret_cast<const char*>(p) -
                                 body.data()));
    return true;
}

}  // namespace

bool known_tag(std::uint8_t tag) {
    switch (static_cast<MsgTag>(tag)) {
        case MsgTag::Push:
        case MsgTag::Query:
        case MsgTag::Stop:
        case MsgTag::Ok:
        case MsgTag::Err:
            return true;
    }
    return false;
}

std::string encode_frame(MsgTag tag, std::string_view body) {
    std::string out;
    out.reserve(5 + body.size());
    put_u32le(out, static_cast<std::uint32_t>(1 + body.size()));
    out.push_back(static_cast<char>(tag));
    out.append(body);
    return out;
}

std::string encode_push(std::string_view name, std::string_view shard) {
    std::string body;
    body.reserve(10 + name.size() + shard.size());
    put_varint(body, name.size());
    body.append(name);
    body.append(shard);
    return encode_frame(MsgTag::Push, body);
}

std::string encode_query(std::string_view text) {
    return encode_frame(MsgTag::Query, text);
}

std::string encode_stop() { return encode_frame(MsgTag::Stop, {}); }

std::string encode_ok(std::uint64_t epoch, std::string_view text) {
    std::string body;
    body.reserve(10 + text.size());
    put_varint(body, epoch);
    body.append(text);
    return encode_frame(MsgTag::Ok, body);
}

std::string encode_err(std::string_view reason) {
    return encode_frame(MsgTag::Err, reason);
}

bool decode_push(std::string_view body, std::string& name,
                 std::string_view& shard) {
    std::uint64_t len = 0;
    if (!read_varint(body, len)) return false;
    if (len > body.size()) return false;
    name.assign(body.substr(0, static_cast<std::size_t>(len)));
    shard = body.substr(static_cast<std::size_t>(len));
    return true;
}

bool decode_ok(std::string_view body, std::uint64_t& epoch,
               std::string_view& text) {
    if (!read_varint(body, epoch)) return false;
    text = body;
    return true;
}

void FrameDecoder::feed(std::string_view bytes) {
    if (corrupt_) return;
    // Compact once the consumed prefix dominates, so a long-lived
    // connection doesn't grow its buffer without bound.
    if (off_ > 0 && off_ >= buf_.size() / 2) {
        buf_.erase(0, off_);
        off_ = 0;
    }
    buf_.append(bytes);
}

FrameDecoder::Status FrameDecoder::next(Frame& out, std::string* reason) {
    if (corrupt_) {
        if (reason) *reason = corrupt_reason_;
        return Status::Corrupt;
    }
    const std::size_t avail = buf_.size() - off_;
    if (avail < 4) return Status::NeedMore;
    const std::uint32_t len = get_u32le(buf_.data() + off_);
    if (len == 0 || len > kMaxFramePayload) {
        corrupt_ = true;
        corrupt_reason_ = len == 0 ? "zero-length frame"
                                   : "oversized frame (" +
                                         std::to_string(len) + " bytes)";
        if (reason) *reason = corrupt_reason_;
        return Status::Corrupt;
    }
    if (avail - 4 < len) return Status::NeedMore;
    const auto tag = static_cast<std::uint8_t>(buf_[off_ + 4]);
    if (!known_tag(tag)) {
        corrupt_ = true;
        corrupt_reason_ =
            "unknown frame tag " + std::to_string(tag);
        if (reason) *reason = corrupt_reason_;
        return Status::Corrupt;
    }
    out.tag = static_cast<MsgTag>(tag);
    out.body.assign(buf_, off_ + 5, len - 1);
    off_ += 4 + len;
    return Status::Frame;
}

}  // namespace iocov::serve
