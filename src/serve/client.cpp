#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace iocov::serve {
namespace {

/// Errnos that mean "the daemon is not up *yet*" — worth retrying
/// inside the connect deadline.
bool connect_retryable(int err) {
    return err == ECONNREFUSED || err == ENOENT || err == EAGAIN ||
           err == EINTR;
}

int try_connect_once(const Endpoint& ep, int& err_out) {
    int fd = -1;
    if (!ep.unix_path.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (ep.unix_path.size() >= sizeof addr.sun_path) {
            err_out = ENAMETOOLONG;
            return -1;
        }
        std::memcpy(addr.sun_path, ep.unix_path.c_str(),
                    ep.unix_path.size() + 1);
        fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            err_out = errno;
            return -1;
        }
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof addr) == 0)
            return fd;
    } else {
        fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            err_out = errno;
            return -1;
        }
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<std::uint16_t>(ep.tcp_port));
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof addr) == 0)
            return fd;
    }
    err_out = errno;
    ::close(fd);
    return -1;
}

/// Bounds every send/recv on the connected socket by the caller's
/// deadline.  Without this a daemon that accepts but never answers
/// (wedged, SIGSTOPped, or a missed wakeup) would hang the client
/// forever — the timeout surfaces as EAGAIN, which the host retry
/// policy treats as transient a bounded number of times and then
/// returns as a structured IoError.
void bound_socket_io(int fd, int deadline_ms) {
    if (deadline_ms <= 0) deadline_ms = 1;
    timeval tv{};
    tv.tv_sec = deadline_ms / 1000;
    tv.tv_usec = (deadline_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

std::string endpoint_label(const Endpoint& ep) {
    return ep.unix_path.empty()
               ? "127.0.0.1:" + std::to_string(ep.tcp_port)
               : ep.unix_path;
}

}  // namespace

std::optional<Client> Client::connect(const Endpoint& ep, int deadline_ms,
                                      host::IoError* err) {
    host::ignore_sigpipe();
    int last_errno = EINVAL;
    if (ep.unix_path.empty() && ep.tcp_port < 0) {
        if (err)
            *err = host::IoError{host::IoPhase::Open, EINVAL,
                                 "no endpoint"};
        return std::nullopt;
    }
    int waited_ms = 0;
    for (;;) {
        const int fd = try_connect_once(ep, last_errno);
        if (fd >= 0) {
            bound_socket_io(fd, deadline_ms);
            return Client(fd);
        }
        if (!connect_retryable(last_errno) || waited_ms >= deadline_ms)
            break;
        timespec ts{0, 20 * 1'000'000};
        ::nanosleep(&ts, nullptr);
        waited_ms += 20;
    }
    if (err)
        *err = host::IoError{host::IoPhase::Open, last_errno,
                             endpoint_label(ep)};
    return std::nullopt;
}

Client& Client::operator=(Client&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) ::close(fd_);
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

Client::~Client() {
    if (fd_ >= 0) ::close(fd_);
}

std::optional<Reply> Client::roundtrip(std::string frame_bytes,
                                       host::IoError* err) {
    if (auto e = host::write_fd(fd_, frame_bytes, host::IoPhase::SockWrite,
                                host::RetryPolicy::standard(), "serve")) {
        if (err) *err = *e;
        return std::nullopt;
    }
    // Read exactly one response frame: length prefix, then payload.
    std::string head;
    if (auto e = host::read_fd(fd_, 4, head, host::IoPhase::SockRead,
                               host::RetryPolicy::standard(), "serve")) {
        if (err) *err = *e;
        return std::nullopt;
    }
    FrameDecoder decoder;
    decoder.feed(head);
    const auto* u = reinterpret_cast<const unsigned char*>(head.data());
    const std::uint32_t len = static_cast<std::uint32_t>(u[0]) |
                              static_cast<std::uint32_t>(u[1]) << 8 |
                              static_cast<std::uint32_t>(u[2]) << 16 |
                              static_cast<std::uint32_t>(u[3]) << 24;
    if (len == 0 || len > kMaxFramePayload) {
        if (err)
            *err = host::IoError{host::IoPhase::SockRead, EPROTO, "serve"};
        return std::nullopt;
    }
    std::string payload;
    if (auto e = host::read_fd(fd_, len, payload, host::IoPhase::SockRead,
                               host::RetryPolicy::standard(), "serve")) {
        if (err) *err = *e;  // err == 0 here means a torn response
        return std::nullopt;
    }
    decoder.feed(payload);
    Frame frame;
    if (decoder.next(frame) != FrameDecoder::Status::Frame) {
        if (err)
            *err = host::IoError{host::IoPhase::SockRead, EPROTO, "serve"};
        return std::nullopt;
    }
    Reply reply;
    if (frame.tag == MsgTag::Ok) {
        std::string_view text;
        if (!decode_ok(frame.body, reply.epoch, text)) {
            if (err)
                *err = host::IoError{host::IoPhase::SockRead, EPROTO,
                                     "serve"};
            return std::nullopt;
        }
        reply.ok = true;
        reply.text.assign(text);
    } else if (frame.tag == MsgTag::Err) {
        reply.ok = false;
        reply.text = std::move(frame.body);
    } else {
        if (err)
            *err = host::IoError{host::IoPhase::SockRead, EPROTO, "serve"};
        return std::nullopt;
    }
    return reply;
}

std::optional<Reply> Client::push(std::string_view name,
                                  std::string_view shard,
                                  host::IoError* err) {
    return roundtrip(encode_push(name, shard), err);
}

std::optional<Reply> Client::query(std::string_view text,
                                   host::IoError* err) {
    return roundtrip(encode_query(text), err);
}

std::optional<Reply> Client::stop(host::IoError* err) {
    return roundtrip(encode_stop(), err);
}

}  // namespace iocov::serve
