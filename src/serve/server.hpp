// iocov serve — the live coverage daemon's connection/session layer.
//
// One thread, one epoll: nonblocking Unix-domain and/or TCP
// (127.0.0.1) listeners, an eventfd for shutdown/wakeup (signal
// handlers and request_stop() write to it; the loop never handles a
// signal mid-read), per-connection FrameDecoder read buffers, and
// pending-write buffers flushed under EPOLLOUT when a send would
// block.  Handlers drain to EAGAIN but registration is
// level-triggered, so readiness that races registration is
// re-reported rather than lost (see epoll_add in server.cpp).  Every socket syscall consults
// host::FaultHook under the Accept/SockRead/SockWrite phases, so the
// chaos gate can errno-sweep and SIGKILL the daemon at socket
// operations exactly as it does file operations.
//
// Ingest and queries both run on the loop thread against a
// core::LiveCoverage, whose published-epoch reads guarantee a query
// during ingest sees the complete coverage of an exact prefix of the
// accepted pushes — never a torn histogram (DESIGN.md §13).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "core/live.hpp"
#include "host/io.hpp"
#include "serve/protocol.hpp"
#include "trace/diagnostics.hpp"

namespace iocov::serve {

struct ServeOptions {
    std::string unix_path;  ///< Unix-domain listener path ("" = none)
    int tcp_port = -1;      ///< 127.0.0.1 TCP port (-1 = none, 0 = ephemeral)
    unsigned threads = 1;   ///< per-push decode threads (1 = serial)

    /// IOCS delta emission: every `delta_every` accepted pushes (and at
    /// shutdown) the coverage accumulated since the previous delta is
    /// written durably to `delta_dir`/delta-<epoch>.iocs.  Merging all
    /// deltas reproduces the full state (snapshot algebra).
    std::string delta_dir;
    std::uint64_t delta_every = 0;  ///< 0 = only at shutdown
    std::string delta_label;        ///< provenance label stamped on deltas

    /// IOCK checkpointing: every `checkpoint_every` accepted pushes the
    /// full state + consumed shard names are written atomically to
    /// `checkpoint_path` (mode Serve).  With `resume`, an existing
    /// manifest seeds the daemon; producers then re-push everything and
    /// duplicates are skipped, converging to the uninterrupted result.
    std::string checkpoint_path;
    std::uint64_t checkpoint_every = 8;
    bool resume = false;

    /// Install SIGTERM/SIGINT handlers that route through the eventfd
    /// for a graceful shutdown (final delta + checkpoint).  Off in
    /// tests — gtest owns the handlers there.
    bool install_signal_handlers = false;
};

struct ServeStats {
    std::uint64_t connections = 0;
    std::uint64_t frames = 0;
    std::uint64_t pushes_accepted = 0;
    std::uint64_t pushes_duplicate = 0;
    std::uint64_t pushes_rejected = 0;  ///< non-IOCT payloads
    std::uint64_t queries = 0;
    std::uint64_t torn_frames = 0;   ///< closed/corrupt mid-frame
    std::uint64_t sock_errors = 0;   ///< connections dropped on errno
    std::uint64_t shard_bytes = 0;   ///< accepted IOCT bytes
    std::uint64_t deltas = 0;
    std::uint64_t checkpoints = 0;
};

class Server {
  public:
    Server(core::LiveCoverage& live, ServeOptions opts);
    ~Server();
    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Binds the listeners, sets up epoll + eventfd, and — with
    /// opts.resume — restores state from the checkpoint manifest.
    /// After success tcp_port() reports the bound port.
    host::IoStatus start();

    /// Runs the event loop until a STOP frame, a handled signal, or
    /// request_stop().  Finalizes (last delta + checkpoint) before
    /// returning.  start() must have succeeded.
    void run();

    /// Thread-safe shutdown request (eventfd wakeup).
    void request_stop();

    /// Actual TCP port after start() (resolves port 0).  -1 if no TCP
    /// listener.
    int tcp_port() const { return bound_tcp_port_; }

    /// Counters and the retained torn-frame/socket diagnostics.  Read
    /// after run() (or from the loop thread).
    const ServeStats& stats() const { return stats_; }
    const trace::ParseDiagnostics& diagnostics() const { return diags_; }

  private:
    struct Conn {
        FrameDecoder decoder;
        std::string out;        ///< pending response bytes
        std::size_t out_off = 0;
        bool dead = false;
    };

    host::IoStatus listen_unix();
    host::IoStatus listen_tcp();
    host::IoStatus restore_from_checkpoint();
    bool epoll_add(int fd, bool out_too);
    void accept_ready(int listen_fd);
    void conn_readable(int fd);
    void conn_writable(int fd);
    void drop_conn(int fd);
    void handle_frame(int fd, Frame frame);
    void respond(int fd, std::string frame_bytes);
    std::string handle_query(std::string_view text, std::uint64_t& epoch,
                             bool& ok);
    void after_accepted_push();
    void emit_delta();
    void write_checkpoint();
    void finalize();

    core::LiveCoverage& live_;
    ServeOptions opts_;
    ServeStats stats_;
    trace::ParseDiagnostics diags_;
    std::map<int, Conn> conns_;
    int epoll_fd_ = -1;
    int event_fd_ = -1;
    int unix_fd_ = -1;
    int tcp_fd_ = -1;
    int bound_tcp_port_ = -1;
    std::uint64_t pushes_since_delta_ = 0;
    std::uint64_t pushes_since_checkpoint_ = 0;
    bool stopping_ = false;
};

}  // namespace iocov::serve
