// truncate / ftruncate, mkdir / mkdirat, chmod family, close, chdir /
// fchdir, and the untracked extras (fsync, unlink, rename, ...).
#include "abi/limits.hpp"
#include "syscall/process.hpp"

namespace iocov::syscall {

using abi::Err;

std::int64_t Process::sys_truncate(const char* pathname,
                                   std::int64_t length) {
    auto compute = [&]() -> std::int64_t {
        PathArg pa = path_arg(abi::AT_FDCWD, pathname);
        if (pa.err) return pa.err;
        if (length < 0) return abi::fail(Err::EINVAL_);
        auto& fs = kernel_.fs_;
        auto r = fs.resolve(pa.path, cred_, {.base = pa.base});
        if (!r.ok()) return abi::fail(r.error());
        const vfs::Inode* node = fs.find(r.value());
        if (node->is_dir()) return abi::fail(Err::EISDIR_);
        if (!node->is_reg()) return abi::fail(Err::EINVAL_);
        if (node->executing) return abi::fail(Err::ETXTBSY_);
        if (fs.config().read_only) return abi::fail(Err::EROFS_);
        if (auto st = fs.access_check(r.value(), 2, cred_); !st.ok())
            return abi::fail(st.error());
        if (auto st = fs.truncate(r.value(),
                                  static_cast<std::uint64_t>(length));
            !st.ok())
            return abi::fail(st.error());
        return 0;
    };
    std::int64_t ret;
    if (auto e = fault("truncate")) ret = abi::fail(*e);
    else ret = compute();
    emit("truncate", {sarg("pathname", pathname), targ("length", length)},
         ret);
    return ret;
}

std::int64_t Process::sys_ftruncate(int fd, std::int64_t length) {
    auto compute = [&]() -> std::int64_t {
        FileDescription* desc = lookup_fd(fd);
        if (!desc) return abi::fail(Err::EBADF_);
        if (length < 0) return abi::fail(Err::EINVAL_);
        // POSIX: EINVAL (not EBADF) when the fd is not open for writing
        // or does not refer to a regular file.
        if (desc->path_only() || !desc->writable() || desc->is_directory)
            return abi::fail(Err::EINVAL_);
        const vfs::Inode* node = kernel_.fs_.find(desc->ino);
        if (!node) return abi::fail(Err::EBADF_);
        if (!node->is_reg()) return abi::fail(Err::EINVAL_);
        if (auto st = kernel_.fs_.truncate(
                desc->ino, static_cast<std::uint64_t>(length));
            !st.ok())
            return abi::fail(st.error());
        return 0;
    };
    std::int64_t ret;
    if (auto e = fault("ftruncate")) ret = abi::fail(*e);
    else ret = compute();
    emit("ftruncate", {targ("fd", fd), targ("length", length)}, ret);
    return ret;
}

namespace {

std::int64_t mkdir_common(vfs::FileSystem& fs, vfs::InodeId base,
                          const std::string& path, abi::mode_t_ mode,
                          abi::mode_t_ umask, const vfs::Credentials& cred) {
    auto parent = fs.resolve_parent(path, cred, {.base = base});
    if (!parent.ok()) return abi::fail(parent.error());
    if (parent.value().name.empty()) return abi::fail(Err::EEXIST_);  // "/"
    auto made = fs.make_dir(parent.value().parent, parent.value().name,
                            mode & ~umask, cred);
    if (!made.ok()) return abi::fail(made.error());
    return 0;
}

}  // namespace

std::int64_t Process::sys_mkdir(const char* pathname, abi::mode_t_ mode) {
    std::int64_t ret;
    if (auto e = fault("mkdir")) {
        ret = abi::fail(*e);
    } else {
        PathArg pa = path_arg(abi::AT_FDCWD, pathname);
        ret = pa.err ? pa.err
                     : mkdir_common(kernel_.fs_, pa.base, pa.path, mode,
                                    umask_, cred_);
    }
    emit("mkdir", {sarg("pathname", pathname), uarg("mode", mode)}, ret);
    return ret;
}

std::int64_t Process::sys_mkdirat(int dfd, const char* pathname,
                                  abi::mode_t_ mode) {
    std::int64_t ret;
    if (auto e = fault("mkdirat")) {
        ret = abi::fail(*e);
    } else {
        PathArg pa = path_arg(dfd, pathname);
        ret = pa.err ? pa.err
                     : mkdir_common(kernel_.fs_, pa.base, pa.path, mode,
                                    umask_, cred_);
    }
    emit("mkdirat",
         {targ("dfd", dfd), sarg("pathname", pathname), uarg("mode", mode)},
         ret);
    return ret;
}

std::int64_t Process::do_chmod_path(int dfd, const char* pathname,
                                    abi::mode_t_ mode, bool follow) {
    PathArg pa = path_arg(dfd, pathname);
    if (pa.err) return pa.err;
    auto& fs = kernel_.fs_;
    auto r = fs.resolve(pa.path, cred_,
                        {.base = pa.base, .follow_final = follow});
    if (!r.ok()) return abi::fail(r.error());
    if (auto st = fs.chmod(r.value(), mode, cred_); !st.ok())
        return abi::fail(st.error());
    return 0;
}

std::int64_t Process::sys_chmod(const char* pathname, abi::mode_t_ mode) {
    std::int64_t ret;
    if (auto e = fault("chmod")) ret = abi::fail(*e);
    else ret = do_chmod_path(abi::AT_FDCWD, pathname, mode, true);
    emit("chmod", {sarg("pathname", pathname), uarg("mode", mode)}, ret);
    return ret;
}

std::int64_t Process::sys_fchmod(int fd, abi::mode_t_ mode) {
    auto compute = [&]() -> std::int64_t {
        FileDescription* desc = lookup_fd(fd);
        if (!desc) return abi::fail(Err::EBADF_);
        if (auto st = kernel_.fs_.chmod(desc->ino, mode, cred_); !st.ok())
            return abi::fail(st.error());
        return 0;
    };
    std::int64_t ret;
    if (auto e = fault("fchmod")) ret = abi::fail(*e);
    else ret = compute();
    emit("fchmod", {targ("fd", fd), uarg("mode", mode)}, ret);
    return ret;
}

std::int64_t Process::sys_fchmodat(int dfd, const char* pathname,
                                   abi::mode_t_ mode, std::uint32_t flags) {
    std::int64_t ret;
    if (auto e = fault("fchmodat")) {
        ret = abi::fail(*e);
    } else if (flags & ~abi::AT_SYMLINK_NOFOLLOW) {
        ret = abi::fail(Err::EINVAL_);
    } else if (flags & abi::AT_SYMLINK_NOFOLLOW) {
        // Like glibc/the kernel: chmod on a symlink itself is
        // unsupported.
        ret = abi::fail(Err::EOPNOTSUPP_);
    } else {
        ret = do_chmod_path(dfd, pathname, mode, true);
    }
    emit("fchmodat",
         {targ("dfd", dfd), sarg("pathname", pathname), uarg("mode", mode),
          uarg("flags", flags)},
         ret);
    return ret;
}

std::int64_t Process::sys_close(int fd) {
    auto compute = [&]() -> std::int64_t {
        if (!lookup_fd(fd)) return abi::fail(Err::EBADF_);
        drop_fd_entry(fd);
        return 0;
    };
    std::int64_t ret;
    if (auto e = fault("close")) ret = abi::fail(*e);
    else ret = compute();
    emit("close", {targ("fd", fd)}, ret);
    return ret;
}

std::int64_t Process::sys_chdir(const char* pathname) {
    auto compute = [&]() -> std::int64_t {
        PathArg pa = path_arg(abi::AT_FDCWD, pathname);
        if (pa.err) return pa.err;
        auto& fs = kernel_.fs_;
        auto r = fs.resolve(pa.path, cred_, {.base = pa.base});
        if (!r.ok()) return abi::fail(r.error());
        const vfs::Inode* node = fs.find(r.value());
        if (!node->is_dir()) return abi::fail(Err::ENOTDIR_);
        if (auto st = fs.access_check(r.value(), 1, cred_); !st.ok())
            return abi::fail(st.error());
        cwd_ = r.value();
        return 0;
    };
    std::int64_t ret;
    if (auto e = fault("chdir")) ret = abi::fail(*e);
    else ret = compute();
    emit("chdir", {sarg("pathname", pathname)}, ret);
    return ret;
}

std::int64_t Process::sys_fchdir(int fd) {
    auto compute = [&]() -> std::int64_t {
        FileDescription* desc = lookup_fd(fd);
        if (!desc) return abi::fail(Err::EBADF_);
        if (!desc->is_directory) return abi::fail(Err::ENOTDIR_);
        if (auto st = kernel_.fs_.access_check(desc->ino, 1, cred_); !st.ok())
            return abi::fail(st.error());
        cwd_ = desc->ino;
        return 0;
    };
    std::int64_t ret;
    if (auto e = fault("fchdir")) ret = abi::fail(*e);
    else ret = compute();
    emit("fchdir", {targ("fd", fd)}, ret);
    return ret;
}

// ---- untracked extras ------------------------------------------------------

namespace {

std::int64_t stat_common(vfs::FileSystem& fs, vfs::InodeId base,
                         const std::string& path, bool follow,
                         const vfs::Credentials& cred, vfs::Stat* out) {
    auto r = fs.resolve(path, cred, {.base = base, .follow_final = follow});
    if (!r.ok()) return abi::fail(r.error());
    auto st = fs.stat(r.value());
    if (!st.ok()) return abi::fail(st.error());
    if (out) *out = st.value();
    return 0;
}

}  // namespace

std::int64_t Process::sys_stat(const char* pathname, vfs::Stat* out) {
    std::int64_t ret;
    if (auto e = fault("stat")) {
        ret = abi::fail(*e);
    } else {
        PathArg pa = path_arg(abi::AT_FDCWD, pathname);
        ret = pa.err ? pa.err
                     : stat_common(kernel_.fs(), pa.base, pa.path, true,
                                   cred_, out);
    }
    emit("stat", {sarg("pathname", pathname)}, ret);
    return ret;
}

std::int64_t Process::sys_lstat(const char* pathname, vfs::Stat* out) {
    std::int64_t ret;
    if (auto e = fault("lstat")) {
        ret = abi::fail(*e);
    } else {
        PathArg pa = path_arg(abi::AT_FDCWD, pathname);
        ret = pa.err ? pa.err
                     : stat_common(kernel_.fs(), pa.base, pa.path, false,
                                   cred_, out);
    }
    emit("lstat", {sarg("pathname", pathname)}, ret);
    return ret;
}

std::int64_t Process::sys_fstat(int fd, vfs::Stat* out) {
    auto compute = [&]() -> std::int64_t {
        FileDescription* desc = lookup_fd(fd);
        if (!desc) return abi::fail(Err::EBADF_);
        auto st = kernel_.fs().stat(desc->ino);
        if (!st.ok()) return abi::fail(st.error());
        if (out) *out = st.value();
        return 0;
    };
    std::int64_t ret;
    if (auto e = fault("fstat")) ret = abi::fail(*e);
    else ret = compute();
    emit("fstat", {targ("fd", fd)}, ret);
    return ret;
}

std::int64_t Process::sys_fsync(int fd) {
    std::int64_t ret;
    if (auto e = fault("fsync")) {
        ret = abi::fail(*e);
    } else if (FileDescription* desc = lookup_fd(fd)) {
        kernel_.fs().sync_inode(desc->ino, vfs::BarrierKind::Fsync);
        ret = 0;
    } else {
        ret = abi::fail(Err::EBADF_);
    }
    emit("fsync", {targ("fd", fd)}, ret);
    return ret;
}

std::int64_t Process::sys_fdatasync(int fd) {
    std::int64_t ret;
    if (auto e = fault("fdatasync")) {
        ret = abi::fail(*e);
    } else if (FileDescription* desc = lookup_fd(fd)) {
        kernel_.fs().sync_inode(desc->ino, vfs::BarrierKind::Fdatasync);
        ret = 0;
    } else {
        ret = abi::fail(Err::EBADF_);
    }
    emit("fdatasync", {targ("fd", fd)}, ret);
    return ret;
}

std::int64_t Process::sys_sync() {
    std::int64_t ret = 0;
    if (auto e = fault("sync")) ret = abi::fail(*e);
    else kernel_.fs().sync_all(vfs::BarrierKind::Sync);
    emit("sync", {}, ret);
    return ret;
}

std::int64_t Process::sys_syncfs(int fd) {
    // syncfs(2): sync the file system containing fd.  One mount here, so
    // the scope is the whole VFS; the fd only has to be valid.
    std::int64_t ret;
    if (auto e = fault("syncfs")) {
        ret = abi::fail(*e);
    } else if (lookup_fd(fd)) {
        kernel_.fs().sync_all(vfs::BarrierKind::Syncfs);
        ret = 0;
    } else {
        ret = abi::fail(Err::EBADF_);
    }
    emit("syncfs", {targ("fd", fd)}, ret);
    return ret;
}

std::int64_t Process::sys_unlink(const char* pathname) {
    auto compute = [&]() -> std::int64_t {
        PathArg pa = path_arg(abi::AT_FDCWD, pathname);
        if (pa.err) return pa.err;
        auto& fs = kernel_.fs_;
        auto parent = fs.resolve_parent(pa.path, cred_, {.base = pa.base});
        if (!parent.ok()) return abi::fail(parent.error());
        if (parent.value().name.empty()) return abi::fail(Err::EISDIR_);
        if (auto st = fs.unlink(parent.value().parent, parent.value().name,
                                cred_);
            !st.ok())
            return abi::fail(st.error());
        return 0;
    };
    std::int64_t ret;
    if (auto e = fault("unlink")) ret = abi::fail(*e);
    else ret = compute();
    emit("unlink", {sarg("pathname", pathname)}, ret);
    return ret;
}

std::int64_t Process::sys_rmdir(const char* pathname) {
    auto compute = [&]() -> std::int64_t {
        PathArg pa = path_arg(abi::AT_FDCWD, pathname);
        if (pa.err) return pa.err;
        auto& fs = kernel_.fs_;
        auto parent = fs.resolve_parent(pa.path, cred_, {.base = pa.base});
        if (!parent.ok()) return abi::fail(parent.error());
        if (parent.value().name.empty()) return abi::fail(Err::EBUSY_);  // "/"
        if (auto st = fs.remove_dir(parent.value().parent,
                                    parent.value().name, cred_);
            !st.ok())
            return abi::fail(st.error());
        return 0;
    };
    std::int64_t ret;
    if (auto e = fault("rmdir")) ret = abi::fail(*e);
    else ret = compute();
    emit("rmdir", {sarg("pathname", pathname)}, ret);
    return ret;
}

std::int64_t Process::sys_rename(const char* oldpath, const char* newpath) {
    auto compute = [&]() -> std::int64_t {
        PathArg po = path_arg(abi::AT_FDCWD, oldpath);
        if (po.err) return po.err;
        PathArg pn = path_arg(abi::AT_FDCWD, newpath);
        if (pn.err) return pn.err;
        auto& fs = kernel_.fs_;
        auto op = fs.resolve_parent(po.path, cred_, {.base = po.base});
        if (!op.ok()) return abi::fail(op.error());
        auto np = fs.resolve_parent(pn.path, cred_, {.base = pn.base});
        if (!np.ok()) return abi::fail(np.error());
        if (op.value().name.empty() || np.value().name.empty())
            return abi::fail(Err::EBUSY_);
        if (auto st = fs.rename(op.value().parent, op.value().name,
                                np.value().parent, np.value().name, cred_);
            !st.ok())
            return abi::fail(st.error());
        return 0;
    };
    std::int64_t ret;
    if (auto e = fault("rename")) ret = abi::fail(*e);
    else ret = compute();
    emit("rename", {sarg("oldpath", oldpath), sarg("newpath", newpath)}, ret);
    return ret;
}

std::int64_t Process::sys_symlink(const char* target, const char* linkpath) {
    auto compute = [&]() -> std::int64_t {
        if (!target) return abi::fail(Err::EFAULT_);
        PathArg pa = path_arg(abi::AT_FDCWD, linkpath);
        if (pa.err) return pa.err;
        auto& fs = kernel_.fs_;
        auto parent = fs.resolve_parent(pa.path, cred_, {.base = pa.base});
        if (!parent.ok()) return abi::fail(parent.error());
        if (parent.value().name.empty()) return abi::fail(Err::EEXIST_);
        auto made = fs.make_symlink(parent.value().parent,
                                    parent.value().name, target, cred_);
        if (!made.ok()) return abi::fail(made.error());
        return 0;
    };
    std::int64_t ret;
    if (auto e = fault("symlink")) ret = abi::fail(*e);
    else ret = compute();
    emit("symlink", {sarg("target", target), sarg("linkpath", linkpath)},
         ret);
    return ret;
}

std::int64_t Process::sys_link(const char* oldpath, const char* newpath) {
    auto compute = [&]() -> std::int64_t {
        PathArg po = path_arg(abi::AT_FDCWD, oldpath);
        if (po.err) return po.err;
        PathArg pn = path_arg(abi::AT_FDCWD, newpath);
        if (pn.err) return pn.err;
        auto& fs = kernel_.fs_;
        // link(2) does not follow a final symlink on oldpath.
        auto target = fs.resolve(po.path, cred_,
                                 {.base = po.base, .follow_final = false});
        if (!target.ok()) return abi::fail(target.error());
        auto parent = fs.resolve_parent(pn.path, cred_, {.base = pn.base});
        if (!parent.ok()) return abi::fail(parent.error());
        if (parent.value().name.empty()) return abi::fail(Err::EEXIST_);
        if (auto st = fs.link(target.value(), parent.value().parent,
                              parent.value().name, cred_);
            !st.ok())
            return abi::fail(st.error());
        return 0;
    };
    std::int64_t ret;
    if (auto e = fault("link")) ret = abi::fail(*e);
    else ret = compute();
    emit("link", {sarg("oldpath", oldpath), sarg("newpath", newpath)}, ret);
    return ret;
}

}  // namespace iocov::syscall
