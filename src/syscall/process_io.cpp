// read / pread64 / readv, write / pwrite64 / writev, lseek.
#include <algorithm>
#include <array>
#include <limits>

#include "abi/limits.hpp"
#include "abi/seek.hpp"
#include "syscall/process.hpp"

namespace iocov::syscall {

using abi::Err;

namespace {

constexpr std::uint64_t kDirectAlign = 512;

bool direct_misaligned(std::uint64_t off, std::uint64_t len) {
    return (off % kDirectAlign) != 0 || (len % kDirectAlign) != 0;
}

}  // namespace

std::int64_t Process::do_read(int fd, ReadDst& dst, std::int64_t pos,
                              bool use_pos) {
    FileDescription* desc = lookup_fd(fd);
    if (!desc) return abi::fail(Err::EBADF_);
    if (desc->path_only() || !desc->readable()) return abi::fail(Err::EBADF_);
    if (desc->is_directory) return abi::fail(Err::EISDIR_);
    if (use_pos && pos < 0) return abi::fail(Err::EINVAL_);

    auto& fs = kernel_.fs_;
    const vfs::Inode* node = fs.find(desc->ino);
    if (!node) return abi::fail(Err::EBADF_);

    if (node->is_fifo()) {
        if (use_pos) return abi::fail(Err::ESPIPE_);
        // The simulated fifo never has data: non-blocking reads see
        // EAGAIN; a blocking read is modeled as interrupted by a signal.
        return abi::fail((desc->flags & abi::O_NONBLOCK) ? Err::EAGAIN_
                                                         : Err::EINTR_);
    }

    if (dst.kind() == ReadDst::Kind::BadAddr && dst.len() > 0)
        return abi::fail(Err::EFAULT_);

    // The kernel silently truncates giant requests to MAX_RW_COUNT.
    const std::uint64_t count = std::min(dst.len(), abi::MAX_RW_COUNT);
    const std::uint64_t off =
        use_pos ? static_cast<std::uint64_t>(pos) : desc->offset;

    if ((desc->flags & abi::O_DIRECT) && direct_misaligned(off, count))
        return abi::fail(Err::EINVAL_);

    if (count == 0) return 0;

    std::uint64_t total = 0;
    if (dst.kind() == ReadDst::Kind::Real) {
        auto r = fs.read(desc->ino, off, dst.bytes().first(count));
        if (!r.ok()) return abi::fail(r.error());
        total = r.value();
    } else {
        // Discard destination: stream through a scratch chunk so huge
        // reads never materialize a buffer.
        std::array<std::byte, 256 * 1024> scratch;
        while (total < count) {
            const std::uint64_t want =
                std::min<std::uint64_t>(scratch.size(), count - total);
            auto r = fs.read(desc->ino, off + total,
                             std::span(scratch.data(), want));
            if (!r.ok()) return abi::fail(r.error());
            total += r.value();
            if (r.value() < want) break;  // EOF
        }
    }
    if (!use_pos) desc->offset = off + total;
    return static_cast<std::int64_t>(total);
}

std::int64_t Process::do_write(int fd, const WriteSrc& src, std::int64_t pos,
                               bool use_pos) {
    FileDescription* desc = lookup_fd(fd);
    if (!desc) return abi::fail(Err::EBADF_);
    if (desc->path_only() || !desc->writable()) return abi::fail(Err::EBADF_);
    if (use_pos && pos < 0) return abi::fail(Err::EINVAL_);

    auto& fs = kernel_.fs_;
    const vfs::Inode* node = fs.find(desc->ino);
    if (!node) return abi::fail(Err::EBADF_);

    if (node->is_fifo()) {
        if (use_pos) return abi::fail(Err::ESPIPE_);
        return abi::fail(node->fifo_has_reader ? Err::EAGAIN_ : Err::EPIPE_);
    }

    if (src.kind() == WriteSrc::Kind::BadAddr && src.len() > 0)
        return abi::fail(Err::EFAULT_);

    const std::uint64_t count = std::min(src.len(), abi::MAX_RW_COUNT);
    std::uint64_t off;
    if (use_pos) {
        off = static_cast<std::uint64_t>(pos);
    } else if (desc->flags & abi::O_APPEND) {
        off = node->data.size();
    } else {
        off = desc->offset;
    }

    if ((desc->flags & abi::O_DIRECT) && direct_misaligned(off, count))
        return abi::fail(Err::EINVAL_);

    if (count == 0) {
        // POSIX: a zero-length write on a regular file returns 0 with
        // no other effect — the boundary input the paper calls out.
        return 0;
    }

    vfs::Result<std::uint64_t> r =
        src.kind() == WriteSrc::Kind::Real
            ? fs.write(desc->ino, off, src.bytes().first(count))
            : fs.write_pattern(desc->ino, off, count, src.fill());
    if (!r.ok()) return abi::fail(r.error());
    // O_SYNC/O_DSYNC: every successful write is its own persistence
    // barrier (O_DSYNC syncs the data like fdatasync; O_SYNC is the
    // full fsync equivalent — both scope to this inode).
    if ((desc->flags & abi::O_SYNC) == abi::O_SYNC)
        fs.sync_inode(desc->ino, vfs::BarrierKind::OSync);
    else if (desc->flags & abi::O_DSYNC)
        fs.sync_inode(desc->ino, vfs::BarrierKind::Fdatasync);
    if (!use_pos) desc->offset = off + r.value();
    return static_cast<std::int64_t>(r.value());
}

std::int64_t Process::sys_read(int fd, ReadDst dst) {
    std::int64_t ret;
    if (auto e = fault("read")) ret = abi::fail(*e);
    else ret = do_read(fd, dst, 0, false);
    emit("read", {targ("fd", fd), uarg("count", dst.len())}, ret);
    return ret;
}

std::int64_t Process::sys_pread64(int fd, ReadDst dst, std::int64_t pos) {
    std::int64_t ret;
    if (auto e = fault("pread64")) ret = abi::fail(*e);
    else ret = do_read(fd, dst, pos, true);
    emit("pread64",
         {targ("fd", fd), uarg("count", dst.len()), targ("pos", pos)}, ret);
    return ret;
}

std::int64_t Process::sys_readv(int fd, std::vector<ReadDst> iov) {
    std::int64_t ret = 0;
    std::uint64_t total_req = 0;
    for (const auto& d : iov) total_req += d.len();

    if (auto e = fault("readv")) {
        ret = abi::fail(*e);
    } else if (iov.size() > static_cast<std::size_t>(abi::IOV_MAX_)) {
        ret = abi::fail(Err::EINVAL_);
    } else {
        std::int64_t total = 0;
        for (auto& d : iov) {
            const std::int64_t n = do_read(fd, d, 0, false);
            if (n < 0) {
                if (total == 0) total = n;  // nothing transferred yet
                break;
            }
            total += n;
            if (static_cast<std::uint64_t>(n) < d.len()) break;  // EOF
        }
        ret = total;
    }
    emit("readv",
         {targ("fd", fd), uarg("vlen", iov.size()),
          uarg("count", total_req)},
         ret);
    return ret;
}

std::int64_t Process::sys_write(int fd, WriteSrc src) {
    std::int64_t ret;
    if (auto e = fault("write")) ret = abi::fail(*e);
    else ret = do_write(fd, src, 0, false);
    emit("write", {targ("fd", fd), uarg("count", src.len())}, ret);
    return ret;
}

std::int64_t Process::sys_pwrite64(int fd, WriteSrc src, std::int64_t pos) {
    std::int64_t ret;
    if (auto e = fault("pwrite64")) ret = abi::fail(*e);
    else ret = do_write(fd, src, pos, true);
    emit("pwrite64",
         {targ("fd", fd), uarg("count", src.len()), targ("pos", pos)}, ret);
    return ret;
}

std::int64_t Process::sys_writev(int fd, std::vector<WriteSrc> iov) {
    std::int64_t ret = 0;
    std::uint64_t total_req = 0;
    for (const auto& s : iov) total_req += s.len();

    if (auto e = fault("writev")) {
        ret = abi::fail(*e);
    } else if (iov.size() > static_cast<std::size_t>(abi::IOV_MAX_)) {
        ret = abi::fail(Err::EINVAL_);
    } else {
        std::int64_t total = 0;
        for (const auto& s : iov) {
            const std::int64_t n = do_write(fd, s, 0, false);
            if (n < 0) {
                if (total == 0) total = n;
                break;
            }
            total += n;
            if (static_cast<std::uint64_t>(n) < s.len()) break;
        }
        ret = total;
    }
    emit("writev",
         {targ("fd", fd), uarg("vlen", iov.size()),
          uarg("count", total_req)},
         ret);
    return ret;
}

std::int64_t Process::sys_lseek(int fd, std::int64_t offset, int whence) {
    std::int64_t ret;
    auto compute = [&]() -> std::int64_t {
        FileDescription* desc = lookup_fd(fd);
        if (!desc) return abi::fail(Err::EBADF_);
        const vfs::Inode* node = kernel_.fs_.find(desc->ino);
        if (!node) return abi::fail(Err::EBADF_);
        if (node->is_fifo()) return abi::fail(Err::ESPIPE_);
        if (!abi::seek_whence_name(whence)) return abi::fail(Err::EINVAL_);

        const auto size = static_cast<std::int64_t>(node->data.size());
        std::int64_t target = 0;
        switch (whence) {
            case abi::SEEK_SET_:
                target = offset;
                break;
            case abi::SEEK_CUR_: {
                const auto cur = static_cast<std::int64_t>(desc->offset);
                if (offset > 0 &&
                    cur > std::numeric_limits<std::int64_t>::max() - offset)
                    return abi::fail(Err::EOVERFLOW_);
                target = cur + offset;
                break;
            }
            case abi::SEEK_END_:
                if (offset > 0 &&
                    size > std::numeric_limits<std::int64_t>::max() - offset)
                    return abi::fail(Err::EOVERFLOW_);
                target = size + offset;
                break;
            case abi::SEEK_DATA_: {
                if (offset < 0 || offset > size) return abi::fail(Err::ENXIO_);
                auto d = node->data.next_data(
                    static_cast<std::uint64_t>(offset));
                if (!d) return abi::fail(Err::ENXIO_);
                target = static_cast<std::int64_t>(*d);
                break;
            }
            case abi::SEEK_HOLE_: {
                if (offset < 0 || offset > size) return abi::fail(Err::ENXIO_);
                target = static_cast<std::int64_t>(node->data.next_hole(
                    static_cast<std::uint64_t>(offset)));
                break;
            }
        }
        if (target < 0) return abi::fail(Err::EINVAL_);
        desc->offset = static_cast<std::uint64_t>(target);
        return target;
    };
    if (auto e = fault("lseek")) ret = abi::fail(*e);
    else ret = compute();
    emit("lseek",
         {targ("fd", fd), targ("offset", offset), targ("whence", whence)},
         ret);
    return ret;
}

}  // namespace iocov::syscall
