#include "syscall/userbuf.hpp"

#include <algorithm>

namespace iocov::syscall {

WriteSrc WriteSrc::first(std::uint64_t n) const {
    const std::uint64_t len = std::min(n, len_);
    switch (kind_) {
        case Kind::Real:
            return real(bytes_.first(len));
        case Kind::Pattern:
            return pattern(len, fill_);
        case Kind::BadAddr:
            return bad_address(len);
    }
    return pattern(0, std::byte{0});
}

}  // namespace iocov::syscall
