// Process: per-process syscall entry points.
//
// Implements the 27 file-system syscalls the paper tracks (11 base +
// variants) plus a handful of untracked extras (fsync, unlink, rename,
// ...) so generated workloads — and therefore traces — look like real
// tester runs.  Every entry point returns the kernel-convention int64
// (>= 0 success, -errno failure) and emits one TraceEvent.
//
// Pathname arguments are `const char*` deliberately: a nullptr models a
// faulting user pointer and yields EFAULT, exactly like the kernel's
// strncpy_from_user() path.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "abi/fcntl.hpp"
#include "abi/stat_mode.hpp"
#include "syscall/kernel.hpp"
#include "syscall/userbuf.hpp"
#include "vfs/types.hpp"

namespace iocov::syscall {

/// An open file description (what a struct file holds).
struct FileDescription {
    vfs::InodeId ino = vfs::kInvalidInode;
    std::uint32_t flags = 0;  ///< open flags as granted
    std::uint64_t offset = 0;
    bool is_directory = false;
    /// O_TMPFILE inodes are anonymous: freed when the fd closes.
    bool anonymous = false;

    bool readable() const {
        const auto acc = flags & abi::O_ACCMODE;
        return acc == abi::O_RDONLY || acc == abi::O_RDWR;
    }
    bool writable() const {
        const auto acc = flags & abi::O_ACCMODE;
        return acc == abi::O_WRONLY || acc == abi::O_RDWR;
    }
    bool path_only() const { return flags & abi::O_PATH; }
};

class Process {
  public:
    Process(Kernel& kernel, std::uint32_t pid, vfs::Credentials cred);
    ~Process();

    Process(Process&&) = default;
    Process(const Process&) = delete;
    Process& operator=(const Process&) = delete;

    // ---- open family (tracked) --------------------------------------
    std::int64_t sys_open(const char* pathname, std::uint32_t flags,
                          abi::mode_t_ mode = 0);
    std::int64_t sys_openat(int dfd, const char* pathname,
                            std::uint32_t flags, abi::mode_t_ mode = 0);
    std::int64_t sys_creat(const char* pathname, abi::mode_t_ mode);
    std::int64_t sys_openat2(int dfd, const char* pathname,
                             const abi::OpenHow& how,
                             std::uint64_t usize = 24);

    // ---- read family (tracked) --------------------------------------
    std::int64_t sys_read(int fd, ReadDst dst);
    std::int64_t sys_pread64(int fd, ReadDst dst, std::int64_t pos);
    std::int64_t sys_readv(int fd, std::vector<ReadDst> iov);

    // ---- write family (tracked) -------------------------------------
    std::int64_t sys_write(int fd, WriteSrc src);
    std::int64_t sys_pwrite64(int fd, WriteSrc src, std::int64_t pos);
    std::int64_t sys_writev(int fd, std::vector<WriteSrc> iov);

    // ---- offsets / sizes (tracked) ----------------------------------
    std::int64_t sys_lseek(int fd, std::int64_t offset, int whence);
    std::int64_t sys_truncate(const char* pathname, std::int64_t length);
    std::int64_t sys_ftruncate(int fd, std::int64_t length);

    // ---- directories / modes (tracked) ------------------------------
    std::int64_t sys_mkdir(const char* pathname, abi::mode_t_ mode);
    std::int64_t sys_mkdirat(int dfd, const char* pathname,
                             abi::mode_t_ mode);
    std::int64_t sys_chmod(const char* pathname, abi::mode_t_ mode);
    std::int64_t sys_fchmod(int fd, abi::mode_t_ mode);
    std::int64_t sys_fchmodat(int dfd, const char* pathname,
                              abi::mode_t_ mode, std::uint32_t flags = 0);

    // ---- fd / cwd (tracked) ------------------------------------------
    std::int64_t sys_close(int fd);
    std::int64_t sys_chdir(const char* pathname);
    std::int64_t sys_fchdir(int fd);

    // ---- xattrs (tracked) --------------------------------------------
    std::int64_t sys_setxattr(const char* pathname, const char* name,
                              std::span<const std::byte> value, int flags);
    std::int64_t sys_lsetxattr(const char* pathname, const char* name,
                               std::span<const std::byte> value, int flags);
    std::int64_t sys_fsetxattr(int fd, const char* name,
                               std::span<const std::byte> value, int flags);
    /// `size` is the caller's buffer size; 0 probes the value length.
    std::int64_t sys_getxattr(const char* pathname, const char* name,
                              std::uint64_t size);
    std::int64_t sys_lgetxattr(const char* pathname, const char* name,
                               std::uint64_t size);
    std::int64_t sys_fgetxattr(int fd, const char* name, std::uint64_t size);

    // ---- extras (traced but not in IOCov's tracked set) --------------
    /// `size` is the caller's list buffer size; 0 probes the length.
    std::int64_t sys_listxattr(const char* pathname, std::uint64_t size);
    std::int64_t sys_llistxattr(const char* pathname, std::uint64_t size);
    std::int64_t sys_flistxattr(int fd, std::uint64_t size);
    std::int64_t sys_removexattr(const char* pathname, const char* name);
    std::int64_t sys_lremovexattr(const char* pathname, const char* name);
    std::int64_t sys_fremovexattr(int fd, const char* name);
    /// stat family: fills `out` when non-null; returns 0 or -errno.
    std::int64_t sys_stat(const char* pathname, vfs::Stat* out = nullptr);
    std::int64_t sys_lstat(const char* pathname, vfs::Stat* out = nullptr);
    std::int64_t sys_fstat(int fd, vfs::Stat* out = nullptr);
    std::int64_t sys_fsync(int fd);
    std::int64_t sys_fdatasync(int fd);
    std::int64_t sys_sync();
    std::int64_t sys_syncfs(int fd);
    std::int64_t sys_unlink(const char* pathname);
    std::int64_t sys_rmdir(const char* pathname);
    std::int64_t sys_rename(const char* oldpath, const char* newpath);
    std::int64_t sys_symlink(const char* target, const char* linkpath);
    std::int64_t sys_link(const char* oldpath, const char* newpath);

    // ---- process state ------------------------------------------------
    std::uint32_t pid() const { return pid_; }
    const vfs::Credentials& cred() const { return cred_; }
    void set_cred(vfs::Credentials cred) { cred_ = cred; }
    void set_umask(abi::mode_t_ mask) { umask_ = mask & 0777; }
    abi::mode_t_ umask() const { return umask_; }

    /// 32-bit personality: without O_LARGEFILE, opening a file larger
    /// than 2 GiB fails with EOVERFLOW (how O_LARGEFILE bugs like the
    /// paper's XFS citation become reachable).
    void set_large_file_default(bool on) { large_file_default_ = on; }

    /// fd-table introspection for tests.
    std::size_t open_fd_count() const { return fds_.size(); }
    const FileDescription* fd_entry(int fd) const;

    /// Inodes pinned by this process's open fds (fsck uses these to
    /// excuse O_TMPFILE anonymous inodes from orphan checks and to
    /// verify every fd references a live inode).
    std::vector<vfs::InodeId> fd_inodes() const {
        std::vector<vfs::InodeId> out;
        out.reserve(fds_.size());
        for (const auto& [fd, desc] : fds_) out.push_back(desc.ino);
        return out;
    }

  private:
    struct OpenOutcome {
        std::int64_t ret;  // fd or -errno
    };

    std::int64_t do_open(int dfd, const char* pathname, std::uint32_t flags,
                         abi::mode_t_ mode, std::uint64_t resolve,
                         bool strict_openat2);
    std::int64_t do_read(int fd, ReadDst& dst, std::int64_t pos,
                         bool use_pos);
    std::int64_t do_write(int fd, const WriteSrc& src, std::int64_t pos,
                          bool use_pos);
    std::int64_t do_chmod_path(int dfd, const char* pathname,
                               abi::mode_t_ mode, bool follow);
    std::int64_t do_setxattr(const char* pathname, const char* name,
                             std::span<const std::byte> value, int flags,
                             bool follow, const char* variant);
    std::int64_t do_getxattr(const char* pathname, const char* name,
                             std::uint64_t size, bool follow,
                             const char* variant);

    /// Validates an xattr name: EFAULT for nullptr, ERANGE when too
    /// long, EOPNOTSUPP for unknown namespaces, EPERM for trusted.*
    /// without privilege. Returns 0 or -errno.
    std::int64_t check_xattr_name(const char* name) const;

    /// Resolves a (dfd, pathname) pair to a starting dir + path string,
    /// handling EFAULT/EBADF/ENOTDIR.
    struct PathArg {
        std::int64_t err = 0;  // 0 ok, else -errno
        vfs::InodeId base = vfs::kRootInode;
        std::string path;
    };
    PathArg path_arg(int dfd, const char* pathname) const;

    /// Lowest-numbered free fd; -EMFILE/-ENFILE when tables are full.
    std::int64_t alloc_fd();
    FileDescription* lookup_fd(int fd);
    void drop_fd_entry(int fd);

    /// Emits the trace event for a completed syscall.
    void emit(const char* name, std::vector<trace::Arg> args,
              std::int64_t ret);

    /// Fault-injection check shared by all entry points.
    std::optional<abi::Err> fault(const char* syscall_name) {
        return kernel_.faults().check(syscall_name);
    }

    Kernel& kernel_;
    std::uint32_t pid_;
    vfs::Credentials cred_;
    abi::mode_t_ umask_ = 022;
    vfs::InodeId cwd_ = vfs::kRootInode;
    bool large_file_default_ = true;
    std::map<int, FileDescription> fds_;
};

/// Shorthands for building trace args.
trace::Arg targ(const char* name, std::int64_t v);
trace::Arg uarg(const char* name, std::uint64_t v);
trace::Arg sarg(const char* name, const char* s);  // nullptr -> "<fault>"

}  // namespace iocov::syscall
