// Kernel: system-wide state shared by all simulated processes.
//
// Owns the trace sequence counter, the system open-file table limit
// (ENFILE), and a syscall-level fault injector for environmental errors
// (EINTR/ENOMEM/EIO) that argument validation alone cannot produce.
#pragma once

#include <cstdint>

#include "trace/sink.hpp"
#include "vfs/fault.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::syscall {

struct KernelLimits {
    /// System-wide open-file-description limit (exceed -> ENFILE).
    std::uint64_t max_open_files = 65536;
    /// Per-process fd limit, RLIMIT_NOFILE (exceed -> EMFILE).
    unsigned max_fds_per_process = 1024;
};

class Process;

class Kernel {
  public:
    /// `sink` receives one event per syscall; nullptr disables tracing.
    explicit Kernel(vfs::FileSystem& fs, trace::TraceSink* sink = nullptr,
                    KernelLimits limits = {});

    Kernel(const Kernel&) = delete;
    Kernel& operator=(const Kernel&) = delete;

    vfs::FileSystem& fs() { return fs_; }
    const KernelLimits& limits() const { return limits_; }

    /// Adjusts fd-table limits at runtime (tests and workload generators
    /// use this to make EMFILE/ENFILE reachable without thousands of
    /// filler opens).
    void set_limits(KernelLimits limits) { limits_ = limits; }

    /// Syscall-level fault injector, keyed by syscall name ("open",
    /// "write", or "*").  Checked before each syscall's own logic.
    vfs::FaultInjector& faults() { return faults_; }

    void set_sink(trace::TraceSink* sink) { sink_ = sink; }

    /// Creates a process with its own fd table, cwd (root) and umask.
    Process make_process(std::uint32_t pid, vfs::Credentials cred);

  private:
    friend class Process;

    std::uint64_t next_seq() { return seq_++; }
    bool file_table_full() const {
        return open_files_ >= limits_.max_open_files;
    }

    vfs::FileSystem& fs_;
    trace::TraceSink* sink_;
    KernelLimits limits_;
    vfs::FaultInjector faults_;
    std::uint64_t seq_ = 0;
    std::uint64_t open_files_ = 0;
};

}  // namespace iocov::syscall
