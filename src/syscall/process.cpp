// Process core: construction, fd table, path-argument handling, tracing.
#include "syscall/process.hpp"

#include <utility>

namespace iocov::syscall {

using abi::Err;

trace::Arg targ(const char* name, std::int64_t v) {
    return {name, trace::ArgValue{v}};
}

trace::Arg uarg(const char* name, std::uint64_t v) {
    return {name, trace::ArgValue{v}};
}

trace::Arg sarg(const char* name, const char* s) {
    return {name, trace::ArgValue{std::string(s ? s : "<fault>")}};
}

Kernel::Kernel(vfs::FileSystem& fs, trace::TraceSink* sink,
               KernelLimits limits)
    : fs_(fs), sink_(sink), limits_(limits) {}

Process Kernel::make_process(std::uint32_t pid, vfs::Credentials cred) {
    return Process(*this, pid, cred);
}

Process::Process(Kernel& kernel, std::uint32_t pid, vfs::Credentials cred)
    : kernel_(kernel), pid_(pid), cred_(cred) {}

Process::~Process() {
    // Exit: release open file descriptions (anonymous inodes included).
    for (auto& [fd, desc] : fds_) {
        if (desc.anonymous) kernel_.fs_.release_anonymous(desc.ino);
        if (kernel_.open_files_ > 0) --kernel_.open_files_;
    }
}

void Process::emit(const char* name, std::vector<trace::Arg> args,
                   std::int64_t ret) {
    if (!kernel_.sink_) return;
    trace::TraceEvent ev;
    ev.seq = kernel_.next_seq();
    ev.pid = pid_;
    ev.tid = pid_;
    ev.syscall = name;
    ev.args = std::move(args);
    ev.ret = ret;
    kernel_.sink_->emit(ev);
}

std::int64_t Process::alloc_fd() {
    if (fds_.size() >= kernel_.limits_.max_fds_per_process)
        return abi::fail(Err::EMFILE_);
    if (kernel_.file_table_full()) return abi::fail(Err::ENFILE_);
    // Lowest-numbered free fd, as POSIX requires.  fds 0-2 are reserved
    // for the (unmodeled) standard streams.
    int fd = 3;
    for (const auto& [used, desc] : fds_) {
        if (used > fd) break;
        if (used == fd) ++fd;
    }
    return fd;
}

FileDescription* Process::lookup_fd(int fd) {
    auto it = fds_.find(fd);
    return it == fds_.end() ? nullptr : &it->second;
}

const FileDescription* Process::fd_entry(int fd) const {
    auto it = fds_.find(fd);
    return it == fds_.end() ? nullptr : &it->second;
}

void Process::drop_fd_entry(int fd) {
    auto it = fds_.find(fd);
    if (it == fds_.end()) return;
    if (it->second.anonymous) kernel_.fs_.release_anonymous(it->second.ino);
    fds_.erase(it);
    if (kernel_.open_files_ > 0) --kernel_.open_files_;
}

Process::PathArg Process::path_arg(int dfd, const char* pathname) const {
    PathArg out;
    if (!pathname) {
        out.err = abi::fail(Err::EFAULT_);
        return out;
    }
    out.path = pathname;
    if (!out.path.empty() && out.path.front() == '/') {
        out.base = vfs::kRootInode;
        return out;
    }
    if (dfd == abi::AT_FDCWD) {
        out.base = cwd_;
        return out;
    }
    auto it = fds_.find(dfd);
    if (it == fds_.end()) {
        out.err = abi::fail(Err::EBADF_);
        return out;
    }
    if (!it->second.is_directory) {
        out.err = abi::fail(Err::ENOTDIR_);
        return out;
    }
    out.base = it->second.ino;
    return out;
}

}  // namespace iocov::syscall
