// setxattr / lsetxattr / fsetxattr, getxattr / lgetxattr / fgetxattr.
#include <cstring>

#include "abi/xattr.hpp"
#include "syscall/process.hpp"

namespace iocov::syscall {

using abi::Err;

std::int64_t Process::check_xattr_name(const char* name) const {
    if (!name) return abi::fail(Err::EFAULT_);
    const std::size_t len = std::strlen(name);
    if (len == 0) return abi::fail(Err::ERANGE_);
    if (len > abi::XATTR_NAME_MAX_) return abi::fail(Err::ERANGE_);
    const std::string_view sv(name, len);
    if (sv.starts_with("user.") || sv.starts_with("security."))
        return 0;
    if (sv.starts_with("trusted."))
        return cred_.is_superuser() ? 0 : abi::fail(Err::EPERM_);
    // Unknown namespace (including "system.*" we don't implement).
    return abi::fail(Err::EOPNOTSUPP_);
}

std::int64_t Process::do_setxattr(const char* pathname, const char* name,
                                  std::span<const std::byte> value, int flags,
                                  bool follow, const char*) {
    PathArg pa = path_arg(abi::AT_FDCWD, pathname);
    if (pa.err) return pa.err;
    if (auto e = check_xattr_name(name)) return e;
    if (flags & ~(abi::XATTR_CREATE_ | abi::XATTR_REPLACE_))
        return abi::fail(Err::EINVAL_);
    if ((flags & abi::XATTR_CREATE_) && (flags & abi::XATTR_REPLACE_))
        return abi::fail(Err::EINVAL_);
    if (value.size() > abi::XATTR_SIZE_MAX_) return abi::fail(Err::E2BIG_);
    auto& fs = kernel_.fs_;
    auto r = fs.resolve(pa.path, cred_,
                        {.base = pa.base, .follow_final = follow});
    if (!r.ok()) return abi::fail(r.error());
    if (auto st = fs.set_xattr(r.value(), name, value, flags, cred_);
        !st.ok())
        return abi::fail(st.error());
    return 0;
}

std::int64_t Process::do_getxattr(const char* pathname, const char* name,
                                  std::uint64_t size, bool follow,
                                  const char*) {
    PathArg pa = path_arg(abi::AT_FDCWD, pathname);
    if (pa.err) return pa.err;
    if (auto e = check_xattr_name(name)) return e;
    auto& fs = kernel_.fs_;
    auto r = fs.resolve(pa.path, cred_,
                        {.base = pa.base, .follow_final = follow});
    if (!r.ok()) return abi::fail(r.error());
    auto v = fs.get_xattr(r.value(), name);
    if (!v.ok()) return abi::fail(v.error());
    if (size == 0) return static_cast<std::int64_t>(v.value().size());
    if (v.value().size() > size) return abi::fail(Err::ERANGE_);
    return static_cast<std::int64_t>(v.value().size());
}

std::int64_t Process::sys_setxattr(const char* pathname, const char* name,
                                   std::span<const std::byte> value,
                                   int flags) {
    std::int64_t ret;
    if (auto e = fault("setxattr")) ret = abi::fail(*e);
    else ret = do_setxattr(pathname, name, value, flags, true, "setxattr");
    emit("setxattr",
         {sarg("pathname", pathname), sarg("name", name),
          uarg("size", value.size()), targ("flags", flags)},
         ret);
    return ret;
}

std::int64_t Process::sys_lsetxattr(const char* pathname, const char* name,
                                    std::span<const std::byte> value,
                                    int flags) {
    std::int64_t ret;
    if (auto e = fault("lsetxattr")) ret = abi::fail(*e);
    else ret = do_setxattr(pathname, name, value, flags, false, "lsetxattr");
    emit("lsetxattr",
         {sarg("pathname", pathname), sarg("name", name),
          uarg("size", value.size()), targ("flags", flags)},
         ret);
    return ret;
}

std::int64_t Process::sys_fsetxattr(int fd, const char* name,
                                    std::span<const std::byte> value,
                                    int flags) {
    auto compute = [&]() -> std::int64_t {
        FileDescription* desc = lookup_fd(fd);
        if (!desc) return abi::fail(Err::EBADF_);
        if (auto e = check_xattr_name(name)) return e;
        if (flags & ~(abi::XATTR_CREATE_ | abi::XATTR_REPLACE_))
            return abi::fail(Err::EINVAL_);
        if ((flags & abi::XATTR_CREATE_) && (flags & abi::XATTR_REPLACE_))
            return abi::fail(Err::EINVAL_);
        if (value.size() > abi::XATTR_SIZE_MAX_) return abi::fail(Err::E2BIG_);
        if (auto st = kernel_.fs_.set_xattr(desc->ino, name, value, flags,
                                            cred_);
            !st.ok())
            return abi::fail(st.error());
        return 0;
    };
    std::int64_t ret;
    if (auto e = fault("fsetxattr")) ret = abi::fail(*e);
    else ret = compute();
    emit("fsetxattr",
         {targ("fd", fd), sarg("name", name), uarg("size", value.size()),
          targ("flags", flags)},
         ret);
    return ret;
}

std::int64_t Process::sys_getxattr(const char* pathname, const char* name,
                                   std::uint64_t size) {
    std::int64_t ret;
    if (auto e = fault("getxattr")) ret = abi::fail(*e);
    else ret = do_getxattr(pathname, name, size, true, "getxattr");
    emit("getxattr",
         {sarg("pathname", pathname), sarg("name", name), uarg("size", size)},
         ret);
    return ret;
}

std::int64_t Process::sys_lgetxattr(const char* pathname, const char* name,
                                    std::uint64_t size) {
    std::int64_t ret;
    if (auto e = fault("lgetxattr")) ret = abi::fail(*e);
    else ret = do_getxattr(pathname, name, size, false, "lgetxattr");
    emit("lgetxattr",
         {sarg("pathname", pathname), sarg("name", name), uarg("size", size)},
         ret);
    return ret;
}

std::int64_t Process::sys_fgetxattr(int fd, const char* name,
                                    std::uint64_t size) {
    auto compute = [&]() -> std::int64_t {
        FileDescription* desc = lookup_fd(fd);
        if (!desc) return abi::fail(Err::EBADF_);
        if (auto e = check_xattr_name(name)) return e;
        auto v = kernel_.fs_.get_xattr(desc->ino, name);
        if (!v.ok()) return abi::fail(v.error());
        if (size == 0) return static_cast<std::int64_t>(v.value().size());
        if (v.value().size() > size) return abi::fail(Err::ERANGE_);
        return static_cast<std::int64_t>(v.value().size());
    };
    std::int64_t ret;
    if (auto e = fault("fgetxattr")) ret = abi::fail(*e);
    else ret = compute();
    emit("fgetxattr",
         {targ("fd", fd), sarg("name", name), uarg("size", size)}, ret);
    return ret;
}

std::int64_t Process::sys_listxattr(const char* pathname,
                                    std::uint64_t size) {
    auto compute = [&]() -> std::int64_t {
        PathArg pa = path_arg(abi::AT_FDCWD, pathname);
        if (pa.err) return pa.err;
        auto r = kernel_.fs().resolve(pa.path, cred_, {.base = pa.base});
        if (!r.ok()) return abi::fail(r.error());
        auto names = kernel_.fs().list_xattr(r.value());
        if (!names.ok()) return abi::fail(names.error());
        std::uint64_t need = 0;
        for (const auto& n : names.value()) need += n.size() + 1;
        if (size == 0) return static_cast<std::int64_t>(need);
        if (need > size) return abi::fail(Err::ERANGE_);
        return static_cast<std::int64_t>(need);
    };
    std::int64_t ret;
    if (auto e = fault("listxattr")) ret = abi::fail(*e);
    else ret = compute();
    emit("listxattr", {sarg("pathname", pathname), uarg("size", size)},
         ret);
    return ret;
}

std::int64_t Process::sys_llistxattr(const char* pathname,
                                     std::uint64_t size) {
    auto compute = [&]() -> std::int64_t {
        PathArg pa = path_arg(abi::AT_FDCWD, pathname);
        if (pa.err) return pa.err;
        auto r = kernel_.fs().resolve(
            pa.path, cred_, {.base = pa.base, .follow_final = false});
        if (!r.ok()) return abi::fail(r.error());
        auto names = kernel_.fs().list_xattr(r.value());
        if (!names.ok()) return abi::fail(names.error());
        std::uint64_t need = 0;
        for (const auto& n : names.value()) need += n.size() + 1;
        if (size == 0) return static_cast<std::int64_t>(need);
        if (need > size) return abi::fail(Err::ERANGE_);
        return static_cast<std::int64_t>(need);
    };
    std::int64_t ret;
    if (auto e = fault("llistxattr")) ret = abi::fail(*e);
    else ret = compute();
    emit("llistxattr", {sarg("pathname", pathname), uarg("size", size)},
         ret);
    return ret;
}

std::int64_t Process::sys_flistxattr(int fd, std::uint64_t size) {
    auto compute = [&]() -> std::int64_t {
        FileDescription* desc = lookup_fd(fd);
        if (!desc) return abi::fail(Err::EBADF_);
        auto names = kernel_.fs().list_xattr(desc->ino);
        if (!names.ok()) return abi::fail(names.error());
        std::uint64_t need = 0;
        for (const auto& n : names.value()) need += n.size() + 1;
        if (size == 0) return static_cast<std::int64_t>(need);
        if (need > size) return abi::fail(Err::ERANGE_);
        return static_cast<std::int64_t>(need);
    };
    std::int64_t ret;
    if (auto e = fault("flistxattr")) ret = abi::fail(*e);
    else ret = compute();
    emit("flistxattr", {targ("fd", fd), uarg("size", size)}, ret);
    return ret;
}

std::int64_t Process::sys_removexattr(const char* pathname,
                                      const char* name) {
    auto compute = [&]() -> std::int64_t {
        PathArg pa = path_arg(abi::AT_FDCWD, pathname);
        if (pa.err) return pa.err;
        if (auto e = check_xattr_name(name)) return e;
        auto r = kernel_.fs().resolve(pa.path, cred_, {.base = pa.base});
        if (!r.ok()) return abi::fail(r.error());
        if (auto st = kernel_.fs().remove_xattr(r.value(), name, cred_);
            !st.ok())
            return abi::fail(st.error());
        return 0;
    };
    std::int64_t ret;
    if (auto e = fault("removexattr")) ret = abi::fail(*e);
    else ret = compute();
    emit("removexattr", {sarg("pathname", pathname), sarg("name", name)},
         ret);
    return ret;
}

std::int64_t Process::sys_lremovexattr(const char* pathname,
                                       const char* name) {
    auto compute = [&]() -> std::int64_t {
        PathArg pa = path_arg(abi::AT_FDCWD, pathname);
        if (pa.err) return pa.err;
        if (auto e = check_xattr_name(name)) return e;
        auto r = kernel_.fs().resolve(
            pa.path, cred_, {.base = pa.base, .follow_final = false});
        if (!r.ok()) return abi::fail(r.error());
        if (auto st = kernel_.fs().remove_xattr(r.value(), name, cred_);
            !st.ok())
            return abi::fail(st.error());
        return 0;
    };
    std::int64_t ret;
    if (auto e = fault("lremovexattr")) ret = abi::fail(*e);
    else ret = compute();
    emit("lremovexattr", {sarg("pathname", pathname), sarg("name", name)},
         ret);
    return ret;
}

std::int64_t Process::sys_fremovexattr(int fd, const char* name) {
    auto compute = [&]() -> std::int64_t {
        FileDescription* desc = lookup_fd(fd);
        if (!desc) return abi::fail(Err::EBADF_);
        if (auto e = check_xattr_name(name)) return e;
        if (auto st = kernel_.fs().remove_xattr(desc->ino, name, cred_);
            !st.ok())
            return abi::fail(st.error());
        return 0;
    };
    std::int64_t ret;
    if (auto e = fault("fremovexattr")) ret = abi::fail(*e);
    else ret = compute();
    emit("fremovexattr", {targ("fd", fd), sarg("name", name)}, ret);
    return ret;
}

}  // namespace iocov::syscall
