// User-buffer descriptors for read/write syscalls.
//
// A real syscall takes a pointer into user memory.  We model three
// possibilities: a real buffer (span), a synthetic fill pattern (lets
// workloads issue multi-hundred-MiB writes in O(1) memory — the paper's
// Fig. 3 reaches 258 MiB), and a bad address (makes EFAULT reachable).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace iocov::syscall {

/// Data source for write/pwrite64/writev.
class WriteSrc {
  public:
    enum class Kind : std::uint8_t { Real, Pattern, BadAddr };

    /// Real bytes (contents are stored and can be read back verbatim).
    static WriteSrc real(std::span<const std::byte> bytes) {
        WriteSrc s;
        s.kind_ = Kind::Real;
        s.bytes_ = bytes;
        s.len_ = bytes.size();
        return s;
    }
    /// `len` copies of `fill`, never materialized.
    static WriteSrc pattern(std::uint64_t len, std::byte fill) {
        WriteSrc s;
        s.kind_ = Kind::Pattern;
        s.fill_ = fill;
        s.len_ = len;
        return s;
    }
    /// An invalid user pointer of nominal length `len` (-> EFAULT).
    static WriteSrc bad_address(std::uint64_t len) {
        WriteSrc s;
        s.kind_ = Kind::BadAddr;
        s.len_ = len;
        return s;
    }

    Kind kind() const { return kind_; }
    std::uint64_t len() const { return len_; }
    std::span<const std::byte> bytes() const { return bytes_; }
    std::byte fill() const { return fill_; }

    /// A prefix of this source (for short writes / iovec splitting).
    WriteSrc first(std::uint64_t n) const;

  private:
    Kind kind_ = Kind::Pattern;
    std::span<const std::byte> bytes_;
    std::byte fill_{0};
    std::uint64_t len_ = 0;
};

/// Destination for read/pread64/readv.
class ReadDst {
  public:
    enum class Kind : std::uint8_t { Real, Discard, BadAddr };

    static ReadDst real(std::span<std::byte> bytes) {
        ReadDst d;
        d.kind_ = Kind::Real;
        d.bytes_ = bytes;
        d.len_ = bytes.size();
        return d;
    }
    /// Reads (and discards) `len` bytes without a caller buffer.
    static ReadDst discard(std::uint64_t len) {
        ReadDst d;
        d.kind_ = Kind::Discard;
        d.len_ = len;
        return d;
    }
    static ReadDst bad_address(std::uint64_t len) {
        ReadDst d;
        d.kind_ = Kind::BadAddr;
        d.len_ = len;
        return d;
    }

    Kind kind() const { return kind_; }
    std::uint64_t len() const { return len_; }
    std::span<std::byte> bytes() const { return bytes_; }

  private:
    Kind kind_ = Kind::Discard;
    std::span<std::byte> bytes_;
    std::uint64_t len_ = 0;
};

}  // namespace iocov::syscall
