// open / openat / creat / openat2.
#include "abi/limits.hpp"
#include "syscall/process.hpp"

namespace iocov::syscall {

using abi::Err;
using vfs::ResolveOpts;

namespace {

/// All flag bits open(2) understands (anything else is ignored by the
/// classic syscalls but rejected by openat2's strict validation).
constexpr std::uint32_t kKnownOpenFlags =
    abi::O_ACCMODE | abi::O_CREAT | abi::O_EXCL | abi::O_NOCTTY |
    abi::O_TRUNC | abi::O_APPEND | abi::O_NONBLOCK | abi::O_DSYNC |
    abi::O_ASYNC | abi::O_DIRECT | abi::O_LARGEFILE | abi::O_DIRECTORY |
    abi::O_NOFOLLOW | abi::O_NOATIME | abi::O_CLOEXEC | abi::O_SYNC |
    abi::O_PATH | abi::O_TMPFILE;

constexpr std::uint64_t kOpenHowSize = 24;  // sizeof(struct open_how)

}  // namespace

std::int64_t Process::do_open(int dfd, const char* pathname,
                              std::uint32_t flags, abi::mode_t_ mode,
                              std::uint64_t resolve, bool strict_openat2) {
    auto& fs = kernel_.fs_;
    fs.probe_site("do_sys_open");

    PathArg pa = path_arg(dfd, pathname);
    if (pa.err) return pa.err;

    const std::uint32_t acc = flags & abi::O_ACCMODE;
    const bool is_tmpfile = (flags & abi::O_TMPFILE) == abi::O_TMPFILE;

    if (strict_openat2) {
        if (flags & ~kKnownOpenFlags) return abi::fail(Err::EINVAL_);
        if (resolve & ~abi::RESOLVE_VALID_MASK) return abi::fail(Err::EINVAL_);
        if (mode != 0 && !(flags & abi::O_CREAT) && !is_tmpfile)
            return abi::fail(Err::EINVAL_);
        if (resolve & abi::RESOLVE_CACHED) {
            // We model a cold dcache: a cached-only lookup can never be
            // satisfied, exactly the EAGAIN contract of openat2(2).
            return abi::fail(Err::EAGAIN_);
        }
    }

    if (acc == abi::O_ACCMODE) return abi::fail(Err::EINVAL_);
    if (is_tmpfile && acc == abi::O_RDONLY) return abi::fail(Err::EINVAL_);

    ResolveOpts ropts;
    ropts.base = pa.base;
    ropts.follow_final = !(flags & abi::O_NOFOLLOW);
    ropts.no_symlinks = resolve & abi::RESOLVE_NO_SYMLINKS;
    ropts.no_xdev = resolve & abi::RESOLVE_NO_XDEV;
    ropts.beneath =
        resolve & (abi::RESOLVE_BENEATH | abi::RESOLVE_IN_ROOT);

    vfs::InodeId ino = vfs::kInvalidInode;
    bool anonymous = false;
    bool created = false;

    if (is_tmpfile) {
        fs.probe_site("ext4_tmpfile");
        auto dir = fs.resolve(pa.path, cred_, ropts);
        if (!dir.ok()) return abi::fail(dir.error());
        auto anon = fs.create_anonymous(dir.value(),
                                        mode & ~umask_ & abi::MODE_PERM_MASK,
                                        cred_);
        if (!anon.ok()) return abi::fail(anon.error());
        ino = anon.value();
        anonymous = true;
    } else if (flags & abi::O_CREAT) {
        auto parent = fs.resolve_parent(pa.path, cred_, ropts);
        if (!parent.ok()) return abi::fail(parent.error());
        if (parent.value().name.empty())
            return abi::fail(Err::EISDIR_);  // open("/", O_CREAT)

        // Look the final component up without following a final symlink:
        // O_CREAT|O_EXCL must refuse even a dangling symlink (EEXIST).
        ResolveOpts peek = ropts;
        peek.follow_final = false;
        auto existing = fs.resolve(pa.path, cred_, peek);
        if (existing.ok()) {
            if (flags & abi::O_EXCL) return abi::fail(Err::EEXIST_);
            // Re-resolve with the caller's symlink policy.
            auto full = fs.resolve(pa.path, cred_, ropts);
            if (!full.ok()) return abi::fail(full.error());
            ino = full.value();
        } else if (existing.error() == Err::ENOENT_) {
            if (parent.value().trailing_slash) return abi::fail(Err::EISDIR_);
            auto made = fs.create_file(parent.value().parent,
                                       parent.value().name,
                                       mode & ~umask_, cred_);
            if (!made.ok()) return abi::fail(made.error());
            ino = made.value();
            created = true;
        } else {
            return abi::fail(existing.error());
        }
    } else {
        auto full = fs.resolve(pa.path, cred_, ropts);
        if (!full.ok()) return abi::fail(full.error());
        ino = full.value();
    }

    const vfs::Inode* node = fs.find(ino);
    if (!node) return abi::fail(Err::ENOENT_);

    const bool path_only = flags & abi::O_PATH;
    const bool wants_write =
        acc == abi::O_WRONLY || acc == abi::O_RDWR;

    // A final symlink survives resolution only under O_NOFOLLOW; opening
    // it is allowed solely for O_PATH.
    if (node->is_lnk() && !path_only) return abi::fail(Err::ELOOP_);

    if ((flags & abi::O_DIRECTORY) && !is_tmpfile && !node->is_dir())
        return abi::fail(Err::ENOTDIR_);
    if (node->is_dir() && wants_write) return abi::fail(Err::EISDIR_);

    if (!path_only) {
        switch (node->device) {
            case vfs::DeviceState::NoDriver:
                return abi::fail(Err::ENODEV_);
            case vfs::DeviceState::NoUnit:
                return abi::fail(Err::ENXIO_);
            case vfs::DeviceState::Busy:
                return abi::fail(Err::EBUSY_);
            default:
                break;
        }
        if (node->is_fifo() && acc == abi::O_WRONLY &&
            (flags & abi::O_NONBLOCK) && !node->fifo_has_reader)
            return abi::fail(Err::ENXIO_);
        if (node->executing && wants_write) return abi::fail(Err::ETXTBSY_);

        if (!large_file_default_ && !(flags & abi::O_LARGEFILE) &&
            node->is_reg() && node->data.size() > 0x7fffffffULL) {
            fs.probe_site("generic_file_open:eoverflow");
            return abi::fail(Err::EOVERFLOW_);
        }

        if ((flags & abi::O_NOATIME) && !cred_.is_superuser() &&
            cred_.uid != node->uid)
            return abi::fail(Err::EPERM_);

        if ((wants_write || (flags & abi::O_TRUNC)) &&
            fs.config().read_only && !created)
            return abi::fail(Err::EROFS_);

        if (!created) {
            unsigned mask = 0;
            if (acc == abi::O_RDONLY || acc == abi::O_RDWR) mask |= 4;
            if (wants_write) mask |= 2;
            if (auto st = fs.access_check(ino, mask, cred_); !st.ok())
                return abi::fail(st.error());
        }

        if ((flags & abi::O_TRUNC) && node->is_reg() && !created &&
            node->data.size() > 0) {
            // Linux truncates even for O_RDONLY|O_TRUNC, but requires
            // write permission on the inode.
            if (auto st = fs.access_check(ino, 2, cred_); !st.ok())
                return abi::fail(st.error());
            if (auto st = fs.truncate(ino, 0); !st.ok())
                return abi::fail(st.error());
        }
    }

    const std::int64_t fd = alloc_fd();
    if (fd < 0) {
        if (anonymous) fs.release_anonymous(ino);
        return fd;
    }
    FileDescription desc;
    desc.ino = ino;
    desc.flags = flags;
    desc.is_directory = node->is_dir();
    desc.anonymous = anonymous;
    fds_.emplace(static_cast<int>(fd), desc);
    ++kernel_.open_files_;
    return fd;
}

std::int64_t Process::sys_open(const char* pathname, std::uint32_t flags,
                               abi::mode_t_ mode) {
    std::int64_t ret;
    if (auto e = fault("open")) ret = abi::fail(*e);
    else ret = do_open(abi::AT_FDCWD, pathname, flags, mode, 0, false);
    emit("open",
         {sarg("pathname", pathname), uarg("flags", flags),
          uarg("mode", mode)},
         ret);
    return ret;
}

std::int64_t Process::sys_openat(int dfd, const char* pathname,
                                 std::uint32_t flags, abi::mode_t_ mode) {
    std::int64_t ret;
    if (auto e = fault("openat")) ret = abi::fail(*e);
    else ret = do_open(dfd, pathname, flags, mode, 0, false);
    emit("openat",
         {targ("dfd", dfd), sarg("pathname", pathname), uarg("flags", flags),
          uarg("mode", mode)},
         ret);
    return ret;
}

std::int64_t Process::sys_creat(const char* pathname, abi::mode_t_ mode) {
    const std::uint32_t flags = abi::O_CREAT | abi::O_WRONLY | abi::O_TRUNC;
    std::int64_t ret;
    if (auto e = fault("creat")) ret = abi::fail(*e);
    else ret = do_open(abi::AT_FDCWD, pathname, flags, mode, 0, false);
    emit("creat", {sarg("pathname", pathname), uarg("mode", mode)}, ret);
    return ret;
}

std::int64_t Process::sys_openat2(int dfd, const char* pathname,
                                  const abi::OpenHow& how,
                                  std::uint64_t usize) {
    std::int64_t ret;
    if (auto e = fault("openat2")) {
        ret = abi::fail(*e);
    } else if (usize > kOpenHowSize) {
        // A larger-than-known struct means the caller wants extensions
        // this kernel lacks.
        ret = abi::fail(Err::E2BIG_);
    } else if (usize < kOpenHowSize) {
        ret = abi::fail(Err::EINVAL_);
    } else {
        ret = do_open(dfd, pathname,
                      static_cast<std::uint32_t>(how.flags),
                      static_cast<abi::mode_t_>(how.mode), how.resolve,
                      true);
    }
    emit("openat2",
         {targ("dfd", dfd), sarg("pathname", pathname),
          uarg("flags", how.flags), uarg("mode", how.mode),
          uarg("resolve", how.resolve), uarg("usize", usize)},
         ret);
    return ret;
}

}  // namespace iocov::syscall
