#include "core/iocov.hpp"

#include "trace/syz_format.hpp"
#include "trace/text_format.hpp"

namespace iocov::core {

IOCov::IOCov(trace::FilterConfig filter_config,
             const std::vector<SyscallSpec>& registry)
    : filter_(filter_config),
      analyzer_(registry),
      live_sink_([this](const trace::TraceEvent& ev) { consume(ev); }) {}

void IOCov::consume(const trace::TraceEvent& event) {
    if (filter_.admit(event)) analyzer_.consume(event);
    else ++filtered_out_;
}

void IOCov::consume_all(const std::vector<trace::TraceEvent>& events) {
    for (const auto& ev : events) consume(ev);
}

std::size_t IOCov::consume_syz(std::istream& in) {
    trace::SyzParseStats stats;
    const auto events = trace::parse_syz_program(in, &stats);
    for (const auto& ev : events) analyzer_.consume(ev);
    return stats.parsed;
}

std::size_t IOCov::consume_text(std::istream& in) {
    std::size_t dropped = 0;
    auto events = trace::parse_stream(in, &dropped);
    consume_all(events);
    return dropped;
}

}  // namespace iocov::core
