#include "core/iocov.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <iterator>

#include "core/snapshot.hpp"
#include "exec/alloc_hook.hpp"
#include "exec/thread_pool.hpp"
#include "trace/syz_format.hpp"
#include "trace/text_format.hpp"

namespace iocov::core {
namespace {

/// Rows decoded per decode_batch() chunk: large enough to amortize the
/// loop setup, small enough that the SoA scratch stays cache-resident.
constexpr std::size_t kBatchRows = 512;

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/// The shared decode -> filter -> analyze inner loop over a span of
/// scan refs.  Chunked through the reusable EventBatch/EventScratch so
/// steady state performs zero heap allocations (tracked per thread via
/// the exec allocation hook).  Bindings pre-resolve interned syscall
/// names — bindings[name_id] replaces a per-event hash lookup with a
/// vector index.
struct IngestOutcome {
    std::size_t dropped = 0;
    std::uint64_t events = 0;    // rows decoded (pre-filter)
    std::uint64_t filtered = 0;  // rows rejected by the trace filter
    std::uint64_t allocs = 0;    // heap allocations inside the loop
};

IngestOutcome ingest_refs(std::string_view data,
                          const std::vector<std::string_view>& strings,
                          const trace::EventRef* refs, std::size_t n,
                          const std::vector<SyscallTable::Binding>& bindings,
                          trace::TraceFilter& filter, Analyzer& analyzer,
                          trace::EventBatch& batch,
                          trace::EventScratch& scratch,
                          trace::ParseDiagnostics& diags) {
    IngestOutcome out;
    const std::uint64_t allocs0 = exec::thread_allocation_count();
    for (std::size_t i = 0; i < n; i += kBatchRows) {
        const std::size_t chunk = std::min(kBatchRows, n - i);
        batch.clear();
        trace::decode_batch(data, strings, refs + i, chunk, batch,
                            &out.dropped, &diags);
        for (std::size_t r = 0; r < batch.rows.size(); ++r) {
            const trace::TraceEvent& ev =
                scratch.materialize(batch, r, strings);
            if (filter.admit(ev))
                analyzer.consume(ev, bindings[batch.rows[r].name_id]);
            else
                ++out.filtered;
        }
        out.events += batch.rows.size();
    }
    out.allocs = exec::thread_allocation_count() - allocs0;
    return out;
}

}  // namespace

IOCov::IOCov(trace::FilterConfig filter_config,
             const std::vector<SyscallSpec>& registry)
    : filter_config_(std::move(filter_config)),
      registry_(&registry),
      filter_(filter_config_),
      analyzer_(registry),
      live_sink_([this](const trace::TraceEvent& ev) { consume(ev); }) {}

void IOCov::consume(const trace::TraceEvent& event) {
    if (filter_.admit(event)) analyzer_.consume(event);
    else ++filtered_out_;
}

void IOCov::consume_all(const std::vector<trace::TraceEvent>& events) {
    for (const auto& ev : events) consume(ev);
}

std::size_t IOCov::consume_syz(std::istream& in) {
    trace::SyzParseStats stats;
    const auto events = trace::parse_syz_program(in, &stats);
    for (const auto& ev : events) analyzer_.consume(ev);
    return stats.parsed;
}

std::size_t IOCov::consume_text(std::istream& in) {
    std::size_t dropped = 0;
    auto events = trace::parse_stream(in, &dropped, &diagnostics_);
    consume_all(events);
    return dropped;
}

std::size_t IOCov::consume_binary(std::string_view data) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto scan = trace::scan_ioct(data);
    const auto bindings = analyzer_.table().bind_all(scan.strings);
    trace::ParseDiagnostics decode_diags;
    const IngestOutcome outcome =
        ingest_refs(data, scan.strings, scan.events.data(),
                    scan.events.size(), bindings, filter_, analyzer_, batch_,
                    scratch_, decode_diags);
    filtered_out_ += outcome.filtered;
    diagnostics_.merge(scan.diags);
    diagnostics_.merge(decode_diags);

    ingest_stats_.events += outcome.events;
    ingest_stats_.bytes += data.size();
    ingest_stats_.hot_loop_allocs += outcome.allocs;
    ingest_stats_.seconds += seconds_since(t0);
    return scan.dropped + outcome.dropped;
}

std::size_t IOCov::consume_binary_parallel(std::string_view data,
                                           unsigned n_threads) {
    if (n_threads == 0) n_threads = exec::ThreadPool::default_thread_count();
    if (n_threads <= 1) return consume_binary(data);

    const auto t0 = std::chrono::steady_clock::now();
    const auto scan = trace::scan_ioct(data);
    const auto bindings = analyzer_.table().bind_all(scan.strings);

    // Shard record references (not events) by pid.  Scan order is file
    // order, so each pid's event order — the only ordering the stateful
    // filter depends on — is preserved inside its shard.
    std::vector<std::vector<trace::EventRef>> shards(n_threads);
    if (scan.footer) {
        // The footer's per-pid counts size each shard exactly.
        std::vector<std::size_t> sizes(n_threads, 0);
        for (const auto& [pid, count] : scan.footer->pid_events)
            sizes[pid % n_threads] += count;
        for (unsigned s = 0; s < n_threads; ++s) shards[s].reserve(sizes[s]);
    } else {
        for (auto& shard : shards)
            shard.reserve(scan.events.size() / n_threads + 1);
    }
    for (const auto& ref : scan.events)
        shards[ref.pid % n_threads].push_back(ref);

    exec::ThreadPool pool(n_threads);
    std::vector<CoverageReport> reports(shards.size());
    std::vector<IngestOutcome> outcomes(shards.size());
    std::vector<trace::ParseDiagnostics> shard_diags(shards.size());
    std::vector<std::uint8_t> shard_ok(shards.size(), 1);
    exec::parallel_for(pool, shards.size(), [&](std::size_t s) {
        // Error isolation: a shard that fails outright (the catch below;
        // corrupt records are handled per-record and never throw) is
        // degraded to a counted loss instead of poisoning the analysis.
        try {
            trace::TraceFilter filter(filter_config_);
            Analyzer analyzer(*registry_);
            trace::EventBatch batch;
            trace::EventScratch scratch;
            outcomes[s] = ingest_refs(data, scan.strings, shards[s].data(),
                                      shards[s].size(), bindings, filter,
                                      analyzer, batch, scratch,
                                      shard_diags[s]);
            reports[s] = analyzer.take_report();
        } catch (const std::exception& e) {
            shard_ok[s] = 0;
            outcomes[s] = IngestOutcome{};
            outcomes[s].dropped = shards[s].size();
            shard_diags[s].clear();
            shard_diags[s].record(
                0, shards[s].empty() ? 0 : shards[s].front().offset,
                std::string("shard lost: ") + e.what());
        }
    });

    std::size_t total_dropped = scan.dropped;
    for (std::size_t s = 0; s < shards.size(); ++s) {
        if (shard_ok[s]) analyzer_.merge_report(reports[s]);
        else ++shards_lost_;
        filtered_out_ += outcomes[s].filtered;
        diagnostics_.merge(shard_diags[s]);
        total_dropped += outcomes[s].dropped;
        ingest_stats_.events += outcomes[s].events;
        ingest_stats_.hot_loop_allocs += outcomes[s].allocs;
    }
    diagnostics_.merge(scan.diags);
    ingest_stats_.bytes += data.size();
    ingest_stats_.threads = std::max(ingest_stats_.threads, n_threads);
    ingest_stats_.seconds += seconds_since(t0);
    return total_dropped;
}

std::optional<std::size_t> IOCov::consume_binary_file(const std::string& path,
                                                      unsigned n_threads) {
    auto mapped = trace::MappedFile::open(path);
    if (!mapped) return std::nullopt;
    ++ingest_stats_.files;
    return n_threads == 1 ? consume_binary(mapped->data())
                          : consume_binary_parallel(mapped->data(),
                                                    n_threads);
}

std::optional<IOCov::DirIngest> IOCov::consume_binary_dir(
    const std::string& dir, unsigned n_threads) {
    namespace fs = std::filesystem;
    const auto t0 = std::chrono::steady_clock::now();

    std::error_code ec;
    if (!fs::is_directory(dir, ec) || ec) return std::nullopt;
    struct FileEntry {
        std::string path;
        std::string name;
        std::uint64_t bytes = 0;
    };
    std::vector<FileEntry> files;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        std::error_code fec;
        if (!it->is_regular_file(fec) || fec) continue;
        FileEntry fe;
        fe.path = it->path().string();
        fe.name = it->path().filename().string();
        const auto size = it->file_size(fec);
        fe.bytes = fec ? 0 : static_cast<std::uint64_t>(size);
        files.push_back(std::move(fe));
    }
    if (ec) return std::nullopt;
    // Name order fixes the merge order (and therefore which diagnostics
    // survive retention) independent of directory-entry order.
    std::sort(files.begin(), files.end(),
              [](const FileEntry& a, const FileEntry& b) {
                  return a.name < b.name;
              });

    // Per-file slots, filled by workers in any order and folded in name
    // order afterwards so the result is independent of scheduling.
    struct FileResult {
        enum class Status { Unreadable, NotIoct, Failed, Analyzed };
        Status status = Status::Unreadable;
        std::string fail_reason;
        CoverageReport report;
        trace::ParseDiagnostics diags;
        IngestOutcome outcome;
        std::uint64_t bytes = 0;
    };
    std::vector<FileResult> slots(files.size());

    auto run_file = [&](std::size_t i) {
        FileResult& slot = slots[i];
        try {
            auto mapped = trace::MappedFile::open(files[i].path);
            if (!mapped) return;  // stays Unreadable
            const std::string_view data = mapped->data();
            if (!trace::is_ioct(data)) {
                slot.status = FileResult::Status::NotIoct;
                return;
            }
            const auto scan = trace::scan_ioct(data);
            const auto bindings = analyzer_.table().bind_all(scan.strings);
            trace::TraceFilter filter(filter_config_);
            Analyzer analyzer(*registry_);
            trace::EventBatch batch;
            trace::EventScratch scratch;
            slot.diags.merge(scan.diags);
            slot.outcome = ingest_refs(data, scan.strings,
                                       scan.events.data(),
                                       scan.events.size(), bindings, filter,
                                       analyzer, batch, scratch, slot.diags);
            slot.outcome.dropped += scan.dropped;
            slot.report = analyzer.take_report();
            slot.bytes = data.size();
            slot.status = FileResult::Status::Analyzed;
        } catch (const std::exception& e) {
            slot.status = FileResult::Status::Failed;
            slot.fail_reason = e.what();
        }
    };

    if (n_threads == 0) n_threads = exec::ThreadPool::default_thread_count();
    const unsigned lanes = static_cast<unsigned>(
        std::min<std::size_t>(n_threads, files.size() ? files.size() : 1));
    if (lanes <= 1) {
        for (std::size_t i = 0; i < files.size(); ++i) run_file(i);
    } else {
        exec::ThreadPool pool(lanes);
        std::vector<std::uint64_t> weights(files.size());
        for (std::size_t i = 0; i < files.size(); ++i)
            weights[i] = files[i].bytes;
        exec::parallel_for_stealing(pool, weights, run_file);
    }

    DirIngest result;
    for (std::size_t i = 0; i < files.size(); ++i) {
        FileResult& slot = slots[i];
        const std::string& name = files[i].name;
        switch (slot.status) {
            case FileResult::Status::Unreadable:
                ++result.rejected;
                diagnostics_.record(0, 0, name + ": cannot open file");
                break;
            case FileResult::Status::NotIoct:
                ++result.rejected;
                diagnostics_.record(
                    0, 0, name + ": not an IOCT file (bad magic/version)");
                break;
            case FileResult::Status::Failed:
                ++shards_lost_;
                diagnostics_.record(
                    0, 0, name + ": file analysis lost: " + slot.fail_reason);
                break;
            case FileResult::Status::Analyzed: {
                analyzer_.merge_report(slot.report);
                filtered_out_ += slot.outcome.filtered;
                ++result.files;
                result.dropped += slot.outcome.dropped;
                result.bytes += slot.bytes;
                // Re-key the file's diagnostics by file name; entries
                // beyond its retention cap fold into the count.
                for (const auto& d : slot.diags.entries())
                    diagnostics_.record(d.line, d.offset,
                                        name + ": " + d.reason, d.excerpt);
                diagnostics_.count_only(slot.diags.total() -
                                        slot.diags.entries().size());
                ingest_stats_.events += slot.outcome.events;
                ingest_stats_.hot_loop_allocs += slot.outcome.allocs;
                break;
            }
        }
    }
    ingest_stats_.files += result.files;
    ingest_stats_.bytes += result.bytes;
    ingest_stats_.threads = std::max(ingest_stats_.threads, lanes);
    ingest_stats_.seconds += seconds_since(t0);
    return result;
}

std::size_t IOCov::consume_text_parallel(std::istream& in,
                                         unsigned n_threads) {
    if (n_threads == 0) n_threads = exec::ThreadPool::default_thread_count();
    if (n_threads <= 1) return consume_text(in);

    // Chunking needs random access to line boundaries, so slurp the
    // stream once (the serial path also materializes every event).
    const std::string text{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
    // More chunks than workers so one expensive chunk can't serialize
    // the tail of the parse stage.
    const auto chunks = trace::split_line_chunks(text, n_threads * 4);

    // Position each chunk within the whole input so diagnostics carry
    // file-absolute line numbers and byte offsets.
    std::vector<std::uint64_t> first_line(chunks.size(), 1);
    std::vector<std::uint64_t> base_offset(chunks.size(), 0);
    std::vector<std::uint64_t> line_count(chunks.size(), 0);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        base_offset[i] =
            static_cast<std::uint64_t>(chunks[i].data() - text.data());
        line_count[i] = static_cast<std::uint64_t>(
            std::count(chunks[i].begin(), chunks[i].end(), '\n'));
        if (!chunks[i].empty() && chunks[i].back() != '\n') ++line_count[i];
        if (i + 1 < chunks.size())
            first_line[i + 1] = first_line[i] + line_count[i];
    }

    exec::ThreadPool pool(n_threads);
    std::vector<std::vector<trace::TraceEvent>> parsed(chunks.size());
    std::vector<std::size_t> dropped(chunks.size(), 0);
    std::vector<trace::ParseDiagnostics> chunk_diags(chunks.size());
    std::vector<std::uint8_t> chunk_ok(chunks.size(), 1);
    exec::parallel_for(pool, chunks.size(), [&](std::size_t i) {
        // Error isolation: a chunk whose parse fails outright degrades
        // to "every line dropped", not a poisoned analysis.  Malformed
        // lines never throw — this guards worker failures.
        try {
            parsed[i] = trace::parse_chunk(chunks[i], &dropped[i],
                                           &chunk_diags[i], first_line[i],
                                           base_offset[i]);
        } catch (const std::exception& e) {
            chunk_ok[i] = 0;
            parsed[i].clear();
            dropped[i] = line_count[i];
            chunk_diags[i].clear();
            chunk_diags[i].record(first_line[i], base_offset[i],
                                  std::string("chunk lost: ") + e.what());
        }
    });
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        if (!chunk_ok[i]) ++shards_lost_;
        diagnostics_.merge(chunk_diags[i]);
    }

    // Re-shard by pid.  Scanning the chunks in order preserves each
    // pid's trace order, which is the only ordering the stateful filter
    // (per-pid fd watches and cwd) depends on.
    std::vector<std::vector<trace::TraceEvent>> shards(n_threads);
    std::size_t total_events = 0;
    for (const auto& chunk_events : parsed) total_events += chunk_events.size();
    for (auto& shard : shards) shard.reserve(total_events / n_threads + 1);
    for (auto& chunk_events : parsed) {
        for (auto& ev : chunk_events)
            shards[ev.pid % n_threads].push_back(std::move(ev));
        chunk_events.clear();
    }

    std::vector<CoverageReport> reports(shards.size());
    std::vector<std::uint64_t> shard_filtered(shards.size(), 0);
    std::vector<std::size_t> shard_lost_events(shards.size(), 0);
    std::vector<trace::ParseDiagnostics> shard_diags(shards.size());
    std::vector<std::uint8_t> shard_ok(shards.size(), 1);
    exec::parallel_for(pool, shards.size(), [&](std::size_t s) {
        try {
            trace::TraceFilter filter(filter_config_);
            Analyzer analyzer(*registry_);
            for (const auto& ev : shards[s]) {
                if (filter.admit(ev)) analyzer.consume(ev);
                else ++shard_filtered[s];
            }
            reports[s] = analyzer.take_report();
        } catch (const std::exception& e) {
            shard_ok[s] = 0;
            shard_filtered[s] = 0;
            shard_lost_events[s] = shards[s].size();
            shard_diags[s].record(0, 0,
                                  std::string("shard lost: ") + e.what());
        }
    });

    // Shard-merge order is irrelevant to the result (histogram row order
    // is canonical), but iterate in shard order anyway for clarity.
    for (std::size_t s = 0; s < shards.size(); ++s) {
        if (shard_ok[s]) analyzer_.merge_report(reports[s]);
        else ++shards_lost_;
        filtered_out_ += shard_filtered[s];
        diagnostics_.merge(shard_diags[s]);
    }
    std::size_t total_dropped = 0;
    for (const auto d : dropped) total_dropped += d;
    for (const auto d : shard_lost_events) total_dropped += d;
    return total_dropped;
}

void IOCov::merge(const IOCov& other) {
    analyzer_.merge_report(other.report());
    filtered_out_ += other.filtered_out_;
    shards_lost_ += other.shards_lost_;
    diagnostics_.merge(other.diagnostics_);
    ingest_stats_.events += other.ingest_stats_.events;
    ingest_stats_.bytes += other.ingest_stats_.bytes;
    ingest_stats_.files += other.ingest_stats_.files;
    ingest_stats_.threads =
        std::max(ingest_stats_.threads, other.ingest_stats_.threads);
    ingest_stats_.hot_loop_allocs += other.ingest_stats_.hot_loop_allocs;
    ingest_stats_.seconds += other.ingest_stats_.seconds;
}

void IOCov::merge(const IOCovSnapshot& snapshot) {
    analyzer_.merge_report(snapshot.report);
    filtered_out_ += snapshot.filtered_out;
    // The producer's per-record reasons are not serialized, only the
    // count — fold it in without displacing locally retained entries.
    diagnostics_.count_only(snapshot.dropped);
    ingest_stats_.events += snapshot.ingest.events;
    ingest_stats_.bytes += snapshot.ingest.bytes;
    ingest_stats_.files += snapshot.ingest.files;
    ingest_stats_.threads =
        std::max(ingest_stats_.threads, snapshot.ingest.threads);
    ingest_stats_.hot_loop_allocs += snapshot.ingest.hot_loop_allocs;
    ingest_stats_.seconds += snapshot.ingest.seconds;
}

IOCovSnapshot IOCov::snapshot() const {
    IOCovSnapshot snap;
    snap.report = analyzer_.report();
    snap.filtered_out = filtered_out_;
    snap.dropped = diagnostics_.total();
    snap.ingest = ingest_stats_;
    return snap;
}

}  // namespace iocov::core
