#include "core/iocov.hpp"

#include <algorithm>
#include <iterator>

#include "exec/thread_pool.hpp"
#include "trace/binary_format.hpp"
#include "trace/syz_format.hpp"
#include "trace/text_format.hpp"

namespace iocov::core {
namespace {

/// Pre-binds every string-table entry that could name a syscall: one
/// SyscallTable hash lookup per *unique name* in the trace instead of
/// one per event.  Bindings carry registry indices and pointers into
/// the (shared, static) registry, so they are valid for any analyzer
/// built on the same registry — including the parallel path's
/// per-shard analyzers.
std::vector<SyscallTable::Binding> bind_strings(
    const SyscallTable& table,
    const std::vector<std::string_view>& strings) {
    std::vector<SyscallTable::Binding> bindings;
    bindings.reserve(strings.size());
    for (const auto sv : strings) bindings.push_back(table.bind(sv));
    return bindings;
}

}  // namespace

IOCov::IOCov(trace::FilterConfig filter_config,
             const std::vector<SyscallSpec>& registry)
    : filter_config_(std::move(filter_config)),
      registry_(&registry),
      filter_(filter_config_),
      analyzer_(registry),
      live_sink_([this](const trace::TraceEvent& ev) { consume(ev); }) {}

void IOCov::consume(const trace::TraceEvent& event) {
    if (filter_.admit(event)) analyzer_.consume(event);
    else ++filtered_out_;
}

void IOCov::consume_all(const std::vector<trace::TraceEvent>& events) {
    for (const auto& ev : events) consume(ev);
}

std::size_t IOCov::consume_syz(std::istream& in) {
    trace::SyzParseStats stats;
    const auto events = trace::parse_syz_program(in, &stats);
    for (const auto& ev : events) analyzer_.consume(ev);
    return stats.parsed;
}

std::size_t IOCov::consume_text(std::istream& in) {
    std::size_t dropped = 0;
    auto events = trace::parse_stream(in, &dropped, &diagnostics_);
    consume_all(events);
    return dropped;
}

std::size_t IOCov::consume_binary(std::string_view data) {
    const auto scan = trace::scan_ioct(data);
    const auto bindings = bind_strings(analyzer_.table(), scan.strings);
    std::size_t dropped = scan.dropped;
    trace::ParseDiagnostics decode_diags;
    trace::TraceEvent scratch;
    for (const auto& ref : scan.events) {
        std::uint32_t name_id = 0;
        const char* reason = "corrupt event record";
        if (!trace::decode_event(data.substr(ref.offset, ref.length),
                                 scan.strings, scratch, &name_id, &reason)) {
            ++dropped;
            decode_diags.record(0, ref.offset, reason);
            continue;
        }
        if (filter_.admit(scratch))
            analyzer_.consume(scratch, bindings[name_id]);
        else
            ++filtered_out_;
    }
    diagnostics_.merge(scan.diags);
    diagnostics_.merge(decode_diags);
    return dropped;
}

std::size_t IOCov::consume_binary_parallel(std::string_view data,
                                           unsigned n_threads) {
    if (n_threads == 0) n_threads = exec::ThreadPool::default_thread_count();
    if (n_threads <= 1) return consume_binary(data);

    const auto scan = trace::scan_ioct(data);
    const auto bindings = bind_strings(analyzer_.table(), scan.strings);

    // Shard record references (not events) by pid.  Scan order is file
    // order, so each pid's event order — the only ordering the stateful
    // filter depends on — is preserved inside its shard.
    std::vector<std::vector<trace::EventRef>> shards(n_threads);
    if (scan.footer) {
        // The footer's per-pid counts size each shard exactly.
        std::vector<std::size_t> sizes(n_threads, 0);
        for (const auto& [pid, count] : scan.footer->pid_events)
            sizes[pid % n_threads] += count;
        for (unsigned s = 0; s < n_threads; ++s) shards[s].reserve(sizes[s]);
    } else {
        for (auto& shard : shards)
            shard.reserve(scan.events.size() / n_threads + 1);
    }
    for (const auto& ref : scan.events)
        shards[ref.pid % n_threads].push_back(ref);

    exec::ThreadPool pool(n_threads);
    std::vector<CoverageReport> reports(shards.size());
    std::vector<std::uint64_t> shard_filtered(shards.size(), 0);
    std::vector<std::size_t> shard_dropped(shards.size(), 0);
    std::vector<trace::ParseDiagnostics> shard_diags(shards.size());
    std::vector<std::uint8_t> shard_ok(shards.size(), 1);
    exec::parallel_for(pool, shards.size(), [&](std::size_t s) {
        // Error isolation: a shard that fails outright (the catch below;
        // corrupt records are handled per-record and never throw) is
        // degraded to a counted loss instead of poisoning the analysis.
        try {
            trace::TraceFilter filter(filter_config_);
            Analyzer analyzer(*registry_);
            trace::TraceEvent scratch;
            for (const auto& ref : shards[s]) {
                std::uint32_t name_id = 0;
                const char* reason = "corrupt event record";
                if (!trace::decode_event(data.substr(ref.offset, ref.length),
                                         scan.strings, scratch, &name_id,
                                         &reason)) {
                    ++shard_dropped[s];
                    shard_diags[s].record(0, ref.offset, reason);
                    continue;
                }
                if (filter.admit(scratch))
                    analyzer.consume(scratch, bindings[name_id]);
                else
                    ++shard_filtered[s];
            }
            reports[s] = analyzer.take_report();
        } catch (const std::exception& e) {
            shard_ok[s] = 0;
            shard_dropped[s] = shards[s].size();
            shard_filtered[s] = 0;
            shard_diags[s].clear();
            shard_diags[s].record(
                0, shards[s].empty() ? 0 : shards[s].front().offset,
                std::string("shard lost: ") + e.what());
        }
    });

    for (std::size_t s = 0; s < shards.size(); ++s) {
        if (shard_ok[s]) analyzer_.merge_report(reports[s]);
        else ++shards_lost_;
        filtered_out_ += shard_filtered[s];
        diagnostics_.merge(shard_diags[s]);
    }
    diagnostics_.merge(scan.diags);
    std::size_t total_dropped = scan.dropped;
    for (const auto d : shard_dropped) total_dropped += d;
    return total_dropped;
}

std::optional<std::size_t> IOCov::consume_binary_file(const std::string& path,
                                                      unsigned n_threads) {
    auto mapped = trace::MappedFile::open(path);
    if (!mapped) return std::nullopt;
    return n_threads == 1 ? consume_binary(mapped->data())
                          : consume_binary_parallel(mapped->data(),
                                                    n_threads);
}

std::size_t IOCov::consume_text_parallel(std::istream& in,
                                         unsigned n_threads) {
    if (n_threads == 0) n_threads = exec::ThreadPool::default_thread_count();
    if (n_threads <= 1) return consume_text(in);

    // Chunking needs random access to line boundaries, so slurp the
    // stream once (the serial path also materializes every event).
    const std::string text{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
    // More chunks than workers so one expensive chunk can't serialize
    // the tail of the parse stage.
    const auto chunks = trace::split_line_chunks(text, n_threads * 4);

    // Position each chunk within the whole input so diagnostics carry
    // file-absolute line numbers and byte offsets.
    std::vector<std::uint64_t> first_line(chunks.size(), 1);
    std::vector<std::uint64_t> base_offset(chunks.size(), 0);
    std::vector<std::uint64_t> line_count(chunks.size(), 0);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        base_offset[i] =
            static_cast<std::uint64_t>(chunks[i].data() - text.data());
        line_count[i] = static_cast<std::uint64_t>(
            std::count(chunks[i].begin(), chunks[i].end(), '\n'));
        if (!chunks[i].empty() && chunks[i].back() != '\n') ++line_count[i];
        if (i + 1 < chunks.size())
            first_line[i + 1] = first_line[i] + line_count[i];
    }

    exec::ThreadPool pool(n_threads);
    std::vector<std::vector<trace::TraceEvent>> parsed(chunks.size());
    std::vector<std::size_t> dropped(chunks.size(), 0);
    std::vector<trace::ParseDiagnostics> chunk_diags(chunks.size());
    std::vector<std::uint8_t> chunk_ok(chunks.size(), 1);
    exec::parallel_for(pool, chunks.size(), [&](std::size_t i) {
        // Error isolation: a chunk whose parse fails outright degrades
        // to "every line dropped", not a poisoned analysis.  Malformed
        // lines never throw — this guards worker failures.
        try {
            parsed[i] = trace::parse_chunk(chunks[i], &dropped[i],
                                           &chunk_diags[i], first_line[i],
                                           base_offset[i]);
        } catch (const std::exception& e) {
            chunk_ok[i] = 0;
            parsed[i].clear();
            dropped[i] = line_count[i];
            chunk_diags[i].clear();
            chunk_diags[i].record(first_line[i], base_offset[i],
                                  std::string("chunk lost: ") + e.what());
        }
    });
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        if (!chunk_ok[i]) ++shards_lost_;
        diagnostics_.merge(chunk_diags[i]);
    }

    // Re-shard by pid.  Scanning the chunks in order preserves each
    // pid's trace order, which is the only ordering the stateful filter
    // (per-pid fd watches and cwd) depends on.
    std::vector<std::vector<trace::TraceEvent>> shards(n_threads);
    std::size_t total_events = 0;
    for (const auto& chunk_events : parsed) total_events += chunk_events.size();
    for (auto& shard : shards) shard.reserve(total_events / n_threads + 1);
    for (auto& chunk_events : parsed) {
        for (auto& ev : chunk_events)
            shards[ev.pid % n_threads].push_back(std::move(ev));
        chunk_events.clear();
    }

    std::vector<CoverageReport> reports(shards.size());
    std::vector<std::uint64_t> shard_filtered(shards.size(), 0);
    std::vector<std::size_t> shard_lost_events(shards.size(), 0);
    std::vector<trace::ParseDiagnostics> shard_diags(shards.size());
    std::vector<std::uint8_t> shard_ok(shards.size(), 1);
    exec::parallel_for(pool, shards.size(), [&](std::size_t s) {
        try {
            trace::TraceFilter filter(filter_config_);
            Analyzer analyzer(*registry_);
            for (const auto& ev : shards[s]) {
                if (filter.admit(ev)) analyzer.consume(ev);
                else ++shard_filtered[s];
            }
            reports[s] = analyzer.take_report();
        } catch (const std::exception& e) {
            shard_ok[s] = 0;
            shard_filtered[s] = 0;
            shard_lost_events[s] = shards[s].size();
            shard_diags[s].record(0, 0,
                                  std::string("shard lost: ") + e.what());
        }
    });

    // Shard-merge order is irrelevant to the result (histogram row order
    // is canonical), but iterate in shard order anyway for clarity.
    for (std::size_t s = 0; s < shards.size(); ++s) {
        if (shard_ok[s]) analyzer_.merge_report(reports[s]);
        else ++shards_lost_;
        filtered_out_ += shard_filtered[s];
        diagnostics_.merge(shard_diags[s]);
    }
    std::size_t total_dropped = 0;
    for (const auto d : dropped) total_dropped += d;
    for (const auto d : shard_lost_events) total_dropped += d;
    return total_dropped;
}

}  // namespace iocov::core
