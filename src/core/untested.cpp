#include "core/untested.hpp"

namespace iocov::core {
namespace {

std::string input_suggestion(const ArgCoverage& cov,
                             const std::string& partition) {
    switch (cov.cls) {
        case ArgClass::Bitmap:
            return "invoke " + cov.base + "(2) with the " + partition +
                   " flag set (alone and in combination)";
        case ArgClass::Numeric:
            if (partition == "=0")
                return "call " + cov.base + "(2) with a zero " + cov.key +
                       " (legal POSIX boundary value)";
            if (partition == "<0")
                return "call " + cov.base + "(2) with a negative " + cov.key +
                       " to exercise validation";
            return "call " + cov.base + "(2) with " + cov.key +
                   " in the " + partition + " range";
        case ArgClass::Categorical:
            return "call " + cov.base + "(2) with " + cov.key + " = " +
                   partition;
        case ArgClass::Identifier:
            return "call " + cov.base + "(2) with a " + partition + " " +
                   cov.key;
    }
    return "exercise partition " + partition;
}

std::string output_suggestion(const OutputCoverage& cov,
                              const std::string& partition) {
    if (partition.rfind("OK", 0) == 0)
        return "drive " + cov.base + "(2) to succeed with a return in " +
               partition.substr(partition.find(':') + 1);
    return "construct a state where " + cov.base + "(2) fails with " +
           partition + " and assert the error is reported";
}

}  // namespace

std::vector<UntestedPartition> find_untested(const CoverageReport& report) {
    std::vector<UntestedPartition> out;
    for (const auto& in : report.inputs) {
        for (const auto& label : in.hist.untested()) {
            out.push_back({UntestedPartition::Kind::Input, in.base, in.key,
                           label, input_suggestion(in, label)});
        }
    }
    for (const auto& oc : report.outputs) {
        for (const auto& label : oc.hist.untested()) {
            out.push_back({UntestedPartition::Kind::Output, oc.base, "",
                           label, output_suggestion(oc, label)});
        }
    }
    return out;
}

std::vector<UntestedPartition> find_under_tested(const CoverageReport& report,
                                                 std::uint64_t threshold) {
    std::vector<UntestedPartition> out;
    for (const auto& in : report.inputs) {
        for (const auto& row : in.hist.rows()) {
            if (row.count > 0 && row.count < threshold) {
                out.push_back({UntestedPartition::Kind::Input, in.base,
                               in.key, row.label,
                               input_suggestion(in, row.label)});
            }
        }
    }
    for (const auto& oc : report.outputs) {
        for (const auto& row : oc.hist.rows()) {
            if (row.count > 0 && row.count < threshold) {
                out.push_back({UntestedPartition::Kind::Output, oc.base, "",
                               row.label, output_suggestion(oc, row.label)});
            }
        }
    }
    return out;
}

std::vector<CoverageSummaryRow> summarize(const CoverageReport& report) {
    std::vector<CoverageSummaryRow> rows;
    for (const auto& in : report.inputs) {
        CoverageSummaryRow r;
        r.base = in.base;
        r.arg = in.key;
        r.declared = in.hist.partition_count();
        r.tested = in.hist.tested().size();
        r.fraction = in.hist.coverage_fraction();
        rows.push_back(std::move(r));
    }
    for (const auto& oc : report.outputs) {
        CoverageSummaryRow r;
        r.base = oc.base;
        r.declared = oc.hist.partition_count();
        r.tested = oc.hist.tested().size();
        r.fraction = oc.hist.coverage_fraction();
        rows.push_back(std::move(r));
    }
    return rows;
}

}  // namespace iocov::core
