#include "core/live.hpp"

#include <utility>

namespace iocov::core {

LiveCoverage::LiveCoverage(trace::FilterConfig filter_config,
                           const std::vector<SyscallSpec>& registry)
    : filter_config_(std::move(filter_config)), registry_(&registry) {
    acc_ = fresh();
    delta_ = fresh();
    auto p = std::make_shared<Published>();
    p->state = acc_->snapshot();
    {
        std::lock_guard<std::mutex> lock(pub_mu_);
        published_ = std::move(p);
    }
}

std::unique_ptr<IOCov> LiveCoverage::fresh() const {
    return std::make_unique<IOCov>(filter_config_, *registry_);
}

LiveCoverage::PushResult LiveCoverage::push(const std::string& name,
                                            std::string_view ioct,
                                            unsigned n_threads) {
    std::lock_guard<std::mutex> lock(writer_mu_);
    if (seen_.count(name))
        return {false, static_cast<std::uint64_t>(order_.size()), 0, 0};
    // Fresh filter + analyzer per shard: fd state never crosses shards,
    // exactly as in consume_binary_dir, which is what makes the merged
    // result independent of push order.
    auto shard = fresh();
    const std::size_t dropped =
        n_threads == 1 ? shard->consume_binary(ioct)
                       : shard->consume_binary_parallel(ioct, n_threads);
    const std::uint64_t events = shard->ingest_stats().events;
    acc_->merge(*shard);
    delta_->merge(*shard);
    ++delta_pushes_;
    seen_.insert(name);
    order_.push_back(name);
    publish_locked();
    return {true, static_cast<std::uint64_t>(order_.size()), dropped, events};
}

void LiveCoverage::publish_locked() {
    auto p = std::make_shared<Published>();
    p->epoch = order_.size();
    p->state = acc_->snapshot();
    std::lock_guard<std::mutex> lock(pub_mu_);
    published_ = std::move(p);
}

std::shared_ptr<const LiveCoverage::Published> LiveCoverage::read() const {
    std::lock_guard<std::mutex> lock(pub_mu_);
    return published_;
}

std::vector<std::string> LiveCoverage::consumed() const {
    std::lock_guard<std::mutex> lock(writer_mu_);
    return order_;
}

IOCovSnapshot LiveCoverage::take_delta(std::uint64_t* pushes) {
    std::lock_guard<std::mutex> lock(writer_mu_);
    if (pushes) *pushes = delta_pushes_;
    IOCovSnapshot out = delta_->snapshot();
    delta_ = fresh();
    delta_pushes_ = 0;
    return out;
}

void LiveCoverage::restore(const IOCovSnapshot& state,
                           std::vector<std::string> consumed_names) {
    std::lock_guard<std::mutex> lock(writer_mu_);
    acc_ = fresh();
    acc_->merge(state);
    delta_ = fresh();
    delta_pushes_ = 0;
    order_ = std::move(consumed_names);
    seen_.clear();
    for (const auto& n : order_) seen_.insert(n);
    publish_locked();
}

}  // namespace iocov::core
