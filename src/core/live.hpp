// LiveCoverage — incrementally updatable, snapshot-consistent analyzer
// state for the serve daemon (and anything else that interleaves
// ingestion with queries).
//
// The batch pipeline's determinism contract (DESIGN.md §4, §10) is
// per-shard analysis + report-level merge: `iocov analyze DIR/` gives
// every file its own fresh filter + analyzer and merges the per-file
// reports, which is associative and commutative.  LiveCoverage keeps
// exactly that shape but makes it *online*: each pushed shard is
// analyzed in isolation and merged into an accumulator, so the state
// after any set of pushes equals a batch analyze of the same shards —
// bit-identically at the saved-report level — regardless of arrival
// order or interleaving.
//
// Consistency model (the epoch/seqlock idea without its torn-read
// hazard): writers serialize on a mutex, and after every push the full
// merged state is published as an immutable `shared_ptr<const
// Published>` tagged with the push epoch.  Readers grab the pointer
// under a narrow lock and then read freely — they always see a state
// that *was* current at some epoch boundary, never a half-merged
// histogram.  A query during ingest therefore returns the coverage of
// an exact prefix of the pushes applied so far.
//
// Shard names are deduplicated: re-pushing an already-consumed name is
// acknowledged and skipped.  That one rule makes crash recovery simple
// — after a daemon SIGKILL + `--resume`, producers just re-push
// everything and the merged result is unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/iocov.hpp"
#include "core/snapshot.hpp"
#include "trace/filter.hpp"

namespace iocov::core {

class LiveCoverage {
  public:
    /// One published consistent state: the merged coverage of the first
    /// `epoch` accepted pushes.  Immutable once published.
    struct Published {
        std::uint64_t epoch = 0;  ///< accepted pushes folded into `state`
        IOCovSnapshot state;
    };

    struct PushResult {
        bool accepted = false;     ///< false == duplicate name, skipped
        std::uint64_t epoch = 0;   ///< epoch after this push
        std::size_t dropped = 0;   ///< undecodable records in this shard
        std::uint64_t events = 0;  ///< events decoded from this shard
    };

    explicit LiveCoverage(trace::FilterConfig filter_config =
                              trace::FilterConfig::mount_point("/mnt/test"),
                          const std::vector<SyscallSpec>& registry =
                              syscall_registry());

    /// Analyzes one IOCT shard (fresh filter + analyzer, exactly like
    /// one file of a batch dir ingest) and merges it in.  A name that
    /// was already consumed is skipped (accepted == false) — pushes are
    /// idempotent by name.  `n_threads` > 1 decodes the shard on the
    /// parallel path (bit-identical to serial).  Thread-safe.
    PushResult push(const std::string& name, std::string_view ioct,
                    unsigned n_threads = 1);

    /// The newest published consistent state.  Never null; epoch 0
    /// holds an empty snapshot.  Thread-safe, wait-free after the
    /// pointer grab.
    std::shared_ptr<const Published> read() const;

    std::uint64_t epoch() const { return read()->epoch; }

    /// Names of accepted pushes, in application order.  Thread-safe.
    std::vector<std::string> consumed() const;

    /// The merged coverage of pushes accepted since the previous
    /// take_delta() (or construction/restore), as a snapshot — the
    /// serve daemon's periodic IOCS delta artifact.  Merging every
    /// emitted delta reproduces the full state (snapshot algebra).
    /// Returns the number of pushes covered via `*pushes` (0 == empty
    /// delta).  Resets the delta accumulator.  Thread-safe.
    IOCovSnapshot take_delta(std::uint64_t* pushes = nullptr);

    /// Replaces all state with `state` (the merged coverage of
    /// `consumed_names`) — the `--resume` path.  The restored epoch is
    /// consumed_names.size(); subsequent duplicate pushes are skipped,
    /// so re-pushing the full shard set converges to the same report as
    /// an uninterrupted run.  Thread-safe.
    void restore(const IOCovSnapshot& state,
                 std::vector<std::string> consumed_names);

  private:
    std::unique_ptr<IOCov> fresh() const;
    void publish_locked();  ///< writer_mu_ must be held

    trace::FilterConfig filter_config_;
    const std::vector<SyscallSpec>* registry_;

    mutable std::mutex writer_mu_;  ///< serializes push/take_delta/restore
    std::unique_ptr<IOCov> acc_;    ///< full merged state
    std::unique_ptr<IOCov> delta_;  ///< merged state since last take_delta
    std::uint64_t delta_pushes_ = 0;
    std::unordered_set<std::string> seen_;
    std::vector<std::string> order_;

    mutable std::mutex pub_mu_;  ///< guards only the pointer swap/grab
    std::shared_ptr<const Published> published_;
};

}  // namespace iocov::core
