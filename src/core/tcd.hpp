// Test Coverage Deviation (TCD) — Section 4 of the paper.
//
// Given per-partition frequencies F and a target array T:
//
//     TCD(T) = sqrt( 1/N * sum_i (log10 F_i - log10 T_i)^2 )
//
// Logs downplay over-testing relative to under-testing; an untested
// partition contributes its full log-distance to the target (counts
// below 1 are floored at 1 so log is defined).  Lower is better; zero
// means every partition is tested exactly the target number of times.
#pragma once

#include <string>
#include <vector>

#include "stats/histogram.hpp"

namespace iocov::core {

/// TCD with a per-partition target array.  Throws std::invalid_argument
/// unless target.size() == hist.partition_count(); targets below 1 are
/// floored at 1.
double tcd(const stats::PartitionHistogram& hist,
           const std::vector<double>& target);

/// TCD with a uniform target (the paper's Fig. 5 sweeps this value).
double tcd_uniform(const stats::PartitionHistogram& hist, double target);

/// Linear-domain RMSD between frequencies and targets — the ablation
/// baseline showing why the paper computes TCD in log space (a single
/// over-tested partition otherwise dominates the metric).  Same size
/// contract as tcd().
double tcd_linear(const stats::PartitionHistogram& hist,
                  const std::vector<double>& target);
double tcd_linear_uniform(const stats::PartitionHistogram& hist,
                          double target);

/// One partition's share of the squared deviation behind a TCD value.
struct TcdContribution {
    std::string label;       ///< partition label
    std::uint64_t observed;  ///< frequency F_i
    double target;           ///< target T_i
    /// (log10 F_i - log10 T_i)^2 / N — contributions sum to TCD^2.
    double deviation;

    bool untested() const { return observed == 0; }
};

/// Ranks partitions by how much deviation they contribute to tcd(hist,
/// target), most-deviant first (ties broken by label, so the order is
/// deterministic).  sum(deviation) == tcd^2 up to rounding.  Same size
/// contract as tcd().
std::vector<TcdContribution> tcd_attribution(
    const stats::PartitionHistogram& hist, const std::vector<double>& target);

/// Attribution against a uniform target.
std::vector<TcdContribution> tcd_attribution_uniform(
    const stats::PartitionHistogram& hist, double target);

/// Builder for non-uniform targets (the paper's future-work extension):
/// start from a uniform base and boost selected partitions, e.g. weight
/// persistence-related open flags (O_SYNC/O_DSYNC) higher for
/// crash-consistency testing.
class TargetBuilder {
  public:
    TargetBuilder(const stats::PartitionHistogram& hist, double base);

    /// Sets the target for one partition label.  A label matching no
    /// partition is recorded in unknown_labels() — a typo'd label must
    /// not silently leave the target at its base value.
    TargetBuilder& set(std::string_view label, double target);

    /// Multiplies the target for one partition label; unmatched labels
    /// are recorded like set().
    TargetBuilder& boost(std::string_view label, double factor);

    std::vector<double> build() const { return targets_; }

    /// Labels passed to set()/boost() that matched no partition, in
    /// call order.  Empty means every adjustment landed.
    const std::vector<std::string>& unknown_labels() const {
        return unknown_labels_;
    }

  private:
    const stats::PartitionHistogram& hist_;
    std::vector<double> targets_;
    std::vector<std::string> unknown_labels_;
};

}  // namespace iocov::core
