// Test Coverage Deviation (TCD) — Section 4 of the paper.
//
// Given per-partition frequencies F and a target array T:
//
//     TCD(T) = sqrt( 1/N * sum_i (log10 F_i - log10 T_i)^2 )
//
// Logs downplay over-testing relative to under-testing; an untested
// partition contributes its full log-distance to the target (counts
// below 1 are floored at 1 so log is defined).  Lower is better; zero
// means every partition is tested exactly the target number of times.
#pragma once

#include <vector>

#include "stats/histogram.hpp"

namespace iocov::core {

/// TCD with a per-partition target array. target.size() must equal
/// hist.partition_count(); targets below 1 are floored at 1.
double tcd(const stats::PartitionHistogram& hist,
           const std::vector<double>& target);

/// TCD with a uniform target (the paper's Fig. 5 sweeps this value).
double tcd_uniform(const stats::PartitionHistogram& hist, double target);

/// Linear-domain RMSD between frequencies and targets — the ablation
/// baseline showing why the paper computes TCD in log space (a single
/// over-tested partition otherwise dominates the metric).
double tcd_linear(const stats::PartitionHistogram& hist,
                  const std::vector<double>& target);
double tcd_linear_uniform(const stats::PartitionHistogram& hist,
                          double target);

/// Builder for non-uniform targets (the paper's future-work extension):
/// start from a uniform base and boost selected partitions, e.g. weight
/// persistence-related open flags (O_SYNC/O_DSYNC) higher for
/// crash-consistency testing.
class TargetBuilder {
  public:
    TargetBuilder(const stats::PartitionHistogram& hist, double base);

    /// Sets the target for one partition label (no-op if absent).
    TargetBuilder& set(std::string_view label, double target);

    /// Multiplies the target for one partition label.
    TargetBuilder& boost(std::string_view label, double factor);

    std::vector<double> build() const { return targets_; }

  private:
    const stats::PartitionHistogram& hist_;
    std::vector<double> targets_;
};

}  // namespace iocov::core
