// Registry of tracked syscalls, their variants, and their argument
// classes — Section 3 of the paper.
//
// IOCov tracks 27 file-system syscalls: 11 base syscalls plus variants
// that share the base's kernel implementation (open/openat/creat/openat2,
// read/pread64/readv, ...).  Across the 11 bases it tracks 14 distinct
// arguments, each classified as identifier, bitmap, numeric, or
// categorical; the partitioning strategy is chosen per class.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "abi/errno.hpp"

namespace iocov::core {

/// The paper's four argument classes.
enum class ArgClass : std::uint8_t {
    Identifier,   ///< file descriptors, path names
    Bitmap,       ///< OR-able flags (open flags, chmod permission bits)
    Numeric,      ///< byte counts, offsets — partitioned by powers of 2
    Categorical,  ///< fixed value sets (lseek whence, setxattr flags)
};

std::string_view arg_class_name(ArgClass c);

/// How successful returns are partitioned for a base syscall.
enum class SuccessKind : std::uint8_t {
    Unit,       ///< success is just "OK" (mkdir, close, ...)
    ByteCount,  ///< success returns a size — partition by powers of 2
    Offset,     ///< success returns an offset (lseek) — powers of 2
    NewFd,      ///< success returns a file descriptor (open family)
};

/// One tracked argument of a base syscall.
struct ArgSpec {
    std::string key;  ///< trace arg name, identical across variants
    ArgClass cls;
};

/// One base syscall: its variants and tracked arguments.
struct SyscallSpec {
    std::string base;                    ///< e.g. "open"
    std::vector<std::string> variants;   ///< e.g. {"open","openat",...}
    std::vector<ArgSpec> args;           ///< the tracked arguments
    SuccessKind success = SuccessKind::Unit;
    /// Error codes documented for this syscall (its output partitions).
    std::vector<abi::Err> errors;
};

/// The full registry: 11 bases / 27 variants / 14 tracked arguments.
const std::vector<SyscallSpec>& syscall_registry();

/// The paper's future-work "support more syscalls": the base registry
/// plus unlink, rename, symlink, link, and fsync (with identifier
/// arguments and their documented error sets).  Pass to Analyzer for
/// wider tracking.
const std::vector<SyscallSpec>& extended_syscall_registry();

/// Base syscall for a variant name; nullopt for untracked syscalls.
/// The registry-taking overload resolves against any registry.
std::optional<std::string> base_of_variant(std::string_view variant);
std::optional<std::string> base_of_variant(
    std::string_view variant, const std::vector<SyscallSpec>& registry);

/// Spec lookup by base name; nullptr if unknown.
const SyscallSpec* find_spec(std::string_view base);
const SyscallSpec* find_spec(std::string_view base,
                             const std::vector<SyscallSpec>& registry);

/// Totals used in the paper's prose ("27 syscalls", "14 arguments").
std::size_t tracked_variant_count();
std::size_t tracked_argument_count();

}  // namespace iocov::core
