#include "core/checkpoint.hpp"

#include <bit>
#include <cstring>

#include "host/io.hpp"
#include "trace/binary_format.hpp"
#include "trace/detail/varint_decode.hpp"

namespace iocov::core {
namespace {

// Same wire helpers as IOCS (snapshot.cpp); the manifest is a sibling
// format and deliberately shares the varint grammar and reader policy.

void put_varint(std::string& out, std::uint64_t v) {
    while (v >= 0x80) {
        out.push_back(static_cast<char>(v | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

void put_u32le(std::string& out, std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<char>((v >> shift) & 0xff));
}

void put_u64le(std::string& out, std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<char>((v >> shift) & 0xff));
}

std::uint32_t read_u32le(const char* p) {
    const auto* u = reinterpret_cast<const unsigned char*>(p);
    return static_cast<std::uint32_t>(u[0]) |
           static_cast<std::uint32_t>(u[1]) << 8 |
           static_cast<std::uint32_t>(u[2]) << 16 |
           static_cast<std::uint32_t>(u[3]) << 24;
}

std::uint64_t read_u64le(const char* p) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | static_cast<unsigned char>(p[i]);
    return v;
}

struct PayloadCursor {
    const unsigned char* p;
    const unsigned char* const rec_end;
    const unsigned char* const buf_end;

    PayloadCursor(std::string_view payload, std::string_view file)
        : p(reinterpret_cast<const unsigned char*>(payload.data())),
          rec_end(p + payload.size()),
          buf_end(reinterpret_cast<const unsigned char*>(file.data()) +
                  file.size()) {}

    bool done() const { return p == rec_end; }

    bool read_u8(std::uint8_t& out) {
        if (p == rec_end) return false;
        out = *p++;
        return true;
    }

    bool read_varint(std::uint64_t& out) {
        if constexpr (std::endian::native == std::endian::little)
            return trace::detail::SwarVarintReader::read(p, rec_end, buf_end,
                                                         out);
        else
            return trace::detail::ScalarVarintReader::read(p, rec_end,
                                                           buf_end, out);
    }

    bool read_string(std::string& out) {
        std::uint64_t len = 0;
        if (!read_varint(len) ||
            len > static_cast<std::uint64_t>(rec_end - p))
            return false;
        out.assign(reinterpret_cast<const char*>(p),
                   static_cast<std::size_t>(len));
        p += len;
        return true;
    }
};

std::uint64_t fnv1a64(std::string_view data) {
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

bool fail(SnapshotError* err, SnapshotError::Kind kind, std::uint64_t offset,
          std::string reason) {
    if (err) {
        err->kind = kind;
        err->offset = offset;
        err->reason = std::move(reason);
        err->found_version = 0;
        err->io_errno = 0;
    }
    return false;
}

void put_record(std::string& out, std::string_view payload) {
    put_u32le(out, static_cast<std::uint32_t>(payload.size()));
    out.append(payload);
}

}  // namespace

bool is_iock(std::string_view data) {
    return data.size() >= sizeof kIockMagic &&
           std::memcmp(data.data(), kIockMagic, sizeof kIockMagic) == 0;
}

std::string encode_checkpoint(const Checkpoint& cp) {
    std::string out(kIockHeaderSize, '\0');
    std::memcpy(out.data(), kIockMagic, sizeof kIockMagic);
    out[4] = static_cast<char>(kIockVersion);

    std::string payload;
    payload.push_back(static_cast<char>(IockTag::Meta));
    payload.push_back(static_cast<char>(cp.mode));
    put_varint(payload, cp.rejected);
    put_varint(payload, cp.bytes);
    put_varint(payload, cp.diags.total());
    put_record(out, payload);

    for (const auto& name : cp.consumed) {
        payload.clear();
        payload.push_back(static_cast<char>(IockTag::Name));
        payload.append(name);
        put_record(out, payload);
    }

    for (const auto& d : cp.diags.entries()) {
        payload.clear();
        payload.push_back(static_cast<char>(IockTag::Diag));
        put_varint(payload, d.line);
        put_varint(payload, d.offset);
        put_varint(payload, d.reason.size());
        payload.append(d.reason);
        put_varint(payload, d.excerpt.size());
        payload.append(d.excerpt);
        put_record(out, payload);
    }

    for (const auto& b : cp.blocks) {
        payload.clear();
        payload.push_back(static_cast<char>(IockTag::Block));
        put_varint(payload, b.leaves);
        payload.append(encode_snapshot(b.snapshot));
        put_record(out, payload);
    }

    payload.clear();
    payload.push_back(static_cast<char>(IockTag::Footer));
    put_varint(payload, cp.consumed.size());
    put_varint(payload, cp.diags.entries().size());
    put_varint(payload, cp.blocks.size());
    put_u64le(payload, fnv1a64(out));
    put_record(out, payload);
    return out;
}

std::optional<Checkpoint> decode_checkpoint(std::string_view data,
                                            SnapshotError* err) {
    using Kind = SnapshotError::Kind;
    if (!is_iock(data)) {
        fail(err, Kind::Corrupt, 0, "not an IOCK checkpoint (bad magic)");
        return std::nullopt;
    }
    if (data.size() < kIockHeaderSize) {
        fail(err, Kind::Torn, data.size(), "torn checkpoint header");
        return std::nullopt;
    }
    const auto version = static_cast<std::uint8_t>(data[4]);
    if (version != kIockVersion) {
        fail(err, Kind::Corrupt, 4,
             "checkpoint version skew: file is v" + std::to_string(version) +
                 ", this build reads v" + std::to_string(kIockVersion));
        return std::nullopt;
    }

    Checkpoint cp;
    std::uint64_t diag_total = 0;
    std::uint64_t footer_names = 0, footer_diags = 0, footer_blocks = 0;
    std::size_t n_diags = 0;
    bool saw_meta = false, saw_footer = false;
    std::size_t pos = kIockHeaderSize;
    while (pos < data.size()) {
        if (saw_footer) {
            fail(err, Kind::Corrupt, pos, "data after checkpoint footer");
            return std::nullopt;
        }
        if (data.size() - pos < 4) {
            fail(err, Kind::Torn, pos, "torn checkpoint record prefix");
            return std::nullopt;
        }
        const std::uint32_t len = read_u32le(data.data() + pos);
        const std::size_t record_start = pos;
        pos += 4;
        if (len == 0 || len > data.size() - pos) {
            fail(err, Kind::Torn, record_start, "torn checkpoint record");
            return std::nullopt;
        }
        const std::string_view body = data.substr(pos, len);
        pos += len;
        PayloadCursor c(body.substr(1), data);
        switch (static_cast<IockTag>(static_cast<std::uint8_t>(body[0]))) {
            case IockTag::Meta: {
                std::uint8_t mode = 0;
                const bool ok =
                    !saw_meta && c.read_u8(mode) &&
                    (mode == static_cast<std::uint8_t>(
                                 CheckpointMode::Merge) ||
                     mode == static_cast<std::uint8_t>(
                                 CheckpointMode::Analyze) ||
                     mode == static_cast<std::uint8_t>(
                                 CheckpointMode::Serve)) &&
                    c.read_varint(cp.rejected) && c.read_varint(cp.bytes) &&
                    c.read_varint(diag_total) && c.done();
                if (!ok) {
                    fail(err, Kind::Corrupt, record_start,
                         "malformed checkpoint meta record");
                    return std::nullopt;
                }
                cp.mode = static_cast<CheckpointMode>(mode);
                saw_meta = true;
                break;
            }
            case IockTag::Name:
                cp.consumed.emplace_back(body.substr(1));
                break;
            case IockTag::Diag: {
                trace::ParseDiagnostic d;
                std::string reason, excerpt;
                const bool ok = c.read_varint(d.line) &&
                                c.read_varint(d.offset) &&
                                c.read_string(reason) &&
                                c.read_string(excerpt) && c.done();
                if (!ok) {
                    fail(err, Kind::Corrupt, record_start,
                         "malformed checkpoint diagnostic record");
                    return std::nullopt;
                }
                ++n_diags;
                cp.diags.record(d.line, d.offset, reason, excerpt);
                break;
            }
            case IockTag::Block: {
                MergeBlock b;
                if (!c.read_varint(b.leaves) || b.leaves == 0) {
                    fail(err, Kind::Corrupt, record_start,
                         "malformed checkpoint block record");
                    return std::nullopt;
                }
                const auto iocs = std::string_view(
                    reinterpret_cast<const char*>(c.p),
                    static_cast<std::size_t>(c.rec_end - c.p));
                auto snap = decode_snapshot(iocs, err);
                if (!snap) {
                    // err already carries the embedded-IOCS failure;
                    // re-anchor the offset to this file.
                    if (err) {
                        err->offset += static_cast<std::uint64_t>(
                            reinterpret_cast<const char*>(c.p) - data.data());
                        err->reason =
                            "embedded block snapshot: " + err->reason;
                    }
                    return std::nullopt;
                }
                b.snapshot = std::move(*snap);
                cp.blocks.push_back(std::move(b));
                break;
            }
            case IockTag::Footer: {
                std::uint64_t checksum = 0;
                bool ok = c.read_varint(footer_names) &&
                          c.read_varint(footer_diags) &&
                          c.read_varint(footer_blocks);
                if (ok && c.rec_end - c.p >= 8) {
                    checksum = read_u64le(reinterpret_cast<const char*>(c.p));
                    c.p += 8;
                } else {
                    ok = false;
                }
                if (!ok || !c.done()) {
                    fail(err, Kind::Corrupt, record_start,
                         "malformed checkpoint footer record");
                    return std::nullopt;
                }
                if (checksum != fnv1a64(data.substr(0, record_start))) {
                    fail(err, Kind::Corrupt, record_start,
                         "checkpoint checksum mismatch (file damaged)");
                    return std::nullopt;
                }
                saw_footer = true;
                break;
            }
            default:
                fail(err, Kind::Corrupt, record_start,
                     "unknown checkpoint record tag");
                return std::nullopt;
        }
    }
    if (!saw_footer) {
        fail(err, Kind::Torn, data.size(),
             "torn checkpoint: footer checksum missing");
        return std::nullopt;
    }
    if (!saw_meta || footer_names != cp.consumed.size() ||
        footer_diags != n_diags || footer_blocks != cp.blocks.size() ||
        diag_total < n_diags) {
        fail(err, Kind::Corrupt, data.size(),
             saw_meta ? "footer counts disagree with checkpoint records"
                      : "checkpoint has no meta record");
        return std::nullopt;
    }
    cp.diags.count_only(diag_total - n_diags);
    return cp;
}

bool save_checkpoint_file(const std::string& path, const Checkpoint& cp,
                          SnapshotError* err) {
    const std::string bytes = encode_checkpoint(cp);
    if (auto ioerr = host::write_file_atomic(path, bytes)) {
        if (err) {
            err->kind = SnapshotError::Kind::Io;
            err->offset = 0;
            err->reason = ioerr->to_string();
            err->io_errno = ioerr->err;
        }
        return false;
    }
    return true;
}

std::optional<Checkpoint> load_checkpoint_file(const std::string& path,
                                               SnapshotError* err) {
    host::IoError ioerr;
    auto mapped = trace::MappedFile::open(path, trace::MappedFile::Mode::Auto,
                                          &ioerr);
    if (!mapped) {
        if (err) {
            err->kind = SnapshotError::Kind::Io;
            err->offset = 0;
            err->reason = "cannot open file: " + ioerr.to_string();
            err->io_errno = ioerr.err;
        }
        return std::nullopt;
    }
    return decode_checkpoint(mapped->data(), err);
}

// ---- incremental merge -----------------------------------------------------

void IncrementalMerge::push(IOCovSnapshot leaf) {
    blocks_.push_back({1, std::move(leaf)});
    ++leaves_;
    // Carry: whenever the two rightmost blocks cover equal leaf
    // counts, they are adjacent complete subtrees of the same level of
    // the pairwise tree, and the level walk merges them (left absorbs
    // right) before anything larger happens.  Repeating until the
    // sizes differ keeps block sizes strictly decreasing — the binary
    // digits of leaves().
    while (blocks_.size() >= 2 &&
           blocks_[blocks_.size() - 2].leaves == blocks_.back().leaves) {
        auto right = std::move(blocks_.back());
        blocks_.pop_back();
        blocks_.back().snapshot.merge(right.snapshot);
        blocks_.back().leaves += right.leaves;
    }
}

void IncrementalMerge::restore(std::vector<MergeBlock> blocks) {
    blocks_ = std::move(blocks);
    leaves_ = 0;
    for (const auto& b : blocks_) leaves_ += b.leaves;
}

IOCovSnapshot IncrementalMerge::finish() {
    if (blocks_.empty()) return {};
    // Stragglers combine innermost-first in the level walk: the two
    // rightmost (smallest) blocks meet at the lowest level where both
    // exist, and the result climbs leftward.  A right-fold reproduces
    // that order exactly.
    while (blocks_.size() >= 2) {
        auto right = std::move(blocks_.back());
        blocks_.pop_back();
        blocks_.back().snapshot.merge(right.snapshot);
        blocks_.back().leaves += right.leaves;
    }
    auto out = std::move(blocks_.front().snapshot);
    blocks_.clear();
    leaves_ = 0;
    return out;
}

}  // namespace iocov::core
