// IOCK — resumable-ingest checkpoint manifests, and the incremental
// merge reducer that makes "resume after SIGKILL" byte-identical to an
// uninterrupted run.
//
// `iocov merge` and `iocov analyze DIR/` walk hundreds of inputs; a
// kill or fault mid-walk should not force re-reading everything.  A
// checkpoint captures the walk's full fold state every N inputs —
// which inputs are consumed, the reject/byte counters, the retained
// parse diagnostics, and the partial merge state itself — written
// atomically (host::write_file_atomic) so the manifest obeys the same
// durability contract as every other artifact: a crash leaves the
// previous complete manifest or the new complete one, never a torn
// file.
//
// The hard part is byte-identity.  merge_snapshots() reduces leaves
// level by level over adjacent pairs (the odd straggler waits), and
// IOCovSnapshot::merge is associative for every field *except* the
// double `ingest.seconds` sum — float addition makes the merge-tree
// shape observable in the output bytes.  A resumable fold therefore
// cannot be a running left-fold; it must reproduce the exact pairwise
// tree.  IncrementalMerge does this with a binary-counter forest: each
// pushed leaf is a 1-block; whenever the two rightmost blocks have
// equal leaf counts they carry-merge (left absorbs right), so after n
// pushes the forest is the complete power-of-two subtrees of the
// pairwise tree (block sizes = binary digits of n).  finish()
// right-folds the remaining blocks — rightmost pair first — which is
// exactly the order the level walk combines its stragglers.  The
// forest, not the folded value, is what a checkpoint stores: resuming
// mid-walk re-enters the identical tree.
//
// File layout (all integers little-endian; spec in DESIGN.md §12):
//
//   header   16 bytes: "IOCK" magic, version, flags, reserved
//   records  length-prefixed (u32 LE payload length, payload = tag+body):
//       0x01 META    mode byte (1 = merge, 2 = analyze), varint
//                    rejected count, input bytes, total diagnostics
//       0x02 NAME    one consumed input name, in processing order
//       0x03 DIAG    one retained diagnostic: varint line, offset,
//                    then length-prefixed reason and excerpt
//       0x04 BLOCK   one forest block: varint leaf count, then a
//                    complete embedded IOCS snapshot
//       0x05 FOOTER  name/diag/block counts + FNV-1a-64 checksum of
//                    every byte before the footer's length prefix
//
// Like IOCS, a manifest is *state*: decode is all-or-nothing, and any
// truncation or bit flip surfaces as a structured SnapshotError rather
// than partial resume state (resuming from half a manifest would
// silently double-count inputs).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/snapshot.hpp"
#include "trace/diagnostics.hpp"

namespace iocov::core {

// ---- format constants ------------------------------------------------------

inline constexpr char kIockMagic[4] = {'I', 'O', 'C', 'K'};
inline constexpr std::uint8_t kIockVersion = 1;
inline constexpr std::size_t kIockHeaderSize = 16;

enum class IockTag : std::uint8_t {
    Meta = 0x01,
    Name = 0x02,
    Diag = 0x03,
    Block = 0x04,
    Footer = 0x05,
};

/// Which walk produced the manifest; resume refuses a mode mismatch
/// (a merge manifest cannot seed an analyze walk).
enum class CheckpointMode : std::uint8_t {
    Merge = 1,
    Analyze = 2,
    /// `iocov serve` daemon state: `consumed` holds accepted shard
    /// names (push order), one block carries the full merged snapshot.
    Serve = 3,
};

/// True if `data` begins with the IOCK magic.
bool is_iock(std::string_view data);

// ---- checkpoint value ------------------------------------------------------

/// One block of the binary-counter forest: a complete power-of-two
/// subtree of the pairwise merge tree, tagged with how many original
/// leaves it folds.
struct MergeBlock {
    std::uint64_t leaves = 0;
    IOCovSnapshot snapshot;

    friend bool operator==(const MergeBlock&, const MergeBlock&) = default;
};

/// Full resumable state of one ingest/merge walk.
struct Checkpoint {
    CheckpointMode mode = CheckpointMode::Merge;
    /// Names of inputs fully consumed (or rejected), in processing
    /// order.  Resume requires this to be a prefix of the current
    /// input list — anything else means the directory changed.
    std::vector<std::string> consumed;
    std::uint64_t rejected = 0;  ///< inputs diagnosed + skipped so far
    std::uint64_t bytes = 0;     ///< input bytes consumed so far
    trace::ParseDiagnostics diags;
    /// Forest blocks, leftmost (largest) first.  Analyze walks fold
    /// into a single accumulator, so they always store one block.
    std::vector<MergeBlock> blocks;
};

// ---- encode / decode -------------------------------------------------------

/// Serializes a checkpoint (header + records + footer).  Deterministic
/// for a given value.
std::string encode_checkpoint(const Checkpoint& cp);

/// Decodes a full manifest.  All-or-nothing: nullopt (with *err filled
/// when non-null) on any damage.  Reuses SnapshotError — embedded IOCS
/// block failures surface with their own kind, envelope damage as
/// Torn/Corrupt with checkpoint-specific reasons.
std::optional<Checkpoint> decode_checkpoint(std::string_view data,
                                            SnapshotError* err = nullptr);

/// Writes encode_checkpoint(cp) to `path` durably and atomically; on
/// failure the previous manifest (if any) is untouched and *err (when
/// non-null) carries Kind::Io.
bool save_checkpoint_file(const std::string& path, const Checkpoint& cp,
                          SnapshotError* err = nullptr);

/// Maps and decodes `path`; nullopt on open or decode failure.
std::optional<Checkpoint> load_checkpoint_file(const std::string& path,
                                               SnapshotError* err = nullptr);

// ---- incremental merge -----------------------------------------------------

/// Incremental reducer producing bytes identical to
/// merge_snapshots(leaves) at any interruption/resume point.  Push
/// leaves one at a time; read `blocks()` to checkpoint; seed a fresh
/// instance with `restore()` to resume; `finish()` right-folds into
/// the final snapshot.
class IncrementalMerge {
  public:
    /// Appends one leaf and performs any pending carry-merges.
    void push(IOCovSnapshot leaf);

    /// Re-seeds the forest from checkpointed blocks (must be called on
    /// an empty instance, blocks leftmost-first as blocks() returned
    /// them).
    void restore(std::vector<MergeBlock> blocks);

    /// Total leaves folded so far.
    std::uint64_t leaves() const { return leaves_; }

    /// Current forest, leftmost (largest) block first.
    const std::vector<MergeBlock>& blocks() const { return blocks_; }

    /// Right-folds the forest into the final snapshot (empty snapshot
    /// for zero leaves).  Consumes the state.
    IOCovSnapshot finish();

  private:
    std::vector<MergeBlock> blocks_;
    std::uint64_t leaves_ = 0;
};

}  // namespace iocov::core
