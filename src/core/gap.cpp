#include "core/gap.hpp"

#include <map>
#include <sstream>
#include <tuple>

#include "core/tcd.hpp"
#include "core/untested.hpp"
#include "stats/rmsd.hpp"

namespace iocov::core {
namespace {

using SuggestionKey = std::tuple<int, std::string, std::string, std::string>;

SuggestionKey key_of(const UntestedPartition& u) {
    return {u.kind == UntestedPartition::Kind::Input ? 0 : 1, u.base, u.arg,
            u.partition};
}

/// Gaps for one space, in tcd_attribution order (deviation-ranked).
void append_gaps(std::vector<Gap>& out, Gap::Kind kind,
                 const std::string& base, const std::string& arg,
                 const stats::PartitionHistogram& hist, double target,
                 const std::map<SuggestionKey, std::string>& suggestions) {
    for (const TcdContribution& c :
         tcd_attribution_uniform(hist, target)) {
        if (!c.untested()) continue;
        Gap g;
        g.kind = kind;
        g.base = base;
        g.arg = arg;
        g.partition = c.label;
        g.tcd_share = c.deviation;
        const auto it = suggestions.find(
            {kind == Gap::Kind::Input ? 0 : 1, base, arg, c.label});
        if (it != suggestions.end()) g.suggestion = it->second;
        out.push_back(std::move(g));
    }
}

SpaceTcd space_of(const std::string& base, const std::string& arg,
                  const stats::PartitionHistogram& hist, double target) {
    SpaceTcd s;
    s.base = base;
    s.arg = arg;
    s.tcd = tcd_uniform(hist, target);
    s.declared = hist.partition_count();
    s.untested = hist.untested().size();
    return s;
}

}  // namespace

std::string Gap::id() const {
    return kind == Kind::Input ? base + "." + arg + ":" + partition
                               : base + ":" + partition;
}

GapReport extract_gaps(const CoverageReport& report, double target) {
    std::map<SuggestionKey, std::string> suggestions;
    for (const UntestedPartition& u : find_untested(report))
        suggestions.emplace(key_of(u), u.suggestion);

    GapReport out;
    out.target = target;
    std::vector<double> tcds;
    for (const ArgCoverage& in : report.inputs) {
        append_gaps(out.input_gaps, Gap::Kind::Input, in.base, in.key,
                    in.hist, target, suggestions);
        out.spaces.push_back(space_of(in.base, in.key, in.hist, target));
        tcds.push_back(out.spaces.back().tcd);
    }
    for (const OutputCoverage& o : report.outputs) {
        append_gaps(out.output_gaps, Gap::Kind::Output, o.base, "", o.hist,
                    target, suggestions);
        out.spaces.push_back(space_of(o.base, "", o.hist, target));
        tcds.push_back(out.spaces.back().tcd);
    }
    out.aggregate_tcd = stats::mean(tcds);
    return out;
}

std::string GapReport::to_string() const {
    std::ostringstream os;
    os << "gaps: " << input_gaps.size() << " untested input partition(s), "
       << output_gaps.size() << " unreached output partition(s)\n";
    os << "aggregate TCD (uniform target " << target << "): " << aggregate_tcd
       << "\n";
    for (const SpaceTcd& s : spaces) {
        os << "  " << s.base;
        if (!s.arg.empty()) os << "." << s.arg;
        os << ": tcd=" << s.tcd << " untested=" << s.untested << "/"
           << s.declared << "\n";
    }
    return os.str();
}

}  // namespace iocov::core
