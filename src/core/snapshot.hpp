// IOCS — the compact binary coverage-snapshot format, and the fleet
// aggregation built on it.
//
// The paper's premise is fleet-scale measurement: coverage must be
// combined across many machines and many runs.  Re-ingesting raw
// traces to answer every aggregate query costs minutes of decode per
// billion events even at the hardware-bound IOCT rate; an IOCovSnapshot
// makes the *analyzer state itself* the artifact, so aggregation cost
// scales with the number of snapshots, not the number of events.
//
// A snapshot is the full mergeable state of one IOCov: the
// CoverageReport (every partition histogram with its declared-block
// boundary, so merge behavior survives a round trip bit-identically),
// the filtered/dropped counters, cumulative IngestStats, and two
// provenance fields (`label`, `timestamp`) that `iocov trend` slices
// on.  merge() over snapshots is associative and commutative —
// merge(ingest(A), ingest(B)) == ingest(A+B) — which is what lets a
// directory of snapshots reduce in any tree shape on any thread count.
//
// File layout (all integers little-endian; full spec in DESIGN.md §10):
//
//   header   16 bytes: "IOCS" magic, version, flags, reserved
//   records  length-prefixed (u32 LE payload length, payload = tag+body):
//       0x01 STR     string-table entry; ids are implicit (0, 1, 2, ...
//                    in order of appearance), always defined before use
//       0x02 META    varint counters (events seen/tracked, filtered,
//                    dropped, ingest stats), label string-id, timestamp
//       0x03 INPUT   one ArgCoverage: base-id, key-id, class byte, then
//                    the four histograms (hist, combo, combo_rdonly,
//                    pairs), each as varint row/declared counts +
//                    (label-id, count) varint pairs
//       0x04 OUTPUT  one OutputCoverage: base-id, success-kind byte,
//                    one histogram
//       0x05 FOOTER  space counts + FNV-1a-64 checksum of every byte
//                    before the footer's length prefix; must be last
//
// Unlike IOCT (a stream where every intact prefix record is useful), a
// snapshot is a *state*: loading half of one would silently undercount
// coverage.  A torn or bit-flipped file therefore never loads — the
// footer checksum turns any truncation or corruption into a structured
// SnapshotError instead of partial state.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/coverage.hpp"
#include "core/iocov.hpp"
#include "trace/diagnostics.hpp"

namespace iocov::core {

// ---- format constants ------------------------------------------------------

inline constexpr char kIocsMagic[4] = {'I', 'O', 'C', 'S'};
inline constexpr std::uint8_t kIocsVersion = 1;
inline constexpr std::size_t kIocsHeaderSize = 16;

enum class IocsTag : std::uint8_t {
    Str = 0x01,
    Meta = 0x02,
    Input = 0x03,
    Output = 0x04,
    Footer = 0x05,
};

/// True if `data` begins with the IOCS magic — any version.  Version
/// skew is *not* folded into this sniff so callers can tell "this is a
/// snapshot I cannot read" (structured version diagnostic) apart from
/// "this is not a snapshot at all".
bool is_iocs(std::string_view data);

/// The version byte of an IOCS header, or nullopt when `data` does not
/// start with the magic.
std::optional<std::uint8_t> iocs_version(std::string_view data);

// ---- snapshot value --------------------------------------------------------

/// Serializable, mergeable coverage state: everything one IOCov has
/// learned, plus provenance for fleet slicing.
struct IOCovSnapshot {
    CoverageReport report;
    std::uint64_t filtered_out = 0;  ///< events rejected by the filter
    std::uint64_t dropped = 0;       ///< inputs dropped during ingest
    IngestStats ingest;              ///< cumulative ingest statistics
    /// Free-form provenance tag (suite, host, tenant); `iocov trend
    /// --by-label` groups on it.  Never interpreted by merge().
    std::string label;
    /// Unix seconds of capture (0 = unset); `iocov trend --window`
    /// buckets on it.  merge() keeps the maximum (latest capture wins).
    std::uint64_t timestamp = 0;

    /// Associative + commutative fold: histograms merge row-wise
    /// (canonical order), counters add, timestamp keeps the max, and a
    /// label is kept only while all merged inputs agree on it (mixed
    /// labels collapse to "" rather than invent an ordering).
    void merge(const IOCovSnapshot& other);

    friend bool operator==(const IOCovSnapshot&,
                           const IOCovSnapshot&) = default;
};

// ---- encode / decode -------------------------------------------------------

/// Serializes a snapshot (header + records + footer).  Deterministic:
/// the same snapshot value always encodes to the same bytes, so
/// "byte-identical output at any thread count" reduces to "same merged
/// snapshot value".
std::string encode_snapshot(const IOCovSnapshot& snapshot);

/// Why a snapshot failed to load, machine-readable.
struct SnapshotError {
    enum class Kind : std::uint8_t {
        NotIocs,      ///< magic mismatch — not a snapshot file at all
        VersionSkew,  ///< IOCS magic, but a version this build can't read
        Torn,         ///< truncated: missing/incomplete footer
        Corrupt,      ///< structural damage (checksum, bad record, ...)
        Io,           ///< host I/O failure (open/read/write/sync/rename)
    };
    Kind kind = Kind::Corrupt;
    std::uint64_t offset = 0;    ///< byte offset of the failure
    std::string reason;          ///< stable human-readable cause
    std::uint8_t found_version = 0;  ///< set for VersionSkew
    int io_errno = 0;                ///< set for Io: the failing errno

    /// One-line diagnostic ("snapshot version skew: file is v3, ...").
    std::string to_string() const;
};

/// Decodes a full snapshot.  All-or-nothing: returns nullopt (with
/// *err filled when non-null) on any damage — a snapshot is state, not
/// a stream, so there is no partial-prefix recovery.  Round trip is
/// bit-identical: decode(encode(s)) == s and re-encoding the result
/// reproduces the input bytes.
std::optional<IOCovSnapshot> decode_snapshot(std::string_view data,
                                             SnapshotError* err = nullptr);

/// Writes encode_snapshot(snapshot) to `path` *durably and
/// atomically* (host::write_file_atomic: temp file alongside, full
/// write, fsync, rename, directory fsync).  On failure the previous
/// contents of `path` — if any — are untouched, and `*err` (when
/// non-null) carries Kind::Io with the failing errno and phase in
/// `reason`.  A crash at any instant leaves either the old complete
/// snapshot or the new complete snapshot, never a torn file.
bool save_snapshot_file(const std::string& path,
                        const IOCovSnapshot& snapshot,
                        SnapshotError* err = nullptr);

/// Maps and decodes `path`.  nullopt on open failure (err.kind Io,
/// reason "cannot open file: <phase> <strerror>", io_errno set) or any
/// decode failure.
std::optional<IOCovSnapshot> load_snapshot_file(const std::string& path,
                                                SnapshotError* err = nullptr);

// ---- directory loading + hierarchical merge --------------------------------

/// One snapshot loaded from a directory entry, keyed by file name.
struct NamedSnapshot {
    std::string name;  ///< file name (not path) — the deterministic key
    IOCovSnapshot snapshot;
};

/// Result of enumerating + loading a snapshot directory.
struct SnapshotDirLoad {
    /// Successfully loaded snapshots, sorted by file name.
    std::vector<NamedSnapshot> snapshots;
    /// Entries that were not loadable snapshots (foreign files, version
    /// skew, torn/corrupt), one diagnostic each; feeds --max-errors.
    std::size_t rejected = 0;
    trace::ParseDiagnostics diags;
    std::uint64_t bytes = 0;  ///< bytes of snapshots loaded
};

/// Loads every regular `.iocs`-decodable file in `dir` (sorted by
/// name; not recursive) onto a work-stealing pool weighted by file
/// size.  Every rejected entry gets a per-file structured diagnostic —
/// a fleet drop-box routinely holds READMEs and half-written uploads,
/// so foreign files are counted, not fatal.  Returns nullopt when
/// `dir` cannot be enumerated.  Deterministic at any `n_threads`
/// (0 = hardware concurrency, 1 = serial).
std::optional<SnapshotDirLoad> load_snapshot_dir(const std::string& dir,
                                                 unsigned n_threads = 1);

/// Deterministic hierarchical merge: reduces `snapshots` pairwise in
/// index (i.e. name) order — level by level, adjacent pairs — with the
/// level's merges scheduled onto a work-stealing pool weighted by
/// histogram row count.  Because merge() is associative and
/// commutative, the tree shape cannot change the value; fixing it
/// anyway (plus canonical histogram row order) makes the reduction
/// *bit-identical* at any thread count, which the golden tests assert.
/// Returns an empty snapshot for an empty input.
IOCovSnapshot merge_snapshots(std::vector<NamedSnapshot> snapshots,
                              unsigned n_threads = 1);

/// Deterministic JSON summary of a merged fleet snapshot (stable key
/// order, fixed float formatting): file/reject counts plus per-space
/// declared/tested/coverage rows.  Byte-identical across reruns and
/// thread counts for the same directory.
std::string merge_summary_json(const SnapshotDirLoad& load,
                               const IOCovSnapshot& merged);

}  // namespace iocov::core
