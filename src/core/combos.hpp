// Flag-combination coverage — the paper's future-work extension
// ("enhance our metrics to support bit combinations").
//
// Per-flag coverage (Fig. 2) says nothing about which flags were tested
// *together*, yet combination-dependent bugs are common (e.g.
// O_DIRECT|O_APPEND interactions).  This module measures pairwise
// combination coverage over the open-flag space: which of the feasible
// flag pairs has the suite ever issued in one call?
#pragma once

#include <string>
#include <vector>

#include "core/coverage.hpp"

namespace iocov::core {

struct PairCoverage {
    std::size_t tested = 0;
    std::size_t feasible = 0;  ///< pairs that can legally co-occur
    double fraction = 0.0;
    /// Feasible pairs the suite never issued, as "A+B" labels.
    std::vector<std::string> untested;
};

/// All feasible open-flag pairs: every unordered pair of distinct
/// partitions except (a) two access modes (a 2-bit field holds one) and
/// (b) pairs hidden by flag absorption (O_SYNC contains O_DSYNC,
/// O_TMPFILE contains O_DIRECTORY).
std::vector<std::string> feasible_open_flag_pairs();

/// Pairwise coverage for an open-flags ArgCoverage (uses the `pairs`
/// histogram the analyzer maintains).
PairCoverage open_flag_pair_coverage(const ArgCoverage& flags);

}  // namespace iocov::core
