// Diffing, two flavours:
//
//  * Coverage diffing — compare two CoverageReports (e.g. two versions
//    of a test suite) and classify every changed partition.  This is
//    the regression-gate workflow: a partition whose coverage drops to
//    zero is a lost test.
//
//  * State diffing — compare two file-system state snapshots keyed by
//    path.  This is the crash-consistency oracle primitive: the
//    expected side lists facts that must have survived a crash, the
//    actual side is the recovered state, and every divergence is
//    classified (data loss, metadata loss, missing file, ...).  The
//    snapshot type is deliberately VFS-agnostic (paths, hashes and
//    plain integers) so core does not depend on vfs; testers/crash
//    provides the VFS -> StateSnapshot bridge.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/coverage.hpp"

namespace iocov::core {

struct CoverageDelta {
    enum class Kind : std::uint8_t {
        Lost,      ///< tested before, untested now
        Gained,    ///< untested before, tested now
        Decreased, ///< still tested but count fell below the threshold
        Increased, ///< count grew beyond the threshold
    };
    Kind kind = Kind::Lost;
    bool is_input = true;
    std::string base;
    std::string arg;        ///< empty for outputs
    std::string partition;
    std::uint64_t before = 0;
    std::uint64_t after = 0;
};

struct DiffOptions {
    /// Relative change (fraction) below which count movements are
    /// ignored; 0.5 means report only >50% swings.
    double ratio_threshold = 0.5;
};

/// All deltas from `before` to `after`, losses first.
std::vector<CoverageDelta> diff_reports(const CoverageReport& before,
                                        const CoverageReport& after,
                                        const DiffOptions& options = {});

/// True if `after` regresses `before`: some partition was lost.
bool has_coverage_regression(const CoverageReport& before,
                             const CoverageReport& after);

std::string delta_kind_name(CoverageDelta::Kind kind);

// ---- file-system state diffing ------------------------------------------

/// Everything the oracle asserts about one path.  Hashes stand in for
/// full contents so snapshots stay cheap to copy and compare.
struct StateFact {
    enum class Type : std::uint8_t { File, Dir, Symlink, Special };
    Type type = Type::File;

    std::uint32_t mode = 0;  ///< full mode (type | perm bits)
    std::uint32_t uid = 0;
    std::uint32_t gid = 0;

    std::uint64_t size = 0;
    std::uint64_t content_hash = 0;  ///< FNV-1a over file bytes (files)
    std::uint64_t xattr_hash = 0;    ///< FNV-1a over sorted (name, value)
    std::string symlink_target;

    /// Which fact aspects are guaranteed and therefore checked.  A
    /// crash oracle clears these selectively: data for files never
    /// synced, meta for facts invalidated by un-barriered tail effects.
    bool check_data = true;  ///< size + content_hash
    bool check_meta = true;  ///< mode/uid/gid/xattrs/symlink target
};

/// Path-keyed snapshot ("/" is the root); std::map keeps iteration —
/// and therefore every report derived from one — deterministic.
struct StateSnapshot {
    std::map<std::string, StateFact> entries;
};

/// One divergence between an expected and an actual snapshot.
struct StateDelta {
    enum class Kind : std::uint8_t {
        Missing,       ///< expected path absent from actual
        TypeMismatch,  ///< present but with a different file type
        DataLoss,      ///< size or content diverged
        MetadataLoss,  ///< mode/owner/xattr/symlink target diverged
        Extra,         ///< actual has a path expected lacks
    };
    Kind kind = Kind::Missing;
    std::string path;
    std::string detail;  ///< expected-vs-actual rendering

    std::string to_string() const;
};

struct StateDiffOptions {
    /// Crash-oracle mode: paths present in `actual` but not in
    /// `expected` are fine (un-synced creations may survive a crash).
    /// Strict equality checks set this to false.
    bool allow_extra = true;
};

/// Compares actual against expected, path order (deterministic).
/// Facts whose check_data/check_meta flags are cleared in `expected`
/// have that aspect skipped.
std::vector<StateDelta> diff_states(const StateSnapshot& expected,
                                    const StateSnapshot& actual,
                                    const StateDiffOptions& options = {});

const char* state_delta_kind_name(StateDelta::Kind kind);
const char* state_fact_type_name(StateFact::Type type);

}  // namespace iocov::core
