// Coverage diffing: compare two CoverageReports (e.g. two versions of a
// test suite, or before/after adding tests) and classify every changed
// partition.  This is the regression-gate workflow: a partition whose
// coverage drops to zero is a lost test.
#pragma once

#include <string>
#include <vector>

#include "core/coverage.hpp"

namespace iocov::core {

struct CoverageDelta {
    enum class Kind : std::uint8_t {
        Lost,      ///< tested before, untested now
        Gained,    ///< untested before, tested now
        Decreased, ///< still tested but count fell below the threshold
        Increased, ///< count grew beyond the threshold
    };
    Kind kind = Kind::Lost;
    bool is_input = true;
    std::string base;
    std::string arg;        ///< empty for outputs
    std::string partition;
    std::uint64_t before = 0;
    std::uint64_t after = 0;
};

struct DiffOptions {
    /// Relative change (fraction) below which count movements are
    /// ignored; 0.5 means report only >50% swings.
    double ratio_threshold = 0.5;
};

/// All deltas from `before` to `after`, losses first.
std::vector<CoverageDelta> diff_reports(const CoverageReport& before,
                                        const CoverageReport& after,
                                        const DiffOptions& options = {});

/// True if `after` regresses `before`: some partition was lost.
bool has_coverage_regression(const CoverageReport& before,
                             const CoverageReport& after);

std::string delta_kind_name(CoverageDelta::Kind kind);

}  // namespace iocov::core
