// CoverageReport persistence: a line-oriented text format so coverage
// can be captured in CI, archived, and diffed across suite versions —
// the workflow the paper proposes ("IOCov can be used to evaluate TCD
// iteratively; this can help developers design test cases").
//
// Format (one report per file):
//
//     # iocov-coverage v1
//     events_seen 123456
//     events_tracked 120000
//     input open flags bitmap
//       O_RDONLY 7924
//       ...
//       @combo 4 5208
//       @combo_rdonly 4 5198
//       @pair O_CREAT+O_TRUNC 410000
//     output open NewFd
//       OK 137
//       ENOENT 6
//
// Partition labels never contain whitespace, so fields are
// space-separated; indentation is cosmetic.
#pragma once

#include <istream>
#include <optional>
#include <ostream>

#include "core/coverage.hpp"

namespace iocov::core {

/// Writes the report; returns the stream.
std::ostream& save_report(std::ostream& os, const CoverageReport& report);

/// Parses a report saved by save_report. Returns nullopt on malformed
/// input (wrong magic, bad counts). Unknown syscalls/arguments are
/// preserved verbatim, so reports from newer registries still load.
std::optional<CoverageReport> load_report(std::istream& in);

}  // namespace iocov::core
