// Input- and output-space partitioners (Section 3 of the paper).
//
// Each argument class partitions differently:
//   bitmap      -> one partition per flag (plus combination statistics)
//   numeric     -> powers of two, with "=0" and "<0" boundary partitions
//   categorical -> one partition per legal value, plus "INVALID"
//   identifier  -> structural classes (absolute/relative/.../via-fd for
//                  paths; stdio/valid/AT_FDCWD/invalid for fds)
// Outputs partition into success vs. each documented error code; for
// syscalls whose success returns a byte count or offset, the success
// side is further split by powers of two.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/syscall_spec.hpp"
#include "trace/event.hpp"

namespace iocov::core {

/// Maps one argument value to the partition label(s) it occupies.
/// Bitmaps map to several labels (one per contained flag); the other
/// classes map to exactly one.
class InputPartitioner {
  public:
    virtual ~InputPartitioner() = default;

    /// All partitions declared up front, so untested ones are visible.
    virtual std::vector<std::string> declared() const = 0;

    /// Labels exercised by this concrete value.
    virtual std::vector<std::string> labels_for(
        const trace::ArgValue& value) const = 0;
};

/// Builds the partitioner for a base syscall's tracked argument.
std::unique_ptr<InputPartitioner> make_input_partitioner(
    std::string_view base, const ArgSpec& arg);

/// Output partitioner for a base syscall (success kind + error list).
class OutputPartitioner {
  public:
    OutputPartitioner(SuccessKind success, std::vector<abi::Err> errors);

    std::vector<std::string> declared() const;
    std::string label_for(std::int64_t ret) const;

  private:
    SuccessKind success_;
    std::vector<abi::Err> errors_;
};

/// The exponent ceiling for declared numeric partitions: the paper's
/// Fig. 3 x-axis runs 0..32 (4 GiB).  Larger observed values extend the
/// histogram dynamically.
inline constexpr unsigned kNumericDeclaredMaxExp = 32;

/// Label helpers shared with reports.
std::string ok_label();                        // "OK"
std::string ok_size_label(std::int64_t ret);   // "OK:2^k" / "OK:=0"

}  // namespace iocov::core
