// Input- and output-space partitioners (Section 3 of the paper).
//
// Each argument class partitions differently:
//   bitmap      -> one partition per flag (plus combination statistics)
//   numeric     -> powers of two, with "=0" and "<0" boundary partitions
//   categorical -> one partition per legal value, plus "INVALID"
//   identifier  -> structural classes (absolute/relative/.../via-fd for
//                  paths; stdio/valid/AT_FDCWD/invalid for fds)
// Outputs partition into success vs. each documented error code; for
// syscalls whose success returns a byte count or offset, the success
// side is further split by powers of two.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/syscall_spec.hpp"
#include "trace/event.hpp"

namespace iocov::core {

/// Reusable label buffer for InputPartitioner::labels_into().  The
/// logical size resets per event while every slot keeps its heap
/// capacity, so appending a label copies bytes into existing storage —
/// the analyzer's per-event labeling allocates nothing in steady state.
class LabelScratch {
  public:
    void clear() { size_ = 0; }
    std::size_t size() const { return size_; }
    const std::string& operator[](std::size_t i) const { return slots_[i]; }

    void push(std::string_view label) {
        if (size_ == slots_.size()) slots_.emplace_back();
        slots_[size_++].assign(label);
    }

  private:
    std::vector<std::string> slots_;
    std::size_t size_ = 0;
};

/// Maps one argument value to the partition label(s) it occupies.
/// Bitmaps map to several labels (one per contained flag); the other
/// classes map to exactly one.
class InputPartitioner {
  public:
    virtual ~InputPartitioner() = default;

    /// All partitions declared up front, so untested ones are visible.
    virtual std::vector<std::string> declared() const = 0;

    /// Appends the labels exercised by this concrete value to `out`
    /// (caller clears).  This is the hot-path primitive: every
    /// partitioner labels via static names or SSO-sized renderings, so
    /// no implementation heap-allocates.
    virtual void labels_into(const trace::ArgValue& value,
                             LabelScratch& out) const = 0;

    /// Convenience wrapper over labels_into() for tests and one-off
    /// callers that want owning strings.
    std::vector<std::string> labels_for(const trace::ArgValue& value) const {
        LabelScratch scratch;
        labels_into(value, scratch);
        std::vector<std::string> out;
        out.reserve(scratch.size());
        for (std::size_t i = 0; i < scratch.size(); ++i)
            out.push_back(scratch[i]);
        return out;
    }
};

/// Builds the partitioner for a base syscall's tracked argument.
std::unique_ptr<InputPartitioner> make_input_partitioner(
    std::string_view base, const ArgSpec& arg);

/// Output partitioner for a base syscall (success kind + error list).
class OutputPartitioner {
  public:
    OutputPartitioner(SuccessKind success, std::vector<abi::Err> errors);

    std::vector<std::string> declared() const;
    std::string label_for(std::int64_t ret) const;

  private:
    SuccessKind success_;
    std::vector<abi::Err> errors_;
};

/// The exponent ceiling for declared numeric partitions: the paper's
/// Fig. 3 x-axis runs 0..32 (4 GiB).  Larger observed values extend the
/// histogram dynamically.
inline constexpr unsigned kNumericDeclaredMaxExp = 32;

/// Label helpers shared with reports.
std::string ok_label();                        // "OK"
std::string ok_size_label(std::int64_t ret);   // "OK:2^k" / "OK:=0"

}  // namespace iocov::core
