#include "core/snapshot.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <filesystem>
#include <unordered_map>

#include "core/untested.hpp"
#include "exec/thread_pool.hpp"
#include "host/io.hpp"
#include "trace/binary_format.hpp"
#include "trace/detail/varint_decode.hpp"

namespace iocov::core {
namespace {

// ---- wire helpers ----------------------------------------------------------
//
// Same varint grammar as IOCT: writes are plain LEB128, reads go
// through the shared reader policies of trace/detail/varint_decode.hpp
// so the snapshot loader rides the same SWAR 8-byte fast path (scalar
// on big-endian targets) the batched event decoder uses — and inherits
// its truncation and 10th-byte rules verbatim.

void put_varint(std::string& out, std::uint64_t v) {
    while (v >= 0x80) {
        out.push_back(static_cast<char>(v | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

void put_u32le(std::string& out, std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<char>((v >> shift) & 0xff));
}

void put_u64le(std::string& out, std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<char>((v >> shift) & 0xff));
}

std::uint32_t read_u32le(const char* p) {
    const auto* u = reinterpret_cast<const unsigned char*>(p);
    return static_cast<std::uint32_t>(u[0]) |
           static_cast<std::uint32_t>(u[1]) << 8 |
           static_cast<std::uint32_t>(u[2]) << 16 |
           static_cast<std::uint32_t>(u[3]) << 24;
}

std::uint64_t read_u64le(const char* p) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | static_cast<unsigned char>(p[i]);
    return v;
}

/// Bounds-checked reader over one record payload; varints dispatch to
/// the SWAR policy on little-endian targets, scalar otherwise.
struct PayloadCursor {
    const unsigned char* p;
    const unsigned char* const rec_end;
    const unsigned char* const buf_end;  ///< wide-load bound (whole file)

    PayloadCursor(std::string_view payload, std::string_view file)
        : p(reinterpret_cast<const unsigned char*>(payload.data())),
          rec_end(p + payload.size()),
          buf_end(reinterpret_cast<const unsigned char*>(file.data()) +
                  file.size()) {}

    bool done() const { return p == rec_end; }

    bool read_u8(std::uint8_t& out) {
        if (p == rec_end) return false;
        out = *p++;
        return true;
    }

    bool read_varint(std::uint64_t& out) {
        if constexpr (std::endian::native == std::endian::little)
            return trace::detail::SwarVarintReader::read(p, rec_end, buf_end,
                                                         out);
        else
            return trace::detail::ScalarVarintReader::read(p, rec_end,
                                                           buf_end, out);
    }
};

/// FNV-1a 64 over the encoded bytes — the footer's torn-tail/corruption
/// detector.  Not cryptographic; it only needs to make truncation and
/// bit flips loudly detectable.
std::uint64_t fnv1a64(std::string_view data) {
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

std::string iocs_header() {
    std::string h(kIocsHeaderSize, '\0');
    std::memcpy(h.data(), kIocsMagic, sizeof kIocsMagic);
    h[4] = static_cast<char>(kIocsVersion);
    return h;
}

// ---- encoding --------------------------------------------------------------

/// Interns strings on first use, emitting STR records inline (ids are
/// implicit appearance order, exactly like IOCT's table).
class StringInterner {
  public:
    explicit StringInterner(std::string& out) : out_(out) {}

    std::uint64_t id(std::string_view s) {
        auto it = ids_.find(s);
        if (it != ids_.end()) return it->second;
        const std::uint64_t id = ids_.size();
        ids_.emplace(std::string(s), id);
        put_u32le(out_, static_cast<std::uint32_t>(1 + s.size()));
        out_.push_back(static_cast<char>(IocsTag::Str));
        out_.append(s);
        return id;
    }

  private:
    struct Hash {
        using is_transparent = void;
        std::size_t operator()(std::string_view s) const {
            return std::hash<std::string_view>{}(s);
        }
    };
    std::string& out_;
    std::unordered_map<std::string, std::uint64_t, Hash, std::equal_to<>>
        ids_;
};

void put_histogram(std::string& payload, StringInterner& strings,
                   const stats::PartitionHistogram& hist) {
    put_varint(payload, hist.rows().size());
    put_varint(payload, hist.declared_count());
    for (const auto& row : hist.rows()) {
        put_varint(payload, strings.id(row.label));
        put_varint(payload, row.count);
    }
}

void put_record(std::string& out, std::string_view payload) {
    put_u32le(out, static_cast<std::uint32_t>(payload.size()));
    out.append(payload);
}

// ---- decoding --------------------------------------------------------------

bool fail(SnapshotError* err, SnapshotError::Kind kind, std::uint64_t offset,
          std::string reason, std::uint8_t found_version = 0) {
    if (err) {
        err->kind = kind;
        err->offset = offset;
        err->reason = std::move(reason);
        err->found_version = found_version;
    }
    return false;
}

bool read_histogram(PayloadCursor& c,
                    const std::vector<std::string_view>& strings,
                    stats::PartitionHistogram& out) {
    std::uint64_t rows = 0, declared = 0;
    if (!c.read_varint(rows) || !c.read_varint(declared) || declared > rows ||
        rows > (1u << 24))  // spaces are tens of labels; cap forged sizes
        return false;
    std::vector<stats::PartitionCount> pc;
    pc.reserve(rows);
    for (std::uint64_t i = 0; i < rows; ++i) {
        std::uint64_t label_id = 0, count = 0;
        if (!c.read_varint(label_id) || label_id >= strings.size() ||
            !c.read_varint(count))
            return false;
        pc.push_back({std::string(strings[label_id]), count});
    }
    try {
        out = stats::PartitionHistogram::from_rows(std::move(pc),
                                                   static_cast<std::size_t>(
                                                       declared));
    } catch (const std::invalid_argument&) {
        return false;  // forged tail order / duplicate labels
    }
    return true;
}

}  // namespace

bool is_iocs(std::string_view data) {
    return data.size() >= kIocsHeaderSize &&
           std::memcmp(data.data(), kIocsMagic, sizeof kIocsMagic) == 0;
}

std::optional<std::uint8_t> iocs_version(std::string_view data) {
    if (data.size() < 5 ||
        std::memcmp(data.data(), kIocsMagic, sizeof kIocsMagic) != 0)
        return std::nullopt;
    return static_cast<std::uint8_t>(data[4]);
}

// ---- IOCovSnapshot ---------------------------------------------------------

void IOCovSnapshot::merge(const IOCovSnapshot& other) {
    report.merge(other.report);
    filtered_out += other.filtered_out;
    dropped += other.dropped;
    ingest.events += other.ingest.events;
    ingest.bytes += other.ingest.bytes;
    ingest.files += other.ingest.files;
    ingest.threads = std::max(ingest.threads, other.ingest.threads);
    ingest.hot_loop_allocs += other.ingest.hot_loop_allocs;
    ingest.seconds += other.ingest.seconds;
    if (label != other.label) label.clear();
    timestamp = std::max(timestamp, other.timestamp);
}

std::string encode_snapshot(const IOCovSnapshot& snapshot) {
    std::string out = iocs_header();
    StringInterner strings(out);

    {
        std::string payload;
        payload.push_back(static_cast<char>(IocsTag::Meta));
        put_varint(payload, snapshot.report.events_seen);
        put_varint(payload, snapshot.report.events_tracked);
        put_varint(payload, snapshot.filtered_out);
        put_varint(payload, snapshot.dropped);
        put_varint(payload, snapshot.ingest.events);
        put_varint(payload, snapshot.ingest.bytes);
        put_varint(payload, snapshot.ingest.files);
        put_varint(payload, snapshot.ingest.threads);
        put_varint(payload, snapshot.ingest.hot_loop_allocs);
        // Seconds keep their exact bit pattern so a round trip is
        // value-identical, not just approximately equal.
        put_u64le(payload, std::bit_cast<std::uint64_t>(
                               snapshot.ingest.seconds));
        put_varint(payload, strings.id(snapshot.label));
        put_varint(payload, snapshot.timestamp);
        put_record(out, payload);
    }

    for (const auto& in : snapshot.report.inputs) {
        std::string payload;
        payload.push_back(static_cast<char>(IocsTag::Input));
        put_varint(payload, strings.id(in.base));
        put_varint(payload, strings.id(in.key));
        payload.push_back(static_cast<char>(in.cls));
        put_histogram(payload, strings, in.hist);
        put_histogram(payload, strings, in.combo_cardinality);
        put_histogram(payload, strings, in.combo_cardinality_rdonly);
        put_histogram(payload, strings, in.pairs);
        put_record(out, payload);
    }
    for (const auto& o : snapshot.report.outputs) {
        std::string payload;
        payload.push_back(static_cast<char>(IocsTag::Output));
        put_varint(payload, strings.id(o.base));
        payload.push_back(static_cast<char>(o.success));
        put_histogram(payload, strings, o.hist);
        put_record(out, payload);
    }

    {
        // Checksum covers header + every record before the footer; the
        // footer's own length prefix and payload are excluded so the
        // checksum is computable in one pass while writing.
        std::string payload;
        payload.push_back(static_cast<char>(IocsTag::Footer));
        put_varint(payload, snapshot.report.inputs.size());
        put_varint(payload, snapshot.report.outputs.size());
        put_u64le(payload, fnv1a64(out));
        put_record(out, payload);
    }
    return out;
}

std::string SnapshotError::to_string() const {
    switch (kind) {
        case Kind::NotIocs:
            return "not an IOCS snapshot (bad magic)";
        case Kind::VersionSkew:
            return "snapshot version skew: file is v" +
                   std::to_string(found_version) + ", this build reads v" +
                   std::to_string(kIocsVersion) +
                   " — re-export it or upgrade the tool";
        case Kind::Torn:
        case Kind::Corrupt:
            return reason + " (byte " + std::to_string(offset) + ")";
        case Kind::Io:
            // reason holds a complete host::IoError::to_string() —
            // phase, path, strerror and errno are already in it.
            return reason;
    }
    return reason;
}

std::optional<IOCovSnapshot> decode_snapshot(std::string_view data,
                                             SnapshotError* err) {
    using Kind = SnapshotError::Kind;
    if (data.size() < kIocsHeaderSize ||
        std::memcmp(data.data(), kIocsMagic, sizeof kIocsMagic) != 0) {
        fail(err, Kind::NotIocs, 0, "not an IOCS snapshot (bad magic)");
        return std::nullopt;
    }
    const auto version = static_cast<std::uint8_t>(data[4]);
    if (version != kIocsVersion) {
        fail(err, Kind::VersionSkew, 4, "snapshot version skew", version);
        return std::nullopt;
    }

    IOCovSnapshot snap;
    std::vector<std::string_view> strings;
    bool saw_meta = false, saw_footer = false;
    std::uint64_t footer_inputs = 0, footer_outputs = 0;

    std::size_t pos = kIocsHeaderSize;
    while (pos < data.size()) {
        const std::size_t record_start = pos;
        if (saw_footer) {
            fail(err, Kind::Corrupt, record_start,
                 "trailing bytes after footer");
            return std::nullopt;
        }
        if (data.size() - pos < 4) {
            fail(err, Kind::Torn, record_start,
                 "torn snapshot: truncated record length prefix");
            return std::nullopt;
        }
        const std::uint32_t len = read_u32le(data.data() + pos);
        pos += 4;
        if (len == 0 || len > data.size() - pos) {
            fail(err, len == 0 ? Kind::Corrupt : Kind::Torn, record_start,
                 len == 0 ? "zero-length record"
                          : "torn snapshot: record length exceeds "
                            "remaining bytes");
            return std::nullopt;
        }
        const std::string_view payload = data.substr(pos, len);
        pos += len;
        PayloadCursor c(payload.substr(1), data);
        switch (static_cast<IocsTag>(payload[0])) {
            case IocsTag::Str:
                strings.push_back(payload.substr(1));
                break;
            case IocsTag::Meta: {
                std::uint64_t threads = 0, seconds_bits = 0, label_id = 0;
                bool ok = !saw_meta &&
                          c.read_varint(snap.report.events_seen) &&
                          c.read_varint(snap.report.events_tracked) &&
                          c.read_varint(snap.filtered_out) &&
                          c.read_varint(snap.dropped) &&
                          c.read_varint(snap.ingest.events) &&
                          c.read_varint(snap.ingest.bytes) &&
                          c.read_varint(snap.ingest.files) &&
                          c.read_varint(threads) && threads <= UINT32_MAX &&
                          c.read_varint(snap.ingest.hot_loop_allocs);
                if (ok && c.rec_end - c.p >= 8) {
                    seconds_bits = read_u64le(
                        reinterpret_cast<const char*>(c.p));
                    c.p += 8;
                } else {
                    ok = false;
                }
                ok = ok && c.read_varint(label_id) &&
                     label_id < strings.size() &&
                     c.read_varint(snap.timestamp) && c.done();
                if (!ok) {
                    fail(err, Kind::Corrupt, record_start,
                         "malformed meta record");
                    return std::nullopt;
                }
                snap.ingest.threads = static_cast<unsigned>(threads);
                snap.ingest.seconds = std::bit_cast<double>(seconds_bits);
                snap.label.assign(strings[label_id]);
                saw_meta = true;
                break;
            }
            case IocsTag::Input: {
                ArgCoverage in;
                std::uint64_t base_id = 0, key_id = 0;
                std::uint8_t cls = 0;
                const bool ok =
                    c.read_varint(base_id) && base_id < strings.size() &&
                    c.read_varint(key_id) && key_id < strings.size() &&
                    c.read_u8(cls) &&
                    cls <= static_cast<std::uint8_t>(
                               ArgClass::Categorical) &&
                    read_histogram(c, strings, in.hist) &&
                    read_histogram(c, strings, in.combo_cardinality) &&
                    read_histogram(c, strings,
                                   in.combo_cardinality_rdonly) &&
                    read_histogram(c, strings, in.pairs) && c.done();
                if (!ok) {
                    fail(err, Kind::Corrupt, record_start,
                         "malformed input-space record");
                    return std::nullopt;
                }
                in.base.assign(strings[base_id]);
                in.key.assign(strings[key_id]);
                in.cls = static_cast<ArgClass>(cls);
                snap.report.inputs.push_back(std::move(in));
                break;
            }
            case IocsTag::Output: {
                OutputCoverage o;
                std::uint64_t base_id = 0;
                std::uint8_t success = 0;
                const bool ok =
                    c.read_varint(base_id) && base_id < strings.size() &&
                    c.read_u8(success) &&
                    success <= static_cast<std::uint8_t>(SuccessKind::NewFd) &&
                    read_histogram(c, strings, o.hist) && c.done();
                if (!ok) {
                    fail(err, Kind::Corrupt, record_start,
                         "malformed output-space record");
                    return std::nullopt;
                }
                o.base.assign(strings[base_id]);
                o.success = static_cast<SuccessKind>(success);
                snap.report.outputs.push_back(std::move(o));
                break;
            }
            case IocsTag::Footer: {
                std::uint64_t checksum = 0;
                bool ok = c.read_varint(footer_inputs) &&
                          c.read_varint(footer_outputs);
                if (ok && c.rec_end - c.p >= 8) {
                    checksum = read_u64le(reinterpret_cast<const char*>(c.p));
                    c.p += 8;
                } else {
                    ok = false;
                }
                if (!ok || !c.done()) {
                    fail(err, Kind::Corrupt, record_start,
                         "malformed footer record");
                    return std::nullopt;
                }
                if (checksum != fnv1a64(data.substr(0, record_start))) {
                    fail(err, Kind::Corrupt, record_start,
                         "snapshot checksum mismatch (file damaged)");
                    return std::nullopt;
                }
                saw_footer = true;
                break;
            }
            default:
                fail(err, Kind::Corrupt, record_start, "unknown record tag");
                return std::nullopt;
        }
    }
    if (!saw_footer) {
        fail(err, Kind::Torn, data.size(),
             "torn snapshot: footer checksum missing");
        return std::nullopt;
    }
    if (!saw_meta || footer_inputs != snap.report.inputs.size() ||
        footer_outputs != snap.report.outputs.size()) {
        fail(err, Kind::Corrupt, data.size(),
             saw_meta ? "footer space counts disagree with records"
                      : "snapshot has no meta record");
        return std::nullopt;
    }
    return snap;
}

bool save_snapshot_file(const std::string& path,
                        const IOCovSnapshot& snapshot,
                        SnapshotError* err) {
    // A snapshot is all-or-nothing state (see decode); the write must
    // match: never truncate the previous artifact before the new bytes
    // are durable.  write_file_atomic publishes via rename, so a crash
    // or failure at any point leaves the prior complete file in place.
    const std::string bytes = encode_snapshot(snapshot);
    if (auto ioerr = host::write_file_atomic(path, bytes)) {
        if (err) {
            err->kind = SnapshotError::Kind::Io;
            err->offset = 0;
            err->reason = ioerr->to_string();
            err->io_errno = ioerr->err;
        }
        return false;
    }
    return true;
}

std::optional<IOCovSnapshot> load_snapshot_file(const std::string& path,
                                                SnapshotError* err) {
    host::IoError ioerr;
    auto mapped = trace::MappedFile::open(path, trace::MappedFile::Mode::Auto,
                                          &ioerr);
    if (!mapped) {
        if (err) {
            err->kind = SnapshotError::Kind::Io;
            err->offset = 0;
            err->reason = "cannot open file: " + ioerr.to_string();
            err->io_errno = ioerr.err;
        }
        return std::nullopt;
    }
    return decode_snapshot(mapped->data(), err);
}

// ---- directory loading + hierarchical merge --------------------------------

std::optional<SnapshotDirLoad> load_snapshot_dir(const std::string& dir,
                                                 unsigned n_threads) {
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir, ec) || ec) return std::nullopt;

    struct FileEntry {
        std::string path;
        std::string name;
        std::uint64_t bytes = 0;
    };
    std::vector<FileEntry> files;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        std::error_code fec;
        if (!it->is_regular_file(fec) || fec) continue;
        FileEntry fe;
        fe.path = it->path().string();
        fe.name = it->path().filename().string();
        const auto size = it->file_size(fec);
        fe.bytes = fec ? 0 : static_cast<std::uint64_t>(size);
        files.push_back(std::move(fe));
    }
    if (ec) return std::nullopt;
    // Name order is the deterministic key for everything downstream:
    // which diagnostics survive retention and the merge-tree leaf order.
    std::sort(files.begin(), files.end(),
              [](const FileEntry& a, const FileEntry& b) {
                  return a.name < b.name;
              });

    struct Slot {
        std::optional<IOCovSnapshot> snapshot;
        SnapshotError error;
        std::uint64_t bytes = 0;
    };
    std::vector<Slot> slots(files.size());
    auto load_one = [&](std::size_t i) {
        Slot& slot = slots[i];
        try {
            host::IoError ioerr;
            auto mapped = trace::MappedFile::open(
                files[i].path, trace::MappedFile::Mode::Auto, &ioerr);
            if (!mapped) {
                slot.error = {SnapshotError::Kind::Io, 0,
                              "cannot open file: " + ioerr.to_string(), 0,
                              ioerr.err};
                return;
            }
            slot.bytes = mapped->data().size();
            slot.snapshot = decode_snapshot(mapped->data(), &slot.error);
        } catch (const std::exception& e) {
            slot.snapshot.reset();
            slot.error = {SnapshotError::Kind::Corrupt, 0,
                          std::string("load failed: ") + e.what(), 0};
        }
    };

    if (n_threads == 0) n_threads = exec::ThreadPool::default_thread_count();
    const unsigned lanes = static_cast<unsigned>(
        std::min<std::size_t>(n_threads, files.size() ? files.size() : 1));
    if (lanes <= 1) {
        for (std::size_t i = 0; i < files.size(); ++i) load_one(i);
    } else {
        exec::ThreadPool pool(lanes);
        std::vector<std::uint64_t> weights(files.size());
        for (std::size_t i = 0; i < files.size(); ++i)
            weights[i] = files[i].bytes;
        exec::parallel_for_stealing(pool, weights, load_one);
    }

    SnapshotDirLoad result;
    for (std::size_t i = 0; i < files.size(); ++i) {
        Slot& slot = slots[i];
        if (slot.snapshot) {
            result.bytes += slot.bytes;
            result.snapshots.push_back(
                {files[i].name, std::move(*slot.snapshot)});
        } else {
            ++result.rejected;
            result.diags.record(0, slot.error.offset,
                                files[i].name + ": " +
                                    slot.error.to_string());
        }
    }
    return result;
}

IOCovSnapshot merge_snapshots(std::vector<NamedSnapshot> snapshots,
                              unsigned n_threads) {
    if (snapshots.empty()) return {};
    std::vector<IOCovSnapshot> level;
    level.reserve(snapshots.size());
    for (auto& ns : snapshots) level.push_back(std::move(ns.snapshot));

    if (n_threads == 0) n_threads = exec::ThreadPool::default_thread_count();
    // The reduction order is a pure function of the index structure —
    // level k merges (0,1), (2,3), ... of level k-1 — so any lane
    // assignment computes the identical tree.  Parallelism only decides
    // *who* performs each fold, never *which* folds happen.
    std::optional<exec::ThreadPool> pool;
    if (n_threads > 1 && level.size() > 2) pool.emplace(n_threads);

    auto row_weight = [](const IOCovSnapshot& s) {
        std::uint64_t rows = 1;
        for (const auto& in : s.report.inputs)
            rows += in.hist.rows().size() + in.pairs.rows().size();
        for (const auto& o : s.report.outputs) rows += o.hist.rows().size();
        return rows;
    };

    while (level.size() > 1) {
        const std::size_t pairs = level.size() / 2;
        auto merge_pair = [&](std::size_t i) {
            level[2 * i].merge(level[2 * i + 1]);
        };
        if (pool && pairs > 1) {
            std::vector<std::uint64_t> weights(pairs);
            for (std::size_t i = 0; i < pairs; ++i)
                weights[i] =
                    row_weight(level[2 * i]) + row_weight(level[2 * i + 1]);
            exec::parallel_for_stealing(*pool, weights, merge_pair);
        } else {
            for (std::size_t i = 0; i < pairs; ++i) merge_pair(i);
        }
        // Compact survivors: merged pairs at even indices, plus the odd
        // straggler which waits for the next level.
        std::vector<IOCovSnapshot> next;
        next.reserve(pairs + level.size() % 2);
        for (std::size_t i = 0; i < pairs; ++i)
            next.push_back(std::move(level[2 * i]));
        if (level.size() % 2) next.push_back(std::move(level.back()));
        level = std::move(next);
    }
    return std::move(level.front());
}

std::string merge_summary_json(const SnapshotDirLoad& load,
                               const IOCovSnapshot& merged) {
    std::string json = "{\n";
    auto num = [&](const char* key, std::uint64_t v, bool comma = true) {
        json += "  \"";
        json += key;
        json += "\": " + std::to_string(v) + (comma ? ",\n" : "\n");
    };
    num("snapshots", load.snapshots.size());
    num("rejected", load.rejected);
    num("events_seen", merged.report.events_seen);
    num("events_tracked", merged.report.events_tracked);
    num("filtered_out", merged.filtered_out);
    num("dropped", merged.dropped);
    num("ingest_events", merged.ingest.events);
    num("ingest_bytes", merged.ingest.bytes);
    num("ingest_files", merged.ingest.files);
    json += "  \"spaces\": [\n";
    const auto rows = summarize(merged.report);
    char buf[64];
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        std::snprintf(buf, sizeof buf, "%.4f", r.fraction);
        json += "    {\"space\": \"" + r.base +
                (r.arg.empty() ? "" : "." + r.arg) +
                "\", \"declared\": " + std::to_string(r.declared) +
                ", \"tested\": " + std::to_string(r.tested) +
                ", \"coverage\": " + buf + "}" +
                (i + 1 < rows.size() ? ",\n" : "\n");
    }
    json += "  ]\n}\n";
    return json;
}

}  // namespace iocov::core
