#include "core/coverage.hpp"

#include <algorithm>

#include "abi/fcntl.hpp"
#include "trace/syz_format.hpp"

namespace iocov::core {

ArgCoverage* CoverageReport::find_input(std::string_view base,
                                        std::string_view key) {
    for (auto& in : inputs)
        if (in.base == base && in.key == key) return &in;
    return nullptr;
}

const ArgCoverage* CoverageReport::find_input(std::string_view base,
                                              std::string_view key) const {
    for (const auto& in : inputs)
        if (in.base == base && in.key == key) return &in;
    return nullptr;
}

OutputCoverage* CoverageReport::find_output(std::string_view base) {
    for (auto& out : outputs)
        if (out.base == base) return &out;
    return nullptr;
}

const OutputCoverage* CoverageReport::find_output(
    std::string_view base) const {
    for (const auto& out : outputs)
        if (out.base == base) return &out;
    return nullptr;
}

void CoverageReport::merge(const CoverageReport& other) {
    events_seen += other.events_seen;
    events_tracked += other.events_tracked;
    for (const auto& oin : other.inputs) {
        if (ArgCoverage* in = find_input(oin.base, oin.key)) {
            in->hist.merge(oin.hist);
            in->combo_cardinality.merge(oin.combo_cardinality);
            in->combo_cardinality_rdonly.merge(oin.combo_cardinality_rdonly);
            in->pairs.merge(oin.pairs);
        } else {
            inputs.push_back(oin);
        }
    }
    for (const auto& oout : other.outputs) {
        if (OutputCoverage* out = find_output(oout.base))
            out->hist.merge(oout.hist);
        else
            outputs.push_back(oout);
    }
}

namespace {

std::vector<std::string> combo_declared() {
    // Up to six flags were ever combined in the paper's data; declare
    // 1..6 plus an overflow bucket.
    return {"1", "2", "3", "4", "5", "6", "7+"};
}

std::string cardinality_label(std::size_t n) {
    if (n >= 7) return "7+";
    return std::to_string(n);
}

}  // namespace

Analyzer::Analyzer(const std::vector<SyscallSpec>& registry)
    : registry_(&registry) {
    for (const auto& spec : registry) {
        for (const auto& arg : spec.args) {
            auto part = make_input_partitioner(spec.base, arg);
            ArgCoverage cov;
            cov.base = spec.base;
            cov.key = arg.key;
            cov.cls = arg.cls;
            cov.hist = stats::PartitionHistogram::with_partitions(
                part->declared());
            if (spec.base == "open" && arg.key == "flags") {
                cov.combo_cardinality =
                    stats::PartitionHistogram::with_partitions(
                        combo_declared());
                cov.combo_cardinality_rdonly =
                    stats::PartitionHistogram::with_partitions(
                        combo_declared());
            }
            report_.inputs.push_back(std::move(cov));
            inputs_.emplace(spec.base + "/" + arg.key, std::move(part));
        }
        OutputPartitioner opart(spec.success, spec.errors);
        OutputCoverage ocov;
        ocov.base = spec.base;
        ocov.success = spec.success;
        ocov.hist = stats::PartitionHistogram::with_partitions(
            opart.declared());
        report_.outputs.push_back(std::move(ocov));
        outputs_.emplace(spec.base, std::move(opart));
    }
}

void Analyzer::consume(const trace::TraceEvent& event) {
    ++report_.events_seen;
    auto ce = canonicalize(event, *registry_);
    if (!ce) return;
    ++report_.events_tracked;
    const SyscallSpec* spec = find_spec(ce->base, *registry_);
    if (!spec) return;
    consume_input(*ce, *spec);
    // Declarative inputs (e.g. parsed syzkaller programs) carry no
    // observed return value; they contribute input coverage only.
    if (!trace::is_input_only(event)) consume_output(*ce, *spec);
}

void Analyzer::consume_all(const std::vector<trace::TraceEvent>& events) {
    for (const auto& ev : events) consume(ev);
}

void Analyzer::consume_input(const CanonicalEvent& ce,
                             const SyscallSpec& spec) {
    for (const auto& arg : spec.args) {
        auto value = ce.arg(arg.key);
        if (!value) continue;  // variant without this argument
        auto pit = inputs_.find(spec.base + "/" + arg.key);
        if (pit == inputs_.end()) continue;
        ArgCoverage* cov = report_.find_input(spec.base, arg.key);

        const auto labels = pit->second->labels_for(*value);
        for (const auto& label : labels) cov->hist.add(label);

        // Bitmap combination statistics (open flags only).
        if (spec.base == "open" && arg.key == "flags") {
            cov->combo_cardinality.add(cardinality_label(labels.size()));
            const bool has_rdonly =
                std::find(labels.begin(), labels.end(), "O_RDONLY") !=
                labels.end();
            if (has_rdonly)
                cov->combo_cardinality_rdonly.add(
                    cardinality_label(labels.size()));
            for (std::size_t i = 0; i < labels.size(); ++i)
                for (std::size_t j = i + 1; j < labels.size(); ++j) {
                    const auto& a = std::min(labels[i], labels[j]);
                    const auto& b = std::max(labels[i], labels[j]);
                    cov->pairs.add(a + "+" + b);
                }
        }
    }
}

void Analyzer::consume_output(const CanonicalEvent& ce,
                              const SyscallSpec& spec) {
    auto oit = outputs_.find(spec.base);
    if (oit == outputs_.end()) return;
    OutputCoverage* cov = report_.find_output(spec.base);
    cov->hist.add(oit->second.label_for(ce.event.ret));
}

}  // namespace iocov::core
